#include "storage/buffer_pool.h"

#include "util/logging.h"

namespace ssdb::storage {

PageHandle::PageHandle(BufferPool* pool, size_t frame, PageId id)
    : pool_(pool), frame_(frame), id_(id) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), id_(other.id_) {
  other.pool_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
  }
  return *this;
}

uint8_t* PageHandle::data() {
  SSDB_DCHECK(valid());
  return pool_->frames_[frame_].buf.data();
}

const uint8_t* PageHandle::data() const {
  SSDB_DCHECK(valid());
  return pool_->frames_[frame_].buf.data();
}

void PageHandle::MarkDirty() {
  SSDB_DCHECK(valid());
  std::lock_guard<std::mutex> lock(pool_->latch_);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity) {
  SSDB_CHECK(capacity_ >= 8) << "buffer pool too small for B+tree descent";
  frames_.reserve(capacity_);
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    SSDB_LOG(ERROR) << "buffer pool flush on destruction failed: "
                    << s.ToString();
  }
}

StatusOr<PageHandle> BufferPool::Fetch(PageId id) {
  SSDB_ASSIGN_OR_RETURN(size_t frame, GetFrame(id, /*load=*/true));
  return PageHandle(this, frame, id);
}

StatusOr<PageHandle> BufferPool::NewPage() {
  SSDB_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  SSDB_ASSIGN_OR_RETURN(size_t frame, GetFrame(id, /*load=*/false));
  {
    std::lock_guard<std::mutex> lock(latch_);
    frames_[frame].buf.fill(0);
    frames_[frame].dirty = true;
  }
  return PageHandle(this, frame, id);
}

StatusOr<size_t> BufferPool::GetFrame(PageId id, bool load) {
  std::lock_guard<std::mutex> lock(latch_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.last_used = ++clock_;
    return it->second;
  }
  ++stats_.misses;

  size_t frame_index;
  if (frames_.size() < capacity_) {
    frames_.emplace_back();
    frame_index = frames_.size() - 1;
  } else {
    SSDB_RETURN_IF_ERROR(EvictOne());
    // EvictOne leaves exactly one unpinned, unmapped frame; find it.
    frame_index = capacity_;  // sentinel
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].page_id == kInvalidPageId) {
        frame_index = i;
        break;
      }
    }
    if (frame_index == capacity_) {
      return Status::Internal("buffer pool eviction bookkeeping failure");
    }
  }

  Frame& frame = frames_[frame_index];
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.last_used = ++clock_;
  if (load) {
    SSDB_RETURN_IF_ERROR(pager_->ReadPage(id, &frame.buf));
    if (!VerifyPage(frame.buf.data())) {
      frame.page_id = kInvalidPageId;
      frame.pin_count = 0;
      return Status::Corruption("checksum mismatch on page " +
                                std::to_string(id));
    }
  }
  page_table_[id] = frame_index;
  return frame_index;
}

Status BufferPool::EvictOne() {
  size_t victim = frames_.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (frame.pin_count == 0 && frame.last_used < oldest) {
      oldest = frame.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all pages pinned");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    SSDB_RETURN_IF_ERROR(FlushFrame(&frame));
  }
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  ++stats_.evictions;
  return Status::OK();
}

Status BufferPool::FlushFrame(Frame* frame) {
  SealPage(frame->buf.data());
  SSDB_RETURN_IF_ERROR(pager_->WritePage(frame->page_id, frame->buf));
  frame->dirty = false;
  ++stats_.flushes;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(latch_);
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      SSDB_RETURN_IF_ERROR(FlushFrame(&frame));
    }
  }
  return Status::OK();
}

void BufferPool::Unpin(size_t frame) {
  std::lock_guard<std::mutex> lock(latch_);
  Frame& f = frames_[frame];
  SSDB_DCHECK(f.pin_count > 0);
  --f.pin_count;
}

}  // namespace ssdb::storage
