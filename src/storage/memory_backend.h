// MemoryNodeStore: in-RAM implementation of the NodeStore interface, used by
// tests (as a model for the disk engine) and by benchmarks that want to
// isolate algorithmic costs from IO (ablation A2 in DESIGN.md).
//
// Thread-safe: reads take a shared lock, Insert an exclusive one, so any
// number of concurrent server sessions can evaluate shares against one
// store (DESIGN.md §7).

#ifndef SSDB_STORAGE_MEMORY_BACKEND_H_
#define SSDB_STORAGE_MEMORY_BACKEND_H_

#include <map>
#include <shared_mutex>
#include <vector>

#include "storage/mutation.h"
#include "storage/node_store.h"

namespace ssdb::storage {

class MemoryNodeStore : public NodeStore {
 public:
  MemoryNodeStore() = default;

  Status Insert(const NodeRow& row) override;
  StatusOr<NodeRow> GetByPre(uint32_t pre) override;
  Status VisitByPre(uint32_t pre,
                    const std::function<void(const NodeRow&)>& fn) override;
  StatusOr<NodeRow> GetRoot() override;
  StatusOr<std::vector<NodeRow>> GetChildren(uint32_t parent_pre) override;
  Status VisitChildren(
      uint32_t parent_pre,
      const std::function<void(const NodeRow&)>& fn) override;
  Status ScanDescendants(
      uint32_t pre, uint32_t post,
      const std::function<bool(const NodeRow&)>& fn) override;
  StatusOr<uint64_t> NodeCount() override;
  StatusOr<StorageStats> Stats() override;
  Status Flush() override { return Status::OK(); }

  // Two-phase mutations (DESIGN.md §12). The memory backend has no journal
  // — a process death loses the whole store anyway — but it runs the same
  // prepare/commit/abort state machine so every protocol test can use it as
  // the model the disk engine must match.
  StatusOr<MutationState> GetMutationState() override;
  Status PrepareMutation(uint64_t txn, const MutationPlan& plan) override;
  Status CommitMutation(uint64_t txn) override;
  Status AbortMutation(uint64_t txn) override;

 private:
  // Caller holds mu_ exclusively.
  Status ApplyPlanLocked(const MutationPlan& plan);

  // Reads shared, Insert exclusive (DESIGN.md §7).
  mutable std::shared_mutex mu_;
  // Keyed by pre: ordered map gives document-order scans for free.
  std::map<uint32_t, NodeRow> rows_;
  std::map<uint32_t, std::vector<uint32_t>> children_;  // parent -> pres
  uint32_t root_pre_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t structure_bytes_ = 0;

  // Mutation state (DESIGN.md §12).
  uint64_t version_ = 0;
  uint64_t next_nonce_ = 0;  // lazily floored at prg::kFirstMutationNonce
  uint64_t pending_txn_ = 0;
  MutationPlan pending_plan_;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_MEMORY_BACKEND_H_
