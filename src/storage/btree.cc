#include "storage/btree.h"

#include <cstring>
#include <vector>

#include "util/logging.h"

namespace ssdb::storage {
namespace {

constexpr size_t kCountOff = 8;
constexpr size_t kNextLeafOff = 12;   // leaves
constexpr size_t kChild0Off = 12;     // internals
constexpr size_t kEntriesOff = 16;

constexpr size_t kLeafEntrySize = 16;      // u64 key + u64 value
constexpr size_t kInternalEntrySize = 12;  // u64 key + u32 child

constexpr uint16_t kLeafCapacity =
    static_cast<uint16_t>((kPageSize - kEntriesOff) / kLeafEntrySize);
constexpr uint16_t kInternalCapacity =
    static_cast<uint16_t>((kPageSize - kEntriesOff) / kInternalEntrySize);

uint16_t EntryCount(const uint8_t* page) { return LoadU16(page + kCountOff); }
void SetEntryCount(uint8_t* page, uint16_t count) {
  StoreU16(page + kCountOff, count);
}

bool IsLeaf(const uint8_t* page) {
  return GetPageType(page) == PageType::kBTreeLeaf;
}

// --- Leaf entry accessors ---
uint64_t LeafKey(const uint8_t* page, uint16_t i) {
  return LoadU64(page + kEntriesOff + kLeafEntrySize * i);
}
uint64_t LeafValue(const uint8_t* page, uint16_t i) {
  return LoadU64(page + kEntriesOff + kLeafEntrySize * i + 8);
}
void SetLeafEntry(uint8_t* page, uint16_t i, uint64_t key, uint64_t value) {
  StoreU64(page + kEntriesOff + kLeafEntrySize * i, key);
  StoreU64(page + kEntriesOff + kLeafEntrySize * i + 8, value);
}
PageId NextLeaf(const uint8_t* page) { return LoadU32(page + kNextLeafOff); }

// First index with key >= target (lower bound).
uint16_t LeafLowerBound(const uint8_t* page, uint64_t key) {
  uint16_t lo = 0, hi = EntryCount(page);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (LeafKey(page, mid) < key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

// --- Internal entry accessors ---
uint64_t InternalKey(const uint8_t* page, uint16_t i) {
  return LoadU64(page + kEntriesOff + kInternalEntrySize * i);
}
PageId InternalChildAt(const uint8_t* page, uint16_t i) {
  // child[0] lives in the header slot; child[i>0] sits in entry i-1.
  if (i == 0) return LoadU32(page + kChild0Off);
  return LoadU32(page + kEntriesOff + kInternalEntrySize * (i - 1) + 8);
}
void SetInternalEntry(uint8_t* page, uint16_t i, uint64_t key, PageId child) {
  StoreU64(page + kEntriesOff + kInternalEntrySize * i, key);
  StoreU32(page + kEntriesOff + kInternalEntrySize * i + 8, child);
}

// Index of the child to descend into for `key`: number of separator keys
// that are <= key.
uint16_t InternalChildIndex(const uint8_t* page, uint64_t key) {
  uint16_t lo = 0, hi = EntryCount(page);
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (InternalKey(page, mid) <= key) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

void InitLeaf(uint8_t* page) {
  SetPageType(page, PageType::kBTreeLeaf);
  SetEntryCount(page, 0);
  StoreU32(page + kNextLeafOff, kInvalidPageId);
}

void InitInternal(uint8_t* page) {
  SetPageType(page, PageType::kBTreeInternal);
  SetEntryCount(page, 0);
  StoreU32(page + kChild0Off, kInvalidPageId);
}

}  // namespace

StatusOr<BTree> BTree::Create(BufferPool* pool) {
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool->NewPage());
  InitLeaf(page.data());
  page.MarkDirty();
  return BTree(pool, page.id());
}

BTree BTree::Open(BufferPool* pool, PageId root) { return BTree(pool, root); }

Status BTree::Insert(uint64_t key, uint64_t value) {
  SSDB_ASSIGN_OR_RETURN(SplitResult split,
                        InsertRec(root_, key, value, /*upsert=*/false));
  if (split.did_split) {
    SSDB_ASSIGN_OR_RETURN(PageHandle new_root, pool_->NewPage());
    InitInternal(new_root.data());
    StoreU32(new_root.data() + kChild0Off, root_);
    SetInternalEntry(new_root.data(), 0, split.promoted_key, split.right);
    SetEntryCount(new_root.data(), 1);
    new_root.MarkDirty();
    root_ = new_root.id();
  }
  return Status::OK();
}

Status BTree::Upsert(uint64_t key, uint64_t value) {
  SSDB_ASSIGN_OR_RETURN(SplitResult split,
                        InsertRec(root_, key, value, /*upsert=*/true));
  if (split.did_split) {
    SSDB_ASSIGN_OR_RETURN(PageHandle new_root, pool_->NewPage());
    InitInternal(new_root.data());
    StoreU32(new_root.data() + kChild0Off, root_);
    SetInternalEntry(new_root.data(), 0, split.promoted_key, split.right);
    SetEntryCount(new_root.data(), 1);
    new_root.MarkDirty();
    root_ = new_root.id();
  }
  return Status::OK();
}

StatusOr<BTree::SplitResult> BTree::InsertRec(PageId page_id, uint64_t key,
                                              uint64_t value, bool upsert) {
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(page_id));
  uint8_t* data = page.data();

  if (IsLeaf(data)) {
    uint16_t count = EntryCount(data);
    uint16_t pos = LeafLowerBound(data, key);
    if (pos < count && LeafKey(data, pos) == key) {
      if (!upsert) {
        return Status::AlreadyExists("duplicate B+tree key");
      }
      SetLeafEntry(data, pos, key, value);
      page.MarkDirty();
      return SplitResult{};
    }
    if (count < kLeafCapacity) {
      std::memmove(data + kEntriesOff + kLeafEntrySize * (pos + 1),
                   data + kEntriesOff + kLeafEntrySize * pos,
                   kLeafEntrySize * static_cast<size_t>(count - pos));
      SetLeafEntry(data, pos, key, value);
      SetEntryCount(data, static_cast<uint16_t>(count + 1));
      page.MarkDirty();
      return SplitResult{};
    }
    // Split the leaf: right half moves to a new page.
    SSDB_ASSIGN_OR_RETURN(PageHandle right, pool_->NewPage());
    InitLeaf(right.data());
    uint16_t mid = static_cast<uint16_t>(count / 2);
    uint16_t right_count = static_cast<uint16_t>(count - mid);
    std::memcpy(right.data() + kEntriesOff,
                data + kEntriesOff + kLeafEntrySize * mid,
                kLeafEntrySize * static_cast<size_t>(right_count));
    SetEntryCount(right.data(), right_count);
    StoreU32(right.data() + kNextLeafOff, NextLeaf(data));
    SetEntryCount(data, mid);
    StoreU32(data + kNextLeafOff, right.id());
    // Insert into the proper half.
    uint8_t* target = key < LeafKey(right.data(), 0) ? data : right.data();
    uint16_t tcount = EntryCount(target);
    uint16_t tpos = LeafLowerBound(target, key);
    std::memmove(target + kEntriesOff + kLeafEntrySize * (tpos + 1),
                 target + kEntriesOff + kLeafEntrySize * tpos,
                 kLeafEntrySize * static_cast<size_t>(tcount - tpos));
    SetLeafEntry(target, tpos, key, value);
    SetEntryCount(target, static_cast<uint16_t>(tcount + 1));
    page.MarkDirty();
    right.MarkDirty();
    SplitResult result;
    result.did_split = true;
    result.promoted_key = LeafKey(right.data(), 0);
    result.right = right.id();
    return result;
  }

  // Internal node.
  uint16_t child_index = InternalChildIndex(data, key);
  PageId child = InternalChildAt(data, child_index);
  // Release our pin before recursing so deep trees can't exhaust the pool.
  page = PageHandle();
  SSDB_ASSIGN_OR_RETURN(SplitResult child_split,
                        InsertRec(child, key, value, upsert));
  if (!child_split.did_split) return SplitResult{};

  SSDB_ASSIGN_OR_RETURN(page, pool_->Fetch(page_id));
  data = page.data();
  uint16_t count = EntryCount(data);
  if (count < kInternalCapacity) {
    std::memmove(data + kEntriesOff + kInternalEntrySize * (child_index + 1),
                 data + kEntriesOff + kInternalEntrySize * child_index,
                 kInternalEntrySize * static_cast<size_t>(count - child_index));
    SetInternalEntry(data, child_index, child_split.promoted_key,
                     child_split.right);
    SetEntryCount(data, static_cast<uint16_t>(count + 1));
    page.MarkDirty();
    return SplitResult{};
  }

  // Split the internal node. Gather entries + the pending one, then split
  // around the median, which moves up (B+tree internal split).
  struct Entry {
    uint64_t key;
    PageId child;
  };
  std::vector<Entry> entries;
  entries.reserve(count + 1u);
  for (uint16_t i = 0; i < count; ++i) {
    entries.push_back({InternalKey(data, i), InternalChildAt(data, i + 1)});
  }
  entries.insert(entries.begin() + child_index,
                 {child_split.promoted_key, child_split.right});
  PageId child0 = InternalChildAt(data, 0);

  size_t mid = entries.size() / 2;
  uint64_t median_key = entries[mid].key;

  SSDB_ASSIGN_OR_RETURN(PageHandle right, pool_->NewPage());
  InitInternal(right.data());
  StoreU32(right.data() + kChild0Off, entries[mid].child);
  uint16_t right_count = 0;
  for (size_t i = mid + 1; i < entries.size(); ++i) {
    SetInternalEntry(right.data(), right_count, entries[i].key,
                     entries[i].child);
    ++right_count;
  }
  SetEntryCount(right.data(), right_count);

  // Rewrite the left node with the first `mid` entries.
  StoreU32(data + kChild0Off, child0);
  for (size_t i = 0; i < mid; ++i) {
    SetInternalEntry(data, static_cast<uint16_t>(i), entries[i].key,
                     entries[i].child);
  }
  SetEntryCount(data, static_cast<uint16_t>(mid));
  page.MarkDirty();
  right.MarkDirty();

  SplitResult result;
  result.did_split = true;
  result.promoted_key = median_key;
  result.right = right.id();
  return result;
}

StatusOr<PageId> BTree::FindLeaf(uint64_t key) const {
  PageId current = root_;
  for (;;) {
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(current));
    const uint8_t* data = page.data();
    if (IsLeaf(data)) return current;
    current = InternalChildAt(data, InternalChildIndex(data, key));
  }
}

StatusOr<uint64_t> BTree::Get(uint64_t key) const {
  SSDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(leaf_id));
  const uint8_t* data = page.data();
  uint16_t pos = LeafLowerBound(data, key);
  if (pos < EntryCount(data) && LeafKey(data, pos) == key) {
    return LeafValue(data, pos);
  }
  return Status::NotFound("key not in B+tree");
}

bool BTree::Contains(uint64_t key) const { return Get(key).ok(); }

Status BTree::Delete(uint64_t key) {
  SSDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(leaf_id));
  uint8_t* data = page.data();
  uint16_t count = EntryCount(data);
  uint16_t pos = LeafLowerBound(data, key);
  if (pos >= count || LeafKey(data, pos) != key) {
    return Status::NotFound("key not in B+tree");
  }
  std::memmove(data + kEntriesOff + kLeafEntrySize * pos,
               data + kEntriesOff + kLeafEntrySize * (pos + 1),
               kLeafEntrySize * static_cast<size_t>(count - pos - 1));
  SetEntryCount(data, static_cast<uint16_t>(count - 1));
  page.MarkDirty();
  return Status::OK();
}

Status BTree::Scan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& fn) const {
  if (lo >= hi) return Status::OK();
  SSDB_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(lo));
  PageId current = leaf_id;
  while (current != kInvalidPageId) {
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(current));
    const uint8_t* data = page.data();
    uint16_t count = EntryCount(data);
    for (uint16_t i = LeafLowerBound(data, lo); i < count; ++i) {
      uint64_t key = LeafKey(data, i);
      if (key >= hi) return Status::OK();
      if (!fn(key, LeafValue(data, i))) return Status::OK();
    }
    current = NextLeaf(data);
  }
  return Status::OK();
}

StatusOr<uint64_t> BTree::Count() const {
  uint64_t total = 0;
  SSDB_RETURN_IF_ERROR(Scan(0, UINT64_MAX, [&](uint64_t, uint64_t) {
    ++total;
    return true;
  }));
  // UINT64_MAX itself is excluded by the half-open range; count it if present.
  if (Contains(UINT64_MAX)) ++total;
  return total;
}

StatusOr<uint64_t> BTree::PageCount() const {
  // DFS from the root.
  std::vector<PageId> stack = {root_};
  uint64_t pages = 0;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    ++pages;
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(id));
    const uint8_t* data = page.data();
    if (!IsLeaf(data)) {
      uint16_t count = EntryCount(data);
      for (uint16_t i = 0; i <= count; ++i) {
        stack.push_back(InternalChildAt(data, i));
      }
    }
  }
  return pages;
}

}  // namespace ssdb::storage
