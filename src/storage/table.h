// DiskNodeStore: the paged, persistent implementation of the polynomial
// table — heap file for rows plus three B+tree indexes (pre, parent, post),
// mirroring the paper's MySQL schema and indexes (§5.1).
//
// Index encodings:
//   pre index    : key = pre,                         value = record id
//   parent index : key = (parent << 32) | pre,        value = record id
//   post index   : key = (post << 32) | pre,          value = record id
//
// Blob columns (the §8 aggregate slice and §9 verification track) live in a
// sibling column store ("<path>.cols", src/colstore/) keyed by the row's
// share nonce, not in the heap row (DESIGN.md §12) — that is what lifts the
// ~140-tag map cap the old in-row layout imposed. Databases created before
// §12 have no .cols file and keep their blobs in-row; both layouts read
// through GetColumns(). Rows returned by GetChildren/ScanDescendants carry
// empty agg/verify on the column-store layout (the structure walks never
// needed them); GetByPre/VisitByPre reattach them.
//
// Mutations (DESIGN.md §12): PrepareMutation journals a validated plan
// durably ("<path>.journal", written tmp+rename+fsync); CommitMutation
// applies it (erase range, pre/post shift, upserts), bumps the committed
// version, syncs, and drops the journal; AbortMutation drops it unapplied.
// A store reopened with a journal present surfaces the undecided txn in
// GetMutationState().pending_txn for the coordinator's recovery sweep.
//
// Thread-safe for serving (DESIGN.md §7): lookups and scans take a shared
// lock (tree structure is immutable while serving; the buffer pool latches
// its own frame table underneath), Insert/Flush/mutations take an exclusive
// one.

#ifndef SSDB_STORAGE_TABLE_H_
#define SSDB_STORAGE_TABLE_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>

#include "colstore/column_store.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/heap_file.h"
#include "storage/mutation.h"
#include "storage/node_store.h"
#include "storage/pager.h"

namespace ssdb::storage {

struct DiskStoreOptions {
  size_t buffer_pool_pages = 1024;  // 4 MiB of cache
};

class DiskNodeStore : public NodeStore {
 public:
  // Creates a new database file (fails if it already contains data) or opens
  // an existing one.
  static StatusOr<std::unique_ptr<DiskNodeStore>> Create(
      const std::string& path, const DiskStoreOptions& options = {});
  static StatusOr<std::unique_ptr<DiskNodeStore>> Open(
      const std::string& path, const DiskStoreOptions& options = {});

  ~DiskNodeStore() override;

  Status Insert(const NodeRow& row) override;
  StatusOr<NodeRow> GetByPre(uint32_t pre) override;
  StatusOr<NodeRow> GetRoot() override;
  StatusOr<std::vector<NodeRow>> GetChildren(uint32_t parent_pre) override;
  Status ScanDescendants(
      uint32_t pre, uint32_t post,
      const std::function<bool(const NodeRow&)>& fn) override;
  StatusOr<uint64_t> NodeCount() override;
  StatusOr<StorageStats> Stats() override;
  Status Flush() override;

  StatusOr<ColumnBlobs> GetColumns(uint32_t pre) override;
  StatusOr<MutationState> GetMutationState() override;
  Status PrepareMutation(uint64_t txn, const MutationPlan& plan) override;
  Status CommitMutation(uint64_t txn) override;
  Status AbortMutation(uint64_t txn) override;

  const BufferPoolStats& buffer_stats() const { return pool_->stats(); }
  // Column-store footprint; zero stats on a pre-§12 (in-row blob) database.
  colstore::ColumnStoreStats column_stats() const;

 private:
  DiskNodeStore() = default;

  Status SaveRoots();
  StatusOr<NodeRow> FetchRow(RecordId rid);
  // Reattaches column-store blobs onto a fetched row (no-op on the in-row
  // layout). Caller holds mu_.
  Status AttachColumns(NodeRow* row);
  // Removes the row at `pre` (heap record, all three index entries, its
  // column-store blobs) — caller holds mu_ exclusively.
  Status EraseRowLocked(uint32_t pre);
  // Inserts without taking mu_ (shared body of Insert and ApplyPlan).
  Status InsertLocked(const NodeRow& row);
  // Applies a validated plan: erase range -> shift -> upserts.
  Status ApplyPlanLocked(const MutationPlan& plan);
  std::string JournalPath() const;
  Status WriteJournalLocked(uint64_t txn, const MutationPlan& plan);

  // Reads shared, Insert/Flush exclusive; taken before the buffer-pool
  // latch, never after (DESIGN.md §7 lock order).
  mutable std::shared_mutex mu_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::optional<Catalog> catalog_;
  std::optional<HeapFile> heap_;
  std::optional<BTree> pre_index_;
  std::optional<BTree> parent_index_;
  std::optional<BTree> post_index_;
  // Null on a pre-§12 database (blobs in-row); always present on stores
  // created since.
  std::unique_ptr<colstore::ColumnStore> columns_;
  std::string path_;
  uint64_t node_count_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t structure_bytes_ = 0;

  // Mutation state (DESIGN.md §12), persisted in the catalog.
  uint64_t version_ = 0;
  uint64_t next_nonce_ = 0;
  // Journaled-but-undecided txn; 0 when none. Loaded back from the journal
  // file on open, so a crash between phases is visible to recovery.
  uint64_t pending_txn_ = 0;
  MutationPlan pending_plan_;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_TABLE_H_
