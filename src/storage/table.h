// DiskNodeStore: the paged, persistent implementation of the polynomial
// table — heap file for rows plus three B+tree indexes (pre, parent, post),
// mirroring the paper's MySQL schema and indexes (§5.1).
//
// Index encodings:
//   pre index    : key = pre,                         value = record id
//   parent index : key = (parent << 32) | pre,        value = record id
//   post index   : key = (post << 32) | pre,          value = record id
//
// Thread-safe for serving (DESIGN.md §7): lookups and scans take a shared
// lock (tree structure is immutable while serving; the buffer pool latches
// its own frame table underneath), Insert/Flush take an exclusive one.

#ifndef SSDB_STORAGE_TABLE_H_
#define SSDB_STORAGE_TABLE_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>

#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/heap_file.h"
#include "storage/node_store.h"
#include "storage/pager.h"

namespace ssdb::storage {

struct DiskStoreOptions {
  size_t buffer_pool_pages = 1024;  // 4 MiB of cache
};

class DiskNodeStore : public NodeStore {
 public:
  // Creates a new database file (fails if it already contains data) or opens
  // an existing one.
  static StatusOr<std::unique_ptr<DiskNodeStore>> Create(
      const std::string& path, const DiskStoreOptions& options = {});
  static StatusOr<std::unique_ptr<DiskNodeStore>> Open(
      const std::string& path, const DiskStoreOptions& options = {});

  ~DiskNodeStore() override;

  Status Insert(const NodeRow& row) override;
  StatusOr<NodeRow> GetByPre(uint32_t pre) override;
  StatusOr<NodeRow> GetRoot() override;
  StatusOr<std::vector<NodeRow>> GetChildren(uint32_t parent_pre) override;
  Status ScanDescendants(
      uint32_t pre, uint32_t post,
      const std::function<bool(const NodeRow&)>& fn) override;
  StatusOr<uint64_t> NodeCount() override;
  StatusOr<StorageStats> Stats() override;
  Status Flush() override;

  const BufferPoolStats& buffer_stats() const { return pool_->stats(); }

 private:
  DiskNodeStore() = default;

  Status SaveRoots();
  StatusOr<NodeRow> FetchRow(RecordId rid);

  // Reads shared, Insert/Flush exclusive; taken before the buffer-pool
  // latch, never after (DESIGN.md §7 lock order).
  mutable std::shared_mutex mu_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::optional<Catalog> catalog_;
  std::optional<HeapFile> heap_;
  std::optional<BTree> pre_index_;
  std::optional<BTree> parent_index_;
  std::optional<BTree> post_index_;
  uint64_t node_count_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t structure_bytes_ = 0;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_TABLE_H_
