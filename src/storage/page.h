// Fixed-size page primitives shared by the pager, buffer pool, heap file and
// B+tree. Every on-disk structure reserves a common 8-byte header:
//   [0..4)  checksum over bytes [4..kPageSize)  (maintained by BufferPool)
//   [4..6)  page type (PageType)
//   [6..8)  reserved
// All multi-byte integers are little-endian.

#ifndef SSDB_STORAGE_PAGE_H_
#define SSDB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace ssdb::storage {

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageHeaderSize = 8;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

using PageBuf = std::array<uint8_t, kPageSize>;

enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,
  kHeap = 2,
  kBTreeLeaf = 3,
  kBTreeInternal = 4,
  kCatalog = 5,
  kColumnBlob = 6,  // column-store blob page, possibly chained (DESIGN.md §12)
};

inline void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
inline void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

inline void SetPageType(uint8_t* page, PageType type) {
  StoreU16(page + 4, static_cast<uint16_t>(type));
}
inline PageType GetPageType(const uint8_t* page) {
  return static_cast<PageType>(LoadU16(page + 4));
}

// FNV-1a over the page body (bytes 4..end); cheap and adequate for
// detecting torn writes / corruption in tests.
uint32_t PageChecksum(const uint8_t* page);

// Computes and stores the checksum into bytes [0..4).
void SealPage(uint8_t* page);

// True if the stored checksum matches (all-zero pages are accepted as fresh).
bool VerifyPage(const uint8_t* page);

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_PAGE_H_
