#include "storage/heap_file.h"

#include "util/logging.h"

namespace ssdb::storage {
namespace {

constexpr size_t kSlotCountOff = 8;
constexpr size_t kFreeEndOff = 10;
constexpr size_t kNextPageOff = 12;
constexpr size_t kSlotArrayOff = 16;
constexpr uint16_t kDeletedOffset = 0xffff;

uint16_t SlotCount(const uint8_t* page) { return LoadU16(page + kSlotCountOff); }
uint16_t FreeEnd(const uint8_t* page) { return LoadU16(page + kFreeEndOff); }
PageId NextPage(const uint8_t* page) { return LoadU32(page + kNextPageOff); }

void InitHeapPage(uint8_t* page) {
  SetPageType(page, PageType::kHeap);
  StoreU16(page + kSlotCountOff, 0);
  StoreU16(page + kFreeEndOff, static_cast<uint16_t>(kPageSize));
  StoreU32(page + kNextPageOff, kInvalidPageId);
}

size_t FreeSpace(const uint8_t* page) {
  size_t slots_end = kSlotArrayOff + 4 * static_cast<size_t>(SlotCount(page));
  size_t free_end = FreeEnd(page);
  return free_end > slots_end ? free_end - slots_end : 0;
}

}  // namespace

StatusOr<HeapFile> HeapFile::Create(BufferPool* pool) {
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool->NewPage());
  InitHeapPage(page.data());
  page.MarkDirty();
  return HeapFile(pool, page.id(), page.id());
}

StatusOr<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page,
                                  PageId last_page) {
  return HeapFile(pool, first_page, last_page);
}

StatusOr<RecordId> HeapFile::Append(std::string_view record) {
  // 4 slot bytes + payload must fit alongside the page header.
  if (record.size() + 4 > kPageSize - kSlotArrayOff) {
    return Status::InvalidArgument(
        "record too large for heap page: " + std::to_string(record.size()) +
        " bytes (polynomial fields larger than ~2^15 need overflow pages, "
        "which this engine does not implement)");
  }
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(last_page_));
  if (FreeSpace(page.data()) < record.size() + 4) {
    // Chain a fresh page.
    SSDB_ASSIGN_OR_RETURN(PageHandle fresh, pool_->NewPage());
    InitHeapPage(fresh.data());
    fresh.MarkDirty();
    StoreU32(page.data() + kNextPageOff, fresh.id());
    page.MarkDirty();
    last_page_ = fresh.id();
    page = std::move(fresh);
  }

  uint8_t* data = page.data();
  uint16_t slot = SlotCount(data);
  uint16_t free_end = FreeEnd(data);
  uint16_t offset = static_cast<uint16_t>(free_end - record.size());
  std::memcpy(data + offset, record.data(), record.size());
  StoreU16(data + kSlotArrayOff + 4 * slot, offset);
  StoreU16(data + kSlotArrayOff + 4 * slot + 2,
           static_cast<uint16_t>(record.size()));
  StoreU16(data + kSlotCountOff, static_cast<uint16_t>(slot + 1));
  StoreU16(data + kFreeEndOff, offset);
  page.MarkDirty();
  return MakeRecordId(page.id(), slot);
}

StatusOr<std::string> HeapFile::Get(RecordId rid) const {
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(RecordPage(rid)));
  const uint8_t* data = page.data();
  if (GetPageType(data) != PageType::kHeap) {
    return Status::Corruption("record id points at a non-heap page");
  }
  uint16_t slot = RecordSlot(rid);
  if (slot >= SlotCount(data)) {
    return Status::NotFound("no such slot in heap page");
  }
  uint16_t offset = LoadU16(data + kSlotArrayOff + 4 * slot);
  uint16_t length = LoadU16(data + kSlotArrayOff + 4 * slot + 2);
  if (offset == kDeletedOffset) {
    return Status::NotFound("record was deleted");
  }
  if (offset + static_cast<size_t>(length) > kPageSize) {
    return Status::Corruption("slot extends past page end");
  }
  return std::string(reinterpret_cast<const char*>(data + offset), length);
}

Status HeapFile::Delete(RecordId rid) {
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(RecordPage(rid)));
  uint8_t* data = page.data();
  uint16_t slot = RecordSlot(rid);
  if (slot >= SlotCount(data)) {
    return Status::NotFound("no such slot in heap page");
  }
  if (LoadU16(data + kSlotArrayOff + 4 * slot) == kDeletedOffset) {
    return Status::NotFound("record already deleted");
  }
  // Tombstone the slot; space is reclaimed only by offline compaction,
  // which the encode-once workload never needs.
  StoreU16(data + kSlotArrayOff + 4 * slot, kDeletedOffset);
  page.MarkDirty();
  return Status::OK();
}

Status HeapFile::Scan(
    const std::function<bool(RecordId, std::string_view)>& fn) const {
  PageId current = first_page_;
  while (current != kInvalidPageId) {
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(current));
    const uint8_t* data = page.data();
    uint16_t count = SlotCount(data);
    for (uint16_t slot = 0; slot < count; ++slot) {
      uint16_t offset = LoadU16(data + kSlotArrayOff + 4 * slot);
      uint16_t length = LoadU16(data + kSlotArrayOff + 4 * slot + 2);
      if (offset == kDeletedOffset) continue;
      std::string_view record(reinterpret_cast<const char*>(data + offset),
                              length);
      if (!fn(MakeRecordId(current, slot), record)) return Status::OK();
    }
    current = NextPage(data);
  }
  return Status::OK();
}

StatusOr<uint64_t> HeapFile::PageCount() const {
  uint64_t count = 0;
  PageId current = first_page_;
  while (current != kInvalidPageId) {
    ++count;
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(current));
    current = NextPage(page.data());
  }
  return count;
}

}  // namespace ssdb::storage
