// LRU buffer pool over the pager. Thread-safe for the concurrent server
// (DESIGN.md §7): a single internal latch serializes frame-table mutations
// (lookup/pin/unpin/evict), which are short; page *bytes* are read outside
// the latch through pinned frames, whose storage never moves (the frame
// vector's capacity is reserved up front) and which eviction cannot touch
// while pinned. Writes (encode time) are single-threaded by contract.
//
// Pages are pinned through RAII PageHandles; checksums are sealed on flush
// and verified on load.

#ifndef SSDB_STORAGE_BUFFER_POOL_H_
#define SSDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/pager.h"
#include "util/statusor.h"

namespace ssdb::storage {

class BufferPool;

// Pinned page reference; unpins on destruction. MarkDirty() must be called
// after mutating the page bytes.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame, PageId id);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  uint8_t* data();
  const uint8_t* data() const;
  void MarkDirty();

 private:
  void Release();

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
};

class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Fetches (pinning) an existing page.
  StatusOr<PageHandle> Fetch(PageId id);

  // Allocates a fresh zeroed page and pins it.
  StatusOr<PageHandle> NewPage();

  // Writes back all dirty pages (does not fsync; see Pager::Sync).
  Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  Pager* pager() { return pager_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageBuf buf;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    uint64_t last_used = 0;
  };

  StatusOr<size_t> GetFrame(PageId id, bool load);
  Status EvictOne();
  Status FlushFrame(Frame* frame);
  void Unpin(size_t frame);

  Pager* pager_;
  size_t capacity_;
  // Guards every member below (DESIGN.md §7). Held across page loads for
  // simplicity — misses serialize, warm-cache hits are short critical
  // sections. Innermost lock in the server stack; never held while calling
  // out of the pool.
  std::mutex latch_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  uint64_t clock_ = 0;
  BufferPoolStats stats_;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_BUFFER_POOL_H_
