// File-backed page manager: allocation, free list, raw page IO, and a meta
// page (page 0) with a small number of user slots in which higher layers
// (catalog) persist their roots.

#ifndef SSDB_STORAGE_PAGER_H_
#define SSDB_STORAGE_PAGER_H_

#include <memory>
#include <string>

#include "storage/page.h"
#include "util/statusor.h"

namespace ssdb::storage {

inline constexpr int kMetaUserSlots = 16;

class Pager {
 public:
  // Opens or creates a database file. A fresh file gets an initialized meta
  // page; an existing file is validated (magic + version + checksum).
  static StatusOr<std::unique_ptr<Pager>> Open(const std::string& path,
                                               bool create_if_missing);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  Status ReadPage(PageId id, PageBuf* buf);
  Status WritePage(PageId id, const PageBuf& buf);

  // Returns a zeroed page, reusing the free list when possible.
  StatusOr<PageId> AllocatePage();
  Status FreePage(PageId id);

  // Total pages including meta.
  uint32_t page_count() const { return page_count_; }
  uint64_t file_bytes() const {
    return static_cast<uint64_t>(page_count_) * kPageSize;
  }

  uint64_t GetMetaSlot(int slot) const;
  Status SetMetaSlot(int slot, uint64_t value);

  // Flushes the meta page and fsyncs the file.
  Status Sync();

 private:
  Pager() = default;

  Status FlushMeta();

  int fd_ = -1;
  std::string path_;
  uint32_t page_count_ = 0;
  PageId free_list_head_ = kInvalidPageId;
  uint64_t meta_slots_[kMetaUserSlots] = {};
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_PAGER_H_
