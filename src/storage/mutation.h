// A fully planned per-slice mutation (DESIGN.md §12): the client's Mutator
// (src/encode/reshare.h) turns one INSERT/UPDATE/DELETE into m of these —
// one per share slice — and each slice store applies its own through the
// two-phase PrepareMutation/CommitMutation protocol. A plan is pure data:
// the store applying it needs no PRG, no field arithmetic, and learns
// nothing beyond which pre positions moved.
//
// Apply order (the only order that keeps the B-tree keys collision-free):
//   1. erase every row with pre in [erase_lo, erase_hi]   (DELETE subtree)
//   2. shift every remaining row with pre > shift_pre_gt by shift_delta
//      (pre and post together; parent too when parent > shift_pre_gt)
//   3. upsert the re-shared rows (root-path nodes + inserted subtree)
// A row shifted for the first time records its original pre in `nonce`, so
// its unchanged shares stay addressable under the PRG position they were
// drawn at.

#ifndef SSDB_STORAGE_MUTATION_H_
#define SSDB_STORAGE_MUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/node_store.h"
#include "util/statusor.h"

namespace ssdb::storage {

enum class MutationKind : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
};

const char* MutationKindName(MutationKind kind);

struct MutationPlan {
  MutationKind kind = MutationKind::kUpdate;
  // Committed version this plan was computed against; the txn it commits as
  // is base_version + 1, and prepare rejects any other base (a concurrent
  // writer lost the race and must re-plan).
  uint64_t base_version = 0;
  // Fresh-nonce watermark after this plan commits (every nonce consumed by
  // the plan's upserts is below it). Must not move backwards.
  uint64_t next_nonce = 0;
  // Inclusive pre range to erase (a deleted subtree); lo > hi means none.
  uint32_t erase_lo = 1;
  uint32_t erase_hi = 0;
  // After erasing: rows with pre > shift_pre_gt move by shift_delta
  // (0 delta = no shift).
  uint32_t shift_pre_gt = 0;
  int64_t shift_delta = 0;
  // Re-shared rows, replacing any existing row at the same pre (after the
  // shift). Root-path nodes carry fresh nonces; an inserted subtree's rows
  // land in the pre gap the shift opened.
  std::vector<NodeRow> upserts;

  bool operator==(const MutationPlan& other) const;
};

// Wire/journal format: varint kind, base_version, next_nonce, erase_lo,
// erase_hi, shift_pre_gt, zigzag shift_delta, upsert count, then one
// length-prefixed EncodeNodeRow per upsert. Decode is count-bomb safe (the
// declared count is checked against the remaining bytes) and rejects
// trailing bytes.
std::string EncodeMutationPlan(const MutationPlan& plan);
StatusOr<MutationPlan> DecodeMutationPlan(std::string_view data);

// Structural sanity independent of any store state: known kind, a txn
// window that fits, nonce watermark inside the PRG's mutation-nonce space,
// a sane erase range, upsert rows with nonzero pre. Stores run this before
// journaling so a corrupt or adversarial plan is refused at prepare.
Status ValidateMutationPlan(const MutationPlan& plan);

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_MUTATION_H_
