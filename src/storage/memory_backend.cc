#include "storage/memory_backend.h"

#include <mutex>

namespace ssdb::storage {

Status MemoryNodeStore::Insert(const NodeRow& row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (row.pre == 0) {
    return Status::InvalidArgument("pre numbering starts at 1");
  }
  if (rows_.count(row.pre) > 0) {
    return Status::AlreadyExists("duplicate pre value " +
                                 std::to_string(row.pre));
  }
  std::string encoded = EncodeNodeRow(row);
  payload_bytes_ += encoded.size();
  structure_bytes_ += encoded.size() - row.share.size();
  if (row.parent == 0) {
    if (root_pre_ != 0) {
      return Status::AlreadyExists("second root row inserted");
    }
    root_pre_ = row.pre;
  }
  children_[row.parent].push_back(row.pre);
  rows_.emplace(row.pre, row);
  return Status::OK();
}

StatusOr<NodeRow> MemoryNodeStore::GetByPre(uint32_t pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(pre);
  if (it == rows_.end()) {
    return Status::NotFound("no row with pre " + std::to_string(pre));
  }
  return it->second;
}

Status MemoryNodeStore::VisitByPre(
    uint32_t pre, const std::function<void(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(pre);
  if (it == rows_.end()) {
    return Status::NotFound("no row with pre " + std::to_string(pre));
  }
  fn(it->second);
  return Status::OK();
}

StatusOr<NodeRow> MemoryNodeStore::GetRoot() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (root_pre_ == 0) return Status::NotFound("no root row");
  return rows_.at(root_pre_);
}

StatusOr<std::vector<NodeRow>> MemoryNodeStore::GetChildren(
    uint32_t parent_pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<NodeRow> out;
  auto it = children_.find(parent_pre);
  if (it == children_.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t pre : it->second) {
    out.push_back(rows_.at(pre));
  }
  return out;
}

Status MemoryNodeStore::VisitChildren(
    uint32_t parent_pre, const std::function<void(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = children_.find(parent_pre);
  if (it == children_.end()) return Status::OK();
  for (uint32_t pre : it->second) {
    fn(rows_.at(pre));
  }
  return Status::OK();
}

Status MemoryNodeStore::ScanDescendants(
    uint32_t pre, uint32_t post,
    const std::function<bool(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto it = rows_.upper_bound(pre); it != rows_.end(); ++it) {
    if (it->second.post > post) break;  // left the subtree
    if (!fn(it->second)) break;
  }
  return Status::OK();
}

StatusOr<uint64_t> MemoryNodeStore::NodeCount() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rows_.size();
}

StatusOr<StorageStats> MemoryNodeStore::Stats() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  StorageStats stats;
  stats.node_count = rows_.size();
  stats.payload_bytes = payload_bytes_;
  stats.structure_bytes = structure_bytes_;
  stats.data_bytes = payload_bytes_;
  stats.index_bytes = 0;
  stats.file_bytes = 0;
  return stats;
}

}  // namespace ssdb::storage
