#include "storage/memory_backend.h"

#include <algorithm>
#include <mutex>

#include "prg/prg.h"

namespace ssdb::storage {

Status MemoryNodeStore::Insert(const NodeRow& row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (row.pre == 0) {
    return Status::InvalidArgument("pre numbering starts at 1");
  }
  if (rows_.count(row.pre) > 0) {
    return Status::AlreadyExists("duplicate pre value " +
                                 std::to_string(row.pre));
  }
  std::string encoded = EncodeNodeRow(row);
  payload_bytes_ += encoded.size();
  structure_bytes_ += encoded.size() - row.share.size();
  if (row.parent == 0) {
    if (root_pre_ != 0) {
      return Status::AlreadyExists("second root row inserted");
    }
    root_pre_ = row.pre;
  }
  children_[row.parent].push_back(row.pre);
  rows_.emplace(row.pre, row);
  return Status::OK();
}

StatusOr<NodeRow> MemoryNodeStore::GetByPre(uint32_t pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(pre);
  if (it == rows_.end()) {
    return Status::NotFound("no row with pre " + std::to_string(pre));
  }
  return it->second;
}

Status MemoryNodeStore::VisitByPre(
    uint32_t pre, const std::function<void(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(pre);
  if (it == rows_.end()) {
    return Status::NotFound("no row with pre " + std::to_string(pre));
  }
  fn(it->second);
  return Status::OK();
}

StatusOr<NodeRow> MemoryNodeStore::GetRoot() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (root_pre_ == 0) return Status::NotFound("no root row");
  return rows_.at(root_pre_);
}

StatusOr<std::vector<NodeRow>> MemoryNodeStore::GetChildren(
    uint32_t parent_pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<NodeRow> out;
  auto it = children_.find(parent_pre);
  if (it == children_.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t pre : it->second) {
    out.push_back(rows_.at(pre));
  }
  return out;
}

Status MemoryNodeStore::VisitChildren(
    uint32_t parent_pre, const std::function<void(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = children_.find(parent_pre);
  if (it == children_.end()) return Status::OK();
  for (uint32_t pre : it->second) {
    fn(rows_.at(pre));
  }
  return Status::OK();
}

Status MemoryNodeStore::ScanDescendants(
    uint32_t pre, uint32_t post,
    const std::function<bool(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto it = rows_.upper_bound(pre); it != rows_.end(); ++it) {
    if (it->second.post > post) break;  // left the subtree
    if (!fn(it->second)) break;
  }
  return Status::OK();
}

StatusOr<uint64_t> MemoryNodeStore::NodeCount() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rows_.size();
}

StatusOr<StorageStats> MemoryNodeStore::Stats() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  StorageStats stats;
  stats.node_count = rows_.size();
  stats.payload_bytes = payload_bytes_;
  stats.structure_bytes = structure_bytes_;
  stats.data_bytes = payload_bytes_;
  stats.index_bytes = 0;
  stats.file_bytes = 0;
  return stats;
}

// --- Two-phase mutation protocol (DESIGN.md §12) -----------------------------

StatusOr<MutationState> MemoryNodeStore::GetMutationState() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MutationState state;
  state.version = version_;
  state.next_nonce = std::max(next_nonce_, prg::kFirstMutationNonce);
  state.pending_txn = pending_txn_;
  return state;
}

Status MemoryNodeStore::PrepareMutation(uint64_t txn,
                                        const MutationPlan& plan) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (version_ >= txn) return Status::OK();  // already committed; idempotent
  SSDB_RETURN_IF_ERROR(ValidateMutationPlan(plan));
  if (plan.base_version != version_) {
    return Status::FailedPrecondition(
        "mutation planned against version " +
        std::to_string(plan.base_version) + " but the store is at version " +
        std::to_string(version_) + " (re-plan and retry)");
  }
  if (txn != plan.base_version + 1) {
    return Status::InvalidArgument("mutation txn must be base_version + 1");
  }
  if (pending_txn_ != 0 && pending_txn_ != txn) {
    return Status::FailedPrecondition(
        "another mutation (txn " + std::to_string(pending_txn_) +
        ") is prepared and undecided");
  }
  if (plan.next_nonce < next_nonce_) {
    return Status::InvalidArgument(
        "mutation nonce watermark moves backwards");
  }
  pending_txn_ = txn;
  pending_plan_ = plan;
  return Status::OK();
}

Status MemoryNodeStore::CommitMutation(uint64_t txn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (version_ >= txn) return Status::OK();  // idempotent re-drive
  if (pending_txn_ != txn) {
    return Status::FailedPrecondition(
        "no prepared mutation for txn " + std::to_string(txn));
  }
  SSDB_RETURN_IF_ERROR(ApplyPlanLocked(pending_plan_));
  version_ = txn;
  next_nonce_ = std::max(next_nonce_, pending_plan_.next_nonce);
  pending_txn_ = 0;
  pending_plan_ = MutationPlan();
  return Status::OK();
}

Status MemoryNodeStore::AbortMutation(uint64_t txn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (pending_txn_ == txn) {
    pending_txn_ = 0;
    pending_plan_ = MutationPlan();
    return Status::OK();
  }
  if (version_ >= txn) {
    return Status::FailedPrecondition(
        "txn " + std::to_string(txn) + " already committed; cannot abort");
  }
  return Status::OK();
}

Status MemoryNodeStore::ApplyPlanLocked(const MutationPlan& plan) {
  auto drop_bytes = [&](const NodeRow& row) {
    std::string encoded = EncodeNodeRow(row);
    payload_bytes_ -= encoded.size();
    structure_bytes_ -= encoded.size() - row.share.size();
  };
  auto add_bytes = [&](const NodeRow& row) {
    std::string encoded = EncodeNodeRow(row);
    payload_bytes_ += encoded.size();
    structure_bytes_ += encoded.size() - row.share.size();
  };

  // 1. Erase the deleted subtree's pre range.
  if (plan.erase_lo <= plan.erase_hi) {
    auto it = rows_.lower_bound(plan.erase_lo);
    while (it != rows_.end() && it->first <= plan.erase_hi) {
      drop_bytes(it->second);
      it = rows_.erase(it);
    }
  }

  // 2. Shift the tail (see storage/mutation.h): pull the moving rows out of
  // the map first so the re-keyed range never collides with itself.
  if (plan.shift_delta != 0) {
    std::vector<NodeRow> moved;
    auto it = rows_.upper_bound(plan.shift_pre_gt);
    while (it != rows_.end()) {
      moved.push_back(std::move(it->second));
      it = rows_.erase(it);
    }
    for (NodeRow& row : moved) {
      drop_bytes(row);
      if (row.nonce == 0) row.nonce = row.pre;
      row.pre = static_cast<uint32_t>(row.pre + plan.shift_delta);
      row.post = static_cast<uint32_t>(row.post + plan.shift_delta);
      if (row.parent > plan.shift_pre_gt) {
        row.parent = static_cast<uint32_t>(row.parent + plan.shift_delta);
      }
      add_bytes(row);
      rows_.emplace(row.pre, std::move(row));
    }
  }

  // 3. Upsert the re-shared rows.
  for (const NodeRow& row : plan.upserts) {
    auto it = rows_.find(row.pre);
    if (it != rows_.end()) {
      drop_bytes(it->second);
      rows_.erase(it);
    }
    add_bytes(row);
    rows_.emplace(row.pre, row);
  }

  // Rebuild the derived structures wholesale — mutations move whole pre
  // ranges, and the memory backend's job is to be obviously correct.
  children_.clear();
  root_pre_ = 0;
  for (const auto& [pre, row] : rows_) {
    children_[row.parent].push_back(pre);
    if (row.parent == 0) root_pre_ = pre;
  }
  return Status::OK();
}

}  // namespace ssdb::storage
