// Tiny persistent catalog: named u64 values (index roots, heap page ids, row
// counts, field parameters) serialized into a dedicated page. The catalog's
// own page id lives in pager meta slot 0.

#ifndef SSDB_STORAGE_CATALOG_H_
#define SSDB_STORAGE_CATALOG_H_

#include <map>
#include <string>

#include "storage/buffer_pool.h"
#include "util/statusor.h"

namespace ssdb::storage {

class Catalog {
 public:
  // Creates an empty catalog on a fresh page.
  static StatusOr<Catalog> Create(BufferPool* pool);
  // Loads an existing catalog page.
  static StatusOr<Catalog> Load(BufferPool* pool, PageId page);

  PageId page() const { return page_; }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  StatusOr<uint64_t> Get(const std::string& key) const;
  uint64_t GetOr(const std::string& key, uint64_t fallback) const;
  void Set(const std::string& key, uint64_t value);

  // Writes the catalog back to its page. Fails if the encoded size exceeds
  // one page (the schema here needs ~10 entries).
  Status Save();

 private:
  Catalog(BufferPool* pool, PageId page) : pool_(pool), page_(page) {}

  BufferPool* pool_;
  PageId page_;
  std::map<std::string, uint64_t> values_;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_CATALOG_H_
