// Disk-backed B+tree with u64 keys and u64 values — the index structure the
// paper puts on the pre, post and parent columns ("the pre, post and parent
// fields are indexed by a B-tree", §5.1).
//
// Duplicate logical keys (many nodes share a parent) are handled by the
// caller packing composite keys: (column_value << 32) | pre, then range
// scanning [v << 32, (v+1) << 32).
//
// Leaf page layout after the common 8-byte header:
//   [8..10)  count
//   [12..16) next_leaf
//   [16..)   entries: {u64 key, u64 value} * count       (16 bytes each)
// Internal page layout:
//   [8..10)  count
//   [12..16) child[0]
//   [16..)   entries: {u64 key, u32 child} * count       (12 bytes each)
// Keys in internal entry i separate child[i] (< key) from child[i+1] (>= key).
//
// Deletion removes leaf entries without rebalancing (the encode-once,
// query-many workload never shrinks); lookups and scans stay correct on
// sparse leaves.

#ifndef SSDB_STORAGE_BTREE_H_
#define SSDB_STORAGE_BTREE_H_

#include <functional>

#include "storage/buffer_pool.h"
#include "util/statusor.h"

namespace ssdb::storage {

class BTree {
 public:
  // Creates an empty tree (a single empty leaf) and returns it.
  static StatusOr<BTree> Create(BufferPool* pool);

  // Attaches to an existing tree root.
  static BTree Open(BufferPool* pool, PageId root);

  // Current root; persists in the catalog — it changes when the root splits.
  PageId root() const { return root_; }

  // Inserts a new key. AlreadyExists if the key is present.
  Status Insert(uint64_t key, uint64_t value);

  // Inserts or overwrites.
  Status Upsert(uint64_t key, uint64_t value);

  StatusOr<uint64_t> Get(uint64_t key) const;
  bool Contains(uint64_t key) const;

  // Removes a key; NotFound if absent.
  Status Delete(uint64_t key);

  // Visits entries with lo <= key < hi in key order; callback returns false
  // to stop early.
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t key, uint64_t value)>& fn)
      const;

  // Number of entries (full leaf walk).
  StatusOr<uint64_t> Count() const;

  // Pages reachable from the root (for index-size accounting, fig. 4).
  StatusOr<uint64_t> PageCount() const;

 private:
  BTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  struct SplitResult {
    bool did_split = false;
    uint64_t promoted_key = 0;
    PageId right = kInvalidPageId;
  };

  StatusOr<SplitResult> InsertRec(PageId page_id, uint64_t key,
                                  uint64_t value, bool upsert);
  // Descends to the leaf that would contain `key`.
  StatusOr<PageId> FindLeaf(uint64_t key) const;

  BufferPool* pool_;
  PageId root_;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_BTREE_H_
