#include "storage/catalog.h"

#include "util/varint.h"

namespace ssdb::storage {

StatusOr<Catalog> Catalog::Create(BufferPool* pool) {
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool->NewPage());
  SetPageType(page.data(), PageType::kCatalog);
  page.MarkDirty();
  Catalog catalog(pool, page.id());
  return catalog;
}

StatusOr<Catalog> Catalog::Load(BufferPool* pool, PageId page_id) {
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool->Fetch(page_id));
  const uint8_t* data = page.data();
  if (GetPageType(data) != PageType::kCatalog) {
    return Status::Corruption("catalog page has wrong type");
  }
  Catalog catalog(pool, page_id);
  // Payload: varint entry count, then {length-prefixed key, varint value}.
  std::string_view payload(
      reinterpret_cast<const char*>(data + kPageHeaderSize),
      kPageSize - kPageHeaderSize);
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&payload, &count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view key;
    uint64_t value = 0;
    SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &key));
    SSDB_RETURN_IF_ERROR(GetVarint64(&payload, &value));
    catalog.values_[std::string(key)] = value;
  }
  return catalog;
}

StatusOr<uint64_t> Catalog::Get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("catalog key missing: " + key);
  }
  return it->second;
}

uint64_t Catalog::GetOr(const std::string& key, uint64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

void Catalog::Set(const std::string& key, uint64_t value) {
  values_[key] = value;
}

Status Catalog::Save() {
  std::string payload;
  PutVarint64(&payload, values_.size());
  for (const auto& [key, value] : values_) {
    PutLengthPrefixed(&payload, key);
    PutVarint64(&payload, value);
  }
  if (payload.size() > kPageSize - kPageHeaderSize) {
    return Status::InvalidArgument("catalog exceeds one page");
  }
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(page_));
  uint8_t* data = page.data();
  SetPageType(data, PageType::kCatalog);
  std::memset(data + kPageHeaderSize, 0, kPageSize - kPageHeaderSize);
  std::memcpy(data + kPageHeaderSize, payload.data(), payload.size());
  page.MarkDirty();
  return Status::OK();
}

}  // namespace ssdb::storage
