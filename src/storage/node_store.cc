#include "storage/node_store.h"

#include "util/varint.h"

namespace ssdb::storage {

std::string EncodeNodeRow(const NodeRow& row) {
  std::string out;
  PutVarint64(&out, row.pre);
  PutVarint64(&out, row.post);
  PutVarint64(&out, row.parent);
  PutLengthPrefixed(&out, row.share);
  PutLengthPrefixed(&out, row.sealed);
  // Trailing optional fields: omitted entirely when empty so rows without
  // aggregate columns keep their pre-§8 byte layout. The verification track
  // is positional after agg, so writing it forces the agg field out too
  // (a verify blob without aggregate columns cannot be encoded — the
  // encoder never produces one).
  // The nonce (DESIGN.md §12) is positional after verify, so writing it
  // forces both optional blob fields out (possibly empty).
  if (!row.agg.empty() || !row.verify.empty() || row.nonce != 0) {
    PutLengthPrefixed(&out, row.agg);
  }
  if (!row.verify.empty() || row.nonce != 0) {
    PutLengthPrefixed(&out, row.verify);
  }
  if (row.nonce != 0) {
    PutVarint64(&out, row.nonce);
  }
  return out;
}

StatusOr<NodeRow> DecodeNodeRow(std::string_view data) {
  NodeRow row;
  uint64_t v = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
  row.pre = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
  row.post = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
  row.parent = static_cast<uint32_t>(v);
  std::string_view share;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &share));
  row.share = std::string(share);
  std::string_view sealed;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &sealed));
  row.sealed = std::string(sealed);
  if (!data.empty()) {
    std::string_view agg;
    SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &agg));
    row.agg = std::string(agg);
  }
  if (!data.empty()) {
    std::string_view verify;
    SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &verify));
    row.verify = std::string(verify);
  }
  if (!data.empty()) {
    SSDB_RETURN_IF_ERROR(GetVarint64(&data, &row.nonce));
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes after node row");
  }
  return row;
}

}  // namespace ssdb::storage
