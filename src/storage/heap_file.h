// Slotted-page heap file for variable-length records (the serialized
// polynomial rows). Records are addressed by RecordId = (page << 16) | slot.
//
// Page layout after the common 8-byte header:
//   [8..10)  slot_count
//   [10..12) free_end   (offset where the cell area begins; cells grow down)
//   [12..16) next_page  (singly-linked list for full scans)
//   [16..)   slot array: per slot {u16 offset, u16 length}; offset 0xffff
//            marks a deleted slot.

#ifndef SSDB_STORAGE_HEAP_FILE_H_
#define SSDB_STORAGE_HEAP_FILE_H_

#include <functional>
#include <string>
#include <string_view>

#include "storage/buffer_pool.h"
#include "util/statusor.h"

namespace ssdb::storage {

using RecordId = uint64_t;
inline constexpr RecordId kInvalidRecordId = ~0ULL;

inline RecordId MakeRecordId(PageId page, uint16_t slot) {
  return (static_cast<uint64_t>(page) << 16) | slot;
}
inline PageId RecordPage(RecordId rid) {
  return static_cast<PageId>(rid >> 16);
}
inline uint16_t RecordSlot(RecordId rid) {
  return static_cast<uint16_t>(rid & 0xffff);
}

class HeapFile {
 public:
  // Creates a fresh heap with one empty page; returns its first page id,
  // which the caller persists (catalog) and passes back on reopen.
  static StatusOr<HeapFile> Create(BufferPool* pool);
  static StatusOr<HeapFile> Open(BufferPool* pool, PageId first_page,
                                 PageId last_page);

  // Appends a record (size limit ~ kPageSize - 24 bytes).
  StatusOr<RecordId> Append(std::string_view record);

  StatusOr<std::string> Get(RecordId rid) const;
  Status Delete(RecordId rid);

  // Visits every live record in file order; return false to stop early.
  Status Scan(
      const std::function<bool(RecordId, std::string_view)>& fn) const;

  PageId first_page() const { return first_page_; }
  // Append target; persists alongside first_page.
  PageId last_page() const { return last_page_; }

  // Pages owned by this heap (walks the chain).
  StatusOr<uint64_t> PageCount() const;

 private:
  HeapFile(BufferPool* pool, PageId first, PageId last)
      : pool_(pool), first_page_(first), last_page_(last) {}

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_HEAP_FILE_H_
