#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace ssdb::storage {
namespace {

constexpr uint64_t kMagic = 0x7373646231000000ULL;  // "ssdb1"
constexpr uint32_t kVersion = 1;

// Meta page layout (after the common 8-byte header):
//   [8..16)   magic
//   [16..20)  version
//   [20..24)  page_count
//   [24..28)  free_list_head
//   [32..)    user slots (16 x u64)
constexpr size_t kMagicOff = 8;
constexpr size_t kVersionOff = 16;
constexpr size_t kPageCountOff = 20;
constexpr size_t kFreeHeadOff = 24;
constexpr size_t kUserSlotsOff = 32;

Status ErrnoError(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                             bool create_if_missing) {
  int flags = O_RDWR | (create_if_missing ? O_CREAT : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoError("open " + path);

  auto pager = std::unique_ptr<Pager>(new Pager());
  pager->fd_ = fd;
  pager->path_ = path;

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) return ErrnoError("lseek " + path);

  if (size == 0) {
    // Fresh file: write meta page.
    pager->page_count_ = 1;
    pager->free_list_head_ = kInvalidPageId;
    SSDB_RETURN_IF_ERROR(pager->FlushMeta());
    return pager;
  }

  if (size % kPageSize != 0) {
    return Status::Corruption(path + ": size not a multiple of page size");
  }
  PageBuf meta;
  SSDB_RETURN_IF_ERROR(pager->ReadPage(0, &meta));
  if (!VerifyPage(meta.data())) {
    return Status::Corruption(path + ": meta page checksum mismatch");
  }
  if (LoadU64(meta.data() + kMagicOff) != kMagic) {
    return Status::Corruption(path + ": bad magic (not an ssdb file)");
  }
  if (LoadU32(meta.data() + kVersionOff) != kVersion) {
    return Status::Corruption(path + ": unsupported format version");
  }
  pager->page_count_ = LoadU32(meta.data() + kPageCountOff);
  pager->free_list_head_ = LoadU32(meta.data() + kFreeHeadOff);
  for (int i = 0; i < kMetaUserSlots; ++i) {
    pager->meta_slots_[i] = LoadU64(meta.data() + kUserSlotsOff + 8 * i);
  }
  if (pager->page_count_ * static_cast<uint64_t>(kPageSize) >
      static_cast<uint64_t>(size)) {
    return Status::Corruption(path + ": page count exceeds file size");
  }
  return pager;
}

Pager::~Pager() {
  if (fd_ >= 0) {
    // Best effort; callers that care about durability call Sync().
    FlushMeta();
    ::close(fd_);
  }
}

Status Pager::ReadPage(PageId id, PageBuf* buf) {
  if (id >= page_count_ && id != 0) {
    return Status::InvalidArgument("read of unallocated page " +
                                   std::to_string(id));
  }
  ssize_t n = ::pread(fd_, buf->data(), kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n < 0) return ErrnoError("pread page " + std::to_string(id));
  if (n == 0) {
    // Page allocated but never written: treat as zeroed.
    buf->fill(0);
    return Status::OK();
  }
  if (static_cast<size_t>(n) != kPageSize) {
    return Status::IOError("short read on page " + std::to_string(id));
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, const PageBuf& buf) {
  if (id >= page_count_) {
    return Status::InvalidArgument("write of unallocated page " +
                                   std::to_string(id));
  }
  ssize_t n = ::pwrite(fd_, buf.data(), kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n < 0) return ErrnoError("pwrite page " + std::to_string(id));
  if (static_cast<size_t>(n) != kPageSize) {
    return Status::IOError("short write on page " + std::to_string(id));
  }
  return Status::OK();
}

StatusOr<PageId> Pager::AllocatePage() {
  if (free_list_head_ != kInvalidPageId) {
    PageId id = free_list_head_;
    PageBuf buf;
    SSDB_RETURN_IF_ERROR(ReadPage(id, &buf));
    // A free page stores the next free id right after the common header.
    free_list_head_ = LoadU32(buf.data() + kPageHeaderSize);
    buf.fill(0);
    SSDB_RETURN_IF_ERROR(WritePage(id, buf));
    return id;
  }
  PageId id = page_count_++;
  PageBuf zero;
  zero.fill(0);
  SSDB_RETURN_IF_ERROR(WritePage(id, zero));
  return id;
}

Status Pager::FreePage(PageId id) {
  if (id == 0 || id >= page_count_) {
    return Status::InvalidArgument("cannot free page " + std::to_string(id));
  }
  PageBuf buf;
  buf.fill(0);
  SetPageType(buf.data(), PageType::kFree);
  StoreU32(buf.data() + kPageHeaderSize, free_list_head_);
  SealPage(buf.data());
  SSDB_RETURN_IF_ERROR(WritePage(id, buf));
  free_list_head_ = id;
  return Status::OK();
}

uint64_t Pager::GetMetaSlot(int slot) const {
  SSDB_CHECK(slot >= 0 && slot < kMetaUserSlots);
  return meta_slots_[slot];
}

Status Pager::SetMetaSlot(int slot, uint64_t value) {
  SSDB_CHECK(slot >= 0 && slot < kMetaUserSlots);
  meta_slots_[slot] = value;
  return Status::OK();
}

Status Pager::FlushMeta() {
  PageBuf meta;
  meta.fill(0);
  SetPageType(meta.data(), PageType::kMeta);
  StoreU64(meta.data() + kMagicOff, kMagic);
  StoreU32(meta.data() + kVersionOff, kVersion);
  StoreU32(meta.data() + kPageCountOff, page_count_);
  StoreU32(meta.data() + kFreeHeadOff, free_list_head_);
  for (int i = 0; i < kMetaUserSlots; ++i) {
    StoreU64(meta.data() + kUserSlotsOff + 8 * i, meta_slots_[i]);
  }
  SealPage(meta.data());
  ssize_t n = ::pwrite(fd_, meta.data(), kPageSize, 0);
  if (n < 0) return ErrnoError("pwrite meta");
  if (static_cast<size_t>(n) != kPageSize) {
    return Status::IOError("short write on meta page");
  }
  return Status::OK();
}

Status Pager::Sync() {
  SSDB_RETURN_IF_ERROR(FlushMeta());
  if (::fsync(fd_) != 0) return ErrnoError("fsync");
  return Status::OK();
}

}  // namespace ssdb::storage
