#include "storage/mutation.h"

#include "prg/prg.h"
#include "util/varint.h"

namespace ssdb::storage {

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kInsert:
      return "insert";
    case MutationKind::kUpdate:
      return "update";
    case MutationKind::kDelete:
      return "delete";
  }
  return "unknown";
}

bool MutationPlan::operator==(const MutationPlan& other) const {
  return kind == other.kind && base_version == other.base_version &&
         next_nonce == other.next_nonce && erase_lo == other.erase_lo &&
         erase_hi == other.erase_hi && shift_pre_gt == other.shift_pre_gt &&
         shift_delta == other.shift_delta && upserts == other.upserts;
}

std::string EncodeMutationPlan(const MutationPlan& plan) {
  std::string out;
  PutVarint64(&out, static_cast<uint64_t>(plan.kind));
  PutVarint64(&out, plan.base_version);
  PutVarint64(&out, plan.next_nonce);
  PutVarint64(&out, plan.erase_lo);
  PutVarint64(&out, plan.erase_hi);
  PutVarint64(&out, plan.shift_pre_gt);
  PutVarintSigned64(&out, plan.shift_delta);
  PutVarint64(&out, plan.upserts.size());
  for (const NodeRow& row : plan.upserts) {
    PutLengthPrefixed(&out, EncodeNodeRow(row));
  }
  return out;
}

StatusOr<MutationPlan> DecodeMutationPlan(std::string_view data) {
  MutationPlan plan;
  uint64_t v = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
  if (v < 1 || v > 3) {
    return Status::Corruption("unknown mutation kind " + std::to_string(v));
  }
  plan.kind = static_cast<MutationKind>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &plan.base_version));
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &plan.next_nonce));
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
  plan.erase_lo = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
  plan.erase_hi = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
  plan.shift_pre_gt = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarintSigned64(&data, &plan.shift_delta));
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &count));
  // Every upsert costs at least one length byte, so a count beyond the
  // remaining payload is a bomb, not a plan.
  if (count > data.size()) {
    return Status::Corruption("upsert count exceeds plan size");
  }
  plan.upserts.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view encoded;
    SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &encoded));
    SSDB_ASSIGN_OR_RETURN(NodeRow row, DecodeNodeRow(encoded));
    plan.upserts.push_back(std::move(row));
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes in mutation plan");
  }
  return plan;
}

Status ValidateMutationPlan(const MutationPlan& plan) {
  if (plan.kind != MutationKind::kInsert &&
      plan.kind != MutationKind::kUpdate &&
      plan.kind != MutationKind::kDelete) {
    return Status::InvalidArgument("unknown mutation kind");
  }
  if (plan.base_version == UINT64_MAX) {
    return Status::InvalidArgument("mutation base version overflows");
  }
  if (plan.next_nonce < prg::kFirstMutationNonce ||
      plan.next_nonce > prg::kMutationNonceLimit) {
    return Status::InvalidArgument(
        "mutation nonce watermark outside the PRG mutation-nonce space "
        "(src/prg/prg.h)");
  }
  const bool has_erase = plan.erase_lo <= plan.erase_hi;
  if (has_erase && plan.erase_lo == 0) {
    return Status::InvalidArgument("mutation erase range includes pre 0");
  }
  if (plan.kind == MutationKind::kUpdate &&
      (has_erase || plan.shift_delta != 0)) {
    return Status::InvalidArgument(
        "update plans re-share in place (no erase, no shift)");
  }
  for (const NodeRow& row : plan.upserts) {
    if (row.pre == 0) {
      return Status::InvalidArgument("mutation upsert row with pre 0");
    }
    if (row.nonce != 0 && row.nonce >= plan.next_nonce) {
      return Status::InvalidArgument(
          "mutation upsert nonce above the plan watermark");
    }
  }
  return Status::OK();
}

}  // namespace ssdb::storage
