// Storage-engine interface for the polynomial table — the paper's relational
// schema (pre, post, parent, share) with B-tree access paths (§5.1). Two
// implementations: DiskNodeStore (src/storage/table.h, paged B+tree engine)
// and MemoryNodeStore (src/storage/memory_backend.h).
//
// Pre/post/parent numbering (fig. 3 & §5.1): pre counts open tags, post
// counts close tags, parent is the parent's pre; the root has parent 0.
// Descendant test: d is a descendant of n iff pre(d) > pre(n) and
// post(d) < post(n); in document order descendants are the contiguous pre
// range right after n, which GetDescendants exploits.

#ifndef SSDB_STORAGE_NODE_STORE_H_
#define SSDB_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace ssdb::storage {

struct NodeRow {
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t parent = 0;    // 0 for the root
  std::string share;      // bit-packed server-share polynomial
  // Optional sealed payload (§4: "an encryption of the data string may be
  // added to the node"): tag name + direct text, stream-encrypted under the
  // client seed. Empty when sealing is off. Opaque to the server.
  std::string sealed;
  // Optional aggregate-column slice (DESIGN.md §8): 7·T masked uint32 words
  // per node (agg/columns.h) that let the server fold COUNT/SUM/EXISTS
  // partials without learning what they count. Empty when the database was
  // encoded without aggregate columns. Opaque to the server.
  std::string agg;
  // Optional aggregate verification track (DESIGN.md §9): per aggregate
  // word a masked wide share and a masked keyed-checksum share (16 bytes),
  // stored on slice 0 of a `--verify-agg` database only. Opaque to the
  // server.
  std::string verify;
  // PRG nonce the node's shares and masks were drawn under (DESIGN.md §12).
  // 0 means "the pre position itself" — the layout every row had before
  // mutations existed, so old databases decode unchanged. A mutated node
  // carries a fresh nonce >= prg::kFirstMutationNonce; a node whose pre was
  // shifted by an insert/delete records its original pre here so its
  // unchanged shares stay addressable.
  uint64_t nonce = 0;

  // The PRG position this row's shares/masks/seal are addressed by.
  uint64_t ShareNonce() const { return nonce != 0 ? nonce : pre; }

  bool operator==(const NodeRow& other) const {
    return pre == other.pre && post == other.post &&
           parent == other.parent && share == other.share &&
           sealed == other.sealed && agg == other.agg &&
           verify == other.verify && nonce == other.nonce;
  }
};

// The two blob families a node owns beyond its fixed columns: the §8
// aggregate-column slice and the §9 verification track. On the disk backend
// they live in the column store (src/colstore/), keyed by ShareNonce(), not
// in the heap row (DESIGN.md §12).
struct ColumnBlobs {
  std::string agg;
  std::string verify;
};

// Row wire/disk format: varint pre, post, parent + length-prefixed share
// + length-prefixed sealed payload + length-prefixed aggregate columns
// + length-prefixed verification track + varint nonce. The aggregate,
// verification, and nonce fields are trailing-optional on decode (absent in
// rows written before DESIGN.md §8/§9/§12), so older databases stay
// readable; a zero nonce is never written, so unmutated rows keep their
// pre-§12 byte layout.
std::string EncodeNodeRow(const NodeRow& row);
StatusOr<NodeRow> DecodeNodeRow(std::string_view data);

// Committed mutation state of one share-slice store (DESIGN.md §12).
struct MutationState {
  uint64_t version = 0;      // committed document version (0 = as encoded)
  uint64_t next_nonce = 0;   // fresh-nonce watermark (prg::kFirstMutationNonce
                             // when no mutation ever ran)
  uint64_t pending_txn = 0;  // journaled-but-undecided txn, 0 when none
};

// A fully planned, per-slice mutation; see storage/mutation.h.
struct MutationPlan;

struct StorageStats {
  uint64_t node_count = 0;
  uint64_t data_bytes = 0;       // heap pages (or in-memory row footprint)
  uint64_t index_bytes = 0;      // B+tree pages (0 for the memory backend)
  uint64_t file_bytes = 0;       // total on-disk footprint
  uint64_t payload_bytes = 0;    // serialized rows only
  uint64_t structure_bytes = 0;  // the pre/post/parent share of the payload
};

class NodeStore {
 public:
  virtual ~NodeStore() = default;

  // Rows must be inserted with unique pre values.
  virtual Status Insert(const NodeRow& row) = 0;

  virtual StatusOr<NodeRow> GetByPre(uint32_t pre) = 0;

  // Zero-copy read path for the server's hot loops: `fn` sees the stored
  // row without the payload strings (share, sealed, aggregate columns)
  // being copied first — a share evaluation or a column fold touches a few
  // bytes of rows that are kilobytes wide. The row reference is valid only
  // during the call, and fn must not call back into the store (the memory
  // backend holds its read lock across fn). The default copies via
  // GetByPre, so implementations without an in-place representation still
  // work.
  virtual Status VisitByPre(uint32_t pre,
                            const std::function<void(const NodeRow&)>& fn) {
    SSDB_ASSIGN_OR_RETURN(NodeRow row, GetByPre(pre));
    fn(row);
    return Status::OK();
  }

  // The row with parent == 0.
  virtual StatusOr<NodeRow> GetRoot() = 0;

  // Children of the given node in pre (document) order.
  virtual StatusOr<std::vector<NodeRow>> GetChildren(uint32_t parent_pre) = 0;

  // Zero-copy variant of GetChildren, same contract as VisitByPre; the
  // expansion step of every query reads whole child lists but keeps only
  // pre/post/parent.
  virtual Status VisitChildren(uint32_t parent_pre,
                               const std::function<void(const NodeRow&)>& fn) {
    SSDB_ASSIGN_OR_RETURN(std::vector<NodeRow> rows,
                          GetChildren(parent_pre));
    for (const NodeRow& row : rows) fn(row);
    return Status::OK();
  }

  // All proper descendants of the node (pre, post), in document order.
  // Callback-based so engines can stream; return false to stop.
  virtual Status ScanDescendants(
      uint32_t pre, uint32_t post,
      const std::function<bool(const NodeRow&)>& fn) = 0;

  virtual StatusOr<uint64_t> NodeCount() = 0;
  virtual StatusOr<StorageStats> Stats() = 0;

  // Durability point (no-op for the memory backend).
  virtual Status Flush() = 0;

  // The node's aggregate-column and verification blobs (DESIGN.md §8/§9).
  // The default reads them off the row itself; the disk backend overrides
  // this to read the column store (§12), where rows no longer carry them.
  virtual StatusOr<ColumnBlobs> GetColumns(uint32_t pre) {
    SSDB_ASSIGN_OR_RETURN(NodeRow row, GetByPre(pre));
    ColumnBlobs blobs;
    blobs.agg = std::move(row.agg);
    blobs.verify = std::move(row.verify);
    return blobs;
  }

  // --- Two-phase mutation protocol (DESIGN.md §12) ---
  //
  // PrepareMutation validates the plan against the committed version and
  // journals it durably WITHOUT applying; CommitMutation applies the
  // journaled plan and bumps the version; AbortMutation discards it. Both
  // commit and abort are idempotent per txn, so a coordinator (or crash
  // recovery) may re-drive either phase. Stores that never mutate keep the
  // Unimplemented defaults.
  virtual StatusOr<MutationState> GetMutationState() {
    return Status::Unimplemented("store does not support mutations");
  }
  virtual Status PrepareMutation(uint64_t txn, const MutationPlan& plan) {
    (void)txn;
    (void)plan;
    return Status::Unimplemented("store does not support mutations");
  }
  virtual Status CommitMutation(uint64_t txn) {
    (void)txn;
    return Status::Unimplemented("store does not support mutations");
  }
  virtual Status AbortMutation(uint64_t txn) {
    (void)txn;
    return Status::Unimplemented("store does not support mutations");
  }
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_NODE_STORE_H_
