// Storage-engine interface for the polynomial table — the paper's relational
// schema (pre, post, parent, share) with B-tree access paths (§5.1). Two
// implementations: DiskNodeStore (src/storage/table.h, paged B+tree engine)
// and MemoryNodeStore (src/storage/memory_backend.h).
//
// Pre/post/parent numbering (fig. 3 & §5.1): pre counts open tags, post
// counts close tags, parent is the parent's pre; the root has parent 0.
// Descendant test: d is a descendant of n iff pre(d) > pre(n) and
// post(d) < post(n); in document order descendants are the contiguous pre
// range right after n, which GetDescendants exploits.

#ifndef SSDB_STORAGE_NODE_STORE_H_
#define SSDB_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace ssdb::storage {

struct NodeRow {
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t parent = 0;    // 0 for the root
  std::string share;      // bit-packed server-share polynomial
  // Optional sealed payload (§4: "an encryption of the data string may be
  // added to the node"): tag name + direct text, stream-encrypted under the
  // client seed. Empty when sealing is off. Opaque to the server.
  std::string sealed;
  // Optional aggregate-column slice (DESIGN.md §8): 7·T masked uint32 words
  // per node (agg/columns.h) that let the server fold COUNT/SUM/EXISTS
  // partials without learning what they count. Empty when the database was
  // encoded without aggregate columns. Opaque to the server.
  std::string agg;
  // Optional aggregate verification track (DESIGN.md §9): per aggregate
  // word a masked wide share and a masked keyed-checksum share (16 bytes),
  // stored on slice 0 of a `--verify-agg` database only. Opaque to the
  // server.
  std::string verify;

  bool operator==(const NodeRow& other) const {
    return pre == other.pre && post == other.post &&
           parent == other.parent && share == other.share &&
           sealed == other.sealed && agg == other.agg &&
           verify == other.verify;
  }
};

// Row wire/disk format: varint pre, post, parent + length-prefixed share
// + length-prefixed sealed payload + length-prefixed aggregate columns
// + length-prefixed verification track. The aggregate and verification
// fields are trailing-optional on decode (absent in rows written before
// DESIGN.md §8/§9), so older databases stay readable.
std::string EncodeNodeRow(const NodeRow& row);
StatusOr<NodeRow> DecodeNodeRow(std::string_view data);

struct StorageStats {
  uint64_t node_count = 0;
  uint64_t data_bytes = 0;       // heap pages (or in-memory row footprint)
  uint64_t index_bytes = 0;      // B+tree pages (0 for the memory backend)
  uint64_t file_bytes = 0;       // total on-disk footprint
  uint64_t payload_bytes = 0;    // serialized rows only
  uint64_t structure_bytes = 0;  // the pre/post/parent share of the payload
};

class NodeStore {
 public:
  virtual ~NodeStore() = default;

  // Rows must be inserted with unique pre values.
  virtual Status Insert(const NodeRow& row) = 0;

  virtual StatusOr<NodeRow> GetByPre(uint32_t pre) = 0;

  // Zero-copy read path for the server's hot loops: `fn` sees the stored
  // row without the payload strings (share, sealed, aggregate columns)
  // being copied first — a share evaluation or a column fold touches a few
  // bytes of rows that are kilobytes wide. The row reference is valid only
  // during the call, and fn must not call back into the store (the memory
  // backend holds its read lock across fn). The default copies via
  // GetByPre, so implementations without an in-place representation still
  // work.
  virtual Status VisitByPre(uint32_t pre,
                            const std::function<void(const NodeRow&)>& fn) {
    SSDB_ASSIGN_OR_RETURN(NodeRow row, GetByPre(pre));
    fn(row);
    return Status::OK();
  }

  // The row with parent == 0.
  virtual StatusOr<NodeRow> GetRoot() = 0;

  // Children of the given node in pre (document) order.
  virtual StatusOr<std::vector<NodeRow>> GetChildren(uint32_t parent_pre) = 0;

  // Zero-copy variant of GetChildren, same contract as VisitByPre; the
  // expansion step of every query reads whole child lists but keeps only
  // pre/post/parent.
  virtual Status VisitChildren(uint32_t parent_pre,
                               const std::function<void(const NodeRow&)>& fn) {
    SSDB_ASSIGN_OR_RETURN(std::vector<NodeRow> rows,
                          GetChildren(parent_pre));
    for (const NodeRow& row : rows) fn(row);
    return Status::OK();
  }

  // All proper descendants of the node (pre, post), in document order.
  // Callback-based so engines can stream; return false to stop.
  virtual Status ScanDescendants(
      uint32_t pre, uint32_t post,
      const std::function<bool(const NodeRow&)>& fn) = 0;

  virtual StatusOr<uint64_t> NodeCount() = 0;
  virtual StatusOr<StorageStats> Stats() = 0;

  // Durability point (no-op for the memory backend).
  virtual Status Flush() = 0;
};

}  // namespace ssdb::storage

#endif  // SSDB_STORAGE_NODE_STORE_H_
