#include "storage/page.h"

namespace ssdb::storage {

uint32_t PageChecksum(const uint8_t* page) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 4; i < kPageSize; ++i) {
    hash ^= page[i];
    hash *= 0x100000001b3ULL;
  }
  // Fold to 32 bits; avoid 0 so that "no checksum yet" is distinguishable.
  uint32_t folded = static_cast<uint32_t>(hash ^ (hash >> 32));
  return folded == 0 ? 1 : folded;
}

void SealPage(uint8_t* page) { StoreU32(page, PageChecksum(page)); }

bool VerifyPage(const uint8_t* page) {
  uint32_t stored = LoadU32(page);
  if (stored == 0) {
    // Never sealed: accept only if the whole page is zero (freshly allocated).
    for (size_t i = 4; i < kPageSize; ++i) {
      if (page[i] != 0) return false;
    }
    return true;
  }
  return stored == PageChecksum(page);
}

}  // namespace ssdb::storage
