#include "storage/table.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>

#include "prg/prg.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/varint.h"

namespace ssdb::storage {
namespace {

// Catalog keys.
constexpr char kHeapFirst[] = "heap_first";
constexpr char kHeapLast[] = "heap_last";
constexpr char kPreRoot[] = "pre_root";
constexpr char kParentRoot[] = "parent_root";
constexpr char kPostRoot[] = "post_root";
constexpr char kNodeCount[] = "node_count";
constexpr char kPayloadBytes[] = "payload_bytes";
constexpr char kStructureBytes[] = "structure_bytes";
constexpr char kDocVersion[] = "doc_version";
constexpr char kNextNonce[] = "next_nonce";

// Journal file magic (DESIGN.md §12): 8 bytes, then varint txn, then the
// length-prefixed plan, then a fixed32 FNV-1a over everything after the
// magic. Written tmp + fsync + rename, so a crash leaves either no journal
// or a whole one.
constexpr char kJournalMagic[] = "SSDBJRN1";
constexpr size_t kJournalMagicBytes = 8;

uint32_t Fnv1a(std::string_view data) {
  uint32_t h = 2166136261u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

// Whole-file durable write: tmp file, fsync, atomic rename into place.
Status WriteFileDurable(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("open " + tmp + " failed");
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("write " + tmp + " failed");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("fsync " + tmp + " failed");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

uint64_t CompositeKey(uint32_t column_value, uint32_t pre) {
  return (static_cast<uint64_t>(column_value) << 32) | pre;
}

std::string ColumnStorePath(const std::string& path) { return path + ".cols"; }

}  // namespace

StatusOr<std::unique_ptr<DiskNodeStore>> DiskNodeStore::Create(
    const std::string& path, const DiskStoreOptions& options) {
  auto store = std::unique_ptr<DiskNodeStore>(new DiskNodeStore());
  SSDB_ASSIGN_OR_RETURN(store->pager_, Pager::Open(path, true));
  if (store->pager_->GetMetaSlot(0) != 0) {
    return Status::AlreadyExists(path + " already contains a database");
  }
  store->pool_ = std::make_unique<BufferPool>(store->pager_.get(),
                                              options.buffer_pool_pages);
  SSDB_ASSIGN_OR_RETURN(Catalog catalog, Catalog::Create(store->pool_.get()));
  store->catalog_ = std::move(catalog);
  SSDB_RETURN_IF_ERROR(
      store->pager_->SetMetaSlot(0, store->catalog_->page()));

  SSDB_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(store->pool_.get()));
  store->heap_ = std::move(heap);
  SSDB_ASSIGN_OR_RETURN(BTree pre, BTree::Create(store->pool_.get()));
  store->pre_index_ = std::move(pre);
  SSDB_ASSIGN_OR_RETURN(BTree parent, BTree::Create(store->pool_.get()));
  store->parent_index_ = std::move(parent);
  SSDB_ASSIGN_OR_RETURN(BTree post, BTree::Create(store->pool_.get()));
  store->post_index_ = std::move(post);

  store->path_ = path;
  store->next_nonce_ = prg::kFirstMutationNonce;
  SSDB_ASSIGN_OR_RETURN(
      store->columns_,
      colstore::ColumnStore::Create(ColumnStorePath(path),
                                    options.buffer_pool_pages));
  SSDB_RETURN_IF_ERROR(store->SaveRoots());
  return store;
}

StatusOr<std::unique_ptr<DiskNodeStore>> DiskNodeStore::Open(
    const std::string& path, const DiskStoreOptions& options) {
  auto store = std::unique_ptr<DiskNodeStore>(new DiskNodeStore());
  SSDB_ASSIGN_OR_RETURN(store->pager_, Pager::Open(path, false));
  PageId catalog_page = static_cast<PageId>(store->pager_->GetMetaSlot(0));
  if (catalog_page == 0) {
    return Status::Corruption(path + " has no catalog");
  }
  store->pool_ = std::make_unique<BufferPool>(store->pager_.get(),
                                              options.buffer_pool_pages);
  SSDB_ASSIGN_OR_RETURN(Catalog catalog,
                        Catalog::Load(store->pool_.get(), catalog_page));
  store->catalog_ = std::move(catalog);

  SSDB_ASSIGN_OR_RETURN(uint64_t heap_first, store->catalog_->Get(kHeapFirst));
  SSDB_ASSIGN_OR_RETURN(uint64_t heap_last, store->catalog_->Get(kHeapLast));
  SSDB_ASSIGN_OR_RETURN(
      HeapFile heap,
      HeapFile::Open(store->pool_.get(), static_cast<PageId>(heap_first),
                     static_cast<PageId>(heap_last)));
  store->heap_ = std::move(heap);

  SSDB_ASSIGN_OR_RETURN(uint64_t pre_root, store->catalog_->Get(kPreRoot));
  store->pre_index_ =
      BTree::Open(store->pool_.get(), static_cast<PageId>(pre_root));
  SSDB_ASSIGN_OR_RETURN(uint64_t parent_root,
                        store->catalog_->Get(kParentRoot));
  store->parent_index_ =
      BTree::Open(store->pool_.get(), static_cast<PageId>(parent_root));
  SSDB_ASSIGN_OR_RETURN(uint64_t post_root, store->catalog_->Get(kPostRoot));
  store->post_index_ =
      BTree::Open(store->pool_.get(), static_cast<PageId>(post_root));

  store->node_count_ = store->catalog_->GetOr(kNodeCount, 0);
  store->payload_bytes_ = store->catalog_->GetOr(kPayloadBytes, 0);
  store->structure_bytes_ = store->catalog_->GetOr(kStructureBytes, 0);
  store->version_ = store->catalog_->GetOr(kDocVersion, 0);
  store->next_nonce_ =
      store->catalog_->GetOr(kNextNonce, prg::kFirstMutationNonce);

  store->path_ = path;
  // Pre-§12 databases have no column store; their blobs are in-row and
  // GetColumns falls back accordingly.
  if (FileExists(ColumnStorePath(path))) {
    SSDB_ASSIGN_OR_RETURN(
        store->columns_,
        colstore::ColumnStore::Open(ColumnStorePath(path),
                                    options.buffer_pool_pages));
  }

  // Crash recovery (DESIGN.md §12): a journal on disk is a mutation that
  // prepared but never heard commit/abort. If the catalog already shows the
  // txn committed, the crash hit between sync and unlink — the journal is
  // stale. Otherwise surface it as pending for the coordinator's recovery
  // sweep. A torn or corrupt journal can only come from a prepare that
  // never acked, so discarding it is safe.
  const std::string journal = store->JournalPath();
  if (FileExists(journal)) {
    StatusOr<std::string> contents = ReadFileToString(journal);
    SSDB_RETURN_IF_ERROR(contents.status());
    bool keep = false;
    std::string_view data(*contents);
    if (data.size() > kJournalMagicBytes + 4 &&
        data.substr(0, kJournalMagicBytes) == kJournalMagic) {
      std::string_view payload =
          data.substr(kJournalMagicBytes, data.size() - kJournalMagicBytes - 4);
      std::string_view tail = data.substr(data.size() - 4);
      uint32_t stored = 0;
      if (GetFixed32(&tail, &stored).ok() && stored == Fnv1a(payload)) {
        uint64_t txn = 0;
        std::string_view plan_bytes;
        if (GetVarint64(&payload, &txn).ok() &&
            GetLengthPrefixed(&payload, &plan_bytes).ok()) {
          StatusOr<MutationPlan> plan = DecodeMutationPlan(plan_bytes);
          if (plan.ok() && txn > store->version_) {
            store->pending_txn_ = txn;
            store->pending_plan_ = std::move(*plan);
            keep = true;
          }
        }
      }
    }
    if (!keep) {
      SSDB_LOG(INFO) << "dropping stale or torn mutation journal " << journal;
      SSDB_RETURN_IF_ERROR(RemoveFileIfExists(journal));
    }
  }
  return store;
}

DiskNodeStore::~DiskNodeStore() {
  Status s = Flush();
  if (!s.ok()) {
    SSDB_LOG(ERROR) << "DiskNodeStore flush on close failed: " << s.ToString();
  }
}

Status DiskNodeStore::SaveRoots() {
  catalog_->Set(kHeapFirst, heap_->first_page());
  catalog_->Set(kHeapLast, heap_->last_page());
  catalog_->Set(kPreRoot, pre_index_->root());
  catalog_->Set(kParentRoot, parent_index_->root());
  catalog_->Set(kPostRoot, post_index_->root());
  catalog_->Set(kNodeCount, node_count_);
  catalog_->Set(kPayloadBytes, payload_bytes_);
  catalog_->Set(kStructureBytes, structure_bytes_);
  catalog_->Set(kDocVersion, version_);
  catalog_->Set(kNextNonce, next_nonce_);
  return catalog_->Save();
}

Status DiskNodeStore::Insert(const NodeRow& row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InsertLocked(row);
}

Status DiskNodeStore::InsertLocked(const NodeRow& row) {
  if (row.pre == 0) {
    return Status::InvalidArgument("pre numbering starts at 1");
  }
  // Column-store layout (DESIGN.md §12): the heap row keeps the fixed
  // columns; the §8/§9 blobs go to the column store keyed by share nonce,
  // which is what frees the row from the one-page record ceiling.
  std::string encoded;
  if (columns_ != nullptr && (!row.agg.empty() || !row.verify.empty())) {
    NodeRow stripped = row;
    std::string agg = std::move(stripped.agg);
    std::string verify = std::move(stripped.verify);
    stripped.agg.clear();
    stripped.verify.clear();
    encoded = EncodeNodeRow(stripped);
    if (!agg.empty()) {
      SSDB_RETURN_IF_ERROR(
          columns_->Put(colstore::Family::kAgg, row.ShareNonce(), agg));
    }
    if (!verify.empty()) {
      SSDB_RETURN_IF_ERROR(
          columns_->Put(colstore::Family::kVerify, row.ShareNonce(), verify));
    }
  } else {
    encoded = EncodeNodeRow(row);
  }
  SSDB_ASSIGN_OR_RETURN(RecordId rid, heap_->Append(encoded));
  // AlreadyExists here means a duplicate pre value.
  SSDB_RETURN_IF_ERROR(pre_index_->Insert(row.pre, rid));
  SSDB_RETURN_IF_ERROR(
      parent_index_->Insert(CompositeKey(row.parent, row.pre), rid));
  SSDB_RETURN_IF_ERROR(
      post_index_->Insert(CompositeKey(row.post, row.pre), rid));
  ++node_count_;
  payload_bytes_ += encoded.size();
  structure_bytes_ += encoded.size() - row.share.size();
  return Status::OK();
}

StatusOr<NodeRow> DiskNodeStore::FetchRow(RecordId rid) {
  SSDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(rid));
  return DecodeNodeRow(record);
}

Status DiskNodeStore::AttachColumns(NodeRow* row) {
  if (columns_ == nullptr) return Status::OK();  // in-row layout
  StatusOr<std::string> agg =
      columns_->Get(colstore::Family::kAgg, row->ShareNonce());
  if (agg.ok()) {
    row->agg = std::move(*agg);
  } else if (!agg.status().IsNotFound()) {
    return agg.status();
  }
  StatusOr<std::string> verify =
      columns_->Get(colstore::Family::kVerify, row->ShareNonce());
  if (verify.ok()) {
    row->verify = std::move(*verify);
  } else if (!verify.status().IsNotFound()) {
    return verify.status();
  }
  return Status::OK();
}

StatusOr<NodeRow> DiskNodeStore::GetByPre(uint32_t pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SSDB_ASSIGN_OR_RETURN(uint64_t rid, pre_index_->Get(pre));
  SSDB_ASSIGN_OR_RETURN(NodeRow row, FetchRow(rid));
  SSDB_RETURN_IF_ERROR(AttachColumns(&row));
  return row;
}

StatusOr<NodeRow> DiskNodeStore::GetRoot() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Root is the unique row with parent == 0: composite keys [0, 1<<32).
  RecordId rid = kInvalidRecordId;
  SSDB_RETURN_IF_ERROR(parent_index_->Scan(
      0, uint64_t{1} << 32, [&](uint64_t, uint64_t value) {
        rid = value;
        return false;  // first match is the root
      }));
  if (rid == kInvalidRecordId) return Status::NotFound("no root row");
  SSDB_ASSIGN_OR_RETURN(NodeRow row, FetchRow(rid));
  SSDB_RETURN_IF_ERROR(AttachColumns(&row));
  return row;
}

StatusOr<std::vector<NodeRow>> DiskNodeStore::GetChildren(
    uint32_t parent_pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<RecordId> rids;
  SSDB_RETURN_IF_ERROR(parent_index_->Scan(
      CompositeKey(parent_pre, 0), CompositeKey(parent_pre + 1, 0),
      [&](uint64_t, uint64_t value) {
        rids.push_back(value);
        return true;
      }));
  std::vector<NodeRow> rows;
  rows.reserve(rids.size());
  for (RecordId rid : rids) {
    SSDB_ASSIGN_OR_RETURN(NodeRow row, FetchRow(rid));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status DiskNodeStore::ScanDescendants(
    uint32_t pre, uint32_t post,
    const std::function<bool(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Descendants are the contiguous pre range right after `pre`; the first
  // row with post > post is the first node outside the subtree, so the scan
  // stops without touching the rest of the index.
  Status inner = Status::OK();
  SSDB_RETURN_IF_ERROR(pre_index_->Scan(
      static_cast<uint64_t>(pre) + 1, UINT64_MAX,
      [&](uint64_t, uint64_t rid) {
        StatusOr<NodeRow> row = FetchRow(rid);
        if (!row.ok()) {
          inner = row.status();
          return false;
        }
        if (row->post > post) return false;  // left the subtree
        return fn(*row);
      }));
  return inner;
}

StatusOr<uint64_t> DiskNodeStore::NodeCount() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return node_count_;
}

StatusOr<StorageStats> DiskNodeStore::Stats() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  StorageStats stats;
  stats.node_count = node_count_;
  SSDB_ASSIGN_OR_RETURN(uint64_t heap_pages, heap_->PageCount());
  stats.data_bytes = heap_pages * kPageSize;
  SSDB_ASSIGN_OR_RETURN(uint64_t pre_pages, pre_index_->PageCount());
  SSDB_ASSIGN_OR_RETURN(uint64_t parent_pages, parent_index_->PageCount());
  SSDB_ASSIGN_OR_RETURN(uint64_t post_pages, post_index_->PageCount());
  stats.index_bytes = (pre_pages + parent_pages + post_pages) * kPageSize;
  stats.file_bytes = pager_->file_bytes();
  stats.payload_bytes = payload_bytes_;
  stats.structure_bytes = structure_bytes_;
  if (columns_ != nullptr) {
    colstore::ColumnStoreStats cols = columns_->Stats();
    stats.payload_bytes += cols.blob_bytes;
    stats.file_bytes += cols.file_bytes;
  }
  return stats;
}

Status DiskNodeStore::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (catalog_.has_value()) {
    SSDB_RETURN_IF_ERROR(SaveRoots());
  }
  if (pool_ != nullptr) {
    SSDB_RETURN_IF_ERROR(pool_->FlushAll());
  }
  if (pager_ != nullptr) {
    SSDB_RETURN_IF_ERROR(pager_->Sync());
  }
  if (columns_ != nullptr) {
    SSDB_RETURN_IF_ERROR(columns_->Flush());
  }
  return Status::OK();
}

colstore::ColumnStoreStats DiskNodeStore::column_stats() const {
  if (columns_ == nullptr) return {};
  return columns_->Stats();
}

StatusOr<ColumnBlobs> DiskNodeStore::GetColumns(uint32_t pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SSDB_ASSIGN_OR_RETURN(uint64_t rid, pre_index_->Get(pre));
  SSDB_ASSIGN_OR_RETURN(NodeRow row, FetchRow(rid));
  ColumnBlobs blobs;
  if (columns_ == nullptr) {
    // Pre-§12 layout: the blobs ride in the heap row.
    blobs.agg = std::move(row.agg);
    blobs.verify = std::move(row.verify);
    return blobs;
  }
  StatusOr<std::string> agg =
      columns_->Get(colstore::Family::kAgg, row.ShareNonce());
  if (agg.ok()) {
    blobs.agg = std::move(*agg);
  } else if (!agg.status().IsNotFound()) {
    return agg.status();
  }
  StatusOr<std::string> verify =
      columns_->Get(colstore::Family::kVerify, row.ShareNonce());
  if (verify.ok()) {
    blobs.verify = std::move(*verify);
  } else if (!verify.status().IsNotFound()) {
    return verify.status();
  }
  return blobs;
}

// --- Two-phase mutation protocol (DESIGN.md §12) -----------------------------

std::string DiskNodeStore::JournalPath() const { return path_ + ".journal"; }

StatusOr<MutationState> DiskNodeStore::GetMutationState() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MutationState state;
  state.version = version_;
  state.next_nonce = next_nonce_;
  state.pending_txn = pending_txn_;
  return state;
}

Status DiskNodeStore::WriteJournalLocked(uint64_t txn,
                                         const MutationPlan& plan) {
  std::string payload;
  PutVarint64(&payload, txn);
  PutLengthPrefixed(&payload, EncodeMutationPlan(plan));
  std::string contents(kJournalMagic, kJournalMagicBytes);
  contents += payload;
  PutFixed32(&contents, Fnv1a(payload));
  return WriteFileDurable(JournalPath(), contents);
}

Status DiskNodeStore::PrepareMutation(uint64_t txn, const MutationPlan& plan) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (version_ >= txn) return Status::OK();  // already committed; idempotent
  SSDB_RETURN_IF_ERROR(ValidateMutationPlan(plan));
  if (plan.base_version != version_) {
    return Status::FailedPrecondition(
        "mutation planned against version " +
        std::to_string(plan.base_version) + " but the store is at version " +
        std::to_string(version_) + " (re-plan and retry)");
  }
  if (txn != plan.base_version + 1) {
    return Status::InvalidArgument("mutation txn must be base_version + 1");
  }
  if (pending_txn_ != 0 && pending_txn_ != txn) {
    return Status::FailedPrecondition(
        "another mutation (txn " + std::to_string(pending_txn_) +
        ") is prepared and undecided");
  }
  if (plan.next_nonce < next_nonce_) {
    return Status::InvalidArgument(
        "mutation nonce watermark moves backwards");
  }
  SSDB_RETURN_IF_ERROR(WriteJournalLocked(txn, plan));
  pending_txn_ = txn;
  pending_plan_ = plan;
  return Status::OK();
}

Status DiskNodeStore::CommitMutation(uint64_t txn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (version_ >= txn) return Status::OK();  // idempotent re-drive
  if (pending_txn_ != txn) {
    return Status::FailedPrecondition(
        "no prepared mutation for txn " + std::to_string(txn));
  }
  SSDB_RETURN_IF_ERROR(ApplyPlanLocked(pending_plan_));
  version_ = txn;
  next_nonce_ = std::max(next_nonce_, pending_plan_.next_nonce);
  // Make the applied state durable before dropping the journal: a crash
  // anywhere before the unlink re-presents the txn as pending, and the
  // version check above makes the re-driven commit a no-op.
  SSDB_RETURN_IF_ERROR(SaveRoots());
  SSDB_RETURN_IF_ERROR(pool_->FlushAll());
  SSDB_RETURN_IF_ERROR(pager_->Sync());
  if (columns_ != nullptr) {
    SSDB_RETURN_IF_ERROR(columns_->Flush());
  }
  SSDB_RETURN_IF_ERROR(RemoveFileIfExists(JournalPath()));
  pending_txn_ = 0;
  pending_plan_ = MutationPlan();
  return Status::OK();
}

Status DiskNodeStore::AbortMutation(uint64_t txn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (pending_txn_ == txn) {
    SSDB_RETURN_IF_ERROR(RemoveFileIfExists(JournalPath()));
    pending_txn_ = 0;
    pending_plan_ = MutationPlan();
    return Status::OK();
  }
  if (version_ >= txn) {
    return Status::FailedPrecondition(
        "txn " + std::to_string(txn) + " already committed; cannot abort");
  }
  return Status::OK();  // nothing prepared — an abort of a no-op is a no-op
}

Status DiskNodeStore::EraseRowLocked(uint32_t pre) {
  StatusOr<uint64_t> rid = pre_index_->Get(pre);
  if (!rid.ok()) {
    if (rid.status().IsNotFound()) return Status::OK();
    return rid.status();
  }
  SSDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(*rid));
  SSDB_ASSIGN_OR_RETURN(NodeRow row, DecodeNodeRow(record));
  SSDB_RETURN_IF_ERROR(heap_->Delete(*rid));
  SSDB_RETURN_IF_ERROR(pre_index_->Delete(pre));
  SSDB_RETURN_IF_ERROR(
      parent_index_->Delete(CompositeKey(row.parent, row.pre)));
  SSDB_RETURN_IF_ERROR(post_index_->Delete(CompositeKey(row.post, row.pre)));
  if (columns_ != nullptr) {
    SSDB_RETURN_IF_ERROR(
        columns_->Erase(colstore::Family::kAgg, row.ShareNonce()));
    SSDB_RETURN_IF_ERROR(
        columns_->Erase(colstore::Family::kVerify, row.ShareNonce()));
  }
  --node_count_;
  payload_bytes_ -= record.size();
  structure_bytes_ -= record.size() - row.share.size();
  return Status::OK();
}

Status DiskNodeStore::ApplyPlanLocked(const MutationPlan& plan) {
  // 1. Erase the deleted subtree's pre range.
  if (plan.erase_lo <= plan.erase_hi) {
    std::vector<uint32_t> victims;
    SSDB_RETURN_IF_ERROR(pre_index_->Scan(
        plan.erase_lo, static_cast<uint64_t>(plan.erase_hi) + 1,
        [&](uint64_t key, uint64_t) {
          victims.push_back(static_cast<uint32_t>(key));
          return true;
        }));
    for (uint32_t pre : victims) {
      SSDB_RETURN_IF_ERROR(EraseRowLocked(pre));
    }
  }

  // 2. Shift the tail: every surviving row with pre > shift_pre_gt moves by
  // shift_delta (pre and post together — see storage/mutation.h for why the
  // two shift by the same amount); parent pointers above the gap follow. A
  // row shifted off its encode position for the first time records its
  // original pre as its nonce, keeping its untouched shares and blobs
  // addressable. Old index entries are all removed before any new ones go
  // in, so the moving key ranges never collide.
  if (plan.shift_delta != 0) {
    std::vector<std::pair<uint64_t, NodeRow>> moved;  // old rid, old row
    Status fold_status = Status::OK();
    SSDB_RETURN_IF_ERROR(pre_index_->Scan(
        static_cast<uint64_t>(plan.shift_pre_gt) + 1, UINT64_MAX,
        [&](uint64_t, uint64_t rid) {
          StatusOr<std::string> record = heap_->Get(rid);
          if (!record.ok()) {
            fold_status = record.status();
            return false;
          }
          StatusOr<NodeRow> row = DecodeNodeRow(*record);
          if (!row.ok()) {
            fold_status = row.status();
            return false;
          }
          moved.emplace_back(rid, std::move(*row));
          return true;
        }));
    SSDB_RETURN_IF_ERROR(fold_status);
    for (const auto& [rid, row] : moved) {
      SSDB_RETURN_IF_ERROR(heap_->Delete(rid));
      SSDB_RETURN_IF_ERROR(pre_index_->Delete(row.pre));
      SSDB_RETURN_IF_ERROR(
          parent_index_->Delete(CompositeKey(row.parent, row.pre)));
      SSDB_RETURN_IF_ERROR(
          post_index_->Delete(CompositeKey(row.post, row.pre)));
    }
    for (auto& [rid, row] : moved) {
      const size_t old_size = EncodeNodeRow(row).size();
      if (row.nonce == 0) row.nonce = row.pre;
      row.pre = static_cast<uint32_t>(row.pre + plan.shift_delta);
      row.post = static_cast<uint32_t>(row.post + plan.shift_delta);
      if (row.parent > plan.shift_pre_gt) {
        row.parent = static_cast<uint32_t>(row.parent + plan.shift_delta);
      }
      std::string encoded = EncodeNodeRow(row);
      SSDB_ASSIGN_OR_RETURN(RecordId new_rid, heap_->Append(encoded));
      SSDB_RETURN_IF_ERROR(pre_index_->Insert(row.pre, new_rid));
      SSDB_RETURN_IF_ERROR(
          parent_index_->Insert(CompositeKey(row.parent, row.pre), new_rid));
      SSDB_RETURN_IF_ERROR(
          post_index_->Insert(CompositeKey(row.post, row.pre), new_rid));
      payload_bytes_ += encoded.size() - old_size;
      structure_bytes_ += encoded.size() - old_size;
    }
  }

  // 3. Upsert the re-shared rows (root path + any inserted subtree).
  for (const NodeRow& row : plan.upserts) {
    SSDB_RETURN_IF_ERROR(EraseRowLocked(row.pre));
    SSDB_RETURN_IF_ERROR(InsertLocked(row));
  }
  return Status::OK();
}

}  // namespace ssdb::storage
