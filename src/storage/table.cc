#include "storage/table.h"

#include <mutex>

#include "util/logging.h"
#include "util/varint.h"

namespace ssdb::storage {
namespace {

// Catalog keys.
constexpr char kHeapFirst[] = "heap_first";
constexpr char kHeapLast[] = "heap_last";
constexpr char kPreRoot[] = "pre_root";
constexpr char kParentRoot[] = "parent_root";
constexpr char kPostRoot[] = "post_root";
constexpr char kNodeCount[] = "node_count";
constexpr char kPayloadBytes[] = "payload_bytes";
constexpr char kStructureBytes[] = "structure_bytes";

uint64_t CompositeKey(uint32_t column_value, uint32_t pre) {
  return (static_cast<uint64_t>(column_value) << 32) | pre;
}

}  // namespace

StatusOr<std::unique_ptr<DiskNodeStore>> DiskNodeStore::Create(
    const std::string& path, const DiskStoreOptions& options) {
  auto store = std::unique_ptr<DiskNodeStore>(new DiskNodeStore());
  SSDB_ASSIGN_OR_RETURN(store->pager_, Pager::Open(path, true));
  if (store->pager_->GetMetaSlot(0) != 0) {
    return Status::AlreadyExists(path + " already contains a database");
  }
  store->pool_ = std::make_unique<BufferPool>(store->pager_.get(),
                                              options.buffer_pool_pages);
  SSDB_ASSIGN_OR_RETURN(Catalog catalog, Catalog::Create(store->pool_.get()));
  store->catalog_ = std::move(catalog);
  SSDB_RETURN_IF_ERROR(
      store->pager_->SetMetaSlot(0, store->catalog_->page()));

  SSDB_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(store->pool_.get()));
  store->heap_ = std::move(heap);
  SSDB_ASSIGN_OR_RETURN(BTree pre, BTree::Create(store->pool_.get()));
  store->pre_index_ = std::move(pre);
  SSDB_ASSIGN_OR_RETURN(BTree parent, BTree::Create(store->pool_.get()));
  store->parent_index_ = std::move(parent);
  SSDB_ASSIGN_OR_RETURN(BTree post, BTree::Create(store->pool_.get()));
  store->post_index_ = std::move(post);

  SSDB_RETURN_IF_ERROR(store->SaveRoots());
  return store;
}

StatusOr<std::unique_ptr<DiskNodeStore>> DiskNodeStore::Open(
    const std::string& path, const DiskStoreOptions& options) {
  auto store = std::unique_ptr<DiskNodeStore>(new DiskNodeStore());
  SSDB_ASSIGN_OR_RETURN(store->pager_, Pager::Open(path, false));
  PageId catalog_page = static_cast<PageId>(store->pager_->GetMetaSlot(0));
  if (catalog_page == 0) {
    return Status::Corruption(path + " has no catalog");
  }
  store->pool_ = std::make_unique<BufferPool>(store->pager_.get(),
                                              options.buffer_pool_pages);
  SSDB_ASSIGN_OR_RETURN(Catalog catalog,
                        Catalog::Load(store->pool_.get(), catalog_page));
  store->catalog_ = std::move(catalog);

  SSDB_ASSIGN_OR_RETURN(uint64_t heap_first, store->catalog_->Get(kHeapFirst));
  SSDB_ASSIGN_OR_RETURN(uint64_t heap_last, store->catalog_->Get(kHeapLast));
  SSDB_ASSIGN_OR_RETURN(
      HeapFile heap,
      HeapFile::Open(store->pool_.get(), static_cast<PageId>(heap_first),
                     static_cast<PageId>(heap_last)));
  store->heap_ = std::move(heap);

  SSDB_ASSIGN_OR_RETURN(uint64_t pre_root, store->catalog_->Get(kPreRoot));
  store->pre_index_ =
      BTree::Open(store->pool_.get(), static_cast<PageId>(pre_root));
  SSDB_ASSIGN_OR_RETURN(uint64_t parent_root,
                        store->catalog_->Get(kParentRoot));
  store->parent_index_ =
      BTree::Open(store->pool_.get(), static_cast<PageId>(parent_root));
  SSDB_ASSIGN_OR_RETURN(uint64_t post_root, store->catalog_->Get(kPostRoot));
  store->post_index_ =
      BTree::Open(store->pool_.get(), static_cast<PageId>(post_root));

  store->node_count_ = store->catalog_->GetOr(kNodeCount, 0);
  store->payload_bytes_ = store->catalog_->GetOr(kPayloadBytes, 0);
  store->structure_bytes_ = store->catalog_->GetOr(kStructureBytes, 0);
  return store;
}

DiskNodeStore::~DiskNodeStore() {
  Status s = Flush();
  if (!s.ok()) {
    SSDB_LOG(ERROR) << "DiskNodeStore flush on close failed: " << s.ToString();
  }
}

Status DiskNodeStore::SaveRoots() {
  catalog_->Set(kHeapFirst, heap_->first_page());
  catalog_->Set(kHeapLast, heap_->last_page());
  catalog_->Set(kPreRoot, pre_index_->root());
  catalog_->Set(kParentRoot, parent_index_->root());
  catalog_->Set(kPostRoot, post_index_->root());
  catalog_->Set(kNodeCount, node_count_);
  catalog_->Set(kPayloadBytes, payload_bytes_);
  catalog_->Set(kStructureBytes, structure_bytes_);
  return catalog_->Save();
}

Status DiskNodeStore::Insert(const NodeRow& row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (row.pre == 0) {
    return Status::InvalidArgument("pre numbering starts at 1");
  }
  std::string encoded = EncodeNodeRow(row);
  SSDB_ASSIGN_OR_RETURN(RecordId rid, heap_->Append(encoded));
  // AlreadyExists here means a duplicate pre value.
  SSDB_RETURN_IF_ERROR(pre_index_->Insert(row.pre, rid));
  SSDB_RETURN_IF_ERROR(
      parent_index_->Insert(CompositeKey(row.parent, row.pre), rid));
  SSDB_RETURN_IF_ERROR(
      post_index_->Insert(CompositeKey(row.post, row.pre), rid));
  ++node_count_;
  payload_bytes_ += encoded.size();
  structure_bytes_ += encoded.size() - row.share.size();
  return Status::OK();
}

StatusOr<NodeRow> DiskNodeStore::FetchRow(RecordId rid) {
  SSDB_ASSIGN_OR_RETURN(std::string record, heap_->Get(rid));
  return DecodeNodeRow(record);
}

StatusOr<NodeRow> DiskNodeStore::GetByPre(uint32_t pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SSDB_ASSIGN_OR_RETURN(uint64_t rid, pre_index_->Get(pre));
  return FetchRow(rid);
}

StatusOr<NodeRow> DiskNodeStore::GetRoot() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Root is the unique row with parent == 0: composite keys [0, 1<<32).
  RecordId rid = kInvalidRecordId;
  SSDB_RETURN_IF_ERROR(parent_index_->Scan(
      0, uint64_t{1} << 32, [&](uint64_t, uint64_t value) {
        rid = value;
        return false;  // first match is the root
      }));
  if (rid == kInvalidRecordId) return Status::NotFound("no root row");
  return FetchRow(rid);
}

StatusOr<std::vector<NodeRow>> DiskNodeStore::GetChildren(
    uint32_t parent_pre) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<RecordId> rids;
  SSDB_RETURN_IF_ERROR(parent_index_->Scan(
      CompositeKey(parent_pre, 0), CompositeKey(parent_pre + 1, 0),
      [&](uint64_t, uint64_t value) {
        rids.push_back(value);
        return true;
      }));
  std::vector<NodeRow> rows;
  rows.reserve(rids.size());
  for (RecordId rid : rids) {
    SSDB_ASSIGN_OR_RETURN(NodeRow row, FetchRow(rid));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status DiskNodeStore::ScanDescendants(
    uint32_t pre, uint32_t post,
    const std::function<bool(const NodeRow&)>& fn) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Descendants are the contiguous pre range right after `pre`; the first
  // row with post > post is the first node outside the subtree, so the scan
  // stops without touching the rest of the index.
  Status inner = Status::OK();
  SSDB_RETURN_IF_ERROR(pre_index_->Scan(
      static_cast<uint64_t>(pre) + 1, UINT64_MAX,
      [&](uint64_t, uint64_t rid) {
        StatusOr<NodeRow> row = FetchRow(rid);
        if (!row.ok()) {
          inner = row.status();
          return false;
        }
        if (row->post > post) return false;  // left the subtree
        return fn(*row);
      }));
  return inner;
}

StatusOr<uint64_t> DiskNodeStore::NodeCount() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return node_count_;
}

StatusOr<StorageStats> DiskNodeStore::Stats() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  StorageStats stats;
  stats.node_count = node_count_;
  SSDB_ASSIGN_OR_RETURN(uint64_t heap_pages, heap_->PageCount());
  stats.data_bytes = heap_pages * kPageSize;
  SSDB_ASSIGN_OR_RETURN(uint64_t pre_pages, pre_index_->PageCount());
  SSDB_ASSIGN_OR_RETURN(uint64_t parent_pages, parent_index_->PageCount());
  SSDB_ASSIGN_OR_RETURN(uint64_t post_pages, post_index_->PageCount());
  stats.index_bytes = (pre_pages + parent_pages + post_pages) * kPageSize;
  stats.file_bytes = pager_->file_bytes();
  stats.payload_bytes = payload_bytes_;
  stats.structure_bytes = structure_bytes_;
  return stats;
}

Status DiskNodeStore::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (catalog_.has_value()) {
    SSDB_RETURN_IF_ERROR(SaveRoots());
  }
  if (pool_ != nullptr) {
    SSDB_RETURN_IF_ERROR(pool_->FlushAll());
  }
  if (pager_ != nullptr) {
    SSDB_RETURN_IF_ERROR(pager_->Sync());
  }
  return Status::OK();
}

}  // namespace ssdb::storage
