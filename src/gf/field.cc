#include "gf/field.h"

#include "gf/irreducible.h"
#include "gf/modular.h"
#include "gf/prime.h"
#include "util/bitpack.h"
#include "util/logging.h"

namespace ssdb::gf {
namespace {

// Raw (table-free) multiplication used only while building the tables.
// Elements are digit vectors (length e) over F_p; modulus is monic degree e.
std::vector<uint32_t> RawMul(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             const std::vector<uint32_t>& modulus, uint32_t p,
                             uint32_t e) {
  std::vector<uint32_t> prod(2 * e - 1, 0);
  for (uint32_t i = 0; i < e; ++i) {
    if (a[i] == 0) continue;
    for (uint32_t j = 0; j < e; ++j) {
      prod[i + j] = static_cast<uint32_t>(
          AddMod(prod[i + j], MulMod(a[i], b[j], p), p));
    }
  }
  // Reduce modulo the monic irreducible: x^e = -(modulus[0..e-1]).
  for (int k = static_cast<int>(2 * e - 2); k >= static_cast<int>(e); --k) {
    uint32_t c = prod[k];
    if (c == 0) continue;
    prod[k] = 0;
    for (uint32_t i = 0; i < e; ++i) {
      uint64_t sub = MulMod(c, modulus[i], p);
      prod[k - e + i] = static_cast<uint32_t>(
          SubMod(prod[k - e + i], sub, p));
    }
  }
  prod.resize(e);
  return prod;
}

uint32_t DigitsToCode(const std::vector<uint32_t>& digits, uint32_t p) {
  uint32_t code = 0;
  for (size_t i = digits.size(); i > 0; --i) {
    code = code * p + digits[i - 1];
  }
  return code;
}

std::vector<uint32_t> CodeToDigits(uint32_t code, uint32_t p, uint32_t e) {
  std::vector<uint32_t> digits(e, 0);
  for (uint32_t i = 0; i < e; ++i) {
    digits[i] = code % p;
    code /= p;
  }
  return digits;
}

}  // namespace

StatusOr<Field> Field::Make(uint32_t p, uint32_t e) {
  if (!IsPrime(p)) {
    return Status::InvalidArgument("field characteristic must be prime, got " +
                                   std::to_string(p));
  }
  if (e < 1) return Status::InvalidArgument("field extension degree e < 1");
  uint64_t q64 = 1;
  for (uint32_t i = 0; i < e; ++i) {
    q64 *= p;
    if (q64 > (1ULL << 16)) {
      return Status::InvalidArgument("p^e exceeds 2^16; tables too large");
    }
  }
  uint32_t q = static_cast<uint32_t>(q64);
  if (q < 3) {
    return Status::InvalidArgument(
        "field too small: need q >= 3 so that F_q* is non-trivial");
  }

  Field field;
  field.p_ = p;
  field.e_ = e;
  field.q_ = q;
  field.bit_width_ = BitWidth(q);
  SSDB_ASSIGN_OR_RETURN(field.modulus_, FindIrreducible(p, e));

  // A multiplication oracle on codes, valid before tables exist.
  auto raw_mul = [&](uint32_t a, uint32_t b) -> uint32_t {
    if (e == 1) return static_cast<uint32_t>(MulMod(a, b, p));
    auto da = CodeToDigits(a, p, e);
    auto db = CodeToDigits(b, p, e);
    return DigitsToCode(RawMul(da, db, field.modulus_, p, e), p);
  };
  auto raw_pow = [&](uint32_t a, uint64_t k) -> uint32_t {
    uint32_t result = 1;
    uint32_t base = a;
    while (k > 0) {
      if (k & 1) result = raw_mul(result, base);
      base = raw_mul(base, base);
      k >>= 1;
    }
    return result;
  };

  // Find a generator of F_q*: g such that g^((q-1)/f) != 1 for every prime
  // factor f of q-1.
  const uint32_t n = q - 1;
  std::vector<uint64_t> factors = DistinctPrimeFactors(n);
  uint32_t g = 0;
  for (uint32_t candidate = 2; candidate < q; ++candidate) {
    bool ok = true;
    for (uint64_t f : factors) {
      if (raw_pow(candidate, n / f) == 1) {
        ok = false;
        break;
      }
    }
    if (ok) {
      g = candidate;
      break;
    }
  }
  if (g == 0) return Status::Internal("no generator found (impossible)");
  field.g_ = g;

  auto log_table = std::make_shared<std::vector<uint16_t>>(q, 0);
  auto exp_table = std::make_shared<std::vector<uint16_t>>(2 * n, 0);
  uint32_t acc = 1;
  for (uint32_t i = 0; i < n; ++i) {
    (*exp_table)[i] = static_cast<uint16_t>(acc);
    (*exp_table)[i + n] = static_cast<uint16_t>(acc);
    (*log_table)[acc] = static_cast<uint16_t>(i);
    acc = raw_mul(acc, g);
  }
  if (acc != 1) return Status::Internal("generator order mismatch");
  field.log_ = std::move(log_table);
  field.exp_ = std::move(exp_table);
  return field;
}

Elem Field::Inv(Elem a) const {
  SSDB_DCHECK(a != 0) << "inverse of zero";
  uint32_t n_ = n();
  uint32_t l = (*log_)[a];
  return (*exp_)[(n_ - l) % n_];
}

Elem Field::Pow(Elem a, uint64_t k) const {
  if (a == 0) return k == 0 ? 1 : 0;
  uint64_t l = (*log_)[a];
  return (*exp_)[(l * (k % n())) % n()];
}

uint32_t Field::Log(Elem a) const {
  SSDB_DCHECK(a != 0) << "discrete log of zero";
  return (*log_)[a];
}

Elem Field::AddExt(Elem a, Elem b) const {
  uint32_t result = 0;
  uint32_t mult = 1;
  for (uint32_t i = 0; i < e_; ++i) {
    uint32_t da = a % p_;
    uint32_t db = b % p_;
    a /= p_;
    b /= p_;
    uint32_t s = da + db;
    if (s >= p_) s -= p_;
    result += s * mult;
    mult *= p_;
  }
  return result;
}

Elem Field::NegExt(Elem a) const {
  uint32_t result = 0;
  uint32_t mult = 1;
  for (uint32_t i = 0; i < e_; ++i) {
    uint32_t da = a % p_;
    a /= p_;
    result += (da == 0 ? 0 : p_ - da) * mult;
    mult *= p_;
  }
  return result;
}

std::vector<uint32_t> Field::Digits(Elem a) const {
  return CodeToDigits(a, p_, e_);
}

Elem Field::FromDigits(const std::vector<uint32_t>& digits) const {
  SSDB_DCHECK(digits.size() == e_);
  return DigitsToCode(digits, p_);
}

}  // namespace ssdb::gf
