#include "gf/share.h"

#include <utility>

#include "util/logging.h"

namespace ssdb::gf {

SharePair SplitWithRandomness(const Ring& ring, const RingElem& secret,
                              RingElem randomness) {
  SSDB_DCHECK(randomness.size() == ring.n());
  SharePair pair;
  pair.server = ring.Sub(secret, randomness);
  pair.client = std::move(randomness);
  return pair;
}

RingElem Combine(const Ring& ring, const RingElem& client,
                 const RingElem& server) {
  return ring.Add(client, server);
}

Elem EvalShares(const Ring& ring, const RingElem& client,
                const RingElem& server, Elem t) {
  return ring.field().Add(ring.Eval(client, t), ring.Eval(server, t));
}

MultiShares SplitMulti(const Ring& ring, const RingElem& secret,
                       RingElem client_randomness,
                       std::vector<RingElem> extra) {
  SSDB_DCHECK(client_randomness.size() == ring.n());
  MultiShares shares;
  RingElem remainder = ring.Sub(secret, client_randomness);
  for (const RingElem& slice : extra) {
    SSDB_DCHECK(slice.size() == ring.n());
    remainder = ring.Sub(remainder, slice);
  }
  shares.client = std::move(client_randomness);
  shares.servers.reserve(extra.size() + 1);
  shares.servers.push_back(std::move(remainder));
  for (RingElem& slice : extra) {
    shares.servers.push_back(std::move(slice));
  }
  return shares;
}

RingElem CombineMulti(const Ring& ring, const RingElem& client,
                      const std::vector<RingElem>& servers) {
  RingElem sum = client;
  for (const RingElem& slice : servers) {
    ring.AddInto(&sum, slice);
  }
  return sum;
}

Elem EvalMultiShares(const Ring& ring, const RingElem& client,
                     const std::vector<RingElem>& servers, Elem t) {
  Elem sum = ring.Eval(client, t);
  for (const RingElem& slice : servers) {
    sum = ring.field().Add(sum, ring.Eval(slice, t));
  }
  return sum;
}

}  // namespace ssdb::gf
