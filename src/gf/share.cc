#include "gf/share.h"

#include "util/logging.h"

namespace ssdb::gf {

SharePair SplitWithRandomness(const Ring& ring, const RingElem& secret,
                              RingElem randomness) {
  SSDB_DCHECK(randomness.size() == ring.n());
  SharePair pair;
  pair.server = ring.Sub(secret, randomness);
  pair.client = std::move(randomness);
  return pair;
}

RingElem Combine(const Ring& ring, const RingElem& client,
                 const RingElem& server) {
  return ring.Add(client, server);
}

Elem EvalShares(const Ring& ring, const RingElem& client,
                const RingElem& server, Elem t) {
  return ring.field().Add(ring.Eval(client, t), ring.Eval(server, t));
}

}  // namespace ssdb::gf
