// The quotient ring R_q = F_q[x]/(x^(q-1) - 1) in which all node encodings
// live (fig. 1(d)). Elements are dense coefficient vectors of fixed length
// n = q-1.
//
// Two facts drive the design (see DESIGN.md §2):
//  * x^n = 1, so multiplication by x is a cyclic shift — multiplying by the
//    monomial (x - t) is O(n).
//  * x^n - 1 = prod_{t != 0} (x - t), so R_q is isomorphic to F_q^n via
//    evaluation at the non-zero points; reduction preserves those
//    evaluations, which is why containment testing on reduced shares works.

#ifndef SSDB_GF_RING_H_
#define SSDB_GF_RING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gf/field.h"
#include "gf/poly.h"
#include "util/statusor.h"

namespace ssdb::gf {

// Always has size Ring::n(); index i is the coefficient of x^i.
using RingElem = std::vector<Elem>;

class Ring {
 public:
  explicit Ring(Field field) : field_(std::move(field)) {}

  const Field& field() const { return field_; }
  uint32_t n() const { return field_.n(); }
  // Serialized size: n coefficients of bit_width bits (the paper's
  // "(p^e-1) log2(p^e) bits").
  size_t serialized_bytes() const {
    return (static_cast<size_t>(n()) * field_.bit_width() + 7) / 8;
  }

  RingElem Zero() const { return RingElem(n(), 0); }
  RingElem One() const;

  // Reduction of an arbitrary polynomial: x^k folds onto x^(k mod n).
  RingElem Reduce(const Poly& f) const;

  // The reduced monomial (x - t).
  RingElem XMinus(Elem t) const;

  RingElem Add(const RingElem& a, const RingElem& b) const;
  RingElem Sub(const RingElem& a, const RingElem& b) const;
  RingElem Neg(const RingElem& a) const;
  void AddInto(RingElem* a, const RingElem& b) const;

  // Full cyclic convolution, O(n^2). The DFT path in gf/dft.h is the fast
  // alternative used by the encoder.
  RingElem Mul(const RingElem& a, const RingElem& b) const;

  // (x - t) * f via the cyclic-shift identity, O(n).
  RingElem MulXMinus(const RingElem& f, Elem t) const;

  // Horner evaluation at a point. For t != 0 this equals the evaluation of
  // any preimage polynomial.
  Elem Eval(const RingElem& f, Elem t) const;

  bool IsZero(const RingElem& f) const;

  // Bit-packed serialization (n * bit_width bits, little-endian).
  std::string Serialize(const RingElem& f) const;
  StatusOr<RingElem> Deserialize(std::string_view data) const;

  std::string ToString(const RingElem& f) const;

 private:
  Field field_;
};

}  // namespace ssdb::gf

#endif  // SSDB_GF_RING_H_
