// Evaluation-domain ("DFT") view of the ring R_q = F_q[x]/(x^(q-1) - 1).
//
// Because x^(q-1) - 1 splits into distinct linear factors over F_q, the map
//   coeffs  ->  (f(g^0), f(g^1), ..., f(g^(n-1)))       (g a generator)
// is a ring isomorphism R_q -> F_q^n: multiplication becomes pointwise.
// The encoder exploits this — a node's evaluation vector is
// (v - map(node)) * prod(children vectors), O(n) per node — and converts to
// coefficient form for storage with one inverse transform. bench_field
// quantifies the win over coefficient-domain convolution.

#ifndef SSDB_GF_DFT_H_
#define SSDB_GF_DFT_H_

#include <vector>

#include "gf/ring.h"

namespace ssdb::gf {

// Values of a ring element at the points g^0 .. g^(n-1).
using EvalVector = std::vector<Elem>;

class Evaluator {
 public:
  explicit Evaluator(Ring ring);

  const Ring& ring() const { return ring_; }
  uint32_t n() const { return ring_.n(); }
  // Point i is generator^i.
  Elem point(uint32_t i) const { return points_[i]; }
  const std::vector<Elem>& points() const { return points_; }

  // Coefficients -> evaluations at all non-zero points. O(n^2).
  EvalVector Forward(const RingElem& coeffs) const;

  // Evaluations -> coefficients (inverse DFT). O(n^2).
  RingElem Inverse(const EvalVector& evals) const;

  // Evaluation vector of the monomial (x - t): entry i is g^i - t.
  EvalVector XMinusEvals(Elem t) const;

  // a *= b pointwise.
  void PointwiseMulInto(EvalVector* a, const EvalVector& b) const;

 private:
  Ring ring_;
  std::vector<Elem> points_;       // g^i
  std::vector<Elem> inv_points_;   // g^-i
  Elem n_inverse_;                 // (q-1)^-1 in F_q
};

}  // namespace ssdb::gf

#endif  // SSDB_GF_DFT_H_
