#include "gf/modular.h"

namespace ssdb::gf {

uint64_t AddMod(uint64_t a, uint64_t b, uint64_t m) {
  uint64_t s = a + b;
  if (s >= m || s < a) s -= m;
  return s;
}

uint64_t SubMod(uint64_t a, uint64_t b, uint64_t m) {
  return a >= b ? a - b : m - (b - a);
}

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

uint64_t PowMod(uint64_t a, uint64_t k, uint64_t m) {
  if (m == 1) return 0;
  uint64_t result = 1;
  a %= m;
  while (k > 0) {
    if (k & 1) result = MulMod(result, a, m);
    a = MulMod(a, a, m);
    k >>= 1;
  }
  return result;
}

uint64_t InvMod(uint64_t a, uint64_t m) {
  // Extended Euclid over signed 128-bit to avoid overflow.
  __int128 t = 0, new_t = 1;
  __int128 r = m, new_r = a % m;
  while (new_r != 0) {
    __int128 quotient = r / new_r;
    __int128 tmp_t = t - quotient * new_t;
    t = new_t;
    new_t = tmp_t;
    __int128 tmp_r = r - quotient * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r != 1) return 0;  // not invertible
  if (t < 0) t += m;
  return static_cast<uint64_t>(t);
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace ssdb::gf
