// Modular arithmetic on 64-bit integers; foundation for the prime-field fast
// path and for primality testing.

#ifndef SSDB_GF_MODULAR_H_
#define SSDB_GF_MODULAR_H_

#include <cstdint>

namespace ssdb::gf {

// (a + b) mod m, safe for a, b < m < 2^63.
uint64_t AddMod(uint64_t a, uint64_t b, uint64_t m);

// (a - b) mod m.
uint64_t SubMod(uint64_t a, uint64_t b, uint64_t m);

// (a * b) mod m using 128-bit intermediate.
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m);

// a^k mod m by square-and-multiply.
uint64_t PowMod(uint64_t a, uint64_t k, uint64_t m);

// Multiplicative inverse mod m (m need not be prime but gcd(a, m) must be 1).
// Returns 0 when no inverse exists.
uint64_t InvMod(uint64_t a, uint64_t m);

// Greatest common divisor.
uint64_t Gcd(uint64_t a, uint64_t b);

}  // namespace ssdb::gf

#endif  // SSDB_GF_MODULAR_H_
