#include "gf/poly.h"

#include <algorithm>

#include "util/logging.h"

namespace ssdb::gf {

void PolyNormalize(Poly* f) {
  while (!f->coeffs.empty() && f->coeffs.back() == 0) {
    f->coeffs.pop_back();
  }
}

Poly PolyXMinus(const Field& field, Elem t) {
  return Poly{{field.Neg(t), 1}};
}

Poly PolyAdd(const Field& field, const Poly& a, const Poly& b) {
  Poly out;
  out.coeffs.resize(std::max(a.coeffs.size(), b.coeffs.size()), 0);
  for (size_t i = 0; i < out.coeffs.size(); ++i) {
    Elem av = i < a.coeffs.size() ? a.coeffs[i] : 0;
    Elem bv = i < b.coeffs.size() ? b.coeffs[i] : 0;
    out.coeffs[i] = field.Add(av, bv);
  }
  PolyNormalize(&out);
  return out;
}

Poly PolySub(const Field& field, const Poly& a, const Poly& b) {
  Poly out;
  out.coeffs.resize(std::max(a.coeffs.size(), b.coeffs.size()), 0);
  for (size_t i = 0; i < out.coeffs.size(); ++i) {
    Elem av = i < a.coeffs.size() ? a.coeffs[i] : 0;
    Elem bv = i < b.coeffs.size() ? b.coeffs[i] : 0;
    out.coeffs[i] = field.Sub(av, bv);
  }
  PolyNormalize(&out);
  return out;
}

Poly PolyMul(const Field& field, const Poly& a, const Poly& b) {
  if (a.IsZero() || b.IsZero()) return Poly{};
  Poly out;
  out.coeffs.assign(a.coeffs.size() + b.coeffs.size() - 1, 0);
  for (size_t i = 0; i < a.coeffs.size(); ++i) {
    if (a.coeffs[i] == 0) continue;
    for (size_t j = 0; j < b.coeffs.size(); ++j) {
      out.coeffs[i + j] = field.Add(out.coeffs[i + j],
                                    field.Mul(a.coeffs[i], b.coeffs[j]));
    }
  }
  PolyNormalize(&out);
  return out;
}

Poly PolyScale(const Field& field, const Poly& a, Elem s) {
  if (s == 0) return Poly{};
  Poly out = a;
  for (Elem& c : out.coeffs) c = field.Mul(c, s);
  return out;
}

Elem PolyEval(const Field& field, const Poly& f, Elem x) {
  Elem acc = 0;
  for (size_t i = f.coeffs.size(); i > 0; --i) {
    acc = field.Add(field.Mul(acc, x), f.coeffs[i - 1]);
  }
  return acc;
}

StatusOr<PolyDivision> PolyDivMod(const Field& field, const Poly& a,
                                  const Poly& b) {
  if (b.IsZero()) {
    return Status::InvalidArgument("polynomial division by zero");
  }
  PolyDivision result;
  result.remainder = a;
  PolyNormalize(&result.remainder);
  int db = b.Degree();
  Elem lead_inv = field.Inv(b.coeffs.back());
  if (result.remainder.Degree() >= db) {
    result.quotient.coeffs.assign(
        result.remainder.Degree() - db + 1, 0);
  }
  while (result.remainder.Degree() >= db) {
    int shift = result.remainder.Degree() - db;
    Elem factor = field.Mul(result.remainder.coeffs.back(), lead_inv);
    result.quotient.coeffs[shift] = factor;
    for (int i = 0; i <= db; ++i) {
      Elem sub = field.Mul(factor, b.coeffs[i]);
      result.remainder.coeffs[i + shift] =
          field.Sub(result.remainder.coeffs[i + shift], sub);
    }
    PolyNormalize(&result.remainder);
  }
  PolyNormalize(&result.quotient);
  return result;
}

Poly PolyGcd(const Field& field, Poly a, Poly b) {
  PolyNormalize(&a);
  PolyNormalize(&b);
  while (!b.IsZero()) {
    auto division = PolyDivMod(field, a, b);
    SSDB_CHECK(division.ok());
    a = std::move(b);
    b = std::move(division->remainder);
  }
  if (!a.IsZero() && a.coeffs.back() != 1) {
    a = PolyScale(field, a, field.Inv(a.coeffs.back()));
  }
  return a;
}

std::string PolyToString(const Field& field, const Poly& f) {
  (void)field;
  if (f.IsZero()) return "0";
  std::string out;
  for (size_t i = f.coeffs.size(); i > 0; --i) {
    size_t power = i - 1;
    Elem c = f.coeffs[power];
    if (c == 0) continue;
    if (!out.empty()) out += " + ";
    if (c != 1 || power == 0) out += std::to_string(c);
    if (power >= 1) out += "x";
    if (power >= 2) out += "^" + std::to_string(power);
  }
  return out;
}

}  // namespace ssdb::gf
