#include "gf/irreducible.h"

#include "gf/modular.h"
#include "gf/prime.h"
#include "util/logging.h"

namespace ssdb::gf {
namespace {

using PolyFp = std::vector<uint32_t>;  // coefficients low-to-high, mod p

void Normalize(PolyFp* f) {
  while (!f->empty() && f->back() == 0) f->pop_back();
}

int Degree(const PolyFp& f) { return static_cast<int>(f.size()) - 1; }

// r = a mod m (polynomial remainder); m monic-izable (leading coeff != 0).
PolyFp PolyMod(PolyFp a, const PolyFp& m, uint32_t p) {
  Normalize(&a);
  int dm = Degree(m);
  SSDB_DCHECK(dm >= 0);
  uint64_t lead_inv = InvMod(m.back(), p);
  while (Degree(a) >= dm) {
    int shift = Degree(a) - dm;
    uint64_t factor = MulMod(a.back(), lead_inv, p);
    for (int i = 0; i <= dm; ++i) {
      uint64_t sub = MulMod(factor, m[i], p);
      a[i + shift] = static_cast<uint32_t>(SubMod(a[i + shift], sub, p));
    }
    Normalize(&a);
  }
  return a;
}

PolyFp PolyMulMod(const PolyFp& a, const PolyFp& b, const PolyFp& m,
                  uint32_t p) {
  if (a.empty() || b.empty()) return {};
  PolyFp prod(a.size() + b.size() - 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      prod[i + j] = static_cast<uint32_t>(
          AddMod(prod[i + j], MulMod(a[i], b[j], p), p));
    }
  }
  return PolyMod(std::move(prod), m, p);
}

// x^k mod m over F_p.
PolyFp PolyXPowMod(uint64_t k, const PolyFp& m, uint32_t p) {
  PolyFp result = {1};
  PolyFp base = PolyMod({0, 1}, m, p);
  while (k > 0) {
    if (k & 1) result = PolyMulMod(result, base, m, p);
    base = PolyMulMod(base, base, m, p);
    k >>= 1;
  }
  return result;
}

PolyFp PolySub(PolyFp a, const PolyFp& b, uint32_t p) {
  if (a.size() < b.size()) a.resize(b.size(), 0);
  for (size_t i = 0; i < b.size(); ++i) {
    a[i] = static_cast<uint32_t>(SubMod(a[i], b[i], p));
  }
  Normalize(&a);
  return a;
}

PolyFp PolyGcd(PolyFp a, PolyFp b, uint32_t p) {
  Normalize(&a);
  Normalize(&b);
  while (!b.empty()) {
    PolyFp r = PolyMod(a, b, p);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

// p^e with overflow guard (inputs are small).
uint64_t IPow(uint64_t p, uint32_t e) {
  uint64_t r = 1;
  for (uint32_t i = 0; i < e; ++i) r *= p;
  return r;
}

}  // namespace

bool IsIrreducible(const std::vector<uint32_t>& poly, uint32_t p) {
  PolyFp f = poly;
  Normalize(&f);
  int e = Degree(f);
  if (e <= 0) return false;
  if (e == 1) return true;
  // Rabin's test: x^(p^e) == x (mod f), and for every prime r | e,
  // gcd(x^(p^(e/r)) - x, f) == constant.
  const PolyFp x = {0, 1};
  PolyFp xq = PolyXPowMod(IPow(p, static_cast<uint32_t>(e)), f, p);
  PolyFp diff = PolySub(xq, PolyMod(x, f, p), p);
  if (!diff.empty()) return false;
  for (uint64_t r : DistinctPrimeFactors(static_cast<uint64_t>(e))) {
    uint32_t sub_e = static_cast<uint32_t>(e / static_cast<int>(r));
    PolyFp xs = PolyXPowMod(IPow(p, sub_e), f, p);
    PolyFp g = PolyGcd(f, PolySub(xs, PolyMod(x, f, p), p), p);
    if (Degree(g) > 0) return false;
  }
  return true;
}

StatusOr<std::vector<uint32_t>> FindIrreducible(uint32_t p, uint32_t e) {
  if (p < 2 || !IsPrime(p)) {
    return Status::InvalidArgument("p must be prime");
  }
  if (e == 0) return Status::InvalidArgument("e must be >= 1");
  if (e == 1) return std::vector<uint32_t>{0, 1};

  // Enumerate the non-leading coefficients in lexicographic order. The count
  // of irreducible monic polynomials of degree e is ~p^e/e, so this ends fast.
  uint64_t limit = IPow(p, e);
  for (uint64_t code = 0; code < limit; ++code) {
    std::vector<uint32_t> f(e + 1, 0);
    uint64_t c = code;
    for (uint32_t i = 0; i < e; ++i) {
      f[i] = static_cast<uint32_t>(c % p);
      c /= p;
    }
    f[e] = 1;
    if (f[0] == 0) continue;  // divisible by x
    if (IsIrreducible(f, p)) return f;
  }
  return Status::Internal("no irreducible polynomial found (impossible)");
}

}  // namespace ssdb::gf
