// Dense polynomials over GF(q) — the *unreduced* encodings of fig. 1(c).
// Coefficients are stored low-to-high with no trailing zeros; the zero
// polynomial is the empty vector.

#ifndef SSDB_GF_POLY_H_
#define SSDB_GF_POLY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gf/field.h"
#include "util/statusor.h"

namespace ssdb::gf {

struct Poly {
  std::vector<Elem> coeffs;  // coeffs[i] multiplies x^i

  bool IsZero() const { return coeffs.empty(); }
  // Degree of the zero polynomial is -1 by convention.
  int Degree() const { return static_cast<int>(coeffs.size()) - 1; }
};

// Drops trailing zero coefficients in place.
void PolyNormalize(Poly* f);

// The monomial (x - t).
Poly PolyXMinus(const Field& field, Elem t);

Poly PolyAdd(const Field& field, const Poly& a, const Poly& b);
Poly PolySub(const Field& field, const Poly& a, const Poly& b);
Poly PolyMul(const Field& field, const Poly& a, const Poly& b);
Poly PolyScale(const Field& field, const Poly& a, Elem s);

// Horner evaluation.
Elem PolyEval(const Field& field, const Poly& f, Elem x);

// Quotient and remainder; divisor must be non-zero.
struct PolyDivision {
  Poly quotient;
  Poly remainder;
};
StatusOr<PolyDivision> PolyDivMod(const Field& field, const Poly& a,
                                  const Poly& b);

// Greatest common divisor, made monic.
Poly PolyGcd(const Field& field, Poly a, Poly b);

// Pretty-printer: "2x^3 + 3x^2 + 2x + 3".
std::string PolyToString(const Field& field, const Poly& f);

}  // namespace ssdb::gf

#endif  // SSDB_GF_POLY_H_
