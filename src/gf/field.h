// GF(p^e) — the finite field F_q from §3 of the paper. The mapping function
// sends tag names into F_q \ {0}; node polynomials live in F_q[x]/(x^(q-1)-1).
//
// Elements are represented by integer codes in [0, q): for e == 1 the code is
// the residue itself; for e > 1 the code's base-p digits are the coefficients
// of the element as a polynomial in the primitive root of the chosen
// irreducible polynomial. Multiplication/inversion use log/antilog tables
// built from a generator of the multiplicative group, so all field operations
// are O(1) (plus an O(e) digit loop for addition in extension fields).
//
// Field objects are cheap to copy: the tables live behind shared_ptr.

#ifndef SSDB_GF_FIELD_H_
#define SSDB_GF_FIELD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/statusor.h"

namespace ssdb::gf {

// An element code in [0, q). 0 is the additive identity, 1 the multiplicative
// identity (for any e, since digit vector (1,0,...) has code 1).
using Elem = uint32_t;

class Field {
 public:
  // Constructs GF(p^e). Requires p prime, e >= 1, and p^e <= 2^16 (table
  // size bound; the paper uses p=83, e=1 and p=29, e=1).
  static StatusOr<Field> Make(uint32_t p, uint32_t e = 1);

  uint32_t p() const { return p_; }
  uint32_t e() const { return e_; }
  uint32_t q() const { return q_; }
  // Number of non-zero elements == ring dimension q-1.
  uint32_t n() const { return q_ - 1; }
  // A fixed generator of the multiplicative group F_q*.
  Elem generator() const { return g_; }
  // Bits per element when serialized.
  int bit_width() const { return bit_width_; }

  bool IsValid(Elem a) const { return a < q_; }
  bool IsZero(Elem a) const { return a == 0; }

  Elem Add(Elem a, Elem b) const {
    if (e_ == 1) {
      uint32_t s = a + b;
      return s >= q_ ? s - q_ : s;
    }
    return AddExt(a, b);
  }

  Elem Neg(Elem a) const {
    if (e_ == 1) return a == 0 ? 0 : q_ - a;
    return NegExt(a);
  }

  Elem Sub(Elem a, Elem b) const { return Add(a, Neg(b)); }

  Elem Mul(Elem a, Elem b) const {
    if (a == 0 || b == 0) return 0;
    return (*exp_)[(*log_)[a] + (*log_)[b]];
  }

  // Multiplicative inverse; a must be non-zero.
  Elem Inv(Elem a) const;

  // a / b; b must be non-zero.
  Elem Div(Elem a, Elem b) const { return Mul(a, Inv(b)); }

  Elem Pow(Elem a, uint64_t k) const;

  // Discrete log base generator(); a must be non-zero. In [0, q-1).
  uint32_t Log(Elem a) const;

  // generator()^k for any k (reduced mod q-1).
  Elem GeneratorPow(uint64_t k) const { return (*exp_)[k % n()]; }

  // Reduces an arbitrary integer into the prime subfield (value mod p).
  Elem FromInt(uint64_t v) const { return static_cast<Elem>(v % p_); }

  // Base-p digit decomposition of an element code (length e).
  std::vector<uint32_t> Digits(Elem a) const;
  Elem FromDigits(const std::vector<uint32_t>& digits) const;

  // The irreducible modulus used for e > 1 (length e+1, low-to-high); for
  // e == 1 this is {0, 1} (the polynomial x).
  const std::vector<uint32_t>& modulus() const { return modulus_; }

  bool operator==(const Field& other) const {
    return p_ == other.p_ && e_ == other.e_;
  }

 private:
  Field() = default;

  Elem AddExt(Elem a, Elem b) const;
  Elem NegExt(Elem a) const;

  uint32_t p_ = 0;
  uint32_t e_ = 0;
  uint32_t q_ = 0;
  Elem g_ = 0;
  int bit_width_ = 0;
  std::vector<uint32_t> modulus_;
  // log_[a] for a in [1, q): discrete log of a. exp_ has 2(q-1) entries so
  // that log sums never need an explicit reduction.
  std::shared_ptr<const std::vector<uint16_t>> log_;
  std::shared_ptr<const std::vector<uint16_t>> exp_;
};

}  // namespace ssdb::gf

#endif  // SSDB_GF_FIELD_H_
