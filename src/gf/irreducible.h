// Deterministic search for a monic irreducible polynomial of degree e over
// F_p, used to construct the extension field GF(p^e).

#ifndef SSDB_GF_IRREDUCIBLE_H_
#define SSDB_GF_IRREDUCIBLE_H_

#include <cstdint>
#include <vector>

#include "util/statusor.h"

namespace ssdb::gf {

// Returns the coefficients (low to high, length e+1, leading coefficient 1)
// of the lexicographically-first monic irreducible polynomial of degree e
// over F_p. e >= 1; for e == 1 returns x (i.e. {0, 1}).
StatusOr<std::vector<uint32_t>> FindIrreducible(uint32_t p, uint32_t e);

// Rabin irreducibility test for a monic polynomial over F_p given by
// coefficients low-to-high.
bool IsIrreducible(const std::vector<uint32_t>& poly, uint32_t p);

}  // namespace ssdb::gf

#endif  // SSDB_GF_IRREDUCIBLE_H_
