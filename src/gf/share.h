/// Additive secret sharing of ring elements (DESIGN.md §2, §5; paper §3
/// steps 3-4). The 2-party split stores f = c + s: the client share c is
/// pseudorandom (regenerable from the seed + node position), the server
/// share is secret - c, so each share alone is uniformly random and reveals
/// nothing, while evaluation is linear:
///   eval(client, t) + eval(server, t) = eval(secret, t).
///
/// The m-server generalization (DESIGN.md §5) splits the server side again:
///   f = c + s_0 + s_1 + ... + s_{m-1}
/// with s_1..s_{m-1} pseudorandom (PRG-derived per server index, see
/// prg::Prg::ServerSliceShare) and s_0 the computed remainder. Every proper
/// subset of the shares is uniformly random; the sum still commutes with
/// evaluation, so m servers can evaluate their slices independently and the
/// client adds the replies. With m = 1 the split degenerates to exactly the
/// 2-party split above, bit for bit.

#ifndef SSDB_GF_SHARE_H_
#define SSDB_GF_SHARE_H_

#include <vector>

#include "gf/ring.h"

namespace ssdb::gf {

struct SharePair {
  RingElem client;
  RingElem server;
};

// Splits `secret` using the supplied pseudorandom coefficients as the client
// share. `randomness` must have exactly ring.n() valid field elements.
SharePair SplitWithRandomness(const Ring& ring, const RingElem& secret,
                              RingElem randomness);

// Reconstructs the secret from both shares.
RingElem Combine(const Ring& ring, const RingElem& client,
                 const RingElem& server);

// Joint evaluation without reconstructing: eval(client,t) + eval(server,t).
Elem EvalShares(const Ring& ring, const RingElem& client,
                const RingElem& server, Elem t);

// --- m-server split (DESIGN.md §5) ---

struct MultiShares {
  RingElem client;
  // servers[0] is the computed remainder slice; servers[1..m-1] echo the
  // supplied pseudorandom slices.
  std::vector<RingElem> servers;
};

// Splits `secret` into a client share plus m = extra.size() + 1 server
// slices: servers[0] = secret - client - sum(extra), servers[i] = extra[i-1].
// With `extra` empty this is SplitWithRandomness (m = 1).
MultiShares SplitMulti(const Ring& ring, const RingElem& secret,
                       RingElem client_randomness,
                       std::vector<RingElem> extra);

// Reconstructs the secret: client + sum(server slices).
RingElem CombineMulti(const Ring& ring, const RingElem& client,
                      const std::vector<RingElem>& servers);

// Sum of per-slice evaluations plus the client's — equals eval(secret, t)
// because evaluation is linear over the additive split.
Elem EvalMultiShares(const Ring& ring, const RingElem& client,
                     const std::vector<RingElem>& servers, Elem t);

}  // namespace ssdb::gf

#endif  // SSDB_GF_SHARE_H_
