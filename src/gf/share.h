// Additive 2-out-of-2 secret sharing of ring elements (§3 steps 3-4).
// The client share is pseudorandom (regenerable from the seed + node
// position); the server share is secret - client, so each share alone is
// uniformly random and reveals nothing, while evaluation is linear:
//   eval(client, t) + eval(server, t) = eval(secret, t).

#ifndef SSDB_GF_SHARE_H_
#define SSDB_GF_SHARE_H_

#include "gf/ring.h"

namespace ssdb::gf {

struct SharePair {
  RingElem client;
  RingElem server;
};

// Splits `secret` using the supplied pseudorandom coefficients as the client
// share. `randomness` must have exactly ring.n() valid field elements.
SharePair SplitWithRandomness(const Ring& ring, const RingElem& secret,
                              RingElem randomness);

// Reconstructs the secret from both shares.
RingElem Combine(const Ring& ring, const RingElem& client,
                 const RingElem& server);

// Joint evaluation without reconstructing: eval(client,t) + eval(server,t).
Elem EvalShares(const Ring& ring, const RingElem& client,
                const RingElem& server, Elem t);

}  // namespace ssdb::gf

#endif  // SSDB_GF_SHARE_H_
