#include "gf/ring.h"

#include "util/bitpack.h"
#include "util/logging.h"

namespace ssdb::gf {

RingElem Ring::One() const {
  RingElem one(n(), 0);
  one[0] = 1;
  return one;
}

RingElem Ring::Reduce(const Poly& f) const {
  RingElem out(n(), 0);
  for (size_t i = 0; i < f.coeffs.size(); ++i) {
    size_t slot = i % n();
    out[slot] = field_.Add(out[slot], f.coeffs[i]);
  }
  return out;
}

RingElem Ring::XMinus(Elem t) const {
  SSDB_DCHECK(n() >= 2);
  RingElem out(n(), 0);
  out[0] = field_.Neg(t);
  out[1] = 1;
  return out;
}

RingElem Ring::Add(const RingElem& a, const RingElem& b) const {
  SSDB_DCHECK(a.size() == n() && b.size() == n());
  RingElem out(n());
  for (uint32_t i = 0; i < n(); ++i) out[i] = field_.Add(a[i], b[i]);
  return out;
}

RingElem Ring::Sub(const RingElem& a, const RingElem& b) const {
  SSDB_DCHECK(a.size() == n() && b.size() == n());
  RingElem out(n());
  for (uint32_t i = 0; i < n(); ++i) out[i] = field_.Sub(a[i], b[i]);
  return out;
}

RingElem Ring::Neg(const RingElem& a) const {
  RingElem out(n());
  for (uint32_t i = 0; i < n(); ++i) out[i] = field_.Neg(a[i]);
  return out;
}

void Ring::AddInto(RingElem* a, const RingElem& b) const {
  SSDB_DCHECK(a->size() == n() && b.size() == n());
  for (uint32_t i = 0; i < n(); ++i) (*a)[i] = field_.Add((*a)[i], b[i]);
}

RingElem Ring::Mul(const RingElem& a, const RingElem& b) const {
  SSDB_DCHECK(a.size() == n() && b.size() == n());
  RingElem out(n(), 0);
  for (uint32_t i = 0; i < n(); ++i) {
    if (a[i] == 0) continue;
    for (uint32_t j = 0; j < n(); ++j) {
      if (b[j] == 0) continue;
      uint32_t k = i + j;
      if (k >= n()) k -= n();
      out[k] = field_.Add(out[k], field_.Mul(a[i], b[j]));
    }
  }
  return out;
}

RingElem Ring::MulXMinus(const RingElem& f, Elem t) const {
  SSDB_DCHECK(f.size() == n());
  // x*f is a cyclic right-shift of the coefficients (x * x^(n-1) = 1).
  RingElem out(n());
  Elem neg_t = field_.Neg(t);
  for (uint32_t i = 0; i < n(); ++i) {
    uint32_t prev = (i == 0) ? n() - 1 : i - 1;
    out[i] = field_.Add(f[prev], field_.Mul(neg_t, f[i]));
  }
  return out;
}

Elem Ring::Eval(const RingElem& f, Elem t) const {
  Elem acc = 0;
  for (size_t i = f.size(); i > 0; --i) {
    acc = field_.Add(field_.Mul(acc, t), f[i - 1]);
  }
  return acc;
}

bool Ring::IsZero(const RingElem& f) const {
  for (Elem c : f) {
    if (c != 0) return false;
  }
  return true;
}

std::string Ring::Serialize(const RingElem& f) const {
  SSDB_DCHECK(f.size() == n());
  return PackVector(f, field_.bit_width());
}

StatusOr<RingElem> Ring::Deserialize(std::string_view data) const {
  SSDB_ASSIGN_OR_RETURN(RingElem out,
                        UnpackVector(data, field_.bit_width(), n()));
  for (Elem c : out) {
    if (!field_.IsValid(c)) {
      return Status::Corruption("ring element coefficient out of range");
    }
  }
  return out;
}

std::string Ring::ToString(const RingElem& f) const {
  Poly p{std::vector<Elem>(f.begin(), f.end())};
  PolyNormalize(&p);
  return PolyToString(field_, p);
}

}  // namespace ssdb::gf
