#include "gf/prime.h"

#include "gf/modular.h"

namespace ssdb::gf {
namespace {

// Single Miller-Rabin round with witness a; n odd, n > 2.
bool MillerRabinRound(uint64_t n, uint64_t a, uint64_t d, int r) {
  uint64_t x = PowMod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < r; ++i) {
    x = MulMod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // Write n-1 = d * 2^r with d odd.
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This base set is deterministic for all n < 2^64.
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                     23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!MillerRabinRound(n, a, d, r)) return false;
  }
  return true;
}

uint64_t NextPrime(uint64_t n) {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!IsPrime(n)) n += 2;
  return n;
}

std::vector<uint64_t> DistinctPrimeFactors(uint64_t n) {
  std::vector<uint64_t> factors;
  for (uint64_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
    if (n % p == 0) {
      factors.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

}  // namespace ssdb::gf
