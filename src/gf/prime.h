// Primality testing and small-number factorization (used to pick field sizes
// and to find generators of the multiplicative group).

#ifndef SSDB_GF_PRIME_H_
#define SSDB_GF_PRIME_H_

#include <cstdint>
#include <vector>

namespace ssdb::gf {

// Deterministic Miller-Rabin, exact for all 64-bit inputs.
bool IsPrime(uint64_t n);

// Smallest prime >= n (n >= 2).
uint64_t NextPrime(uint64_t n);

// Distinct prime factors of n (n <= 2^32, trial division).
std::vector<uint64_t> DistinctPrimeFactors(uint64_t n);

}  // namespace ssdb::gf

#endif  // SSDB_GF_PRIME_H_
