#include "gf/dft.h"

#include "util/logging.h"

namespace ssdb::gf {

Evaluator::Evaluator(Ring ring) : ring_(std::move(ring)) {
  const Field& f = ring_.field();
  const uint32_t n = ring_.n();
  points_.resize(n);
  inv_points_.resize(n);
  Elem g = f.generator();
  Elem g_inv = f.Inv(g);
  Elem acc = 1, inv_acc = 1;
  for (uint32_t i = 0; i < n; ++i) {
    points_[i] = acc;
    inv_points_[i] = inv_acc;
    acc = f.Mul(acc, g);
    inv_acc = f.Mul(inv_acc, g_inv);
  }
  // n = q-1 == -1 (mod p), never divisible by p, so invertible in F_q.
  n_inverse_ = f.Inv(f.FromInt(n));
}

EvalVector Evaluator::Forward(const RingElem& coeffs) const {
  const Field& f = ring_.field();
  const uint32_t n = ring_.n();
  SSDB_DCHECK(coeffs.size() == n);
  EvalVector evals(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    // Horner at point g^i.
    Elem x = points_[i];
    Elem acc = 0;
    for (uint32_t j = n; j > 0; --j) {
      acc = f.Add(f.Mul(acc, x), coeffs[j - 1]);
    }
    evals[i] = acc;
  }
  return evals;
}

RingElem Evaluator::Inverse(const EvalVector& evals) const {
  const Field& f = ring_.field();
  const uint32_t n = ring_.n();
  SSDB_DCHECK(evals.size() == n);
  // c_j = n^-1 * sum_i evals[i] * g^(-ij): a DFT at the inverse points.
  RingElem coeffs(n, 0);
  for (uint32_t j = 0; j < n; ++j) {
    Elem x = inv_points_[j];  // g^-j
    // Horner over the evals sequence: sum_i evals[i] * (g^-j)^i.
    Elem acc = 0;
    for (uint32_t i = n; i > 0; --i) {
      acc = f.Add(f.Mul(acc, x), evals[i - 1]);
    }
    coeffs[j] = f.Mul(acc, n_inverse_);
  }
  return coeffs;
}

EvalVector Evaluator::XMinusEvals(Elem t) const {
  const Field& f = ring_.field();
  const uint32_t n = ring_.n();
  EvalVector evals(n);
  for (uint32_t i = 0; i < n; ++i) {
    evals[i] = f.Sub(points_[i], t);
  }
  return evals;
}

void Evaluator::PointwiseMulInto(EvalVector* a, const EvalVector& b) const {
  const Field& f = ring_.field();
  SSDB_DCHECK(a->size() == b.size());
  for (size_t i = 0; i < a->size(); ++i) {
    (*a)[i] = f.Mul((*a)[i], b[i]);
  }
}

}  // namespace ssdb::gf
