/// Unix-domain socket transport: a real process boundary for the
/// client/server architecture of fig. 3 (the paper used Java RMI). The
/// m-server quickstart in README.md runs one listening socket per share
/// slice (DESIGN.md §5); ablation A3 (DESIGN.md §4) measures the hop.
///
/// Frames leave through scatter-gather writes (header + payload in one
/// syscall, rpc/wire.h) and the channel supports the non-blocking
/// framed-send steps the concurrent server's buffered write path rides
/// on (DESIGN.md §7).

#ifndef SSDB_RPC_SOCKET_CHANNEL_H_
#define SSDB_RPC_SOCKET_CHANNEL_H_

#include <memory>
#include <string>

#include "rpc/channel.h"
#include "util/statusor.h"

namespace ssdb::rpc {

// Connects to a listening unix socket.
StatusOr<std::unique_ptr<Channel>> ConnectUnix(const std::string& path);

class UnixServerSocket {
 public:
  // Binds and listens; removes a stale socket file first.
  static StatusOr<std::unique_ptr<UnixServerSocket>> Listen(
      const std::string& path);

  ~UnixServerSocket();
  UnixServerSocket(const UnixServerSocket&) = delete;
  UnixServerSocket& operator=(const UnixServerSocket&) = delete;

  // Blocks for one connection.
  StatusOr<std::unique_ptr<Channel>> Accept();

  void Close();
  const std::string& path() const { return path_; }
  // Listening descriptor, for readiness-based accept loops
  // (DESIGN.md §7, rpc/event_poller.h).
  int fd() const { return fd_; }
  // Makes Accept() non-blocking (EAGAIN instead of waiting), so a
  // dispatcher can drain the backlog without risking a hang on a
  // connection that aborted between readiness and accept.
  void SetNonBlocking();

 private:
  UnixServerSocket(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_SOCKET_CHANNEL_H_
