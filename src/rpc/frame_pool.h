/// FramePool: a bounded freelist of reusable byte buffers for the data
/// plane's request/response frames. Every request used to allocate fresh
/// std::strings in HandleRequest; the concurrent server (DESIGN.md §7)
/// instead acquires a buffer per session, lets ReceiveInto /
/// HandleRequestInto grow it once, and releases it — keeping the
/// capacity — when the response has drained. Counters distinguish fresh
/// allocations from pool hits for the telemetry line bench_rpc and
/// ssdb_server print.

#ifndef SSDB_RPC_FRAME_POOL_H_
#define SSDB_RPC_FRAME_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ssdb::rpc {

class FramePool {
 public:
  // `max_pooled` bounds how many idle buffers the pool retains;
  // `max_retained_bytes` drops oversized buffers on release so one huge
  // batch response cannot pin its capacity forever.
  explicit FramePool(size_t max_pooled = 64,
                     size_t max_retained_bytes = 1 << 20)
      : max_pooled_(max_pooled), max_retained_bytes_(max_retained_bytes) {}

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  // An empty buffer, with whatever capacity its previous life grew.
  std::string Acquire();

  // Returns a buffer to the freelist (cleared, capacity kept). Buffers
  // beyond the retention bounds are simply destroyed.
  void Release(std::string&& buffer);

  // Buffers handed out that came fresh from the allocator vs. from the
  // freelist. allocated() + reused() == total Acquire() calls.
  uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  uint64_t reused() const { return reused_.load(std::memory_order_relaxed); }

 private:
  const size_t max_pooled_;
  const size_t max_retained_bytes_;
  std::mutex mu_;
  std::vector<std::string> free_;
  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> reused_{0};
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_FRAME_POOL_H_
