/// ConcurrentServer (DESIGN.md §7): the multi-client transport. A
/// dispatcher thread owns the accept loop and an EventPoller interest set
/// of idle connections; a fixed worker pool (--threads, default =
/// hardware concurrency) services one *request* at a time, so many
/// mostly-idle connections share a handful of workers and a slow client
/// never parks a worker on an idle socket (a stalled mid-frame client is
/// bounded by io_timeout_seconds).
///
/// The interest set is *incremental* (rpc/event_poller.h): a connection
/// is registered once at accept, disabled while a worker owns its
/// request (EPOLLONESHOT under the epoll backend), re-armed by the worker
/// when the response is out, and deregistered on close — per-wake
/// dispatch cost is O(ready events) under epoll, with poll(2) kept as
/// the portable fallback.
///
/// The data plane never blocks on a peer (DESIGN.md §7):
///
///  - Writes are non-blocking. A worker sends a response inline while the
///    socket has room; on a short write it parks the unsent tail on the
///    session, arms EPOLLOUT interest, and moves on — the dispatcher
///    finishes the flush when the socket drains. A reader that stalls
///    with more than max_write_buffer bytes outstanding is closed, never
///    waited on.
///  - Dispatch is sharded. Each worker owns a private ready-queue fed by
///    the dispatcher round-robin and woken with notify_one, and the
///    session table is split across fd-hashed shards — no global mutex
///    or herd-waking condition variable on the hot path.
///  - Frame buffers are pooled (rpc/frame_pool.h): request and response
///    bytes land in reusable buffers, and header+payload leave in one
///    scatter-gather syscall (rpc/wire.h).
///
/// Overload is survived, not died from: max_connections pauses the accept
/// loop at an fd budget (pending clients wait in the listen backlog),
/// idle_timeout_seconds sweeps connections that have been silent past the
/// per-socket IO timeout — including stalled flushes making no drain
/// progress — and max_write_buffer bounds what a non-reading client can
/// pin in memory.
///
/// Each connection gets a session id that scopes its cursor state in the
/// shared ServerFilter; when a connection dies — cleanly, mid batch, or
/// by sweep/budget — EndSession reclaims everything it left behind.
/// Shutdown() stops accepting, drains in-flight requests, then closes
/// what remains.

#ifndef SSDB_RPC_CONCURRENT_SERVER_H_
#define SSDB_RPC_CONCURRENT_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "filter/server_filter.h"
#include "gf/ring.h"
#include "rpc/event_poller.h"
#include "rpc/frame_pool.h"
#include "rpc/server.h"
#include "rpc/server_stats.h"
#include "rpc/socket_channel.h"
#include "util/statusor.h"

namespace ssdb::rpc {

// Dispatcher wait granularity for the idle sweep: a quarter of the idle
// timeout (sessions are reclaimed within ~1.25x idle_timeout_seconds),
// floored at 50ms and capped at one hour. Computed in 64-bit:
// `seconds * 1000 / 4` in int overflows for timeouts past ~24.8 days and
// the negative result would be handed to the poller as "wait forever",
// silently disabling the sweep. Returns -1 (no timeout) when the sweep is
// off. Exposed for tests.
int IdleSweepWaitMs(int idle_timeout_seconds);

struct ConcurrentServerOptions {
  // Worker pool size; 0 means std::thread::hardware_concurrency().
  size_t threads = 0;
  // Print a line per accepted/closed connection (ssdb_server does).
  bool log_connections = false;
  // Per-socket read timeout (SO_RCVTIMEO) on accepted connections; 0
  // disables. Bounds how long a client that sent a partial frame can park
  // a worker: the blocked Receive errors out and the session is dropped.
  // Idle connections are unaffected (they wait in the poller, not in a
  // worker) unless idle_timeout_seconds also kicks in; a client that
  // stops *reading* never parks a worker at all (buffered write path).
  int io_timeout_seconds = 30;
  // Readiness backend (DESIGN.md §7): epoll when available, with poll(2)
  // as the portable fallback.
  PollerBackend poller = PollerBackend::kDefault;
  // Fd budget: at this many open connections the accept loop pauses
  // (backpressure — pending clients queue in the listen backlog) and
  // resumes as connections close. 0 = unlimited.
  size_t max_connections = 0;
  // Sweep connections that have been idle (armed, no request — or
  // flushing with no drain progress) longer than this, reclaiming their
  // sessions. 0 = never.
  int idle_timeout_seconds = 0;
  // Per-connection cap on response bytes buffered for a peer that is not
  // reading. A send that would leave more than this outstanding closes
  // the connection instead of buffering without bound (--max-write-buffer
  // in ssdb_server). 0 = unlimited.
  size_t max_write_buffer = 16u << 20;
  // Kernel send-buffer size (SO_SNDBUF) for accepted connections; 0
  // keeps the system default. Tests and benches shrink it to force short
  // writes — and thus the buffered write path — with small responses.
  int so_sndbuf = 0;
};

class ConcurrentServer {
 public:
  // `filter` must outlive the server and be safe for concurrent callers
  // (LocalServerFilter is; see filter/server_filter.h).
  ConcurrentServer(gf::Ring ring, filter::ServerFilter* filter,
                   std::unique_ptr<UnixServerSocket> listener,
                   ConcurrentServerOptions options = {});
  ~ConcurrentServer();

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  // Spawns the dispatcher and the worker pool; returns once accepting.
  Status Start();

  // Installs the shard-catalog tier on the embedded RpcServer (see
  // RpcServer::SetCatalog). Call before Start(). With a null filter this
  // makes a catalog-only server (ssdb_router, DESIGN.md §10).
  void SetCatalog(std::string encoded_catalog,
                  std::map<std::string, std::string> encoded_entries) {
    server_.SetCatalog(std::move(encoded_catalog), std::move(encoded_entries));
  }

  // Graceful drain: stop accepting, finish requests already dispatched to
  // workers, close every remaining connection, join all threads. Safe to
  // call twice; the destructor calls it.
  void Shutdown();

  size_t threads() const { return threads_; }
  const std::string& socket_path() const { return listener_->path(); }

  // One coherent read of every counter the server tracks — connection
  // lifecycle, data-plane telemetry (DESIGN.md §7), frame pool, poller
  // wake costs, request count, uptime. The shutdown log
  // (ServerStats::ToText), the admin /v1/stats endpoint
  // (ServerStats::ToJson), tests, and benches all consume this one
  // struct; there are no per-counter getters.
  ServerStats Snapshot() const;

  // Resolved readiness backend ("epoll"/"poll"); valid after Start().
  // (Also in Snapshot(); kept as a getter for startup banners printed
  // before any stats exist.)
  const char* poller_name() const;

 private:
  // A connection's lifecycle: kArmed (fd armed for read in the poller) →
  // kReady (queued for its worker, poller registration disabled by
  // oneshot) → kBusy (one worker owns it) → back to kArmed when the
  // response fit the socket, or kFlushing (unsent tail parked on the
  // session, fd armed for write, the *dispatcher* owns it) → kArmed when
  // drained. Exactly one owner at every stage — workers own kBusy, the
  // dispatcher owns everything else — so channel reads and writes never
  // race.
  enum class SessionState { kArmed, kReady, kBusy, kFlushing };

  struct Session {
    uint64_t id = 0;
    std::unique_ptr<Channel> channel;
    int fd = -1;
    // Home worker queue (round-robin at accept).
    size_t worker = 0;
    SessionState state = SessionState::kArmed;
    // Buffered write path: the response whose tail did not fit the
    // socket, the transport offset reached so far, and the offset at
    // which the frame is fully out (SendCompleteOffset).
    std::string out;
    size_t out_offset = 0;
    size_t out_total = 0;
    // The response being flushed answered kShutdown: close once drained.
    bool close_after_flush = false;
    // Last transition into kArmed — or last flush progress — the idle
    // sweep's clock.
    std::chrono::steady_clock::time_point last_armed;
  };

  // Session table shard: fd-hashed map under its own mutex, so accept,
  // dispatch, re-arm, and close on different connections do not contend
  // on one global lock.
  struct SessionShard {
    std::mutex mu;
    std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions;
  };
  static constexpr size_t kSessionShards = 16;

  // Per-worker MPSC ready-queue: the dispatcher pushes, one worker pops;
  // notify_one wakes exactly that worker (no herd).
  struct WorkerQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<uint64_t> ready;
  };

  SessionShard& ShardFor(uint64_t id) {
    return shards_[id & (kSessionShards - 1)];
  }
  static void UpdatePeak(std::atomic<uint64_t>& peak, uint64_t value);

  void PollLoop();
  void WorkerLoop(size_t index);
  // Drains the accept backlog, registering each connection; pauses the
  // listener at the max_connections budget.
  void HandleAccept();
  // Re-plugs the listener after CloseSession frees budget room.
  void MaybeResumeAccept();
  // One non-blocking step of a parked response (dispatcher thread only;
  // the session is in kFlushing, which the dispatcher solely owns).
  void FlushSession(uint64_t id);
  // Closes every connection idle past idle_timeout_seconds.
  void SweepIdle();
  // Removes the session and reclaims its cursors; `why` feeds the log line.
  void CloseSession(uint64_t id, const char* why);

  RpcServer server_;
  filter::ServerFilter* filter_;
  std::unique_ptr<UnixServerSocket> listener_;
  ConcurrentServerOptions options_;
  size_t threads_ = 0;

  std::unique_ptr<EventPoller> poller_;
  FramePool pool_;

  // Lock order (DESIGN.md §7): listener_mu_ → shard mutex → worker-queue
  // mutex → poller internal mutex → filter cursor mutex → store lock →
  // buffer-pool latch; never held across a channel Receive/Send/flush.
  SessionShard shards_[kSessionShards];
  std::vector<std::unique_ptr<WorkerQueue>> queues_;

  // Guards started_, accept_paused_, and listener poller membership.
  mutable std::mutex listener_mu_;
  bool started_ = false;
  bool accept_paused_ = false;
  std::atomic<bool> stopping_{false};

  // Dispatcher-thread-only accept state (no lock needed).
  uint64_t next_session_id_ = 1;
  size_t next_worker_ = 0;

  std::atomic<size_t> open_count_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> write_stalls_{0};
  std::atomic<uint64_t> bytes_buffered_{0};
  std::atomic<uint64_t> bytes_buffered_peak_{0};
  std::atomic<uint64_t> queue_depth_peak_{0};
  std::atomic<uint64_t> budget_closed_{0};
  std::chrono::steady_clock::time_point started_at_ =
      std::chrono::steady_clock::now();

  std::thread poll_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_CONCURRENT_SERVER_H_
