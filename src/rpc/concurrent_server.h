/// ConcurrentServer (DESIGN.md §7): the multi-client transport. A
/// dispatcher thread owns the accept loop and an EventPoller interest set
/// of idle connections; a fixed worker pool (--threads, default =
/// hardware concurrency) services one *request* at a time, so many
/// mostly-idle connections share a handful of workers and a slow client
/// never parks a worker on an idle socket (a stalled mid-frame client is
/// bounded by io_timeout_seconds).
///
/// The interest set is *incremental* (rpc/event_poller.h): a connection
/// is registered once at accept, disabled while a worker owns its
/// request (EPOLLONESHOT under the epoll backend), re-armed by the worker
/// when the response is out, and deregistered on close — per-wake
/// dispatch cost is O(ready events) under epoll, with poll(2) kept as
/// the portable fallback. Overload is survived, not died from:
/// max_connections pauses the accept loop at an fd budget (pending
/// clients wait in the listen backlog), and idle_timeout_seconds sweeps
/// connections that have been silent past the per-socket IO timeout,
/// reclaiming their sessions.
///
/// Each connection gets a session id that scopes its cursor state in the
/// shared ServerFilter; when a connection dies — cleanly, mid batch, or
/// by idle sweep — EndSession reclaims everything it left behind.
/// Shutdown() stops accepting, drains in-flight requests, then closes
/// what remains.

#ifndef SSDB_RPC_CONCURRENT_SERVER_H_
#define SSDB_RPC_CONCURRENT_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "filter/server_filter.h"
#include "gf/ring.h"
#include "rpc/event_poller.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"
#include "util/statusor.h"

namespace ssdb::rpc {

struct ConcurrentServerOptions {
  // Worker pool size; 0 means std::thread::hardware_concurrency().
  size_t threads = 0;
  // Print a line per accepted/closed connection (ssdb_server does).
  bool log_connections = false;
  // Per-socket read/write timeout (SO_RCVTIMEO/SO_SNDTIMEO) on accepted
  // connections; 0 disables. Bounds how long a stalled client — one that
  // sent a partial frame, or stopped reading its response — can park a
  // worker: the blocked call errors out and the session is dropped. Idle
  // connections are unaffected (they wait in the poller, not in a
  // worker) unless idle_timeout_seconds also kicks in.
  int io_timeout_seconds = 30;
  // Readiness backend (DESIGN.md §7): epoll when available, with poll(2)
  // as the portable fallback.
  PollerBackend poller = PollerBackend::kDefault;
  // Fd budget: at this many open connections the accept loop pauses
  // (backpressure — pending clients queue in the listen backlog) and
  // resumes as connections close. 0 = unlimited.
  size_t max_connections = 0;
  // Sweep connections that have been idle (armed, no request) longer
  // than this, reclaiming their sessions — the idle-side complement of
  // io_timeout_seconds, typically set to the same value. 0 = never.
  int idle_timeout_seconds = 0;
};

class ConcurrentServer {
 public:
  // `filter` must outlive the server and be safe for concurrent callers
  // (LocalServerFilter is; see filter/server_filter.h).
  ConcurrentServer(gf::Ring ring, filter::ServerFilter* filter,
                   std::unique_ptr<UnixServerSocket> listener,
                   ConcurrentServerOptions options = {});
  ~ConcurrentServer();

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  // Spawns the dispatcher and the worker pool; returns once accepting.
  Status Start();

  // Graceful drain: stop accepting, finish requests already dispatched to
  // workers, close every remaining connection, join all threads. Safe to
  // call twice; the destructor calls it.
  void Shutdown();

  size_t threads() const { return threads_; }
  const std::string& socket_path() const { return listener_->path(); }
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_closed() const {
    return closed_.load(std::memory_order_relaxed);
  }
  size_t open_connections() const;
  // Connections closed by the idle sweep (subset of connections_closed).
  uint64_t connections_idle_closed() const {
    return idle_closed_.load(std::memory_order_relaxed);
  }

  // Resolved readiness backend ("epoll"/"poll") and its wake-cost
  // telemetry (rpc/event_poller.h); valid after Start().
  const char* poller_name() const;
  uint64_t poller_wakeups() const;
  uint64_t poller_items_scanned() const;

 private:
  // A connection's lifecycle: kArmed (fd armed in the poller) → kReady
  // (queued for a worker, poller registration disabled by oneshot) →
  // kBusy (one worker owns it) → back to kArmed via Rearm, or destroyed
  // on disconnect/shutdown-op/idle sweep. Exactly one owner at every
  // stage, so channel reads never race.
  enum class SessionState { kArmed, kReady, kBusy };

  struct Session {
    uint64_t id = 0;
    std::unique_ptr<Channel> channel;
    int fd = -1;
    SessionState state = SessionState::kArmed;
    // Last transition into kArmed; the idle sweep's clock.
    std::chrono::steady_clock::time_point last_armed;
  };

  void PollLoop();
  void WorkerLoop();
  // Drains the accept backlog, registering each connection; pauses the
  // listener at the max_connections budget.
  void HandleAccept();
  // Closes every armed connection idle past idle_timeout_seconds.
  void SweepIdle();
  // Removes the session and reclaims its cursors; `why` feeds the log line.
  void CloseSession(uint64_t id, const char* why);

  RpcServer server_;
  filter::ServerFilter* filter_;
  std::unique_ptr<UnixServerSocket> listener_;
  ConcurrentServerOptions options_;
  size_t threads_ = 0;

  std::unique_ptr<EventPoller> poller_;

  // Guards sessions_, ready_, stopping_, accept_paused_, and every
  // poller Add/Rearm (so arm state can't race the idle sweep's close).
  // Lock order (DESIGN.md §7): mu_ → poller internal mutex → filter
  // cursor mutex → store lock → buffer-pool latch; never held across a
  // channel Receive/Send.
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::deque<uint64_t> ready_;
  bool stopping_ = false;
  bool started_ = false;
  bool accept_paused_ = false;
  uint64_t next_session_id_ = 1;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> idle_closed_{0};

  std::thread poll_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_CONCURRENT_SERVER_H_
