/// ConcurrentServer (DESIGN.md §7): the multi-client transport. A poller
/// thread owns the accept loop and a poll(2) set of idle connections; a
/// fixed worker pool (--threads, default = hardware concurrency) services
/// one *request* at a time, so many mostly-idle connections share a
/// handful of workers and a slow client never parks a worker on an idle
/// socket (a stalled mid-frame client is bounded by io_timeout_seconds).
/// Each connection gets a session id that scopes its cursor state in the
/// shared ServerFilter; when a connection dies — cleanly or mid batch —
/// EndSession reclaims everything it left behind. Shutdown() stops
/// accepting, drains in-flight requests, then closes what remains.
///
/// Scale ceiling: the poller rebuilds its pollfd set (O(open
/// connections)) each time it wakes; wakeups coalesce, but past a few
/// thousand connections an incremental-interest-set backend (epoll) is
/// the natural upgrade — see ROADMAP.md.

#ifndef SSDB_RPC_CONCURRENT_SERVER_H_
#define SSDB_RPC_CONCURRENT_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "filter/server_filter.h"
#include "gf/ring.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"
#include "util/statusor.h"

namespace ssdb::rpc {

struct ConcurrentServerOptions {
  // Worker pool size; 0 means std::thread::hardware_concurrency().
  size_t threads = 0;
  // Print a line per accepted/closed connection (ssdb_server does).
  bool log_connections = false;
  // Per-socket read/write timeout (SO_RCVTIMEO/SO_SNDTIMEO) on accepted
  // connections; 0 disables. Bounds how long a stalled client — one that
  // sent a partial frame, or stopped reading its response — can park a
  // worker: the blocked call errors out and the session is dropped. Idle
  // connections are unaffected (they wait in the poll set, not in a
  // worker).
  int io_timeout_seconds = 30;
};

class ConcurrentServer {
 public:
  // `filter` must outlive the server and be safe for concurrent callers
  // (LocalServerFilter is; see filter/server_filter.h).
  ConcurrentServer(gf::Ring ring, filter::ServerFilter* filter,
                   std::unique_ptr<UnixServerSocket> listener,
                   ConcurrentServerOptions options = {});
  ~ConcurrentServer();

  ConcurrentServer(const ConcurrentServer&) = delete;
  ConcurrentServer& operator=(const ConcurrentServer&) = delete;

  // Spawns the poller and the worker pool; returns once accepting.
  Status Start();

  // Graceful drain: stop accepting, finish requests already dispatched to
  // workers, close every remaining connection, join all threads. Safe to
  // call twice; the destructor calls it.
  void Shutdown();

  size_t threads() const { return threads_; }
  const std::string& socket_path() const { return listener_->path(); }
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_closed() const {
    return closed_.load(std::memory_order_relaxed);
  }
  size_t open_connections() const;

 private:
  // A connection's lifecycle: kArmed (fd in the poll set) → kReady (queued
  // for a worker) → kBusy (one worker owns it) → back to kArmed, or
  // destroyed on disconnect/shutdown-op. Exactly one owner at every stage,
  // so channel reads never race.
  enum class SessionState { kArmed, kReady, kBusy };

  struct Session {
    uint64_t id = 0;
    std::unique_ptr<Channel> channel;
    int fd = -1;
    SessionState state = SessionState::kArmed;
  };

  void PollLoop();
  void WorkerLoop();
  // Removes the session and reclaims its cursors; `why` feeds the log line.
  void CloseSession(uint64_t id, const char* why);
  void WakePoller();

  RpcServer server_;
  filter::ServerFilter* filter_;
  std::unique_ptr<UnixServerSocket> listener_;
  ConcurrentServerOptions options_;
  size_t threads_ = 0;

  // Guards sessions_, ready_, stopping_. Lock order (DESIGN.md §7):
  // mu_ → filter cursor mutex → store lock → buffer-pool latch; never
  // held across a channel Receive/Send.
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::deque<uint64_t> ready_;
  bool stopping_ = false;
  bool started_ = false;
  uint64_t next_session_id_ = 1;

  int wake_fds_[2] = {-1, -1};  // pipe: [0] polled, [1] written to wake
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};

  std::thread poll_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_CONCURRENT_SERVER_H_
