#include "rpc/socket_channel.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "rpc/wire.h"

namespace ssdb::rpc {
namespace {

Status ErrnoError(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status FillSockAddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

class SocketChannel : public Channel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { Close(); }

  Status Send(std::string_view message) override {
    SSDB_RETURN_IF_ERROR(WriteFrame(fd_, message));
    bytes_sent_ += message.size() + kFrameHeaderBytes;
    ++messages_sent_;
    return Status::OK();
  }

  StatusOr<std::string> Receive() override {
    SSDB_ASSIGN_OR_RETURN(std::string message, ReadFrame(fd_));
    bytes_received_ += message.size() + kFrameHeaderBytes;
    return message;
  }

  Status ReceiveInto(std::string* message) override {
    SSDB_RETURN_IF_ERROR(ReadFrameInto(fd_, message));
    bytes_received_ += message->size() + kFrameHeaderBytes;
    return Status::OK();
  }

  // Non-blocking framed send step (the buffered write path, DESIGN.md
  // §7): header + payload leave through one scatter-gather syscall, and a
  // full socket returns the resume offset instead of blocking the caller.
  StatusOr<size_t> SendNonBlocking(std::string_view message,
                                   size_t offset) override {
    SSDB_ASSIGN_OR_RETURN(size_t advanced,
                          WriteFrameNonBlocking(fd_, message, offset));
    bytes_sent_ += advanced - offset;
    if (advanced == SendCompleteOffset(message)) ++messages_sent_;
    return advanced;
  }

  size_t SendCompleteOffset(std::string_view message) const override {
    return message.size() + kFrameHeaderBytes;
  }

  Status SetSendBufferBytes(int bytes) override {
    if (::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) !=
        0) {
      return ErrnoError("setsockopt SO_SNDBUF");
    }
    return Status::OK();
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  uint64_t bytes_sent() const override { return bytes_sent_; }
  uint64_t bytes_received() const override { return bytes_received_; }
  uint64_t messages_sent() const override { return messages_sent_; }
  int PollFd() const override { return fd_; }

  Status SetIoTimeout(int seconds) override {
    timeval timeout{};
    timeout.tv_sec = seconds;
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout)) != 0 ||
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                     sizeof(timeout)) != 0) {
      return ErrnoError("setsockopt io timeout");
    }
    return Status::OK();
  }

 private:
  int fd_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t messages_sent_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<Channel>> ConnectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  sockaddr_un addr;
  Status s = FillSockAddr(path, &addr);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return ErrnoError("connect " + path);
  }
  return std::unique_ptr<Channel>(std::make_unique<SocketChannel>(fd));
}

StatusOr<std::unique_ptr<UnixServerSocket>> UnixServerSocket::Listen(
    const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  ::unlink(path.c_str());
  sockaddr_un addr;
  Status s = FillSockAddr(path, &addr);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return ErrnoError("bind " + path);
  }
  // Backlog sized for bursts of concurrent clients (DESIGN.md §7).
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return ErrnoError("listen " + path);
  }
  return std::unique_ptr<UnixServerSocket>(new UnixServerSocket(fd, path));
}

UnixServerSocket::~UnixServerSocket() { Close(); }

void UnixServerSocket::SetNonBlocking() {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

StatusOr<std::unique_ptr<Channel>> UnixServerSocket::Accept() {
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return ErrnoError("accept");
  return std::unique_ptr<Channel>(std::make_unique<SocketChannel>(client));
}

void UnixServerSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    fd_ = -1;
  }
}

}  // namespace ssdb::rpc
