#include "rpc/server_stats.h"

#include <cinttypes>
#include <cstdio>

#include "util/json.h"

namespace ssdb::rpc {
namespace {

void AppendField(std::string* out, const char* key, uint64_t value,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

}  // namespace

std::string ServerStats::ToJson() const {
  std::string out = "{\"build\":";
  AppendJsonString(&out, build);
  out += ",\"poller\":";
  AppendJsonString(&out, poller);
  bool first = false;
  AppendField(&out, "threads", threads, &first);
  AppendField(&out, "uptime_seconds", uptime_seconds, &first);
  AppendField(&out, "requests_handled", requests_handled, &first);
  AppendField(&out, "connections_accepted", connections_accepted, &first);
  AppendField(&out, "connections_closed", connections_closed, &first);
  AppendField(&out, "open_connections", open_connections, &first);
  AppendField(&out, "connections_idle_closed", connections_idle_closed,
              &first);
  AppendField(&out, "write_budget_closed", write_budget_closed, &first);
  AppendField(&out, "write_stalls", write_stalls, &first);
  AppendField(&out, "bytes_buffered", bytes_buffered, &first);
  AppendField(&out, "bytes_buffered_peak", bytes_buffered_peak, &first);
  AppendField(&out, "queue_depth_peak", queue_depth_peak, &first);
  AppendField(&out, "frames_allocated", frames_allocated, &first);
  AppendField(&out, "frames_reused", frames_reused, &first);
  AppendField(&out, "poller_wakeups", poller_wakeups, &first);
  AppendField(&out, "poller_items_scanned", poller_items_scanned, &first);
  out.push_back('}');
  return out;
}

std::string ServerStats::ToText() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "served %" PRIu64 " connections (%" PRIu64 " closed, %" PRIu64
                " idle-swept), %" PRIu64 " requests\n",
                connections_accepted, connections_closed,
                connections_idle_closed, requests_handled);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "data plane: %" PRIu64 " write stalls, %" PRIu64
                " peak buffered bytes, %" PRIu64 " budget closes, %" PRIu64
                " peak queue depth, %" PRIu64 " frames pooled (%" PRIu64
                " reused)\n",
                write_stalls, bytes_buffered_peak, write_budget_closed,
                queue_depth_peak, frames_allocated + frames_reused,
                frames_reused);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "%s poller: %" PRIu64 " wakeups, %" PRIu64 " items scanned\n",
                poller.c_str(), poller_wakeups, poller_items_scanned);
  out += buf;
  return out;
}

}  // namespace ssdb::rpc
