// EpollPoller (DESIGN.md §7): the incremental-interest-set backend. The
// kernel owns the registration table, so per-wake cost is O(ready
// events) regardless of how many idle connections are parked, and
// Rearm (EPOLL_CTL_MOD on an EPOLLONESHOT registration) is callable
// straight from worker threads without waking the dispatcher — the two
// properties that remove the poll(2) ceiling ROADMAP named.

#if defined(SSDB_HAVE_EPOLL)

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "rpc/event_poller.h"

namespace ssdb::rpc {
namespace {

// Reserved registration identity for the internal wake pipe; never
// surfaced in delivered events. ConcurrentServer tokens are session ids
// and its listener token 0, so the top of the range is safely ours.
constexpr uint64_t kWakeToken = ~uint64_t{0};

Status EpollError(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

class EpollPoller : public EventPoller {
 public:
  static StatusOr<std::unique_ptr<EventPoller>> Make() {
    auto poller = std::unique_ptr<EpollPoller>(new EpollPoller());
    poller->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (poller->epoll_fd_ < 0) return EpollError("epoll_create1");
    if (::pipe2(poller->wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
      return EpollError("pipe2");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = kWakeToken;
    if (::epoll_ctl(poller->epoll_fd_, EPOLL_CTL_ADD, poller->wake_fds_[0],
                    &event) != 0) {
      return EpollError("epoll_ctl wake pipe");
    }
    return StatusOr<std::unique_ptr<EventPoller>>(std::move(poller));
  }

  ~EpollPoller() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
    if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  }

  Status Add(int fd, uint64_t token, bool oneshot) override {
    epoll_event event{};
    event.events = EPOLLIN | (oneshot ? EPOLLONESHOT : 0u);
    event.data.u64 = token;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      return EpollError("epoll_ctl add");
    }
    interest_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  Status Rearm(int fd, uint64_t token) override {
    // MOD on a consumed EPOLLONESHOT registration re-enables it; if the
    // fd already has data the dispatcher is woken by the kernel, so no
    // user-space wake is needed (the epoll advantage over PollPoller).
    return Mod(fd, token, EPOLLIN, "epoll_ctl rearm");
  }

  Status ArmWrite(int fd, uint64_t token) override {
    // Same MOD, opposite direction: the kernel fires as soon as the
    // socket drains (or immediately if it already has space), again
    // without a user-space wake.
    return Mod(fd, token, EPOLLOUT, "epoll_ctl arm-write");
  }

  Status Remove(int fd) override {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      if (errno == ENOENT || errno == EBADF) return Status::OK();
      return EpollError("epoll_ctl del");
    }
    interest_.fetch_sub(1, std::memory_order_relaxed);
    return Status::OK();
  }

  StatusOr<size_t> Wait(std::vector<PollerEvent>* events,
                        int timeout_ms) override {
    events->clear();
    epoll_event ready[kMaxEvents];
    int n = ::epoll_wait(epoll_fd_, ready, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return static_cast<size_t>(0);
      return EpollError("epoll_wait");
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    items_scanned_.fetch_add(static_cast<uint64_t>(n),
                             std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      if (ready[i].data.u64 == kWakeToken) {
        char drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      PollerEvent event;
      event.token = ready[i].data.u64;
      // EPOLLERR/EPOLLHUP are delivered regardless of the registered
      // interest; surface them on both directions so the owner's next
      // read or write discovers the condition.
      const uint32_t flags = ready[i].events;
      const bool broken = (flags & (EPOLLERR | EPOLLHUP)) != 0;
      event.readable = (flags & EPOLLIN) != 0 || broken;
      event.writable = (flags & EPOLLOUT) != 0 || broken;
      events->push_back(event);
    }
    return events->size();
  }

  void Wake() override {
    char byte = 'w';
    ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
    (void)ignored;  // a full pipe already guarantees a wakeup
  }

  const char* name() const override { return "epoll"; }

  size_t interest_size() const override {
    return interest_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kMaxEvents = 128;

  EpollPoller() = default;

  Status Mod(int fd, uint64_t token, uint32_t direction, const char* what) {
    epoll_event event{};
    event.events = direction | EPOLLONESHOT;
    event.data.u64 = token;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
      return EpollError(what);
    }
    return Status::OK();
  }

  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::atomic<size_t> interest_{0};  // excludes the wake pipe
};

}  // namespace

StatusOr<std::unique_ptr<EventPoller>> MakeEpollPoller() {
  return EpollPoller::Make();
}

}  // namespace ssdb::rpc

#endif  // SSDB_HAVE_EPOLL
