#include "rpc/event_poller.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace ssdb::rpc {
namespace {

void SetNonBlockingFd(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Portable fallback (DESIGN.md §7): the interest set lives in a mutexed
// table and is replayed into a fresh pollfd array on every wake, so each
// wake costs O(open connections) — the exact ceiling the epoll backend
// removes. Mutators write the self-pipe so a blocked poll(2) observes
// interest changes (poll has no equivalent of epoll_ctl against a live
// wait); ArmWrite in particular must kick the pipe or a drained socket
// would sit unwatched until the next unrelated wake, stalling the
// buffered write path the epoll backend services immediately.
class PollPoller : public EventPoller {
 public:
  static StatusOr<std::unique_ptr<EventPoller>> Make() {
    auto poller = std::unique_ptr<PollPoller>(new PollPoller());
    if (::pipe(poller->wake_fds_) != 0) {
      return Status::IOError(std::string("pipe: ") + std::strerror(errno));
    }
    SetNonBlockingFd(poller->wake_fds_[0]);
    SetNonBlockingFd(poller->wake_fds_[1]);
    return StatusOr<std::unique_ptr<EventPoller>>(std::move(poller));
  }

  ~PollPoller() override {
    if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
    if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  }

  Status Add(int fd, uint64_t token, bool oneshot) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entries_[fd] = Entry{token, oneshot, /*armed=*/true, POLLIN};
    }
    Wake();
    return Status::OK();
  }

  Status Rearm(int fd, uint64_t token) override {
    return Retarget(fd, token, POLLIN, "poll rearm: unknown fd");
  }

  Status ArmWrite(int fd, uint64_t token) override {
    return Retarget(fd, token, POLLOUT, "poll arm-write: unknown fd");
  }

  Status Remove(int fd) override {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(fd);
    // No Wake: a stale pollfd entry at worst produces one spurious wake,
    // and its event is dropped at replay time (fd no longer in the table).
    return Status::OK();
  }

  StatusOr<size_t> Wait(std::vector<PollerEvent>* events,
                        int timeout_ms) override {
    events->clear();
    std::vector<pollfd> fds;
    std::vector<uint64_t> tokens;  // tokens[i] belongs to fds[i + 1]
    {
      std::lock_guard<std::mutex> lock(mu_);
      fds.reserve(entries_.size() + 1);
      tokens.reserve(entries_.size());
      fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
      for (const auto& [fd, entry] : entries_) {
        if (!entry.armed) continue;
        fds.push_back(pollfd{fd, entry.interest, 0});
        tokens.push_back(entry.token);
      }
    }
    int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return static_cast<size_t>(0);
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    items_scanned_.fetch_add(fds.size(), std::memory_order_relaxed);
    if (fds[0].revents != 0) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = entries_.find(fds[i].fd);
      // The entry may have been removed or retargeted while poll slept;
      // deliver only live, still-armed registrations.
      if (it == entries_.end() || !it->second.armed ||
          it->second.token != tokens[i - 1]) {
        continue;
      }
      if (it->second.oneshot) it->second.armed = false;
      PollerEvent event;
      event.token = it->second.token;
      // POLLERR/POLLHUP surface regardless of the requested interest;
      // report them on the watched direction so the owner's next
      // read/write discovers the condition.
      const short revents = fds[i].revents;
      const bool broken = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      event.readable = (revents & POLLIN) != 0 ||
                       (broken && it->second.interest == POLLIN);
      event.writable = (revents & POLLOUT) != 0 ||
                       (broken && it->second.interest == POLLOUT);
      events->push_back(event);
    }
    return events->size();
  }

  void Wake() override {
    char byte = 'w';
    ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
    (void)ignored;  // a full pipe already guarantees a wakeup
  }

  const char* name() const override { return "poll"; }

  size_t interest_size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    uint64_t token = 0;
    bool oneshot = false;
    bool armed = true;
    short interest = POLLIN;  // POLLIN or POLLOUT, one direction at a time
  };

  PollPoller() = default;

  // Shared Rearm/ArmWrite body: re-enable the registration watching the
  // given direction, then kick the self-pipe so a blocked poll(2)
  // replays the updated interest set.
  Status Retarget(int fd, uint64_t token, short interest, const char* miss) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(fd);
      if (it == entries_.end()) return Status::NotFound(miss);
      it->second.token = token;
      it->second.armed = true;
      it->second.interest = interest;
    }
    Wake();
    return Status::OK();
  }

  mutable std::mutex mu_;
  std::unordered_map<int, Entry> entries_;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
};

}  // namespace

bool EpollAvailable() {
#if defined(SSDB_HAVE_EPOLL)
  return true;
#else
  return false;
#endif
}

const char* PollerBackendName(PollerBackend backend) {
  switch (backend) {
    case PollerBackend::kEpoll:
      return "epoll";
    case PollerBackend::kPoll:
      return "poll";
    case PollerBackend::kDefault:
      return EpollAvailable() ? "epoll" : "poll";
  }
  return "poll";
}

StatusOr<std::unique_ptr<EventPoller>> MakeEventPoller(PollerBackend backend) {
  if (backend == PollerBackend::kDefault) {
    backend = EpollAvailable() ? PollerBackend::kEpoll : PollerBackend::kPoll;
  }
  if (backend == PollerBackend::kEpoll) {
#if defined(SSDB_HAVE_EPOLL)
    return MakeEpollPoller();
#else
    return Status::Unimplemented("epoll backend not compiled in");
#endif
  }
  return PollPoller::Make();
}

}  // namespace ssdb::rpc
