#include "rpc/concurrent_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "rpc/protocol.h"
#include "util/logging.h"

namespace ssdb::rpc {
namespace {

// Poller registration identity of the listening socket; session ids
// start at 1, so 0 is free (and the poller's internal wake channel uses
// the top of the token range — see rpc/epoll_poller.cc).
constexpr uint64_t kListenerToken = 0;

}  // namespace

ConcurrentServer::ConcurrentServer(gf::Ring ring,
                                   filter::ServerFilter* filter,
                                   std::unique_ptr<UnixServerSocket> listener,
                                   ConcurrentServerOptions options)
    : server_(std::move(ring), filter),
      filter_(filter),
      listener_(std::move(listener)),
      options_(options) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : hw;
  }
}

ConcurrentServer::~ConcurrentServer() { Shutdown(); }

Status ConcurrentServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("already started");
    started_ = true;
  }
  StatusOr<std::unique_ptr<EventPoller>> poller =
      MakeEventPoller(options_.poller);
  Status registered = poller.ok() ? Status::OK() : poller.status();
  if (registered.ok()) {
    poller_ = std::move(*poller);
    // Non-blocking accepts: the poller can report a connection that aborts
    // before accept runs, and the loop must not block on it.
    listener_->SetNonBlocking();
    registered = poller_->Add(listener_->fd(), kListenerToken,
                              /*oneshot=*/false);
  }
  if (!registered.ok()) {
    // Leave the server restartable (e.g. retry with the poll backend
    // after a kEpoll request on a non-epoll build).
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
    poller_.reset();
    return registered;
  }
  poll_thread_ = std::thread([this] { PollLoop(); });
  workers_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

size_t ConcurrentServer::open_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

const char* ConcurrentServer::poller_name() const {
  return poller_ ? poller_->name() : PollerBackendName(options_.poller);
}

uint64_t ConcurrentServer::poller_wakeups() const {
  return poller_ ? poller_->wakeups() : 0;
}

uint64_t ConcurrentServer::poller_items_scanned() const {
  return poller_ ? poller_->items_scanned() : 0;
}

void ConcurrentServer::PollLoop() {
  // With the idle sweep on, Wait returns at a fraction of the timeout so
  // sessions are reclaimed within ~1.25x idle_timeout_seconds; otherwise
  // the dispatcher sleeps until an event or a Wake.
  const int wait_ms =
      options_.idle_timeout_seconds > 0
          ? std::max(50, options_.idle_timeout_seconds * 1000 / 4)
          : -1;
  // The sweep is rate-limited to the wait granularity: busy traffic
  // wakes the dispatcher far more often, and an O(sessions) scan per
  // event-driven wake would reintroduce the cost epoll removed.
  auto next_sweep = std::chrono::steady_clock::now();
  std::vector<PollerEvent> events;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    StatusOr<size_t> waited = poller_->Wait(&events, wait_ms);
    if (!waited.ok()) {
      SSDB_LOG(ERROR) << "concurrent server " << poller_->name()
                      << " wait: " << waited.status().ToString();
      return;  // Shutdown still drains and closes everything
    }
    bool accept_ready = false;
    bool dispatched = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      for (const PollerEvent& event : events) {
        if (event.token == kListenerToken) {
          accept_ready = true;
          continue;
        }
        auto it = sessions_.find(event.token);
        // Stale events (session closed, or token retired before this
        // delivery) are dropped here; oneshot registration means an armed
        // session produces exactly one event until a worker re-arms it.
        if (it == sessions_.end() ||
            it->second->state != SessionState::kArmed) {
          continue;
        }
        it->second->state = SessionState::kReady;
        ready_.push_back(it->first);
        dispatched = true;
      }
    }
    if (dispatched) ready_cv_.notify_all();
    if (accept_ready) HandleAccept();
    if (options_.idle_timeout_seconds > 0) {
      auto now = std::chrono::steady_clock::now();
      if (now >= next_sweep) {
        SweepIdle();
        next_sweep = now + std::chrono::milliseconds(wait_ms);
      }
    }
  }
}

void ConcurrentServer::HandleAccept() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ || accept_paused_) return;
      if (options_.max_connections > 0 &&
          sessions_.size() >= options_.max_connections) {
        // Backpressure: unplug the listener from the poller instead of
        // accepting past the fd budget; pending clients wait in the
        // listen backlog and CloseSession plugs it back in.
        accept_paused_ = true;
        poller_->Remove(listener_->fd());
        if (options_.log_connections) {
          std::printf("accept paused at %zu connections (budget %zu)\n",
                      sessions_.size(), options_.max_connections);
          std::fflush(stdout);
        }
        return;
      }
    }
    // Drain the accept backlog; EAGAIN (or a racing abort) ends the loop
    // and the next listener event retries.
    StatusOr<std::unique_ptr<Channel>> channel = listener_->Accept();
    if (!channel.ok()) return;
    int fd = (*channel)->PollFd();
    if (fd < 0) continue;  // not pollable; drop the connection
    if (options_.io_timeout_seconds > 0) {
      // Bound how long a stalled client can hold a worker mid-frame.
      (*channel)->SetIoTimeout(options_.io_timeout_seconds);
    }
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      auto session = std::make_unique<Session>();
      id = session->id = next_session_id_++;
      session->fd = fd;
      session->channel = std::move(*channel);
      session->last_armed = std::chrono::steady_clock::now();
      Status added = poller_->Add(fd, id, /*oneshot=*/true);
      if (!added.ok()) {
        SSDB_LOG(ERROR) << "register connection: " << added.ToString();
        continue;  // dropping the session closes the channel
      }
      sessions_.emplace(id, std::move(session));
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (options_.log_connections) {
      std::printf("connection %llu accepted (%llu accepted, %llu closed, "
                  "%zu open)\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(connections_accepted()),
                  static_cast<unsigned long long>(connections_closed()),
                  open_connections());
      std::fflush(stdout);
    }
  }
}

void ConcurrentServer::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::seconds(options_.idle_timeout_seconds);
  std::vector<uint64_t> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : sessions_) {
      // Only armed sessions are idle; kReady/kBusy are mid-request and
      // bounded by the per-socket IO timeout instead. An armed session
      // stays armed until this thread dispatches it, so the collected
      // set cannot change state before the closes below.
      if (entry.second->state != SessionState::kArmed) continue;
      if (now - entry.second->last_armed >= limit) {
        expired.push_back(entry.first);
      }
    }
  }
  for (uint64_t id : expired) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    CloseSession(id, "idle timeout");
  }
}

void ConcurrentServer::WorkerLoop() {
  for (;;) {
    uint64_t id = 0;
    Session* session = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and fully drained
      id = ready_.front();
      ready_.pop_front();
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      session = it->second.get();
      // kBusy makes this worker the session's sole owner: the dispatcher
      // skips it (its poller registration is disabled by oneshot) and no
      // other worker can be handed the same connection.
      session->state = SessionState::kBusy;
    }
    StatusOr<std::string> request = session->channel->Receive();
    if (!request.ok()) {
      CloseSession(id, request.status().code() == StatusCode::kOutOfRange
                           ? "peer disconnected"
                           : "receive error");
      continue;
    }
    std::string response =
        server_.HandleRequest(*request, filter::SessionId{id});
    if (!session->channel->Send(response).ok()) {
      CloseSession(id, "send error");
      continue;
    }
    if (!request->empty() &&
        static_cast<Op>((*request)[0]) == Op::kShutdown) {
      // Connection-scoped: a client's shutdown closes its own session, the
      // server keeps serving everyone else (DESIGN.md §7).
      CloseSession(id, "client shutdown");
      continue;
    }
    bool rearmed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      session->state = SessionState::kArmed;
      session->last_armed = std::chrono::steady_clock::now();
      // Under epoll this re-enables the oneshot registration without
      // waking the dispatcher; if bytes already arrived mid-request the
      // kernel delivers the event immediately. Holding mu_ keeps the
      // re-arm atomic with the state transition so the idle sweep cannot
      // close a half-armed session.
      rearmed = poller_->Rearm(session->fd, id).ok();
      if (!rearmed) session->state = SessionState::kBusy;  // keep ownership
    }
    if (!rearmed) CloseSession(id, "poller rearm failed");
  }
}

void ConcurrentServer::CloseSession(uint64_t id, const char* why) {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
    if (accept_paused_ && !stopping_ &&
        sessions_.size() < options_.max_connections) {
      accept_paused_ = false;
      poller_->Add(listener_->fd(), kListenerToken, /*oneshot=*/false);
    }
  }
  // Deregister before closing the fd: the kernel may recycle the fd
  // number for the very next accept.
  poller_->Remove(session->fd);
  // Reclaim whatever the connection left behind, however it died.
  filter_->EndSession(filter::SessionId{id});
  session->channel->Close();
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (options_.log_connections) {
    std::printf("connection %llu closed: %s (%llu accepted, %llu closed, "
                "%zu open)\n",
                static_cast<unsigned long long>(id), why,
                static_cast<unsigned long long>(connections_accepted()),
                static_cast<unsigned long long>(connections_closed()),
                open_connections());
    std::fflush(stdout);
  }
}

void ConcurrentServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  if (poller_) poller_->Wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  // Unblock any worker parked in Receive on a partial frame: SHUT_RD turns
  // its blocking read into an immediate EOF. Nothing is lost — a request
  // that never fully arrived was never serviceable — while workers past
  // Receive still compute and deliver their response (writes unaffected).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : sessions_) {
      ::shutdown(entry.second->fd, SHUT_RD);
    }
  }
  // Workers drain the ready queue (in-flight requests finish), then exit.
  ready_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::vector<uint64_t> remaining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    remaining.reserve(sessions_.size());
    for (const auto& entry : sessions_) remaining.push_back(entry.first);
  }
  for (uint64_t id : remaining) CloseSession(id, "server shutdown");
  listener_->Close();
}

}  // namespace ssdb::rpc
