#include "rpc/concurrent_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "rpc/protocol.h"
#include "util/logging.h"

namespace ssdb::rpc {
namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

ConcurrentServer::ConcurrentServer(gf::Ring ring,
                                   filter::ServerFilter* filter,
                                   std::unique_ptr<UnixServerSocket> listener,
                                   ConcurrentServerOptions options)
    : server_(std::move(ring), filter),
      filter_(filter),
      listener_(std::move(listener)),
      options_(options) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : hw;
  }
}

ConcurrentServer::~ConcurrentServer() { Shutdown(); }

Status ConcurrentServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::FailedPrecondition("already started");
    started_ = true;
  }
  if (::pipe(wake_fds_) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  // Non-blocking accepts: poll can report a connection that aborts before
  // accept runs, and the loop must not block on it.
  SetNonBlocking(listener_->fd());
  poll_thread_ = std::thread([this] { PollLoop(); });
  workers_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void ConcurrentServer::WakePoller() {
  char byte = 'w';
  ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
  (void)ignored;  // a full pipe already guarantees a wakeup
}

size_t ConcurrentServer::open_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void ConcurrentServer::PollLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> ids;  // ids[i] owns fds[i + 2]
  for (;;) {
    fds.clear();
    ids.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
      fds.push_back(pollfd{listener_->fd(), POLLIN, 0});
      for (const auto& entry : sessions_) {
        if (entry.second->state == SessionState::kArmed) {
          fds.push_back(pollfd{entry.second->fd, POLLIN, 0});
          ids.push_back(entry.first);
        }
      }
    }
    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
      if (errno == EINTR) continue;
      SSDB_LOG(ERROR) << "concurrent server poll: " << std::strerror(errno);
      return;  // Shutdown still drains and closes everything
    }
    if (fds[0].revents != 0) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[1].revents != 0) {
      // Drain the accept backlog; EAGAIN (or a racing abort) ends the loop
      // and the next poll round retries.
      for (;;) {
        StatusOr<std::unique_ptr<Channel>> channel = listener_->Accept();
        if (!channel.ok()) break;
        int fd = (*channel)->PollFd();
        if (fd < 0) continue;  // not pollable; drop the connection
        if (options_.io_timeout_seconds > 0) {
          // Bound how long a stalled client can hold a worker mid-frame.
          timeval timeout{};
          timeout.tv_sec = options_.io_timeout_seconds;
          ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
          ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                       sizeof(timeout));
        }
        uint64_t id;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (stopping_) break;
          auto session = std::make_unique<Session>();
          id = session->id = next_session_id_++;
          session->fd = fd;
          session->channel = std::move(*channel);
          sessions_.emplace(id, std::move(session));
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (options_.log_connections) {
          std::printf("connection %llu accepted (%llu accepted, %llu closed, "
                      "%zu open)\n",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(connections_accepted()),
                      static_cast<unsigned long long>(connections_closed()),
                      open_connections());
          std::fflush(stdout);
        }
      }
    }
    bool dispatched = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 2; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        auto it = sessions_.find(ids[i - 2]);
        if (it == sessions_.end() ||
            it->second->state != SessionState::kArmed) {
          continue;
        }
        it->second->state = SessionState::kReady;
        ready_.push_back(it->first);
        dispatched = true;
      }
    }
    if (dispatched) ready_cv_.notify_all();
  }
}

void ConcurrentServer::WorkerLoop() {
  for (;;) {
    uint64_t id = 0;
    Session* session = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and fully drained
      id = ready_.front();
      ready_.pop_front();
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      session = it->second.get();
      // kBusy makes this worker the session's sole owner: the poller skips
      // it and no other worker can be handed the same connection.
      session->state = SessionState::kBusy;
    }
    StatusOr<std::string> request = session->channel->Receive();
    if (!request.ok()) {
      CloseSession(id, request.status().code() == StatusCode::kOutOfRange
                           ? "peer disconnected"
                           : "receive error");
      continue;
    }
    std::string response =
        server_.HandleRequest(*request, filter::SessionId{id});
    if (!session->channel->Send(response).ok()) {
      CloseSession(id, "send error");
      continue;
    }
    if (!request->empty() &&
        static_cast<Op>((*request)[0]) == Op::kShutdown) {
      // Connection-scoped: a client's shutdown closes its own session, the
      // server keeps serving everyone else (DESIGN.md §7).
      CloseSession(id, "client shutdown");
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      session->state = SessionState::kArmed;
    }
    WakePoller();
  }
}

void ConcurrentServer::CloseSession(uint64_t id, const char* why) {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Reclaim whatever the connection left behind, however it died.
  filter_->EndSession(filter::SessionId{id});
  session->channel->Close();
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (options_.log_connections) {
    std::printf("connection %llu closed: %s (%llu accepted, %llu closed, "
                "%zu open)\n",
                static_cast<unsigned long long>(id), why,
                static_cast<unsigned long long>(connections_accepted()),
                static_cast<unsigned long long>(connections_closed()),
                open_connections());
    std::fflush(stdout);
  }
}

void ConcurrentServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  WakePoller();
  if (poll_thread_.joinable()) poll_thread_.join();
  // Unblock any worker parked in Receive on a partial frame: SHUT_RD turns
  // its blocking read into an immediate EOF. Nothing is lost — a request
  // that never fully arrived was never serviceable — while workers past
  // Receive still compute and deliver their response (writes unaffected).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : sessions_) {
      ::shutdown(entry.second->fd, SHUT_RD);
    }
  }
  // Workers drain the ready queue (in-flight requests finish), then exit.
  ready_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::vector<uint64_t> remaining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    remaining.reserve(sessions_.size());
    for (const auto& entry : sessions_) remaining.push_back(entry.first);
  }
  for (uint64_t id : remaining) CloseSession(id, "server shutdown");
  listener_->Close();
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
}

}  // namespace ssdb::rpc
