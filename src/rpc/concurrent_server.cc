#include "rpc/concurrent_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "rpc/protocol.h"
#include "util/logging.h"

namespace ssdb::rpc {
namespace {

// Poller registration identity of the listening socket; session ids
// start at 1, so 0 is free (and the poller's internal wake channel uses
// the top of the token range — see rpc/epoll_poller.cc).
constexpr uint64_t kListenerToken = 0;

}  // namespace

int IdleSweepWaitMs(int idle_timeout_seconds) {
  if (idle_timeout_seconds <= 0) return -1;
  const int64_t quarter_ms =
      static_cast<int64_t>(idle_timeout_seconds) * 1000 / 4;
  constexpr int64_t kMinMs = 50;
  constexpr int64_t kMaxMs = 60 * 60 * 1000;  // sweep at least hourly
  return static_cast<int>(std::min(kMaxMs, std::max(kMinMs, quarter_ms)));
}

ConcurrentServer::ConcurrentServer(gf::Ring ring,
                                   filter::ServerFilter* filter,
                                   std::unique_ptr<UnixServerSocket> listener,
                                   ConcurrentServerOptions options)
    : server_(std::move(ring), filter),
      filter_(filter),
      listener_(std::move(listener)),
      options_(options) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw == 0 ? 1 : hw;
  }
}

ConcurrentServer::~ConcurrentServer() { Shutdown(); }

void ConcurrentServer::UpdatePeak(std::atomic<uint64_t>& peak,
                                  uint64_t value) {
  uint64_t current = peak.load(std::memory_order_relaxed);
  while (value > current &&
         !peak.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

Status ConcurrentServer::Start() {
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    if (started_) return Status::FailedPrecondition("already started");
    started_ = true;
  }
  StatusOr<std::unique_ptr<EventPoller>> poller =
      MakeEventPoller(options_.poller);
  Status registered = poller.ok() ? Status::OK() : poller.status();
  if (registered.ok()) {
    poller_ = std::move(*poller);
    // Non-blocking accepts: the poller can report a connection that aborts
    // before accept runs, and the loop must not block on it.
    listener_->SetNonBlocking();
    registered = poller_->Add(listener_->fd(), kListenerToken,
                              /*oneshot=*/false);
  }
  if (!registered.ok()) {
    // Leave the server restartable (e.g. retry with the poll backend
    // after a kEpoll request on a non-epoll build).
    std::lock_guard<std::mutex> lock(listener_mu_);
    started_ = false;
    poller_.reset();
    return registered;
  }
  queues_.clear();
  queues_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  poll_thread_ = std::thread([this] { PollLoop(); });
  workers_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

const char* ConcurrentServer::poller_name() const {
  return poller_ ? poller_->name() : PollerBackendName(options_.poller);
}

ServerStats ConcurrentServer::Snapshot() const {
  ServerStats stats;
  stats.build = kServerBuild;
  stats.poller = poller_name();
  stats.threads = threads_;
  stats.uptime_seconds = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  stats.requests_handled = server_.requests_handled();
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_closed = closed_.load(std::memory_order_relaxed);
  stats.open_connections = open_count_.load(std::memory_order_relaxed);
  stats.connections_idle_closed = idle_closed_.load(std::memory_order_relaxed);
  stats.write_budget_closed = budget_closed_.load(std::memory_order_relaxed);
  stats.write_stalls = write_stalls_.load(std::memory_order_relaxed);
  stats.bytes_buffered = bytes_buffered_.load(std::memory_order_relaxed);
  stats.bytes_buffered_peak =
      bytes_buffered_peak_.load(std::memory_order_relaxed);
  stats.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  stats.frames_allocated = pool_.allocated();
  stats.frames_reused = pool_.reused();
  stats.poller_wakeups = poller_ ? poller_->wakeups() : 0;
  stats.poller_items_scanned = poller_ ? poller_->items_scanned() : 0;
  return stats;
}

void ConcurrentServer::PollLoop() {
  // With the idle sweep on, Wait returns at a fraction of the timeout so
  // sessions are reclaimed within ~1.25x idle_timeout_seconds; otherwise
  // the dispatcher sleeps until an event or a Wake.
  const int wait_ms = IdleSweepWaitMs(options_.idle_timeout_seconds);
  // The sweep is rate-limited to the wait granularity: busy traffic
  // wakes the dispatcher far more often, and an O(sessions) scan per
  // event-driven wake would reintroduce the cost epoll removed.
  auto next_sweep = std::chrono::steady_clock::now();
  std::vector<PollerEvent> events;
  // (worker queue, session) pairs to hand off after the shard locks drop.
  std::vector<std::pair<size_t, uint64_t>> handoff;
  std::vector<uint64_t> flush;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    StatusOr<size_t> waited = poller_->Wait(&events, wait_ms);
    if (!waited.ok()) {
      SSDB_LOG(ERROR) << "concurrent server " << poller_->name()
                      << " wait: " << waited.status().ToString();
      return;  // Shutdown still drains and closes everything
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    bool accept_ready = false;
    handoff.clear();
    flush.clear();
    for (const PollerEvent& event : events) {
      if (event.token == kListenerToken) {
        accept_ready = true;
        continue;
      }
      SessionShard& shard = ShardFor(event.token);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.sessions.find(event.token);
      // Stale events (session closed, or token retired before this
      // delivery) are dropped here; oneshot registration means an armed
      // session produces exactly one event until it is re-armed.
      if (it == shard.sessions.end()) continue;
      Session* session = it->second.get();
      if (session->state == SessionState::kArmed && event.readable) {
        session->state = SessionState::kReady;
        handoff.emplace_back(session->worker, event.token);
      } else if (session->state == SessionState::kFlushing &&
                 event.writable) {
        // The dispatcher owns kFlushing; flush after the shard lock drops.
        flush.push_back(event.token);
      }
    }
    for (uint64_t id : flush) FlushSession(id);
    for (const auto& [worker, id] : handoff) {
      WorkerQueue& queue = *queues_[worker];
      size_t depth;
      {
        std::lock_guard<std::mutex> lock(queue.mu);
        queue.ready.push_back(id);
        depth = queue.ready.size();
      }
      queue.cv.notify_one();
      UpdatePeak(queue_depth_peak_, depth);
    }
    if (accept_ready) HandleAccept();
    if (options_.idle_timeout_seconds > 0) {
      auto now = std::chrono::steady_clock::now();
      if (now >= next_sweep) {
        SweepIdle();
        next_sweep = now + std::chrono::milliseconds(wait_ms);
      }
    }
  }
}

void ConcurrentServer::HandleAccept() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(listener_mu_);
      if (stopping_.load(std::memory_order_relaxed) || accept_paused_) {
        return;
      }
      if (options_.max_connections > 0 &&
          open_count_.load(std::memory_order_relaxed) >=
              options_.max_connections) {
        // Backpressure: unplug the listener from the poller instead of
        // accepting past the fd budget; pending clients wait in the
        // listen backlog and MaybeResumeAccept plugs it back in.
        accept_paused_ = true;
        poller_->Remove(listener_->fd());
        if (options_.log_connections) {
          std::printf("accept paused at %zu connections (budget %zu)\n",
                      open_count_.load(std::memory_order_relaxed),
                      options_.max_connections);
          std::fflush(stdout);
        }
        return;
      }
    }
    // Drain the accept backlog; EAGAIN (or a racing abort) ends the loop
    // and the next listener event retries.
    StatusOr<std::unique_ptr<Channel>> channel = listener_->Accept();
    if (!channel.ok()) return;
    int fd = (*channel)->PollFd();
    if (fd < 0) continue;  // not pollable; drop the connection
    if (options_.io_timeout_seconds > 0) {
      // Bound how long a stalled client can hold a worker mid-frame.
      (*channel)->SetIoTimeout(options_.io_timeout_seconds);
    }
    if (options_.so_sndbuf > 0) {
      (*channel)->SetSendBufferBytes(options_.so_sndbuf);
    }
    const uint64_t id = next_session_id_++;
    auto session = std::make_unique<Session>();
    session->id = id;
    session->fd = fd;
    session->channel = std::move(*channel);
    session->worker = next_worker_++ % threads_;
    session->last_armed = std::chrono::steady_clock::now();
    {
      SessionShard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.sessions.emplace(id, std::move(session));
    }
    // Register after the table insert so an immediately-delivered event
    // always finds its session.
    Status added = poller_->Add(fd, id, /*oneshot=*/true);
    if (!added.ok()) {
      SSDB_LOG(ERROR) << "register connection: " << added.ToString();
      SessionShard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.sessions.erase(id);  // dropping the session closes the channel
      continue;
    }
    open_count_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (options_.log_connections) {
      std::printf("connection %llu accepted (%llu accepted, %llu closed, "
                  "%zu open)\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(
                      accepted_.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(
                      closed_.load(std::memory_order_relaxed)),
                  open_count_.load(std::memory_order_relaxed));
      std::fflush(stdout);
    }
  }
}

void ConcurrentServer::MaybeResumeAccept() {
  std::lock_guard<std::mutex> lock(listener_mu_);
  if (!accept_paused_ || stopping_.load(std::memory_order_relaxed)) return;
  if (options_.max_connections > 0 &&
      open_count_.load(std::memory_order_relaxed) >=
          options_.max_connections) {
    return;
  }
  accept_paused_ = false;
  poller_->Add(listener_->fd(), kListenerToken, /*oneshot=*/false);
}

void ConcurrentServer::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::seconds(options_.idle_timeout_seconds);
  std::vector<uint64_t> expired;
  for (SessionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& entry : shard.sessions) {
      // kArmed sessions are idle; kFlushing sessions count as idle when
      // the peer has accepted nothing for a full timeout (last_armed is
      // also the flush-progress clock). kReady/kBusy are mid-request and
      // bounded by the per-socket IO timeout instead. Both swept states
      // are owned by the dispatcher — this thread — so the collected set
      // cannot change state before the closes below.
      if (entry.second->state != SessionState::kArmed &&
          entry.second->state != SessionState::kFlushing) {
        continue;
      }
      if (now - entry.second->last_armed >= limit) {
        expired.push_back(entry.first);
      }
    }
  }
  for (uint64_t id : expired) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    CloseSession(id, "idle timeout");
  }
}

void ConcurrentServer::WorkerLoop(size_t index) {
  WorkerQueue& queue = *queues_[index];
  std::string request = pool_.Acquire();
  std::string response = pool_.Acquire();
  for (;;) {
    uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(queue.mu);
      queue.cv.wait(lock, [this, &queue] {
        return stopping_.load(std::memory_order_relaxed) ||
               !queue.ready.empty();
      });
      if (queue.ready.empty()) break;  // stopping and fully drained
      id = queue.ready.front();
      queue.ready.pop_front();
    }
    Session* session = nullptr;
    {
      SessionShard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.sessions.find(id);
      if (it == shard.sessions.end() ||
          it->second->state != SessionState::kReady) {
        continue;
      }
      // kBusy makes this worker the session's sole owner: the dispatcher
      // skips it (its poller registration is disabled by oneshot) and the
      // queue holds no duplicate.
      it->second->state = SessionState::kBusy;
      session = it->second.get();
    }
    Status received = session->channel->ReceiveInto(&request);
    if (!received.ok()) {
      CloseSession(id, received.code() == StatusCode::kOutOfRange
                           ? "peer disconnected"
                           : "receive error");
      continue;
    }
    server_.HandleRequestInto(request, filter::SessionId{id}, &response);
    const bool is_shutdown =
        !request.empty() && static_cast<Op>(request[0]) == Op::kShutdown;
    // Fast path: the response fits the socket and goes out inline. A
    // short write parks the tail on the session and hands it to the
    // dispatcher — this worker never blocks on a slow reader.
    StatusOr<size_t> sent = session->channel->SendNonBlocking(response, 0);
    if (!sent.ok()) {
      CloseSession(id, "send error");
      continue;
    }
    const size_t total = session->channel->SendCompleteOffset(response);
    if (*sent < total) {
      write_stalls_.fetch_add(1, std::memory_order_relaxed);
      const size_t remaining = total - *sent;
      if (options_.max_write_buffer > 0 &&
          remaining > options_.max_write_buffer) {
        budget_closed_.fetch_add(1, std::memory_order_relaxed);
        CloseSession(id, "write buffer budget exceeded");
        continue;
      }
      const uint64_t buffered =
          bytes_buffered_.fetch_add(remaining, std::memory_order_relaxed) +
          remaining;
      UpdatePeak(bytes_buffered_peak_, buffered);
      bool armed = false;
      {
        SessionShard& shard = ShardFor(id);
        std::lock_guard<std::mutex> lock(shard.mu);
        session->out = std::move(response);
        session->out_offset = *sent;
        session->out_total = total;
        session->close_after_flush = is_shutdown;
        session->state = SessionState::kFlushing;
        session->last_armed = std::chrono::steady_clock::now();
        // Write interest replaces the (oneshot-disabled) read interest;
        // under the poll backend ArmWrite kicks the self-pipe so the new
        // mask is picked up immediately.
        armed = poller_->ArmWrite(session->fd, id).ok();
        if (!armed) session->state = SessionState::kBusy;  // keep ownership
      }
      response = pool_.Acquire();
      if (!armed) CloseSession(id, "poller arm-write failed");
      continue;
    }
    if (is_shutdown) {
      // Connection-scoped: a client's shutdown closes its own session, the
      // server keeps serving everyone else (DESIGN.md §7).
      CloseSession(id, "client shutdown");
      continue;
    }
    bool rearmed = false;
    {
      SessionShard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      session->state = SessionState::kArmed;
      session->last_armed = std::chrono::steady_clock::now();
      // Under epoll this re-enables the oneshot registration without
      // waking the dispatcher; if bytes already arrived mid-request the
      // kernel delivers the event immediately. Holding the shard lock
      // keeps the re-arm atomic with the state transition so the idle
      // sweep cannot close a half-armed session.
      rearmed = poller_->Rearm(session->fd, id).ok();
      if (!rearmed) session->state = SessionState::kBusy;  // keep ownership
    }
    if (!rearmed) CloseSession(id, "poller rearm failed");
  }
  pool_.Release(std::move(request));
  pool_.Release(std::move(response));
}

void ConcurrentServer::FlushSession(uint64_t id) {
  Session* session = nullptr;
  {
    SessionShard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end() ||
        it->second->state != SessionState::kFlushing) {
      return;
    }
    session = it->second.get();
  }
  // Sole owner: only the dispatcher moves a session out of kFlushing and
  // this runs in the dispatcher thread, so the raw pointer stays valid
  // and the flush happens outside any lock. The shard acquire above
  // pairs with the worker's release at park time, publishing the out
  // fields.
  StatusOr<size_t> advanced =
      session->channel->SendNonBlocking(session->out, session->out_offset);
  if (!advanced.ok()) {
    CloseSession(id, "flush error");
    return;
  }
  const size_t progress = *advanced - session->out_offset;
  if (progress > 0) {
    bytes_buffered_.fetch_sub(progress, std::memory_order_relaxed);
  }
  session->out_offset = *advanced;
  if (*advanced < session->out_total) {
    // Still blocked: re-arm write interest and keep waiting; the sweep
    // reclaims the session if the peer never drains.
    if (progress > 0) {
      SessionShard& shard = ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      session->last_armed = std::chrono::steady_clock::now();
    }
    if (!poller_->ArmWrite(session->fd, id).ok()) {
      CloseSession(id, "poller arm-write failed");
    }
    return;
  }
  // Drained: recycle the buffer and either retire the session (a flushed
  // kShutdown response) or resume reading.
  pool_.Release(std::move(session->out));
  session->out_offset = 0;
  session->out_total = 0;
  if (session->close_after_flush) {
    CloseSession(id, "client shutdown");
    return;
  }
  bool rearmed = false;
  {
    SessionShard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    session->state = SessionState::kArmed;
    session->last_armed = std::chrono::steady_clock::now();
    rearmed = poller_->Rearm(session->fd, id).ok();
  }
  if (!rearmed) CloseSession(id, "poller rearm failed");
}

void ConcurrentServer::CloseSession(uint64_t id, const char* why) {
  std::unique_ptr<Session> session;
  {
    SessionShard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) return;
    session = std::move(it->second);
    shard.sessions.erase(it);
  }
  // Deregister before closing the fd: the kernel may recycle the fd
  // number for the very next accept.
  poller_->Remove(session->fd);
  // Reclaim whatever the connection left behind, however it died. A
  // catalog-only server (ssdb_router) has no filter and no cursor state.
  if (filter_ != nullptr) filter_->EndSession(filter::SessionId{id});
  session->channel->Close();
  if (session->out_total > session->out_offset) {
    bytes_buffered_.fetch_sub(session->out_total - session->out_offset,
                              std::memory_order_relaxed);
  }
  if (!session->out.empty() || session->out.capacity() > 0) {
    pool_.Release(std::move(session->out));
  }
  open_count_.fetch_sub(1, std::memory_order_relaxed);
  closed_.fetch_add(1, std::memory_order_relaxed);
  MaybeResumeAccept();
  if (options_.log_connections) {
    std::printf("connection %llu closed: %s (%llu accepted, %llu closed, "
                "%zu open)\n",
                static_cast<unsigned long long>(id), why,
                static_cast<unsigned long long>(
                    accepted_.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    closed_.load(std::memory_order_relaxed)),
                open_count_.load(std::memory_order_relaxed));
    std::fflush(stdout);
  }
}

void ConcurrentServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    if (!started_ || stopping_.load(std::memory_order_relaxed)) return;
    stopping_.store(true, std::memory_order_release);
  }
  if (poller_) poller_->Wake();
  if (poll_thread_.joinable()) poll_thread_.join();
  // Unblock any worker parked in Receive on a partial frame: SHUT_RD turns
  // its blocking read into an immediate EOF. Nothing is lost — a request
  // that never fully arrived was never serviceable — while workers past
  // Receive still compute and deliver their response (writes unaffected).
  for (SessionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& entry : shard.sessions) {
      ::shutdown(entry.second->fd, SHUT_RD);
    }
  }
  // Workers drain their queues (in-flight requests finish), then exit.
  // The empty lock/unlock fences the stopping_ store against each
  // worker's predicate check.
  for (const auto& queue : queues_) {
    { std::lock_guard<std::mutex> lock(queue->mu); }
    queue->cv.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::vector<uint64_t> remaining;
  for (SessionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& entry : shard.sessions) {
      remaining.push_back(entry.first);
    }
  }
  for (uint64_t id : remaining) CloseSession(id, "server shutdown");
  listener_->Close();
}

}  // namespace ssdb::rpc
