#include "rpc/frame_pool.h"

namespace ssdb::rpc {

std::string FramePool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::string buffer = std::move(free_.back());
      free_.pop_back();
      reused_.fetch_add(1, std::memory_order_relaxed);
      return buffer;
    }
  }
  allocated_.fetch_add(1, std::memory_order_relaxed);
  return std::string();
}

void FramePool::Release(std::string&& buffer) {
  if (buffer.capacity() > max_retained_bytes_) return;
  buffer.clear();
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= max_pooled_) return;
  free_.push_back(std::move(buffer));
}

}  // namespace ssdb::rpc
