#include "rpc/server.h"

#include "rpc/protocol.h"
#include "rpc/wire.h"
#include "util/logging.h"
#include "util/varint.h"

namespace ssdb::rpc {
namespace {

// Builds the op-specific success payload; any error becomes an error frame.
StatusOr<std::string> Dispatch(const gf::Ring& ring,
                               filter::ServerFilter* filter,
                               filter::SessionId session,
                               const Request& request) {
  std::string payload;
  switch (request.op) {
    case Op::kRoot: {
      SSDB_ASSIGN_OR_RETURN(filter::NodeMeta meta, filter->Root());
      AppendNodeMeta(&payload, meta);
      return payload;
    }
    case Op::kGetNode: {
      SSDB_ASSIGN_OR_RETURN(filter::NodeMeta meta,
                            filter->GetNode(request.pre));
      AppendNodeMeta(&payload, meta);
      return payload;
    }
    case Op::kChildren: {
      SSDB_ASSIGN_OR_RETURN(std::vector<filter::NodeMeta> metas,
                            filter->Children(request.pre));
      AppendNodeMetas(&payload, metas);
      return payload;
    }
    case Op::kOpenCursor: {
      SSDB_ASSIGN_OR_RETURN(
          uint64_t cursor,
          filter->OpenDescendantCursor(session, request.pre, request.post));
      PutVarint64(&payload, cursor);
      return payload;
    }
    case Op::kNextNodes: {
      SSDB_ASSIGN_OR_RETURN(
          std::vector<filter::NodeMeta> metas,
          filter->NextNodes(session, request.cursor,
                            static_cast<size_t>(request.batch)));
      AppendNodeMetas(&payload, metas);
      return payload;
    }
    case Op::kCloseCursor: {
      SSDB_RETURN_IF_ERROR(filter->CloseCursor(session, request.cursor));
      return payload;
    }
    case Op::kEvalAt: {
      SSDB_ASSIGN_OR_RETURN(gf::Elem value,
                            filter->EvalAt(request.pre, request.point));
      PutVarint64(&payload, value);
      return payload;
    }
    case Op::kEvalAtBatch: {
      SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> values,
                            filter->EvalAtBatch(request.pres, request.point));
      AppendElems(&payload, values);
      return payload;
    }
    case Op::kEvalPointsBatch: {
      SSDB_ASSIGN_OR_RETURN(
          std::vector<gf::Elem> values,
          filter->EvalPointsBatch(request.pre, request.points));
      AppendElems(&payload, values);
      return payload;
    }
    case Op::kFetchShare: {
      SSDB_ASSIGN_OR_RETURN(gf::RingElem share,
                            filter->FetchShare(request.pre));
      PutLengthPrefixed(&payload, ring.Serialize(share));
      return payload;
    }
    case Op::kFetchShareBatch: {
      SSDB_ASSIGN_OR_RETURN(std::vector<gf::RingElem> shares,
                            filter->FetchShareBatch(request.pres));
      for (const gf::RingElem& share : shares) {
        PutLengthPrefixed(&payload, ring.Serialize(share));
      }
      return payload;
    }
    case Op::kChildrenBatch: {
      SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<filter::NodeMeta>> lists,
                            filter->ChildrenBatch(request.pres));
      for (const std::vector<filter::NodeMeta>& metas : lists) {
        AppendNodeMetas(&payload, metas);
      }
      return payload;
    }
    case Op::kAggregate:
    case Op::kAggregateBatch: {
      agg::Spec spec;
      spec.columns = request.agg_columns;
      spec.pres = request.pres;
      spec.value_indexes = request.value_indexes;
      SSDB_ASSIGN_OR_RETURN(std::vector<agg::Word> partials,
                            filter->PartialAggregate(session, spec));
      AppendU32s(&payload, partials);
      return payload;
    }
    case Op::kFetchSealed: {
      SSDB_ASSIGN_OR_RETURN(std::string sealed,
                            filter->FetchSealed(request.pre));
      PutLengthPrefixed(&payload, sealed);
      return payload;
    }
    case Op::kNodeCount: {
      SSDB_ASSIGN_OR_RETURN(uint64_t count, filter->NodeCount());
      PutVarint64(&payload, count);
      return payload;
    }
    case Op::kShutdown:
      return payload;
  }
  return Status::Corruption("unhandled op");
}

}  // namespace

std::string RpcServer::HandleRequest(std::string_view request_bytes,
                                     filter::SessionId session) {
  StatusOr<Request> request = DecodeRequest(request_bytes);
  if (!request.ok()) {
    return EncodeErrorResponse(request.status());
  }
  StatusOr<std::string> payload = Dispatch(ring_, filter_, session, *request);
  if (!payload.ok()) {
    return EncodeErrorResponse(payload.status());
  }
  return EncodeOkResponse(*payload);
}

Status RpcServer::Serve(Channel* channel) {
  for (;;) {
    StatusOr<std::string> request_bytes = channel->Receive();
    if (!request_bytes.ok()) {
      // Peer hung up: clean end of session.
      if (request_bytes.status().code() == StatusCode::kOutOfRange) {
        return Status::OK();
      }
      return request_bytes.status();
    }
    std::string response = HandleRequest(*request_bytes);
    SSDB_RETURN_IF_ERROR(channel->Send(response));
    // kShutdown closes after acknowledging.
    if (!request_bytes->empty() &&
        static_cast<Op>((*request_bytes)[0]) == Op::kShutdown) {
      return Status::OK();
    }
  }
}

ServerThread::ServerThread(gf::Ring ring, filter::ServerFilter* filter,
                           std::unique_ptr<Channel> channel)
    : channel_(std::move(channel)), server_(std::move(ring), filter) {
  thread_ = std::thread([this] {
    Status s = server_.Serve(channel_.get());
    if (!s.ok()) {
      SSDB_LOG(ERROR) << "rpc server exited with error: " << s.ToString();
    }
  });
}

ServerThread::~ServerThread() {
  channel_->Close();
  if (thread_.joinable()) thread_.join();
}

}  // namespace ssdb::rpc
