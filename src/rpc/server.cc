#include "rpc/server.h"

#include "rpc/protocol.h"
#include "rpc/wire.h"
#include "util/logging.h"
#include "util/varint.h"

namespace ssdb::rpc {
namespace {

// Appends the op-specific success payload to *payload; any error becomes
// an error frame. Appending into the caller's buffer (rather than
// returning a fresh string) lets the concurrent transport encode the
// response directly into a pooled frame buffer (rpc/frame_pool.h).
Status Dispatch(const gf::Ring& ring, filter::ServerFilter* filter,
                filter::SessionId session, const Request& request,
                std::string* payload) {
  switch (request.op) {
    case Op::kRoot: {
      SSDB_ASSIGN_OR_RETURN(filter::NodeMeta meta, filter->Root());
      AppendNodeMeta(payload, meta);
      return Status::OK();
    }
    case Op::kGetNode: {
      SSDB_ASSIGN_OR_RETURN(filter::NodeMeta meta,
                            filter->GetNode(request.pre));
      AppendNodeMeta(payload, meta);
      return Status::OK();
    }
    case Op::kChildren: {
      SSDB_ASSIGN_OR_RETURN(std::vector<filter::NodeMeta> metas,
                            filter->Children(request.pre));
      AppendNodeMetas(payload, metas);
      return Status::OK();
    }
    case Op::kOpenCursor: {
      SSDB_ASSIGN_OR_RETURN(
          uint64_t cursor,
          filter->OpenDescendantCursor(session, request.pre, request.post));
      PutVarint64(payload, cursor);
      return Status::OK();
    }
    case Op::kNextNodes: {
      SSDB_ASSIGN_OR_RETURN(
          std::vector<filter::NodeMeta> metas,
          filter->NextNodes(session, request.cursor,
                            static_cast<size_t>(request.batch)));
      AppendNodeMetas(payload, metas);
      return Status::OK();
    }
    case Op::kCloseCursor: {
      return filter->CloseCursor(session, request.cursor);
    }
    case Op::kEvalAt: {
      SSDB_ASSIGN_OR_RETURN(gf::Elem value,
                            filter->EvalAt(request.pre, request.point));
      PutVarint64(payload, value);
      return Status::OK();
    }
    case Op::kEvalAtBatch: {
      SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> values,
                            filter->EvalAtBatch(request.pres, request.point));
      AppendElems(payload, values);
      return Status::OK();
    }
    case Op::kEvalPointsBatch: {
      SSDB_ASSIGN_OR_RETURN(
          std::vector<gf::Elem> values,
          filter->EvalPointsBatch(request.pre, request.points));
      AppendElems(payload, values);
      return Status::OK();
    }
    case Op::kFetchShare: {
      SSDB_ASSIGN_OR_RETURN(gf::RingElem share,
                            filter->FetchShare(request.pre));
      PutLengthPrefixed(payload, ring.Serialize(share));
      return Status::OK();
    }
    case Op::kFetchShareBatch: {
      SSDB_ASSIGN_OR_RETURN(std::vector<gf::RingElem> shares,
                            filter->FetchShareBatch(request.pres));
      for (const gf::RingElem& share : shares) {
        PutLengthPrefixed(payload, ring.Serialize(share));
      }
      return Status::OK();
    }
    case Op::kChildrenBatch: {
      SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<filter::NodeMeta>> lists,
                            filter->ChildrenBatch(request.pres));
      for (const std::vector<filter::NodeMeta>& metas : lists) {
        AppendNodeMetas(payload, metas);
      }
      return Status::OK();
    }
    case Op::kAggregate:
    case Op::kAggregateBatch: {
      agg::Spec spec;
      spec.columns = request.agg_columns;
      spec.pres = request.pres;
      spec.value_indexes = request.value_indexes;
      SSDB_ASSIGN_OR_RETURN(std::vector<agg::Word> partials,
                            filter->PartialAggregate(session, spec));
      AppendU32s(payload, partials);
      return Status::OK();
    }
    case Op::kAggregateVerified:
    case Op::kAggregateBatchVerified: {
      agg::Spec spec;
      spec.columns = request.agg_columns;
      spec.pres = request.pres;
      spec.value_indexes = request.value_indexes;
      SSDB_ASSIGN_OR_RETURN(std::vector<agg::VerifiedPartial> partials,
                            filter->PartialAggregateVerified(session, spec));
      AppendVerifiedPartials(payload, partials);
      return Status::OK();
    }
    case Op::kFetchSealed: {
      SSDB_ASSIGN_OR_RETURN(std::string sealed,
                            filter->FetchSealed(request.pre));
      PutLengthPrefixed(payload, sealed);
      return Status::OK();
    }
    case Op::kNodeCount: {
      SSDB_ASSIGN_OR_RETURN(uint64_t count, filter->NodeCount());
      PutVarint64(payload, count);
      return Status::OK();
    }
    case Op::kMutationState: {
      SSDB_ASSIGN_OR_RETURN(std::vector<storage::MutationState> states,
                            filter->MutationStates());
      if (states.size() != 1) {
        return Status::Internal("expected one mutation state, got " +
                                std::to_string(states.size()));
      }
      PutVarint64(payload, states[0].version);
      PutVarint64(payload, states[0].next_nonce);
      PutVarint64(payload, states[0].pending_txn);
      return Status::OK();
    }
    case Op::kInsert:
    case Op::kUpdate:
    case Op::kDelete: {
      // Two-phase step (DESIGN.md §12). Prepare decodes + validates here so
      // a malformed plan is rejected before anything reaches the store, and
      // the op must agree with the plan's kind.
      switch (request.phase) {
        case MutationPhase::kPrepare: {
          SSDB_ASSIGN_OR_RETURN(storage::MutationPlan plan,
                                storage::DecodeMutationPlan(request.plan));
          storage::MutationKind expected =
              request.op == Op::kInsert   ? storage::MutationKind::kInsert
              : request.op == Op::kUpdate ? storage::MutationKind::kUpdate
                                          : storage::MutationKind::kDelete;
          if (plan.kind != expected) {
            return Status::InvalidArgument(
                std::string("mutation plan kind (") +
                storage::MutationKindName(plan.kind) +
                ") disagrees with the request op");
          }
          return filter->PrepareMutation(request.txn, {std::move(plan)});
        }
        case MutationPhase::kCommit:
          return filter->CommitMutation(request.txn);
        case MutationPhase::kAbort:
          return filter->AbortMutation(request.txn);
      }
      return Status::Corruption("unhandled mutation phase");
    }
    case Op::kFetchColumnsBatch: {
      SSDB_ASSIGN_OR_RETURN(std::vector<storage::ColumnBlobs> blobs,
                            filter->FetchColumnsBatch(request.pres));
      for (const storage::ColumnBlobs& cols : blobs) {
        PutLengthPrefixed(payload, cols.agg);
        PutLengthPrefixed(payload, cols.verify);
      }
      return Status::OK();
    }
    case Op::kShutdown:
      return Status::OK();
    case Op::kCatalog:
    case Op::kCatalogResolve:
    case Op::kPing:
      // Handled by RpcServer before Dispatch; unreachable here.
      break;
  }
  return Status::Corruption("unhandled op");
}

}  // namespace

void RpcServer::SetCatalog(std::string encoded_catalog,
                           std::map<std::string, std::string> encoded_entries) {
  catalog_bytes_ = std::move(encoded_catalog);
  catalog_entries_.clear();
  for (auto& [doc_id, bytes] : encoded_entries) {
    catalog_entries_.emplace(doc_id, std::move(bytes));
  }
}

Status RpcServer::ServeCatalog(const Request& request,
                               std::string* payload) const {
  if (catalog_bytes_.empty()) {
    return Status::FailedPrecondition(
        "no shard catalog installed on this server");
  }
  if (request.op == Op::kCatalog) {
    payload->append(catalog_bytes_);
    return Status::OK();
  }
  auto it = catalog_entries_.find(request.doc_id);
  if (it == catalog_entries_.end()) {
    return Status::NotFound("no document '" + request.doc_id +
                            "' in the shard catalog");
  }
  payload->append(it->second);
  return Status::OK();
}

void RpcServer::HandleRequestInto(std::string_view request_bytes,
                                  filter::SessionId session,
                                  std::string* response) {
  response->clear();
  StatusOr<Request> request = DecodeRequest(request_bytes);
  if (!request.ok()) {
    response->assign(EncodeErrorResponse(request.status()));
    return;
  }
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  // Optimistically write the ok envelope byte and let Dispatch append the
  // payload in place; a failed dispatch rewinds and encodes the error.
  response->push_back(1);
  if (request->op == Op::kPing) {
    // The health probe (DESIGN.md §11) never touches the filter or catalog:
    // a metadata-only router and a share server answer it identically.
    PingInfo info;
    info.build = kServerBuild;
    info.uptime_seconds = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - started_)
            .count());
    info.stats_epoch = requests_handled_.load(std::memory_order_relaxed);
    response->append(EncodePingInfo(info));
    return;
  }
  if (request->op == Op::kCatalog || request->op == Op::kCatalogResolve) {
    // Catalog ops never touch the filter: a catalog-only server (ssdb_router)
    // answers them with no share slice behind it.
    Status s = ServeCatalog(*request, response);
    if (!s.ok()) response->assign(EncodeErrorResponse(s));
    return;
  }
  if (filter_ == nullptr && request->op != Op::kShutdown) {
    response->assign(EncodeErrorResponse(Status::FailedPrecondition(
        "this server serves shard-catalog metadata only (no share slice)")));
    return;
  }
  Status s = Dispatch(ring_, filter_, session, *request, response);
  if (!s.ok()) {
    response->assign(EncodeErrorResponse(s));
  }
}

std::string RpcServer::HandleRequest(std::string_view request_bytes,
                                     filter::SessionId session) {
  std::string response;
  HandleRequestInto(request_bytes, session, &response);
  return response;
}

Status RpcServer::Serve(Channel* channel) {
  for (;;) {
    StatusOr<std::string> request_bytes = channel->Receive();
    if (!request_bytes.ok()) {
      // Peer hung up: clean end of session.
      if (request_bytes.status().code() == StatusCode::kOutOfRange) {
        return Status::OK();
      }
      return request_bytes.status();
    }
    std::string response = HandleRequest(*request_bytes);
    SSDB_RETURN_IF_ERROR(channel->Send(response));
    // kShutdown closes after acknowledging.
    if (!request_bytes->empty() &&
        static_cast<Op>((*request_bytes)[0]) == Op::kShutdown) {
      return Status::OK();
    }
  }
}

ServerThread::ServerThread(gf::Ring ring, filter::ServerFilter* filter,
                           std::unique_ptr<Channel> channel)
    : channel_(std::move(channel)), server_(std::move(ring), filter) {
  thread_ = std::thread([this] {
    Status s = server_.Serve(channel_.get());
    if (!s.ok()) {
      SSDB_LOG(ERROR) << "rpc server exited with error: " << s.ToString();
    }
  });
}

ServerThread::~ServerThread() {
  channel_->Close();
  if (thread_.joinable()) thread_.join();
}

}  // namespace ssdb::rpc
