/// MultiServerSession (DESIGN.md §5): the client side of an m-server
/// deployment. Owns one Channel + RemoteServerFilter per share-slice server
/// and the MultiServerFilter that fans batched evaluations out to all of
/// them concurrently (one thread per extra channel) and sums the replies.
/// With one channel this degenerates to a plain RemoteServerFilter session —
/// same wire bytes, no threads.
///
/// The session is the unit of connection management: ConnectUnix dials every
/// server, Shutdown() stops them all, and bytes_on_wire() aggregates the
/// channels' counters for the communication-cost experiments (DESIGN.md §4,
/// ablation A3).

#ifndef SSDB_RPC_MULTI_SESSION_H_
#define SSDB_RPC_MULTI_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "filter/multi_server_filter.h"
#include "gf/ring.h"
#include "rpc/channel.h"
#include "rpc/client.h"
#include "util/statusor.h"

namespace ssdb::rpc {

class MultiServerSession {
 public:
  // One connected channel per share-slice server, in slice order (channel i
  // must reach the server holding slice i; slice 0 is the primary that also
  // serves structure and sealed payloads).
  static StatusOr<std::unique_ptr<MultiServerSession>> FromChannels(
      gf::Ring ring, std::vector<std::unique_ptr<Channel>> channels);

  // Dials one unix socket per server, in slice order.
  static StatusOr<std::unique_ptr<MultiServerSession>> ConnectUnix(
      gf::Ring ring, const std::vector<std::string>& socket_paths);

  // The fan-out filter the client stack talks to.
  filter::MultiServerFilter* filter() { return fanout_.get(); }
  RemoteServerFilter* remote(size_t i) { return remotes_[i].get(); }
  size_t server_count() const { return remotes_.size(); }

  // Total bytes moved over all channels (sent + received).
  uint64_t bytes_on_wire() const;

  // Asks every server to stop serving, then closes the channels.
  Status Shutdown();

 private:
  MultiServerSession() = default;

  std::vector<std::unique_ptr<RemoteServerFilter>> remotes_;
  std::unique_ptr<filter::MultiServerFilter> fanout_;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_MULTI_SESSION_H_
