/// RemoteServerFilter: client-side stub implementing ServerFilter over a
/// Channel — the drop-in replacement for the paper's RMI remote object.
/// Streams large batches in bounded chunks so round trips stay
/// O(batch / chunk) under the frame cap (DESIGN.md §6). In an m-server
/// deployment one stub per channel sits behind a MultiServerFilter
/// (DESIGN.md §5, src/rpc/multi_session.h).

#ifndef SSDB_RPC_CLIENT_H_
#define SSDB_RPC_CLIENT_H_

#include <memory>

#include "filter/server_filter.h"
#include "gf/ring.h"
#include "rpc/channel.h"
#include "rpc/protocol.h"

namespace ssdb::rpc {

// One kPing round trip over an already-connected channel (DESIGN.md §11):
// returns the server's build/uptime/stats-epoch, or the dial/decode error.
// The health monitor's default probe comes through here.
StatusOr<PingInfo> Ping(Channel* channel);

class RemoteServerFilter : public filter::ServerFilter {
 public:
  RemoteServerFilter(gf::Ring ring, std::unique_ptr<Channel> channel)
      : ring_(std::move(ring)), channel_(std::move(channel)) {}

  StatusOr<filter::NodeMeta> Root() override;
  StatusOr<filter::NodeMeta> GetNode(uint32_t pre) override;
  StatusOr<std::vector<filter::NodeMeta>> Children(uint32_t pre) override;
  StatusOr<std::vector<std::vector<filter::NodeMeta>>> ChildrenBatch(
      const std::vector<uint32_t>& pres) override;
  StatusOr<uint64_t> OpenDescendantCursor(uint32_t pre,
                                          uint32_t post) override;
  StatusOr<std::vector<filter::NodeMeta>> NextNodes(uint64_t cursor,
                                                    size_t max_batch) override;
  Status CloseCursor(uint64_t cursor) override;
  StatusOr<gf::Elem> EvalAt(uint32_t pre, gf::Elem t) override;
  StatusOr<std::vector<gf::Elem>> EvalAtBatch(
      const std::vector<uint32_t>& pres, gf::Elem t) override;
  StatusOr<std::vector<gf::Elem>> EvalPointsBatch(
      uint32_t pre, const std::vector<gf::Elem>& points) override;
  StatusOr<gf::RingElem> FetchShare(uint32_t pre) override;
  StatusOr<std::vector<gf::RingElem>> FetchShareBatch(
      const std::vector<uint32_t>& pres) override;
  // Partial sums are additive, so a frontier larger than one frame streams
  // in chunks whose per-chunk partials just sum client-side (DESIGN.md §8).
  StatusOr<std::vector<agg::Word>> PartialAggregate(
      const agg::Spec& spec) override;
  // Verified variant (DESIGN.md §9): one VerifiedPartial for this slice
  // server; words/wide/proof from successive chunks sum like the plain op.
  StatusOr<std::vector<agg::VerifiedPartial>> PartialAggregateVerified(
      const agg::Spec& spec) override;
  StatusOr<std::string> FetchSealed(uint32_t pre) override;
  StatusOr<uint64_t> NodeCount() override;
  // Mutations (DESIGN.md §12): this stub serves one slice, so
  // MutationStates() returns one entry and PrepareMutation accepts exactly
  // one plan, serialized onto the kind-specific op with phase kPrepare.
  StatusOr<std::vector<storage::MutationState>> MutationStates() override;
  Status PrepareMutation(
      uint64_t txn,
      const std::vector<storage::MutationPlan>& plans) override;
  Status CommitMutation(uint64_t txn) override;
  Status AbortMutation(uint64_t txn) override;
  StatusOr<std::vector<storage::ColumnBlobs>> FetchColumnsBatch(
      const std::vector<uint32_t>& pres) override;
  uint64_t RoundTrips() const override { return round_trips_; }

  // Asks the server to stop serving, then closes the channel.
  Status Shutdown();

  uint64_t round_trips() const { return round_trips_; }
  const Channel& channel() const { return *channel_; }

  // Large batches are streamed in bounded chunks of this many nodes per
  // request frame, keeping any single frame well under kMaxFrameBytes while
  // still costing O(batch / chunk) round trips instead of O(batch).
  static constexpr size_t kEvalChunk = 16384;
  static constexpr size_t kShareChunk = 2048;   // full polynomials are wide
  static constexpr size_t kChildrenChunk = 8192;
  static constexpr size_t kAggChunk = 32768;    // frontier pres per frame
  static constexpr size_t kColumnsChunk = 256;  // column blobs are wide (§12)

 private:
  // Sends one request and returns the response payload.
  StatusOr<std::string> Call(const Request& request);

  gf::Ring ring_;
  std::unique_ptr<Channel> channel_;
  uint64_t round_trips_ = 0;
  // Which mutation op the in-flight two-phase txn rides on; set by prepare,
  // reused for commit/abort (the server ignores the kind past prepare, so a
  // recovery-driven commit with no prior prepare on this stub is fine too).
  Op mutation_op_ = Op::kUpdate;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_CLIENT_H_
