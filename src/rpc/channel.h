/// Bidirectional blocking message channel — the transport under the RPC
/// stack. Two implementations: an in-process pair (deterministic, zero-copy,
/// used by default) and unix-domain sockets (src/rpc/socket_channel.h) for a
/// real client/server split like the paper's RMI setup. An m-server session
/// (DESIGN.md §5) holds one channel per share-slice server.
///
/// Byte and message counters feed the communication-cost experiments
/// (DESIGN.md §4, ablation A3).

#ifndef SSDB_RPC_CHANNEL_H_
#define SSDB_RPC_CHANNEL_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace ssdb::rpc {

class Channel {
 public:
  virtual ~Channel() = default;

  virtual Status Send(std::string_view message) = 0;
  // Blocks until a message arrives; OutOfRange("connection closed") on EOF.
  virtual StatusOr<std::string> Receive() = 0;
  virtual void Close() = 0;

  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t bytes_received() const = 0;
  virtual uint64_t messages_sent() const = 0;

  // File descriptor a readiness-based dispatcher (rpc/event_poller.h)
  // can register for readability (DESIGN.md §7), or -1 when the
  // transport has none (in-process pairs).
  virtual int PollFd() const { return -1; }

  // Bounds how long a blocking Send/Receive may stall (SO_RCVTIMEO /
  // SO_SNDTIMEO on sockets); ConcurrentServer sets it on accepted
  // connections so a stalled client cannot park a worker. No-op on
  // transports without timeouts (in-process pairs).
  virtual Status SetIoTimeout(int seconds) {
    (void)seconds;
    return Status::OK();
  }
};

struct ChannelPair {
  std::unique_ptr<Channel> client;
  std::unique_ptr<Channel> server;
};

// Connected in-process endpoints (thread-safe; usable across threads).
ChannelPair CreateInProcessChannelPair();

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_CHANNEL_H_
