/// Bidirectional blocking message channel — the transport under the RPC
/// stack. Two implementations: an in-process pair (deterministic, zero-copy,
/// used by default) and unix-domain sockets (src/rpc/socket_channel.h) for a
/// real client/server split like the paper's RMI setup. An m-server session
/// (DESIGN.md §5) holds one channel per share-slice server.
///
/// Byte and message counters feed the communication-cost experiments
/// (DESIGN.md §4, ablation A3).

#ifndef SSDB_RPC_CHANNEL_H_
#define SSDB_RPC_CHANNEL_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace ssdb::rpc {

class Channel {
 public:
  virtual ~Channel() = default;

  virtual Status Send(std::string_view message) = 0;
  // Blocks until a message arrives; OutOfRange("connection closed") on EOF.
  virtual StatusOr<std::string> Receive() = 0;
  // Receive into a caller-owned buffer so its capacity is reused across
  // messages (the concurrent server feeds pooled frame buffers here,
  // DESIGN.md §7). Transports without a zero-copy path fall back to
  // Receive().
  virtual Status ReceiveInto(std::string* message) {
    SSDB_ASSIGN_OR_RETURN(*message, Receive());
    return Status::OK();
  }
  virtual void Close() = 0;

  // One non-blocking step of sending `message`, resuming from transport
  // offset `offset` (0 starts a fresh message; pass the returned value to
  // resume). The message is fully out once the result equals
  // SendCompleteOffset(message) — anything less means the transport is
  // full and the caller should wait for writability (the buffered write
  // path, DESIGN.md §7). Transports without a non-blocking path complete
  // the send in one call.
  virtual StatusOr<size_t> SendNonBlocking(std::string_view message,
                                           size_t offset) {
    if (offset == 0) SSDB_RETURN_IF_ERROR(Send(message));
    return SendCompleteOffset(message);
  }
  // The offset at which SendNonBlocking considers `message` fully sent
  // (message size plus any transport framing).
  virtual size_t SendCompleteOffset(std::string_view message) const {
    return message.size();
  }

  virtual uint64_t bytes_sent() const = 0;
  virtual uint64_t bytes_received() const = 0;
  virtual uint64_t messages_sent() const = 0;

  // File descriptor a readiness-based dispatcher (rpc/event_poller.h)
  // can register for readability (DESIGN.md §7), or -1 when the
  // transport has none (in-process pairs).
  virtual int PollFd() const { return -1; }

  // Bounds how long a blocking Send/Receive may stall (SO_RCVTIMEO /
  // SO_SNDTIMEO on sockets); ConcurrentServer sets it on accepted
  // connections so a stalled client cannot park a worker. No-op on
  // transports without timeouts (in-process pairs).
  virtual Status SetIoTimeout(int seconds) {
    (void)seconds;
    return Status::OK();
  }

  // Caps the kernel send buffer (SO_SNDBUF on sockets); benches and
  // tests shrink it to force the buffered write path with small
  // responses. No-op on transports without one.
  virtual Status SetSendBufferBytes(int bytes) {
    (void)bytes;
    return Status::OK();
  }
};

struct ChannelPair {
  std::unique_ptr<Channel> client;
  std::unique_ptr<Channel> server;
};

// Connected in-process endpoints (thread-safe; usable across threads).
ChannelPair CreateInProcessChannelPair();

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_CHANNEL_H_
