/// Low-level wire helpers: length-prefixed frames over file descriptors and
/// the shared encode/decode routines for protocol payloads. The frame cap
/// is what the batched pipeline's chunk sizes are tuned against
/// (DESIGN.md §6).

#ifndef SSDB_RPC_WIRE_H_
#define SSDB_RPC_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "filter/server_filter.h"
#include "gf/field.h"
#include "util/statusor.h"

namespace ssdb::rpc {

// Frame format: u32 little-endian length, then payload. Max 64 MiB.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;
inline constexpr size_t kFrameHeaderBytes = 4;

// Blocking full-buffer read/write on a fd; EOF surfaces as OutOfRange.
Status WriteFull(int fd, const void* data, size_t len);
Status ReadFull(int fd, void* data, size_t len);

// Header and payload leave in one writev/sendmsg — a single syscall and
// no concatenation copy (DESIGN.md §7).
Status WriteFrame(int fd, std::string_view payload);
StatusOr<std::string> ReadFrame(int fd);

// ReadFrame into a caller-owned buffer, so a pooled buffer's capacity is
// reused across requests instead of allocating a fresh string per frame.
Status ReadFrameInto(int fd, std::string* payload);

// One non-blocking step of a framed send, scatter-gathering whatever is
// left of the 4-byte header and the payload from frame offset `offset`
// (0 = first header byte). Returns the new offset: payload.size() +
// kFrameHeaderBytes means the frame is out; anything less means the
// socket is full and the caller should wait for writability
// (EventPoller::ArmWrite) before the next step. Never blocks and never
// raises SIGPIPE.
StatusOr<size_t> WriteFrameNonBlocking(int fd, std::string_view payload,
                                       size_t offset);

// --- payload codecs shared by protocol.cc and client.cc ---
void AppendNodeMeta(std::string* out, const filter::NodeMeta& meta);
Status ConsumeNodeMeta(std::string_view* in, filter::NodeMeta* meta);

void AppendNodeMetas(std::string* out,
                     const std::vector<filter::NodeMeta>& metas);
StatusOr<std::vector<filter::NodeMeta>> ConsumeNodeMetas(
    std::string_view* in);

void AppendElems(std::string* out, const std::vector<gf::Elem>& elems);
StatusOr<std::vector<gf::Elem>> ConsumeElems(std::string_view* in);

void AppendU32s(std::string* out, const std::vector<uint32_t>& values);
StatusOr<std::vector<uint32_t>> ConsumeU32s(std::string_view* in);

void AppendU64s(std::string* out, const std::vector<uint64_t>& values);
StatusOr<std::vector<uint64_t>> ConsumeU64s(std::string_view* in);

// Verified aggregate reply codec (DESIGN.md §9): varint slice-entry count,
// then per entry the words, wide, and proof lists (wide/proof empty on
// slices without the verification track). Consume rejects entries whose
// wide and proof lengths disagree; group-count checks are the caller's.
void AppendVerifiedPartials(std::string* out,
                            const std::vector<agg::VerifiedPartial>& partials);
StatusOr<std::vector<agg::VerifiedPartial>> ConsumeVerifiedPartials(
    std::string_view* in);

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_WIRE_H_
