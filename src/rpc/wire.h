/// Low-level wire helpers: length-prefixed frames over file descriptors and
/// the shared encode/decode routines for protocol payloads. The frame cap
/// is what the batched pipeline's chunk sizes are tuned against
/// (DESIGN.md §6).

#ifndef SSDB_RPC_WIRE_H_
#define SSDB_RPC_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "filter/server_filter.h"
#include "gf/field.h"
#include "util/statusor.h"

namespace ssdb::rpc {

// Frame format: u32 little-endian length, then payload. Max 64 MiB.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Blocking full-buffer read/write on a fd; EOF surfaces as OutOfRange.
Status WriteFull(int fd, const void* data, size_t len);
Status ReadFull(int fd, void* data, size_t len);

Status WriteFrame(int fd, std::string_view payload);
StatusOr<std::string> ReadFrame(int fd);

// --- payload codecs shared by protocol.cc and client.cc ---
void AppendNodeMeta(std::string* out, const filter::NodeMeta& meta);
Status ConsumeNodeMeta(std::string_view* in, filter::NodeMeta* meta);

void AppendNodeMetas(std::string* out,
                     const std::vector<filter::NodeMeta>& metas);
StatusOr<std::vector<filter::NodeMeta>> ConsumeNodeMetas(
    std::string_view* in);

void AppendElems(std::string* out, const std::vector<gf::Elem>& elems);
StatusOr<std::vector<gf::Elem>> ConsumeElems(std::string_view* in);

void AppendU32s(std::string* out, const std::vector<uint32_t>& values);
StatusOr<std::vector<uint32_t>> ConsumeU32s(std::string_view* in);

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_WIRE_H_
