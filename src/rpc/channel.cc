#include "rpc/channel.h"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace ssdb::rpc {
namespace {

// Shared state of an in-process pair: two directed queues.
struct PairCore {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> to_server;
  std::deque<std::string> to_client;
  bool closed = false;
};

class InProcessChannel : public Channel {
 public:
  InProcessChannel(std::shared_ptr<PairCore> core, bool is_client)
      : core_(std::move(core)), is_client_(is_client) {}

  ~InProcessChannel() override { Close(); }

  Status Send(std::string_view message) override {
    std::lock_guard<std::mutex> lock(core_->mu);
    if (core_->closed) {
      return Status::OutOfRange("connection closed");
    }
    auto& queue = is_client_ ? core_->to_server : core_->to_client;
    queue.emplace_back(message);
    bytes_sent_ += message.size();
    ++messages_sent_;
    core_->cv.notify_all();
    return Status::OK();
  }

  StatusOr<std::string> Receive() override {
    std::unique_lock<std::mutex> lock(core_->mu);
    auto& queue = is_client_ ? core_->to_client : core_->to_server;
    core_->cv.wait(lock, [&] { return !queue.empty() || core_->closed; });
    if (queue.empty()) {
      return Status::OutOfRange("connection closed");
    }
    std::string message = std::move(queue.front());
    queue.pop_front();
    bytes_received_ += message.size();
    return message;
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->closed = true;
    core_->cv.notify_all();
  }

  uint64_t bytes_sent() const override { return bytes_sent_; }
  uint64_t bytes_received() const override { return bytes_received_; }
  uint64_t messages_sent() const override { return messages_sent_; }

 private:
  std::shared_ptr<PairCore> core_;
  bool is_client_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t messages_sent_ = 0;
};

}  // namespace

ChannelPair CreateInProcessChannelPair() {
  auto core = std::make_shared<PairCore>();
  ChannelPair pair;
  pair.client = std::make_unique<InProcessChannel>(core, /*is_client=*/true);
  pair.server = std::make_unique<InProcessChannel>(core, /*is_client=*/false);
  return pair;
}

}  // namespace ssdb::rpc
