#include "rpc/wire.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/varint.h"

namespace ssdb::rpc {

Status WriteFull(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-frame must surface as EPIPE,
    // not a process-killing SIGPIPE — a multi-client server (DESIGN.md §7)
    // outlives any one connection. Non-socket fds fall back to write().
    ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    ssize_t n = ::read(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::OutOfRange("connection closed");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

void EncodeFrameHeader(size_t payload_size, uint8_t header[kFrameHeaderBytes]) {
  uint32_t len = static_cast<uint32_t>(payload_size);
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    header[i] = static_cast<uint8_t>(len >> (8 * i));
  }
}

// Builds the scatter list for the unwritten tail of a frame at `offset`:
// whatever remains of the header, then whatever remains of the payload.
int FrameTailIov(const uint8_t header[kFrameHeaderBytes],
                 std::string_view payload, size_t offset, iovec iov[2]) {
  int count = 0;
  if (offset < kFrameHeaderBytes) {
    iov[count].iov_base = const_cast<uint8_t*>(header) + offset;
    iov[count].iov_len = kFrameHeaderBytes - offset;
    ++count;
  }
  size_t payload_offset =
      offset > kFrameHeaderBytes ? offset - kFrameHeaderBytes : 0;
  if (payload_offset < payload.size()) {
    iov[count].iov_base = const_cast<char*>(payload.data()) + payload_offset;
    iov[count].iov_len = payload.size() - payload_offset;
    ++count;
  }
  return count;
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds maximum size");
  }
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(payload.size(), header);
  const size_t total = payload.size() + kFrameHeaderBytes;
  size_t offset = 0;
  while (offset < total) {
    iovec iov[2];
    int count = FrameTailIov(header, payload, offset, iov);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    // MSG_NOSIGNAL: a peer that vanished mid-frame must surface as EPIPE,
    // not a process-killing SIGPIPE (DESIGN.md §7).
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      // Non-socket fd: fall back to sequential full writes.
      if (offset < kFrameHeaderBytes) {
        SSDB_RETURN_IF_ERROR(
            WriteFull(fd, header + offset, kFrameHeaderBytes - offset));
        offset = kFrameHeaderBytes;
      }
      SSDB_RETURN_IF_ERROR(
          WriteFull(fd, payload.data() + (offset - kFrameHeaderBytes),
                    total - offset));
      return Status::OK();
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    offset += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<size_t> WriteFrameNonBlocking(int fd, std::string_view payload,
                                       size_t offset) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds maximum size");
  }
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(payload.size(), header);
  const size_t total = payload.size() + kFrameHeaderBytes;
  while (offset < total) {
    iovec iov[2];
    int count = FrameTailIov(header, payload, offset, iov);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return offset;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    offset += static_cast<size_t>(n);
  }
  return offset;
}

StatusOr<std::string> ReadFrame(int fd) {
  std::string payload;
  SSDB_RETURN_IF_ERROR(ReadFrameInto(fd, &payload));
  return payload;
}

Status ReadFrameInto(int fd, std::string* payload) {
  uint8_t header[kFrameHeaderBytes];
  SSDB_RETURN_IF_ERROR(ReadFull(fd, header, kFrameHeaderBytes));
  uint32_t len = 0;
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::Corruption("oversized frame");
  }
  payload->resize(len);
  return ReadFull(fd, payload->data(), len);
}

void AppendNodeMeta(std::string* out, const filter::NodeMeta& meta) {
  PutVarint64(out, meta.pre);
  PutVarint64(out, meta.post);
  PutVarint64(out, meta.parent);
  // Share nonce (DESIGN.md §12): 0 for unmutated nodes, so the common case
  // costs one byte.
  PutVarint64(out, meta.nonce);
}

Status ConsumeNodeMeta(std::string_view* in, filter::NodeMeta* meta) {
  uint64_t v = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &v));
  meta->pre = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &v));
  meta->post = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &v));
  meta->parent = static_cast<uint32_t>(v);
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &meta->nonce));
  return Status::OK();
}

void AppendNodeMetas(std::string* out,
                     const std::vector<filter::NodeMeta>& metas) {
  PutVarint64(out, metas.size());
  for (const auto& meta : metas) AppendNodeMeta(out, meta);
}

StatusOr<std::vector<filter::NodeMeta>> ConsumeNodeMetas(
    std::string_view* in) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &count));
  // Every meta costs at least four bytes; a count beyond the remaining
  // bytes is a forged/truncated frame and must fail before the allocation.
  if (count > in->size()) {
    return Status::Corruption("node meta count exceeds payload");
  }
  std::vector<filter::NodeMeta> metas(count);
  for (uint64_t i = 0; i < count; ++i) {
    SSDB_RETURN_IF_ERROR(ConsumeNodeMeta(in, &metas[i]));
  }
  return metas;
}

void AppendElems(std::string* out, const std::vector<gf::Elem>& elems) {
  PutVarint64(out, elems.size());
  for (gf::Elem e : elems) PutVarint64(out, e);
}

StatusOr<std::vector<gf::Elem>> ConsumeElems(std::string_view* in) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &count));
  std::vector<gf::Elem> elems(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    SSDB_RETURN_IF_ERROR(GetVarint64(in, &v));
    elems[i] = static_cast<gf::Elem>(v);
  }
  return elems;
}

void AppendU32s(std::string* out, const std::vector<uint32_t>& values) {
  PutVarint64(out, values.size());
  for (uint32_t v : values) PutVarint64(out, v);
}

StatusOr<std::vector<uint32_t>> ConsumeU32s(std::string_view* in) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &count));
  // Every value costs at least one byte; a count beyond the remaining bytes
  // is a forged/truncated frame and must fail before the allocation.
  if (count > in->size()) {
    return Status::Corruption("u32 list count exceeds payload");
  }
  std::vector<uint32_t> values(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    SSDB_RETURN_IF_ERROR(GetVarint64(in, &v));
    values[i] = static_cast<uint32_t>(v);
  }
  return values;
}

void AppendU64s(std::string* out, const std::vector<uint64_t>& values) {
  PutVarint64(out, values.size());
  for (uint64_t v : values) PutVarint64(out, v);
}

StatusOr<std::vector<uint64_t>> ConsumeU64s(std::string_view* in) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &count));
  if (count > in->size()) {
    return Status::Corruption("u64 list count exceeds payload");
  }
  std::vector<uint64_t> values(count);
  for (uint64_t i = 0; i < count; ++i) {
    SSDB_RETURN_IF_ERROR(GetVarint64(in, &values[i]));
  }
  return values;
}

void AppendVerifiedPartials(
    std::string* out, const std::vector<agg::VerifiedPartial>& partials) {
  PutVarint64(out, partials.size());
  for (const agg::VerifiedPartial& partial : partials) {
    AppendU32s(out, partial.words);
    AppendU64s(out, partial.wide);
    AppendU64s(out, partial.proof);
  }
}

StatusOr<std::vector<agg::VerifiedPartial>> ConsumeVerifiedPartials(
    std::string_view* in) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(in, &count));
  // Each entry costs at least three count bytes.
  if (count > in->size()) {
    return Status::Corruption("verified partial count exceeds payload");
  }
  std::vector<agg::VerifiedPartial> partials(count);
  for (uint64_t i = 0; i < count; ++i) {
    SSDB_ASSIGN_OR_RETURN(partials[i].words, ConsumeU32s(in));
    SSDB_ASSIGN_OR_RETURN(partials[i].wide, ConsumeU64s(in));
    SSDB_ASSIGN_OR_RETURN(partials[i].proof, ConsumeU64s(in));
    if (partials[i].wide.size() != partials[i].proof.size()) {
      return Status::Corruption(
          "verified partial wide/proof length mismatch");
    }
  }
  return partials;
}

}  // namespace ssdb::rpc
