#include "rpc/protocol.h"

#include "util/varint.h"

namespace ssdb::rpc {
namespace {

// Matches shard::kMaxStringBytes: a document id on the wire can never be
// longer than one the catalog codec would accept.
constexpr size_t kMaxDocIdBytes = 4096;

// Shared count-prefixed varint-list codec for the batch ops. The decode
// side rejects counts that cannot fit in the remaining bytes (each element
// is at least one byte), so a tiny malformed frame cannot force a huge
// allocation.
void AppendVarintList(std::string* out, const std::vector<uint32_t>& values) {
  PutVarint64(out, values.size());
  for (uint32_t value : values) PutVarint64(out, value);
}

template <typename T>
Status ConsumeVarintList(std::string_view* data, std::vector<T>* out) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(data, &count));
  if (count > data->size()) {
    return Status::Corruption("batch count exceeds frame size");
  }
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    SSDB_RETURN_IF_ERROR(GetVarint64(data, &v));
    (*out)[i] = static_cast<T>(v);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  std::string out;
  out.push_back(static_cast<char>(request.op));
  switch (request.op) {
    case Op::kRoot:
    case Op::kNodeCount:
    case Op::kShutdown:
    case Op::kPing:
      break;
    case Op::kGetNode:
    case Op::kChildren:
    case Op::kFetchShare:
    case Op::kFetchSealed:
      PutVarint64(&out, request.pre);
      break;
    case Op::kOpenCursor:
      PutVarint64(&out, request.pre);
      PutVarint64(&out, request.post);
      break;
    case Op::kNextNodes:
      PutVarint64(&out, request.cursor);
      PutVarint64(&out, request.batch);
      break;
    case Op::kCloseCursor:
      PutVarint64(&out, request.cursor);
      break;
    case Op::kEvalAt:
      PutVarint64(&out, request.pre);
      PutVarint64(&out, request.point);
      break;
    case Op::kEvalAtBatch:
      PutVarint64(&out, request.point);
      AppendVarintList(&out, request.pres);
      break;
    case Op::kFetchShareBatch:
    case Op::kChildrenBatch:
      AppendVarintList(&out, request.pres);
      break;
    case Op::kEvalPointsBatch:
      PutVarint64(&out, request.pre);
      AppendVarintList(&out, request.points);
      break;
    case Op::kAggregate:
    case Op::kAggregateVerified:
      out.push_back(static_cast<char>(request.agg_columns));
      PutVarint64(&out, request.value_indexes.empty()
                            ? 0
                            : request.value_indexes[0]);
      AppendVarintList(&out, request.pres);
      break;
    case Op::kAggregateBatch:
    case Op::kAggregateBatchVerified:
      out.push_back(static_cast<char>(request.agg_columns));
      AppendVarintList(&out, request.value_indexes);
      AppendVarintList(&out, request.pres);
      break;
    case Op::kCatalog:
      break;
    case Op::kCatalogResolve:
      PutLengthPrefixed(&out, request.doc_id);
      break;
    case Op::kMutationState:
      break;
    case Op::kInsert:
    case Op::kUpdate:
    case Op::kDelete:
      PutVarint64(&out, request.txn);
      out.push_back(static_cast<char>(request.phase));
      if (request.phase == MutationPhase::kPrepare) {
        PutLengthPrefixed(&out, request.plan);
      }
      break;
    case Op::kFetchColumnsBatch:
      AppendVarintList(&out, request.pres);
      break;
  }
  return out;
}

StatusOr<Request> DecodeRequest(std::string_view data) {
  if (data.empty()) return Status::Corruption("empty request");
  Request request;
  request.op = static_cast<Op>(data[0]);
  data.remove_prefix(1);
  uint64_t v = 0;
  switch (request.op) {
    case Op::kRoot:
    case Op::kNodeCount:
    case Op::kShutdown:
    case Op::kPing:
      break;
    case Op::kGetNode:
    case Op::kChildren:
    case Op::kFetchShare:
    case Op::kFetchSealed:
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
      request.pre = static_cast<uint32_t>(v);
      break;
    case Op::kOpenCursor:
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
      request.pre = static_cast<uint32_t>(v);
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
      request.post = static_cast<uint32_t>(v);
      break;
    case Op::kNextNodes:
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &request.cursor));
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &request.batch));
      break;
    case Op::kCloseCursor:
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &request.cursor));
      break;
    case Op::kEvalAt:
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
      request.pre = static_cast<uint32_t>(v);
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
      request.point = static_cast<gf::Elem>(v);
      break;
    case Op::kEvalAtBatch:
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
      request.point = static_cast<gf::Elem>(v);
      SSDB_RETURN_IF_ERROR(ConsumeVarintList(&data, &request.pres));
      break;
    case Op::kEvalPointsBatch:
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
      request.pre = static_cast<uint32_t>(v);
      SSDB_RETURN_IF_ERROR(ConsumeVarintList(&data, &request.points));
      break;
    case Op::kFetchShareBatch:
    case Op::kChildrenBatch:
      SSDB_RETURN_IF_ERROR(ConsumeVarintList(&data, &request.pres));
      break;
    case Op::kAggregate:
    case Op::kAggregateBatch:
    case Op::kAggregateVerified:
    case Op::kAggregateBatchVerified:
      if (data.empty()) return Status::Corruption("missing column mask");
      request.agg_columns = static_cast<uint8_t>(data[0]);
      data.remove_prefix(1);
      if (request.op == Op::kAggregate ||
          request.op == Op::kAggregateVerified) {
        SSDB_RETURN_IF_ERROR(GetVarint64(&data, &v));
        request.value_indexes.assign(1, static_cast<uint32_t>(v));
      } else {
        SSDB_RETURN_IF_ERROR(
            ConsumeVarintList(&data, &request.value_indexes));
      }
      SSDB_RETURN_IF_ERROR(ConsumeVarintList(&data, &request.pres));
      break;
    case Op::kCatalog:
      break;
    case Op::kCatalogResolve: {
      std::string_view doc_id;
      SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &doc_id));
      if (doc_id.size() > kMaxDocIdBytes) {
        return Status::Corruption("document id too long");
      }
      request.doc_id.assign(doc_id);
      break;
    }
    case Op::kMutationState:
      break;
    case Op::kInsert:
    case Op::kUpdate:
    case Op::kDelete: {
      SSDB_RETURN_IF_ERROR(GetVarint64(&data, &request.txn));
      if (data.empty()) return Status::Corruption("missing mutation phase");
      uint8_t phase = static_cast<uint8_t>(data[0]);
      data.remove_prefix(1);
      if (phase > static_cast<uint8_t>(MutationPhase::kAbort)) {
        return Status::Corruption("unknown mutation phase " +
                                  std::to_string(phase));
      }
      request.phase = static_cast<MutationPhase>(phase);
      if (request.phase == MutationPhase::kPrepare) {
        std::string_view plan;
        SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &plan));
        request.plan.assign(plan);
      }
      break;
    }
    case Op::kFetchColumnsBatch:
      SSDB_RETURN_IF_ERROR(ConsumeVarintList(&data, &request.pres));
      break;
    default:
      return Status::Corruption("unknown op " +
                                std::to_string(static_cast<int>(request.op)));
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes in request");
  }
  return request;
}

std::string EncodePingInfo(const PingInfo& info) {
  std::string out;
  PutLengthPrefixed(&out, info.build);
  PutVarint64(&out, info.uptime_seconds);
  PutVarint64(&out, info.stats_epoch);
  return out;
}

StatusOr<PingInfo> DecodePingInfo(std::string_view data) {
  PingInfo info;
  std::string_view build;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &build));
  if (build.size() > kMaxDocIdBytes) {
    return Status::Corruption("ping build string too long");
  }
  info.build.assign(build);
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &info.uptime_seconds));
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &info.stats_epoch));
  if (!data.empty()) {
    return Status::Corruption("trailing bytes in ping reply");
  }
  return info;
}

std::string EncodeOkResponse(std::string_view payload) {
  std::string out;
  out.push_back(1);
  out.append(payload);
  return out;
}

std::string EncodeErrorResponse(const Status& status) {
  std::string out;
  out.push_back(0);
  PutVarint64(&out, static_cast<uint64_t>(status.code()));
  PutLengthPrefixed(&out, status.message());
  return out;
}

StatusOr<std::string> DecodeResponse(std::string_view data) {
  if (data.empty()) return Status::Corruption("empty response");
  bool ok = data[0] != 0;
  data.remove_prefix(1);
  if (ok) {
    return std::string(data);
  }
  uint64_t code = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &code));
  std::string_view message;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &message));
  return Status(static_cast<StatusCode>(code), std::string(message));
}

}  // namespace ssdb::rpc
