/// EventPoller (DESIGN.md §7): the readiness backend under
/// ConcurrentServer's dispatcher. The server registers each connection
/// once at accept time, disables it while a worker owns the request
/// (one-shot semantics), re-arms it when the worker hands the connection
/// back, and removes it on close — an *incremental* interest set, so the
/// per-wake cost of the good backend is O(ready events), not O(open
/// connections).
///
/// A registration watches one direction at a time, matching the server's
/// connection state machine: Add/Rearm watch readability (a parked
/// connection waiting for its next request), ArmWrite flips the same
/// registration to writability (a connection whose response overflowed
/// the socket buffer and is draining through the buffered write path).
/// Both are one-shot for connections, so exactly one owner acts on each
/// delivered event.
///
/// Two implementations:
///  * EpollPoller (Linux, compiled when <sys/epoll.h> is present): the
///    kernel holds the interest set; one-shot registration maps to
///    EPOLLONESHOT, re-arm/arm-write to EPOLL_CTL_MOD with EPOLLIN or
///    EPOLLOUT, all callable from worker threads without waking the
///    dispatcher.
///  * PollPoller (portable fallback): a mutexed fd table replayed into a
///    poll(2) array every wake — O(open connections) per wake by nature
///    of the syscall, kept only for platforms without epoll and as the
///    comparison baseline in bench_rpc's poller-scaling section. Its
///    mutators (Rearm and ArmWrite included) kick the blocked poll(2)
///    through a self-pipe so interest changes — e.g. a drained write
///    buffer re-arming for reads — take effect immediately, preserving
///    behavioural parity with epoll for the buffered-write contract.
///
/// Thread contract: Add/Rearm/ArmWrite/Remove/Wake are safe from any
/// thread; Wait has a single caller (the dispatcher thread). wakeups()
/// and items_scanned() are monotone telemetry — scanned/wake is the
/// wake-cost metric bench_rpc reports.

#ifndef SSDB_RPC_EVENT_POLLER_H_
#define SSDB_RPC_EVENT_POLLER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/statusor.h"

namespace ssdb::rpc {

// One ready file descriptor, identified by the token it was registered
// with (ConcurrentServer uses session ids; 0 is its listener). Hangup and
// error conditions set both flags so the owner discovers them by
// reading or writing, whichever direction it was waiting on.
struct PollerEvent {
  uint64_t token = 0;
  bool readable = false;
  bool writable = false;
};

enum class PollerBackend {
  kDefault,  // epoll when compiled in, poll otherwise
  kEpoll,
  kPoll,
};

// True when the epoll backend was compiled in (Linux).
bool EpollAvailable();

// Human-readable backend name ("epoll" / "poll"); resolves kDefault.
const char* PollerBackendName(PollerBackend backend);

class EventPoller {
 public:
  virtual ~EventPoller() = default;

  // Registers `fd` for readability with `token` as its identity in
  // delivered events. A `oneshot` fd is disabled after each delivered
  // event and must be Rearm()ed to fire again (the EPOLLONESHOT
  // protocol); a persistent fd (listener) stays armed.
  virtual Status Add(int fd, uint64_t token, bool oneshot) = 0;

  // Re-enables a oneshot fd for readability after its event was
  // consumed. If the fd became readable while disabled, the next Wait
  // reports it.
  virtual Status Rearm(int fd, uint64_t token) = 0;

  // Flips a oneshot fd's registration to writability: the next Wait
  // reports it once the socket can accept bytes again (immediately, if
  // it already can). The buffered write path (DESIGN.md §7) uses this
  // while a response is draining; when the buffer empties, Rearm
  // switches the registration back to reads.
  virtual Status ArmWrite(int fd, uint64_t token) = 0;

  // Deregisters `fd`. Must be called before the fd is closed (a closed
  // fd's slot can be reused by the kernel). Best-effort: unknown fds are
  // ignored.
  virtual Status Remove(int fd) = 0;

  // Blocks up to `timeout_ms` (-1 = forever) for events; appends them to
  // `events` (cleared first). Returns the number delivered; 0 on timeout
  // or spurious Wake(). Single-threaded: only the dispatcher calls this.
  virtual StatusOr<size_t> Wait(std::vector<PollerEvent>* events,
                                int timeout_ms) = 0;

  // Makes a concurrent/subsequent Wait return early (possibly with zero
  // events). Used for shutdown and by PollPoller's own mutators.
  virtual void Wake() = 0;

  virtual const char* name() const = 0;
  virtual size_t interest_size() const = 0;

  // Times Wait returned with at least one event or a timeout/wake.
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }
  // Interest-set entries examined across all wakes: ready events for
  // epoll, the whole replayed pollfd array for poll. scanned/wake is the
  // dispatch cost bench_rpc tracks as idle connections grow.
  uint64_t items_scanned() const {
    return items_scanned_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<uint64_t> wakeups_{0};
  std::atomic<uint64_t> items_scanned_{0};
};

// Builds the requested backend; kEpoll on a non-epoll build is an error.
StatusOr<std::unique_ptr<EventPoller>> MakeEventPoller(PollerBackend backend);

// Defined in epoll_poller.cc; only linked with epoll support.
#if defined(SSDB_HAVE_EPOLL)
StatusOr<std::unique_ptr<EventPoller>> MakeEpollPoller();
#endif

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_EVENT_POLLER_H_
