/// Request/response message formats mapping the ServerFilter interface onto
/// a Channel. One request frame yields exactly one response frame; the
/// batch opcodes are the wire half of the batched pipeline (DESIGN.md §6).
/// A share-slice server in an m-server deployment (DESIGN.md §5) speaks
/// exactly this protocol — fan-out is purely client-side.
///
/// Request : u8 op, then op-specific fields (varints).
/// Response: u8 ok; if !ok { varint code, length-prefixed message }
///           else op-specific payload.

#ifndef SSDB_RPC_PROTOCOL_H_
#define SSDB_RPC_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "filter/server_filter.h"
#include "gf/field.h"
#include "util/statusor.h"

namespace ssdb::rpc {

enum class Op : uint8_t {
  kRoot = 1,
  kGetNode = 2,
  kChildren = 3,
  kOpenCursor = 4,
  kNextNodes = 5,
  kCloseCursor = 6,
  kEvalAt = 7,
  kEvalAtBatch = 8,
  kFetchShare = 9,
  kNodeCount = 10,
  kShutdown = 11,  // graceful server stop
  kEvalPointsBatch = 12,
  kFetchSealed = 13,
  kFetchShareBatch = 14,
  kChildrenBatch = 15,
  // Aggregation (DESIGN.md §8): fold aggregate columns server-side and
  // return one masked word per group. kAggregate carries a single group,
  // kAggregateBatch a group list (group-by).
  kAggregate = 16,
  kAggregateBatch = 17,
  // Verified aggregation (DESIGN.md §9): identical request encodings to
  // kAggregate/kAggregateBatch, but the reply keeps each slice's words
  // separate and carries wide/proof partials from the slice holding the
  // verification track, so the client can check and attribute tampering.
  kAggregateVerified = 18,
  kAggregateBatchVerified = 19,
  // Shard catalog tier (DESIGN.md §10): served by ssdb_router, which holds
  // routing metadata only (no shares, no seeds). kCatalog returns the whole
  // encoded catalog; kCatalogResolve one entry by document id.
  kCatalog = 20,
  kCatalogResolve = 21,
  // Control plane (DESIGN.md §11): the health-monitor probe. No request
  // fields; the reply is EncodePingInfo (build string, uptime, stats
  // epoch). Answered by every daemon — share servers and the metadata-only
  // router alike — without touching the filter, so a probe never competes
  // with query work for a cursor or session.
  kPing = 22,
  // Mutations (DESIGN.md §12). kMutationState returns the slice's committed
  // version, nonce watermark, and pending txn. kInsert/kUpdate/kDelete
  // carry a two-phase step: txn + phase byte (0 = prepare, with the
  // serialized MutationPlan; 1 = commit; 2 = abort). On prepare the server
  // rejects a plan whose kind disagrees with the op, so a frame can never
  // smuggle a delete inside an "update".
  kMutationState = 23,
  kInsert = 24,
  kUpdate = 25,
  kDelete = 26,
  // Aggregate + verification blobs of many nodes (the mutation planner's
  // column fetch, DESIGN.md §12).
  kFetchColumnsBatch = 27,
};

// Two-phase step selector for the mutation ops (DESIGN.md §12).
enum class MutationPhase : uint8_t {
  kPrepare = 0,
  kCommit = 1,
  kAbort = 2,
};

// What a server discloses to a kPing probe. Metadata only: nothing here
// depends on document content or shares.
struct PingInfo {
  std::string build;        // e.g. "ssdb/0.9"
  uint64_t uptime_seconds = 0;
  uint64_t stats_epoch = 0;  // requests handled; monotone per process
};

std::string EncodePingInfo(const PingInfo& info);
StatusOr<PingInfo> DecodePingInfo(std::string_view data);

struct Request {
  Op op = Op::kRoot;
  uint32_t pre = 0;
  uint32_t post = 0;
  uint64_t cursor = 0;
  uint64_t batch = 0;
  gf::Elem point = 0;
  std::vector<uint32_t> pres;
  std::vector<gf::Elem> points;
  // Aggregation fields (kAggregate / kAggregateBatch, DESIGN.md §8); the
  // frontier rides in `pres`.
  uint8_t agg_columns = 0;             // agg::Col bitmask
  std::vector<uint32_t> value_indexes;  // one group per entry
  // Catalog tier (kCatalogResolve, DESIGN.md §10).
  std::string doc_id;
  // Mutations (kInsert/kUpdate/kDelete, DESIGN.md §12).
  uint64_t txn = 0;
  MutationPhase phase = MutationPhase::kPrepare;
  std::string plan;  // serialized MutationPlan; present iff phase==kPrepare
};

std::string EncodeRequest(const Request& request);
StatusOr<Request> DecodeRequest(std::string_view data);

// Success envelope wrapping an op-specific payload.
std::string EncodeOkResponse(std::string_view payload);
std::string EncodeErrorResponse(const Status& status);

// Unwraps a response: returns the payload, or the transported error.
StatusOr<std::string> DecodeResponse(std::string_view data);

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_PROTOCOL_H_
