#include "rpc/client.h"

#include <algorithm>

#include "rpc/wire.h"
#include "util/varint.h"

namespace ssdb::rpc {

StatusOr<PingInfo> Ping(Channel* channel) {
  Request request;
  request.op = Op::kPing;
  SSDB_RETURN_IF_ERROR(channel->Send(EncodeRequest(request)));
  SSDB_ASSIGN_OR_RETURN(std::string response, channel->Receive());
  SSDB_ASSIGN_OR_RETURN(std::string payload, DecodeResponse(response));
  return DecodePingInfo(payload);
}

StatusOr<std::string> RemoteServerFilter::Call(const Request& request) {
  SSDB_RETURN_IF_ERROR(channel_->Send(EncodeRequest(request)));
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(std::string response, channel_->Receive());
  return DecodeResponse(response);
}

StatusOr<filter::NodeMeta> RemoteServerFilter::Root() {
  Request request;
  request.op = Op::kRoot;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  filter::NodeMeta meta;
  SSDB_RETURN_IF_ERROR(ConsumeNodeMeta(&view, &meta));
  return meta;
}

StatusOr<filter::NodeMeta> RemoteServerFilter::GetNode(uint32_t pre) {
  Request request;
  request.op = Op::kGetNode;
  request.pre = pre;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  filter::NodeMeta meta;
  SSDB_RETURN_IF_ERROR(ConsumeNodeMeta(&view, &meta));
  return meta;
}

StatusOr<std::vector<filter::NodeMeta>> RemoteServerFilter::Children(
    uint32_t pre) {
  Request request;
  request.op = Op::kChildren;
  request.pre = pre;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  return ConsumeNodeMetas(&view);
}

StatusOr<uint64_t> RemoteServerFilter::OpenDescendantCursor(uint32_t pre,
                                                            uint32_t post) {
  Request request;
  request.op = Op::kOpenCursor;
  request.pre = pre;
  request.post = post;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  uint64_t cursor = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&view, &cursor));
  return cursor;
}

StatusOr<std::vector<filter::NodeMeta>> RemoteServerFilter::NextNodes(
    uint64_t cursor, size_t max_batch) {
  Request request;
  request.op = Op::kNextNodes;
  request.cursor = cursor;
  request.batch = max_batch;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  return ConsumeNodeMetas(&view);
}

Status RemoteServerFilter::CloseCursor(uint64_t cursor) {
  Request request;
  request.op = Op::kCloseCursor;
  request.cursor = cursor;
  return Call(request).status();
}

StatusOr<gf::Elem> RemoteServerFilter::EvalAt(uint32_t pre, gf::Elem t) {
  Request request;
  request.op = Op::kEvalAt;
  request.pre = pre;
  request.point = t;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  uint64_t value = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&view, &value));
  return static_cast<gf::Elem>(value);
}

StatusOr<std::vector<std::vector<filter::NodeMeta>>>
RemoteServerFilter::ChildrenBatch(const std::vector<uint32_t>& pres) {
  std::vector<std::vector<filter::NodeMeta>> all;
  all.reserve(pres.size());
  for (size_t begin = 0; begin < pres.size(); begin += kChildrenChunk) {
    size_t end = std::min(begin + kChildrenChunk, pres.size());
    Request request;
    request.op = Op::kChildrenBatch;
    request.pres.assign(pres.begin() + begin, pres.begin() + end);
    SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
    std::string_view view = payload;
    for (size_t i = begin; i < end; ++i) {
      SSDB_ASSIGN_OR_RETURN(std::vector<filter::NodeMeta> metas,
                            ConsumeNodeMetas(&view));
      all.push_back(std::move(metas));
    }
  }
  return all;
}

StatusOr<std::vector<gf::Elem>> RemoteServerFilter::EvalAtBatch(
    const std::vector<uint32_t>& pres, gf::Elem t) {
  std::vector<gf::Elem> all;
  all.reserve(pres.size());
  for (size_t begin = 0; begin < pres.size(); begin += kEvalChunk) {
    size_t end = std::min(begin + kEvalChunk, pres.size());
    Request request;
    request.op = Op::kEvalAtBatch;
    request.pres.assign(pres.begin() + begin, pres.begin() + end);
    request.point = t;
    SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
    std::string_view view = payload;
    SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> chunk, ConsumeElems(&view));
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

StatusOr<std::vector<gf::Elem>> RemoteServerFilter::EvalPointsBatch(
    uint32_t pre, const std::vector<gf::Elem>& points) {
  Request request;
  request.op = Op::kEvalPointsBatch;
  request.pre = pre;
  request.points = points;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  return ConsumeElems(&view);
}

StatusOr<gf::RingElem> RemoteServerFilter::FetchShare(uint32_t pre) {
  Request request;
  request.op = Op::kFetchShare;
  request.pre = pre;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  std::string_view share_bytes;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&view, &share_bytes));
  return ring_.Deserialize(share_bytes);
}

StatusOr<std::vector<gf::RingElem>> RemoteServerFilter::FetchShareBatch(
    const std::vector<uint32_t>& pres) {
  std::vector<gf::RingElem> all;
  all.reserve(pres.size());
  for (size_t begin = 0; begin < pres.size(); begin += kShareChunk) {
    size_t end = std::min(begin + kShareChunk, pres.size());
    Request request;
    request.op = Op::kFetchShareBatch;
    request.pres.assign(pres.begin() + begin, pres.begin() + end);
    SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
    std::string_view view = payload;
    for (size_t i = begin; i < end; ++i) {
      std::string_view share_bytes;
      SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&view, &share_bytes));
      SSDB_ASSIGN_OR_RETURN(gf::RingElem share,
                            ring_.Deserialize(share_bytes));
      all.push_back(std::move(share));
    }
  }
  return all;
}

StatusOr<std::vector<agg::Word>> RemoteServerFilter::PartialAggregate(
    const agg::Spec& spec) {
  SSDB_RETURN_IF_ERROR(agg::ValidateSpec(spec));
  std::vector<agg::Word> totals(spec.value_indexes.size(), 0);
  // Z_{2^32} partials from successive chunks simply add up, so chunking
  // changes round trips (O(frontier / chunk)), never the answer.
  for (size_t begin = 0; begin < spec.pres.size(); begin += kAggChunk) {
    size_t end = std::min(begin + kAggChunk, spec.pres.size());
    Request request;
    request.op = spec.value_indexes.size() == 1 ? Op::kAggregate
                                                : Op::kAggregateBatch;
    request.agg_columns = spec.columns;
    request.value_indexes = spec.value_indexes;
    request.pres.assign(spec.pres.begin() + begin, spec.pres.begin() + end);
    SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
    std::string_view view = payload;
    SSDB_ASSIGN_OR_RETURN(std::vector<uint32_t> partials,
                          ConsumeU32s(&view));
    if (partials.size() != totals.size()) {
      return Status::Internal("PartialAggregate group count mismatch");
    }
    for (size_t g = 0; g < totals.size(); ++g) totals[g] += partials[g];
  }
  return totals;
}

StatusOr<std::vector<agg::VerifiedPartial>>
RemoteServerFilter::PartialAggregateVerified(const agg::Spec& spec) {
  SSDB_RETURN_IF_ERROR(agg::ValidateSpec(spec));
  agg::VerifiedPartial totals;
  totals.words.assign(spec.value_indexes.size(), 0);
  bool decided = false;
  for (size_t begin = 0; begin < spec.pres.size(); begin += kAggChunk) {
    size_t end = std::min(begin + kAggChunk, spec.pres.size());
    Request request;
    request.op = spec.value_indexes.size() == 1 ? Op::kAggregateVerified
                                                : Op::kAggregateBatchVerified;
    request.agg_columns = spec.columns;
    request.value_indexes = spec.value_indexes;
    request.pres.assign(spec.pres.begin() + begin, spec.pres.begin() + end);
    SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
    std::string_view view = payload;
    SSDB_ASSIGN_OR_RETURN(std::vector<agg::VerifiedPartial> partials,
                          ConsumeVerifiedPartials(&view));
    // A slice server answers for exactly one slice; a different shape is a
    // corrupt or hostile reply, not a size to adapt to.
    if (partials.size() != 1) {
      return Status::Corruption(
          "verified aggregate reply entry count mismatch");
    }
    const agg::VerifiedPartial& chunk = partials[0];
    if (chunk.words.size() != totals.words.size() ||
        (!chunk.wide.empty() &&
         chunk.wide.size() != totals.words.size())) {
      return Status::Corruption(
          "verified aggregate reply group count mismatch");
    }
    // Whether this server carries the verification track must not flip
    // between chunks of one fold.
    if (!decided) {
      decided = true;
      if (!chunk.wide.empty()) {
        totals.wide.assign(totals.words.size(), 0);
        totals.proof.assign(totals.words.size(), 0);
      }
    } else if (chunk.wide.empty() != totals.wide.empty()) {
      return Status::Corruption(
          "verified aggregate reply proof presence flipped mid-batch");
    }
    for (size_t g = 0; g < totals.words.size(); ++g) {
      totals.words[g] += chunk.words[g];
      if (!totals.wide.empty()) {
        totals.wide[g] += chunk.wide[g];
        totals.proof[g] += chunk.proof[g];
      }
    }
  }
  std::vector<agg::VerifiedPartial> out;
  out.push_back(std::move(totals));
  return out;
}

StatusOr<std::string> RemoteServerFilter::FetchSealed(uint32_t pre) {
  Request request;
  request.op = Op::kFetchSealed;
  request.pre = pre;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  std::string_view sealed;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&view, &sealed));
  return std::string(sealed);
}

StatusOr<uint64_t> RemoteServerFilter::NodeCount() {
  Request request;
  request.op = Op::kNodeCount;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&view, &count));
  return count;
}

StatusOr<std::vector<storage::MutationState>>
RemoteServerFilter::MutationStates() {
  Request request;
  request.op = Op::kMutationState;
  SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
  std::string_view view = payload;
  storage::MutationState state;
  SSDB_RETURN_IF_ERROR(GetVarint64(&view, &state.version));
  SSDB_RETURN_IF_ERROR(GetVarint64(&view, &state.next_nonce));
  SSDB_RETURN_IF_ERROR(GetVarint64(&view, &state.pending_txn));
  return std::vector<storage::MutationState>{state};
}

Status RemoteServerFilter::PrepareMutation(
    uint64_t txn, const std::vector<storage::MutationPlan>& plans) {
  if (plans.size() != 1) {
    return Status::InvalidArgument(
        "single-server stub expects exactly one mutation plan, got " +
        std::to_string(plans.size()));
  }
  Request request;
  switch (plans[0].kind) {
    case storage::MutationKind::kInsert:
      request.op = Op::kInsert;
      break;
    case storage::MutationKind::kUpdate:
      request.op = Op::kUpdate;
      break;
    case storage::MutationKind::kDelete:
      request.op = Op::kDelete;
      break;
  }
  mutation_op_ = request.op;
  request.txn = txn;
  request.phase = MutationPhase::kPrepare;
  request.plan = storage::EncodeMutationPlan(plans[0]);
  return Call(request).status();
}

Status RemoteServerFilter::CommitMutation(uint64_t txn) {
  Request request;
  request.op = mutation_op_;
  request.txn = txn;
  request.phase = MutationPhase::kCommit;
  return Call(request).status();
}

Status RemoteServerFilter::AbortMutation(uint64_t txn) {
  Request request;
  request.op = mutation_op_;
  request.txn = txn;
  request.phase = MutationPhase::kAbort;
  return Call(request).status();
}

StatusOr<std::vector<storage::ColumnBlobs>>
RemoteServerFilter::FetchColumnsBatch(const std::vector<uint32_t>& pres) {
  std::vector<storage::ColumnBlobs> all;
  all.reserve(pres.size());
  for (size_t begin = 0; begin < pres.size(); begin += kColumnsChunk) {
    size_t end = std::min(begin + kColumnsChunk, pres.size());
    Request request;
    request.op = Op::kFetchColumnsBatch;
    request.pres.assign(pres.begin() + begin, pres.begin() + end);
    SSDB_ASSIGN_OR_RETURN(std::string payload, Call(request));
    std::string_view view = payload;
    for (size_t i = begin; i < end; ++i) {
      storage::ColumnBlobs cols;
      std::string_view blob;
      SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&view, &blob));
      cols.agg.assign(blob);
      SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&view, &blob));
      cols.verify.assign(blob);
      all.push_back(std::move(cols));
    }
  }
  return all;
}

Status RemoteServerFilter::Shutdown() {
  Request request;
  request.op = Op::kShutdown;
  Status s = Call(request).status();
  channel_->Close();
  return s;
}

}  // namespace ssdb::rpc
