#include "rpc/multi_session.h"

#include <utility>

#include "rpc/socket_channel.h"

namespace ssdb::rpc {

StatusOr<std::unique_ptr<MultiServerSession>> MultiServerSession::FromChannels(
    gf::Ring ring, std::vector<std::unique_ptr<Channel>> channels) {
  if (channels.empty()) {
    return Status::InvalidArgument("session needs at least one channel");
  }
  auto session = std::unique_ptr<MultiServerSession>(new MultiServerSession());
  std::vector<filter::ServerFilter*> backends;
  backends.reserve(channels.size());
  for (std::unique_ptr<Channel>& channel : channels) {
    session->remotes_.push_back(
        std::make_unique<RemoteServerFilter>(ring, std::move(channel)));
    backends.push_back(session->remotes_.back().get());
  }
  session->fanout_ = std::make_unique<filter::MultiServerFilter>(
      std::move(ring), std::move(backends));
  return session;
}

StatusOr<std::unique_ptr<MultiServerSession>> MultiServerSession::ConnectUnix(
    gf::Ring ring, const std::vector<std::string>& socket_paths) {
  std::vector<std::unique_ptr<Channel>> channels;
  channels.reserve(socket_paths.size());
  for (const std::string& path : socket_paths) {
    SSDB_ASSIGN_OR_RETURN(std::unique_ptr<Channel> channel,
                          rpc::ConnectUnix(path));
    channels.push_back(std::move(channel));
  }
  return FromChannels(std::move(ring), std::move(channels));
}

uint64_t MultiServerSession::bytes_on_wire() const {
  uint64_t total = 0;
  for (const auto& remote : remotes_) {
    total += remote->channel().bytes_sent() +
             remote->channel().bytes_received();
  }
  return total;
}

Status MultiServerSession::Shutdown() {
  Status first = Status::OK();
  for (const auto& remote : remotes_) {
    Status status = remote->Shutdown();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

}  // namespace ssdb::rpc
