/// ServerStats (DESIGN.md §11): one immutable snapshot of a
/// ConcurrentServer's telemetry. Every consumer — the shutdown log, the
/// admin API's /v1/stats endpoint, tests, and benches — reads the same
/// struct from ConcurrentServer::Snapshot(), so a counter added here is
/// automatically visible everywhere a counter can be seen. (Before this,
/// each counter had its own getter and the shutdown printf block was the
/// only serialization — new counters were routinely admin-invisible.)

#ifndef SSDB_RPC_SERVER_STATS_H_
#define SSDB_RPC_SERVER_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ssdb::rpc {

struct ServerStats {
  // Identity / environment.
  std::string build;          // kServerBuild
  std::string poller;         // resolved readiness backend ("epoll"/"poll")
  size_t threads = 0;         // worker pool size
  uint64_t uptime_seconds = 0;

  // Request plane.
  uint64_t requests_handled = 0;  // well-formed frames dispatched

  // Connection lifecycle.
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t open_connections = 0;
  uint64_t connections_idle_closed = 0;  // subset of closed: idle sweep
  uint64_t write_budget_closed = 0;      // subset of closed: max_write_buffer

  // Data plane (DESIGN.md §7).
  uint64_t write_stalls = 0;        // responses that took the buffered path
  uint64_t bytes_buffered = 0;      // parked on stalled connections now
  uint64_t bytes_buffered_peak = 0;
  uint64_t queue_depth_peak = 0;    // deepest per-worker ready queue
  uint64_t frames_allocated = 0;    // frame pool: fresh buffers
  uint64_t frames_reused = 0;       // frame pool: recycled buffers

  // Poller wake-cost telemetry (rpc/event_poller.h).
  uint64_t poller_wakeups = 0;
  uint64_t poller_items_scanned = 0;

  // Flat JSON object, key per field, parseable by util/json — the
  // /v1/stats response body.
  std::string ToJson() const;

  // The human-readable shutdown log block ("served N connections ...").
  std::string ToText() const;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_SERVER_STATS_H_
