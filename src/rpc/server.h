/// RpcServer: decodes one request frame, dispatches it against a
/// ServerFilter, and encodes the response. Serve() runs the prototype's
/// single-connection loop; the concurrent transport
/// (src/rpc/concurrent_server.h, DESIGN.md §7) calls HandleRequest per
/// frame with each connection's session id, so one RpcServer instance is
/// shared by every worker. In an m-server deployment (DESIGN.md §5) each
/// host runs one server over its own share slice. ServerThread is a
/// convenience for tests/examples that runs Serve() on a background thread.

#ifndef SSDB_RPC_SERVER_H_
#define SSDB_RPC_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "filter/server_filter.h"
#include "gf/ring.h"
#include "rpc/channel.h"
#include "util/statusor.h"

namespace ssdb::rpc {

struct Request;

// Build identifier every daemon echoes to a kPing probe (DESIGN.md §11).
inline constexpr char kServerBuild[] = "ssdb/0.9";

class RpcServer {
 public:
  // `filter` must outlive the server. The ring is needed to serialize
  // polynomial shares onto the wire. A null filter is legal and makes a
  // catalog-only server (ssdb_router, DESIGN.md §10): filter ops answer
  // FailedPrecondition, kShutdown still works.
  RpcServer(gf::Ring ring, filter::ServerFilter* filter)
      : ring_(std::move(ring)), filter_(filter) {}

  // Installs the shard-catalog tier (DESIGN.md §10): `encoded_catalog` is a
  // pre-encoded shard::EncodeCatalog blob answered to kCatalog, and
  // `encoded_entries` maps document id -> shard::EncodeEntry blob answered
  // to kCatalogResolve. Pre-encoded bytes keep rpc/ independent of shard/.
  // Call before serving; not synchronized against in-flight requests.
  void SetCatalog(std::string encoded_catalog,
                  std::map<std::string, std::string> encoded_entries);

  // Serves until the peer disconnects or sends kShutdown. Returns OK on a
  // clean shutdown. Cursor state lands in the implicit session 0.
  Status Serve(Channel* channel);

  // Handles a single encoded request (exposed for tests and the concurrent
  // transport). Stateless apart from the filter, so safe to call from many
  // threads with distinct sessions; any malformed frame yields an error
  // frame, never a crash (tests/fuzz_test.cc).
  std::string HandleRequest(std::string_view request_bytes,
                            filter::SessionId session = filter::SessionId{0});

  // HandleRequest into a caller-owned buffer: the response envelope and
  // payload are encoded in place, so a pooled frame buffer's capacity
  // (rpc/frame_pool.h) is reused across requests instead of allocating
  // per response. `response` is cleared first; `request_bytes` must not
  // alias it.
  void HandleRequestInto(std::string_view request_bytes,
                         filter::SessionId session, std::string* response);

  // Total well-formed requests handled since construction (kPing's
  // stats_epoch): a cheap liveness signal the monitor can watch move.
  uint64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }

 private:
  // Appends the catalog payload for kCatalog/kCatalogResolve requests.
  Status ServeCatalog(const Request& request, std::string* payload) const;

  gf::Ring ring_;
  filter::ServerFilter* filter_;
  std::string catalog_bytes_;
  std::map<std::string, std::string, std::less<>> catalog_entries_;
  std::atomic<uint64_t> requests_handled_{0};
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

// Runs an RpcServer over the given channel on a background thread; joins on
// destruction.
class ServerThread {
 public:
  ServerThread(gf::Ring ring, filter::ServerFilter* filter,
               std::unique_ptr<Channel> channel);
  ~ServerThread();

  ServerThread(const ServerThread&) = delete;
  ServerThread& operator=(const ServerThread&) = delete;

 private:
  std::unique_ptr<Channel> channel_;
  RpcServer server_;
  std::thread thread_;
};

}  // namespace ssdb::rpc

#endif  // SSDB_RPC_SERVER_H_
