#include "mapping/tag_map.h"

#include <algorithm>
#include <cstdlib>

#include "util/file_util.h"
#include "util/string_util.h"

namespace ssdb::mapping {

StatusOr<TagMap> TagMap::Validate(std::map<std::string, gf::Elem> entries,
                                  const gf::Field& field) {
  if (entries.empty()) {
    return Status::InvalidArgument("tag map is empty");
  }
  if (entries.size() >= field.n()) {
    return Status::InvalidArgument(
        "tag map needs " + std::to_string(entries.size()) +
        " distinct non-zero values plus one spare, but F_" +
        std::to_string(field.q()) + " has only " + std::to_string(field.n()) +
        " non-zero elements");
  }
  std::vector<bool> used(field.q(), false);
  for (const auto& [name, value] : entries) {
    if (value == 0) {
      return Status::InvalidArgument("tag '" + name + "' mapped to zero");
    }
    if (!field.IsValid(value)) {
      return Status::InvalidArgument("tag '" + name +
                                     "' mapped outside the field");
    }
    if (used[value]) {
      return Status::InvalidArgument("duplicate map value " +
                                     std::to_string(value));
    }
    used[value] = true;
  }
  TagMap map;
  map.entries_ = std::move(entries);
  std::vector<std::pair<gf::Elem, std::string>> by_value;
  by_value.reserve(map.entries_.size());
  for (const auto& [name, value] : map.entries_) {
    by_value.emplace_back(value, name);
  }
  std::sort(by_value.begin(), by_value.end());
  map.values_in_order_.reserve(by_value.size());
  map.names_in_order_.reserve(by_value.size());
  for (auto& [value, name] : by_value) {
    map.values_in_order_.push_back(value);
    map.names_in_order_.push_back(std::move(name));
  }
  for (gf::Elem v = 1; v < field.q(); ++v) {
    if (!used[v]) {
      map.spare_value_ = v;
      break;
    }
  }
  return map;
}

StatusOr<TagMap> TagMap::FromNames(const std::vector<std::string>& names,
                                   const gf::Field& field) {
  std::map<std::string, gf::Elem> entries;
  gf::Elem next = 1;
  for (const auto& name : names) {
    if (entries.count(name) > 0) {
      return Status::InvalidArgument("duplicate tag name: " + name);
    }
    entries[name] = next++;
  }
  return Validate(std::move(entries), field);
}

StatusOr<TagMap> TagMap::FromDtd(const xml::Dtd& dtd,
                                 const gf::Field& field) {
  return FromNames(dtd.ElementNames(), field);
}

StatusOr<TagMap> TagMap::FromFile(const std::string& path,
                                  const gf::Field& field) {
  SSDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return FromString(contents, field);
}

StatusOr<TagMap> TagMap::FromString(std::string_view contents,
                                    const gf::Field& field) {
  std::map<std::string, gf::Elem> entries;
  for (const auto& raw_line : SplitString(contents, '\n')) {
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::Corruption("map file line missing '=': " +
                                std::string(line));
    }
    std::string name(TrimWhitespace(line.substr(0, eq)));
    std::string value_text(TrimWhitespace(line.substr(eq + 1)));
    if (name.empty() || value_text.empty()) {
      return Status::Corruption("map file line malformed: " +
                                std::string(line));
    }
    char* end = nullptr;
    unsigned long value = std::strtoul(value_text.c_str(), &end, 10);
    if (end == value_text.c_str() || *end != '\0') {
      return Status::Corruption("map value not a number: " + value_text);
    }
    if (entries.count(name) > 0) {
      return Status::Corruption("duplicate tag in map file: " + name);
    }
    entries[name] = static_cast<gf::Elem>(value);
  }
  return Validate(std::move(entries), field);
}

Status TagMap::SaveToFile(const std::string& path) const {
  return WriteStringToFile(path, ToString());
}

std::string TagMap::ToString() const {
  std::string out = "# ssdb tag map: name = value in F_q\n";
  for (const auto& [name, value] : entries_) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  return out;
}

StatusOr<gf::Elem> TagMap::Lookup(std::string_view name) const {
  auto it = entries_.find(std::string(name));
  if (it == entries_.end()) {
    return Status::NotFound("tag not in map: " + std::string(name));
  }
  return it->second;
}

bool TagMap::Contains(std::string_view name) const {
  return entries_.count(std::string(name)) > 0;
}

StatusOr<uint32_t> TagMap::ValueIndex(gf::Elem value) const {
  auto it = std::lower_bound(values_in_order_.begin(), values_in_order_.end(),
                             value);
  if (it == values_in_order_.end() || *it != value) {
    return Status::NotFound("value not in map: " + std::to_string(value));
  }
  return static_cast<uint32_t>(it - values_in_order_.begin());
}

StatusOr<std::string> TagMap::NameAt(uint32_t index) const {
  if (index >= names_in_order_.size()) {
    return Status::NotFound("value index out of range: " +
                            std::to_string(index));
  }
  return names_in_order_[index];
}

}  // namespace ssdb::mapping
