// The secret mapping function map : tag-name -> F_q \ {0} (§3 step 1 and
// fig. 1(b)), persisted as a "name = value" property file exactly like the
// paper's map file (§5.1).
//
// Invariants enforced (see DESIGN.md §2):
//  * values are non-zero (evaluation at 0 says nothing in the quotient ring),
//  * values are distinct (equality test must identify tags uniquely),
//  * at least one non-zero field value stays unused, so the equality test can
//    always find an evaluation point where the child product is non-zero.

#ifndef SSDB_MAPPING_TAG_MAP_H_
#define SSDB_MAPPING_TAG_MAP_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gf/field.h"
#include "util/statusor.h"
#include "xml/dtd.h"

namespace ssdb::mapping {

class TagMap {
 public:
  // Assigns values 1, 2, 3, ... to the names in order. Fails if the field is
  // too small (needs q - 1 > names.size(), strictly, to keep a spare value).
  static StatusOr<TagMap> FromNames(const std::vector<std::string>& names,
                                    const gf::Field& field);

  // Uses the DTD's element declarations as the name universe.
  static StatusOr<TagMap> FromDtd(const xml::Dtd& dtd,
                                  const gf::Field& field);

  // Loads a "name = value" property file ('#' starts a comment line).
  static StatusOr<TagMap> FromFile(const std::string& path,
                                   const gf::Field& field);
  static StatusOr<TagMap> FromString(std::string_view contents,
                                     const gf::Field& field);

  Status SaveToFile(const std::string& path) const;
  std::string ToString() const;

  // NotFound when the tag was never mapped.
  StatusOr<gf::Elem> Lookup(std::string_view name) const;
  bool Contains(std::string_view name) const;

  size_t size() const { return entries_.size(); }
  const std::map<std::string, gf::Elem>& entries() const { return entries_; }

  // Canonical dense indexing of the mapped values (DESIGN.md §8): the
  // aggregate columns are vectors indexed by a value's rank among all
  // mapped values in ascending order. Encoder and client derive the same
  // index from the same map, so it never travels with the key material.
  const std::vector<gf::Elem>& values_in_order() const {
    return values_in_order_;
  }
  // NotFound when `value` is not a mapped value.
  StatusOr<uint32_t> ValueIndex(gf::Elem value) const;
  // The tag name mapped to values_in_order()[index].
  StatusOr<std::string> NameAt(uint32_t index) const;

  // Smallest non-zero field value not used by any tag — the guaranteed-free
  // evaluation point for the equality test.
  gf::Elem SpareValue() const { return spare_value_; }

 private:
  static StatusOr<TagMap> Validate(std::map<std::string, gf::Elem> entries,
                                   const gf::Field& field);

  std::map<std::string, gf::Elem> entries_;
  std::vector<gf::Elem> values_in_order_;    // ascending; index = rank
  std::vector<std::string> names_in_order_;  // parallel to values_in_order_
  gf::Elem spare_value_ = 0;
};

}  // namespace ssdb::mapping

#endif  // SSDB_MAPPING_TAG_MAP_H_
