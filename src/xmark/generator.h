// Synthetic XMark-style auction documents (§6: "All experiments act on an
// auction database synthesized by the XMark benchmark"). The original XMark
// generator is not available offline, so this module produces documents
// conforming to the paper's appendix DTD — same 77 elements, same structure,
// size-scalable — which exercises exactly the same code paths
// (DESIGN.md §14).

#ifndef SSDB_XMARK_GENERATOR_H_
#define SSDB_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

#include "util/statusor.h"

namespace ssdb::xmark {

struct GeneratorOptions {
  // Approximate output size in bytes (calibrated within ~15%).
  uint64_t target_bytes = 1 << 20;
  uint64_t seed = 42;
};

struct GeneratedDocument {
  std::string xml;
  uint64_t person_count = 0;
  uint64_t item_count = 0;
  uint64_t open_auction_count = 0;
  uint64_t closed_auction_count = 0;
  uint64_t category_count = 0;
};

// The paper's appendix DTD, verbatim (77 ELEMENT declarations).
const std::string& AuctionDtd();

GeneratedDocument GenerateAuctionDocument(const GeneratorOptions& options);

}  // namespace ssdb::xmark

#endif  // SSDB_XMARK_GENERATOR_H_
