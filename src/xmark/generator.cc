#include "xmark/generator.h"

#include <algorithm>

#include "util/random.h"
#include "xmark/words.h"

namespace ssdb::xmark {
namespace {

// Empirical bytes-per-entity for count calibration (measured on generated
// output; see xmark tests).
constexpr double kBytesPerPerson = 620.0;
constexpr double kBytesPerItem = 1070.0;
constexpr double kBytesPerOpenAuction = 940.0;
constexpr double kBytesPerClosedAuction = 620.0;
constexpr double kBytesPerCategory = 490.0;

class Builder {
 public:
  explicit Builder(uint64_t seed) : rng_(seed) {}

  std::string* out() { return &xml_; }
  Random* rng() { return &rng_; }

  void Open(const char* tag) {
    xml_ += '<';
    xml_ += tag;
    xml_ += '>';
  }
  void Close(const char* tag) {
    xml_ += "</";
    xml_ += tag;
    xml_ += '>';
  }
  void Empty(const char* tag) {
    xml_ += '<';
    xml_ += tag;
    xml_ += "/>";
  }
  void Leaf(const char* tag, const std::string& content) {
    Open(tag);
    xml_ += content;
    Close(tag);
  }

  std::string Date() {
    return std::to_string(rng_.UniformRange(1, 28)) + "/" +
           std::to_string(rng_.UniformRange(1, 12)) + "/" +
           std::to_string(rng_.UniformRange(1998, 2004));
  }
  std::string Time() {
    return std::to_string(rng_.UniformRange(0, 23)) + ":" +
           std::to_string(rng_.UniformRange(10, 59));
  }
  std::string Money() {
    return std::to_string(rng_.UniformRange(1, 400)) + "." +
           std::to_string(rng_.UniformRange(10, 99));
  }

 private:
  std::string xml_;
  Random rng_;
};

// description := (text | parlist); parlist nests one level of listitems.
void EmitDescription(Builder* b, int depth = 0) {
  Random* rng = b->rng();
  b->Open("description");
  if (depth == 0 && rng->Bernoulli(0.25)) {
    b->Open("parlist");
    int items = static_cast<int>(rng->UniformRange(1, 3));
    for (int i = 0; i < items; ++i) {
      b->Open("listitem");
      b->Open("text");
      *b->out() += MakeSentence(rng, 100);
      if (rng->Bernoulli(0.5)) {
        b->Leaf("keyword", MakeSentence(rng, 3));
        *b->out() += MakeSentence(rng, 45);
      }
      b->Close("text");
      b->Close("listitem");
    }
    b->Close("parlist");
  } else {
    b->Open("text");
    *b->out() += MakeSentence(rng, 130);
    if (rng->Bernoulli(0.4)) {
      b->Leaf("bold", MakeSentence(rng, 3));
      *b->out() += MakeSentence(rng, 40);
    }
    if (rng->Bernoulli(0.4)) {
      b->Leaf("emph", MakeSentence(rng, 3));
      *b->out() += MakeSentence(rng, 40);
    }
    if (rng->Bernoulli(0.3)) {
      b->Leaf("keyword", MakeSentence(rng, 2));
    }
    b->Close("text");
  }
  b->Close("description");
}

void EmitItem(Builder* b) {
  Random* rng = b->rng();
  b->Open("item");
  b->Leaf("location", rng->Pick(Countries()));
  b->Leaf("quantity", std::to_string(rng->UniformRange(1, 10)));
  b->Leaf("name", MakeSentence(rng, 3));
  b->Leaf("payment", rng->Bernoulli(0.5) ? "Creditcard" : "Cash");
  EmitDescription(b);
  b->Leaf("shipping", rng->Bernoulli(0.5) ? "Will ship internationally"
                                          : "Buyer pays fixed shipping");
  int categories = static_cast<int>(rng->UniformRange(1, 3));
  for (int i = 0; i < categories; ++i) b->Empty("incategory");
  b->Open("mailbox");
  int mails = static_cast<int>(rng->UniformRange(0, 2));
  for (int i = 0; i < mails; ++i) {
    b->Open("mail");
    b->Leaf("from", rng->Pick(FirstNames()) + " " + rng->Pick(LastNames()));
    b->Leaf("to", rng->Pick(FirstNames()) + " " + rng->Pick(LastNames()));
    b->Leaf("date", b->Date());
    b->Open("text");
    *b->out() += MakeSentence(rng, 110);
    b->Close("text");
    b->Close("mail");
  }
  b->Close("mailbox");
  b->Close("item");
}

void EmitPerson(Builder* b) {
  Random* rng = b->rng();
  std::string first = rng->Pick(FirstNames());
  std::string last = rng->Pick(LastNames());
  b->Open("person");
  b->Leaf("name", first + " " + last);
  b->Leaf("emailaddress",
          "mailto:" + first + "." + last + "@example.com");
  if (rng->Bernoulli(0.6)) {
    b->Leaf("phone", "+31 " + std::to_string(rng->UniformRange(10, 99)) +
                         " " + std::to_string(rng->UniformRange(1000000,
                                                                9999999)));
  }
  if (rng->Bernoulli(0.7)) {
    b->Open("address");
    b->Leaf("street", std::to_string(rng->UniformRange(1, 200)) + " " +
                          rng->Pick(Streets()));
    b->Leaf("city", rng->Pick(Cities()));
    b->Leaf("country", rng->Pick(Countries()));
    if (rng->Bernoulli(0.3)) b->Leaf("province", rng->Pick(Countries()));
    b->Leaf("zipcode", std::to_string(rng->UniformRange(10000, 99999)));
    b->Close("address");
  }
  if (rng->Bernoulli(0.3)) {
    b->Leaf("homepage", "http://www.example.com/~" + last);
  }
  if (rng->Bernoulli(0.4)) {
    b->Leaf("creditcard",
            std::to_string(rng->UniformRange(1000, 9999)) + " " +
                std::to_string(rng->UniformRange(1000, 9999)));
  }
  if (rng->Bernoulli(0.6)) {
    b->Open("profile");
    int interests = static_cast<int>(rng->UniformRange(0, 3));
    for (int i = 0; i < interests; ++i) b->Empty("interest");
    if (rng->Bernoulli(0.5)) b->Leaf("education", "Graduate School");
    if (rng->Bernoulli(0.5))
      b->Leaf("gender", rng->Bernoulli(0.5) ? "male" : "female");
    b->Leaf("business", rng->Bernoulli(0.5) ? "Yes" : "No");
    if (rng->Bernoulli(0.5))
      b->Leaf("age", std::to_string(rng->UniformRange(18, 80)));
    b->Close("profile");
  }
  if (rng->Bernoulli(0.5)) {
    b->Open("watches");
    int watches = static_cast<int>(rng->UniformRange(0, 4));
    for (int i = 0; i < watches; ++i) b->Empty("watch");
    b->Close("watches");
  }
  b->Close("person");
}

void EmitOpenAuction(Builder* b) {
  Random* rng = b->rng();
  b->Open("open_auction");
  b->Leaf("initial", b->Money());
  if (rng->Bernoulli(0.4)) b->Leaf("reserve", b->Money());
  int bidders = static_cast<int>(rng->UniformRange(0, 5));
  for (int i = 0; i < bidders; ++i) {
    b->Open("bidder");
    b->Leaf("date", b->Date());
    b->Leaf("time", b->Time());
    b->Empty("personref");
    b->Leaf("increase", b->Money());
    b->Close("bidder");
  }
  b->Leaf("current", b->Money());
  if (rng->Bernoulli(0.3)) b->Leaf("privacy", "Yes");
  b->Empty("itemref");
  b->Empty("seller");
  b->Open("annotation");
  b->Empty("author");
  if (rng->Bernoulli(0.5)) EmitDescription(b);
  b->Leaf("happiness", std::to_string(rng->UniformRange(1, 10)));
  b->Close("annotation");
  b->Leaf("quantity", std::to_string(rng->UniformRange(1, 5)));
  b->Leaf("type", rng->Bernoulli(0.5) ? "Regular" : "Featured");
  b->Open("interval");
  b->Leaf("start", b->Date());
  b->Leaf("end", b->Date());
  b->Close("interval");
  b->Close("open_auction");
}

void EmitClosedAuction(Builder* b) {
  Random* rng = b->rng();
  b->Open("closed_auction");
  b->Empty("seller");
  b->Empty("buyer");
  b->Empty("itemref");
  b->Leaf("price", b->Money());
  b->Leaf("date", b->Date());
  b->Leaf("quantity", std::to_string(rng->UniformRange(1, 5)));
  b->Leaf("type", rng->Bernoulli(0.5) ? "Regular" : "Featured");
  if (rng->Bernoulli(0.5)) {
    b->Open("annotation");
    b->Empty("author");
    if (rng->Bernoulli(0.4)) EmitDescription(b);
    b->Leaf("happiness", std::to_string(rng->UniformRange(1, 10)));
    b->Close("annotation");
  }
  b->Close("closed_auction");
}

void EmitCategory(Builder* b) {
  Random* rng = b->rng();
  b->Open("category");
  b->Leaf("name", MakeSentence(rng, 2));
  EmitDescription(b);
  b->Close("category");
}

}  // namespace

const std::string& AuctionDtd() {
  static const auto* kDtd = new std::string(R"DTD(
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist (listitem)*>
<!ELEMENT listitem (text | parlist)*>
<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ELEMENT personref EMPTY>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ELEMENT interest EMPTY>
<!ELEMENT education (#PCDATA)>
<!ELEMENT income (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT seller EMPTY>
<!ELEMENT current (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer EMPTY>
<!ELEMENT price (#PCDATA)>
<!ELEMENT annotation (author, description?, happiness)>
<!ELEMENT author EMPTY>
<!ELEMENT happiness (#PCDATA)>
)DTD");
  return *kDtd;
}

GeneratedDocument GenerateAuctionDocument(const GeneratorOptions& options) {
  // Apportion the byte budget across entity kinds with XMark-like ratios.
  double budget = static_cast<double>(options.target_bytes);
  uint64_t people = static_cast<uint64_t>(budget * 0.30 / kBytesPerPerson);
  uint64_t items = static_cast<uint64_t>(budget * 0.30 / kBytesPerItem);
  uint64_t open = static_cast<uint64_t>(budget * 0.20 / kBytesPerOpenAuction);
  uint64_t closed =
      static_cast<uint64_t>(budget * 0.12 / kBytesPerClosedAuction);
  uint64_t categories =
      static_cast<uint64_t>(budget * 0.08 / kBytesPerCategory);
  people = std::max<uint64_t>(people, 3);
  items = std::max<uint64_t>(items, 6);
  open = std::max<uint64_t>(open, 2);
  closed = std::max<uint64_t>(closed, 2);
  categories = std::max<uint64_t>(categories, 1);

  Builder b(options.seed);
  Random* rng = b.rng();

  b.Open("site");

  b.Open("regions");
  const char* region_names[] = {"africa",   "asia",     "australia",
                                "europe",   "namerica", "samerica"};
  // Europe gets the lion's share, like real XMark distributions.
  double region_weights[] = {0.08, 0.18, 0.06, 0.40, 0.20, 0.08};
  uint64_t emitted_items = 0;
  for (int r = 0; r < 6; ++r) {
    b.Open(region_names[r]);
    uint64_t count = static_cast<uint64_t>(
        static_cast<double>(items) * region_weights[r]);
    if (r == 5) count = items > emitted_items ? items - emitted_items : 0;
    for (uint64_t i = 0; i < count; ++i) EmitItem(&b);
    emitted_items += count;
    b.Close(region_names[r]);
  }
  b.Close("regions");

  b.Open("categories");
  for (uint64_t i = 0; i < categories; ++i) EmitCategory(&b);
  b.Close("categories");

  b.Open("catgraph");
  uint64_t edges = categories * 2;
  for (uint64_t i = 0; i < edges; ++i) b.Empty("edge");
  b.Close("catgraph");

  b.Open("people");
  for (uint64_t i = 0; i < people; ++i) EmitPerson(&b);
  b.Close("people");

  b.Open("open_auctions");
  for (uint64_t i = 0; i < open; ++i) EmitOpenAuction(&b);
  b.Close("open_auctions");

  b.Open("closed_auctions");
  for (uint64_t i = 0; i < closed; ++i) EmitClosedAuction(&b);
  b.Close("closed_auctions");

  b.Close("site");
  (void)rng;

  GeneratedDocument doc;
  doc.xml = std::move(*b.out());
  doc.person_count = people;
  doc.item_count = emitted_items;
  doc.open_auction_count = open;
  doc.closed_auction_count = closed;
  doc.category_count = categories;
  return doc;
}

}  // namespace ssdb::xmark
