#include "xmark/words.h"

namespace ssdb::xmark {

const std::vector<std::string>& Vocabulary() {
  static const auto* kWords = new std::vector<std::string>{
      "the",      "of",       "and",      "to",       "in",       "that",
      "was",      "his",      "he",       "it",       "with",     "is",
      "for",      "as",       "had",      "you",      "not",      "be",
      "her",      "on",       "at",       "by",       "which",    "have",
      "or",       "from",     "this",     "him",      "but",      "all",
      "she",      "they",     "were",     "my",       "are",      "me",
      "one",      "their",    "so",       "an",       "said",     "them",
      "we",       "who",      "would",    "been",     "will",     "no",
      "when",     "there",    "if",       "more",     "out",      "up",
      "into",     "do",       "any",      "your",     "what",     "has",
      "man",      "could",    "other",    "than",     "our",      "some",
      "very",     "time",     "upon",     "about",    "may",      "its",
      "only",     "now",      "like",     "little",   "then",     "can",
      "made",     "should",   "did",      "us",       "such",     "a",
      "great",    "before",   "must",     "two",      "these",    "see",
      "know",     "over",     "much",     "down",     "after",    "first",
      "mr",       "good",     "men",      "own",      "never",    "most",
      "old",      "shall",    "day",      "where",    "those",    "came",
      "come",     "himself",  "way",      "work",     "life",     "without",
      "go",       "make",     "well",     "through",  "being",    "long",
      "say",      "might",    "how",      "am",       "too",      "even",
      "def",      "again",    "many",     "back",     "here",     "think",
      "every",    "people",   "went",     "same",     "last",     "thought",
      "house",    "us",       "against",  "right",    "take",     "himself",
      "hand",     "eyes",     "still",    "place",    "while",    "year",
      "found",    "world",    "thing",    "head",     "under",    "look",
      "another",  "few",      "door",     "told",     "young",    "side",
      "got",      "face",     "between",  "best",     "really",   "nothing",
      "auction",  "bid",      "price",    "seller",   "vintage",  "rare",
      "antique",  "mint",     "original", "shipping", "payment",  "credit",
      "money",    "order",    "cash",     "check",    "item",     "quality",
  };
  return *kWords;
}

const std::vector<std::string>& FirstNames() {
  static const auto* kNames = new std::vector<std::string>{
      "Joan",   "John",    "Mary",   "James",  "Linda",  "Robert",
      "Susan",  "Michael", "Karen",  "David",  "Nancy",  "Richard",
      "Betty",  "Thomas",  "Helen",  "Charles", "Ruth",  "Daniel",
      "Laura",  "Matthew", "Sarah",  "Anthony", "Emma",  "Mark",
      "Alice",  "Paul",    "Grace",  "Steven",  "Rose",  "Kenneth",
  };
  return *kNames;
}

const std::vector<std::string>& LastNames() {
  static const auto* kNames = new std::vector<std::string>{
      "Johnson",  "Smith",    "Williams", "Brown",   "Jones",   "Garcia",
      "Miller",   "Davis",    "Martinez", "Lopez",   "Wilson",  "Anderson",
      "Taylor",   "Thomas",   "Moore",    "Jackson", "Martin",  "Lee",
      "Thompson", "White",    "Harris",   "Clark",   "Lewis",   "Young",
      "Walker",   "Hall",     "Allen",    "King",    "Wright",  "Scott",
  };
  return *kNames;
}

const std::vector<std::string>& Cities() {
  static const auto* kCities = new std::vector<std::string>{
      "Amsterdam", "Berlin", "Paris",   "London", "Madrid",  "Rome",
      "Vienna",    "Prague", "Lisbon",  "Dublin", "Athens",  "Oslo",
      "Helsinki",  "Warsaw", "Budapest", "Zurich", "Brussels", "Copenhagen",
  };
  return *kCities;
}

const std::vector<std::string>& Countries() {
  static const auto* kCountries = new std::vector<std::string>{
      "Netherlands", "Germany", "France",  "England", "Spain",   "Italy",
      "Austria",     "Czechia", "Portugal", "Ireland", "Greece",  "Norway",
      "Finland",     "Poland",  "Hungary", "Switzerland", "Belgium",
      "Denmark",
  };
  return *kCountries;
}

const std::vector<std::string>& Streets() {
  static const auto* kStreets = new std::vector<std::string>{
      "Main St",   "Oak Ave",   "Park Rd",   "Elm St",   "Lake Dr",
      "Hill Rd",   "River Ln",  "Mill St",   "High St",  "Church Rd",
      "North Ave", "South St",  "West Blvd", "East Way", "Bridge St",
  };
  return *kStreets;
}

std::string MakeSentence(Random* rng, size_t count) {
  const auto& vocab = Vocabulary();
  std::string out;
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) out.push_back(' ');
    out += vocab[rng->Zipf(vocab.size())];
  }
  return out;
}

}  // namespace ssdb::xmark
