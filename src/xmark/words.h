// Word material for the synthetic auction documents (the original XMark
// generator draws from Shakespeare; offline we embed a fixed vocabulary).

#ifndef SSDB_XMARK_WORDS_H_
#define SSDB_XMARK_WORDS_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace ssdb::xmark {

// ~180 common English words, Zipf-sampled for body text.
const std::vector<std::string>& Vocabulary();

// First/last name pools for <person> entries.
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();

const std::vector<std::string>& Cities();
const std::vector<std::string>& Countries();
const std::vector<std::string>& Streets();

// `count` Zipf-distributed vocabulary words joined by spaces.
std::string MakeSentence(Random* rng, size_t count);

}  // namespace ssdb::xmark

#endif  // SSDB_XMARK_WORDS_H_
