#include "util/status.h"

namespace ssdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace ssdb
