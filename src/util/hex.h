// Hex encoding/decoding, used for seed files and debugging dumps.

#ifndef SSDB_UTIL_HEX_H_
#define SSDB_UTIL_HEX_H_

#include <string>
#include <string_view>

#include "util/statusor.h"

namespace ssdb {

// Lower-case hex encoding of arbitrary bytes.
std::string HexEncode(std::string_view bytes);

// Inverse of HexEncode; accepts upper or lower case, fails on odd length or
// non-hex characters.
StatusOr<std::string> HexDecode(std::string_view hex);

}  // namespace ssdb

#endif  // SSDB_UTIL_HEX_H_
