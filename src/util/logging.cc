#include "util/logging.h"

#include <atomic>

namespace ssdb {
namespace logging_internal {
namespace {

std::atomic<Severity> g_min_severity{Severity::kWarning};

const char* SeverityTag(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "I";
    case Severity::kWarning:
      return "W";
    case Severity::kError:
      return "E";
    case Severity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(Severity severity) { g_min_severity = severity; }
Severity MinLogSeverity() { return g_min_severity; }

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity) {
  // Strip directories from __FILE__ for terse output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == Severity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == Severity::kFatal) {
    std::abort();
  }
}

}  // namespace logging_internal
}  // namespace ssdb
