// LEB128-style variable-length integer coding, used by the storage engine's
// record format and the RPC wire format.

#ifndef SSDB_UTIL_VARINT_H_
#define SSDB_UTIL_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ssdb {

// Appends an unsigned varint to *dst (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

// Appends a zigzag-coded signed varint.
void PutVarintSigned64(std::string* dst, int64_t value);

// Appends a 32-bit little-endian fixed integer.
void PutFixed32(std::string* dst, uint32_t value);

// Appends a 64-bit little-endian fixed integer.
void PutFixed64(std::string* dst, uint64_t value);

// Appends a length-prefixed byte string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Each Get* consumes from the front of *input on success.
Status GetVarint64(std::string_view* input, uint64_t* value);
Status GetVarintSigned64(std::string_view* input, int64_t* value);
Status GetFixed32(std::string_view* input, uint32_t* value);
Status GetFixed64(std::string_view* input, uint64_t* value);
Status GetLengthPrefixed(std::string_view* input, std::string_view* value);

}  // namespace ssdb

#endif  // SSDB_UTIL_VARINT_H_
