#include "util/bitpack.h"

#include "util/logging.h"

namespace ssdb {

int BitWidth(uint64_t n) {
  if (n <= 2) return 1;
  int bits = 0;
  uint64_t max = n - 1;
  while (max > 0) {
    ++bits;
    max >>= 1;
  }
  return bits;
}

void BitWriter::Write(uint64_t value, int bits) {
  SSDB_DCHECK(bits >= 1 && bits <= 57) << "unsupported bit width " << bits;
  if (bits < 64) {
    value &= (uint64_t{1} << bits) - 1;
  }
  pending_ |= value << pending_bits_;
  pending_bits_ += bits;
  bit_count_ += bits;
  while (pending_bits_ >= 8) {
    bytes_.push_back(static_cast<char>(pending_ & 0xff));
    pending_ >>= 8;
    pending_bits_ -= 8;
  }
}

std::string BitWriter::Finish() {
  if (pending_bits_ > 0) {
    bytes_.push_back(static_cast<char>(pending_ & 0xff));
    pending_ = 0;
    pending_bits_ = 0;
  }
  return std::move(bytes_);
}

Status BitReader::Read(int bits, uint64_t* value) {
  SSDB_DCHECK(bits >= 1 && bits <= 57) << "unsupported bit width " << bits;
  if (bit_pos_ + static_cast<size_t>(bits) > data_.size() * 8) {
    return Status::OutOfRange("BitReader: buffer exhausted");
  }
  uint64_t result = 0;
  int filled = 0;
  size_t byte = bit_pos_ / 8;
  int offset = static_cast<int>(bit_pos_ % 8);
  while (filled < bits) {
    uint64_t cur = static_cast<uint8_t>(data_[byte]) >> offset;
    int avail = 8 - offset;
    result |= cur << filled;
    filled += avail;
    ++byte;
    offset = 0;
  }
  if (bits < 64) {
    result &= (uint64_t{1} << bits) - 1;
  }
  *value = result;
  bit_pos_ += bits;
  return Status::OK();
}

std::string PackVector(const std::vector<uint32_t>& values, int bits) {
  BitWriter writer;
  for (uint32_t v : values) {
    writer.Write(v, bits);
  }
  return writer.Finish();
}

StatusOr<std::vector<uint32_t>> UnpackVector(std::string_view data, int bits,
                                             size_t count) {
  BitReader reader(data);
  std::vector<uint32_t> values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    SSDB_RETURN_IF_ERROR(reader.Read(bits, &v));
    values.push_back(static_cast<uint32_t>(v));
  }
  return values;
}

}  // namespace ssdb
