#include "util/string_util.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace ssdb {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      parts.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(input.substr(start, i - start));
  }
  return parts;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace ssdb
