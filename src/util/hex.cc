#include "util/hex.h"

namespace ssdb {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string HexEncode(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xf]);
  }
  return out;
}

StatusOr<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace ssdb
