// Minimal hand-rolled JSON subset shared by the shard catalog (DESIGN.md
// §10) and the control-plane admin API (DESIGN.md §11): objects, arrays,
// strings with \"/\\/n/t escapes, non-negative numbers (integers, plus an
// optional fraction in the DOM parser), true/false/null. Hand-rolled to keep
// the build dependency-free; every bound is explicit so corrupt or hostile
// input cannot force large allocations or deep recursion.
//
// Two layers:
//   - JsonParser: a streaming cursor (Expect/Consume/ParseString/ParseUint/
//     SkipValue) for schema-directed decoding where unknown keys must be
//     skipped for forward compatibility (the catalog codec).
//   - JsonValue + ParseJson: a small DOM for consumers that inspect
//     arbitrary documents (tests, admin-endpoint clients).

#ifndef SSDB_UTIL_JSON_H_
#define SSDB_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace ssdb {

// Streaming subset parser. `context` prefixes every error message (e.g.
// "catalog JSON"); `max_string_bytes` bounds any single decoded string.
class JsonParser {
 public:
  static constexpr size_t kDefaultMaxStringBytes = 4096;

  explicit JsonParser(std::string_view text,
                      std::string_view context = "JSON",
                      size_t max_string_bytes = kDefaultMaxStringBytes)
      : text_(text), context_(context), max_string_bytes_(max_string_bytes) {}

  void SkipSpace();
  // Consumes `c` (after whitespace) if present.
  bool Consume(char c);
  // Like Consume but an error when `c` is absent.
  Status Expect(char c);
  Status ParseString(std::string* out);
  Status ParseUint(uint64_t* out);
  // Skips any value (for unknown keys).
  Status SkipValue();
  // Error unless only trailing whitespace remains.
  Status AtEnd();

  // Next non-whitespace character without consuming it; '\0' at end.
  char PeekChar();

  size_t offset() const { return pos_; }

 private:
  Status Corrupt(const std::string& what) const;

  std::string_view text_;
  std::string_view context_;
  size_t max_string_bytes_;
  size_t pos_ = 0;
};

// Appends `value` as a quoted JSON string, escaping the same subset the
// parser accepts.
void AppendJsonString(std::string* out, std::string_view value);

// Bounds for the DOM parser.
struct JsonLimits {
  size_t max_string_bytes = JsonParser::kDefaultMaxStringBytes;
  size_t max_depth = 32;
  size_t max_nodes = 1 << 16;
};

// A parsed JSON document. Numbers are stored as doubles (the subset only
// admits non-negative values); object keys keep insertion order.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(std::string_view key) const;
  // Convenience accessors through Get(); fall back to the default when the
  // member is absent or of the wrong kind.
  uint64_t GetUint(std::string_view key, uint64_t def = 0) const;
  std::string GetString(std::string_view key, std::string def = "") const;
};

StatusOr<JsonValue> ParseJson(std::string_view text,
                              const JsonLimits& limits = JsonLimits());

}  // namespace ssdb

#endif  // SSDB_UTIL_JSON_H_
