// StatusOr<T>: value-or-error return type, in the style of absl::StatusOr.

#ifndef SSDB_UTIL_STATUSOR_H_
#define SSDB_UTIL_STATUSOR_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace ssdb {

template <typename T>
class StatusOr {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse (`return 42;` / `return Status::NotFound(...)`), matching the
  // absl::StatusOr convention.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    SSDB_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SSDB_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SSDB_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SSDB_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ssdb

#endif  // SSDB_UTIL_STATUSOR_H_
