// Small string helpers shared across modules.

#ifndef SSDB_UTIL_STRING_UTIL_H_
#define SSDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ssdb {

// Splits on a single character; empty tokens are kept.
std::vector<std::string> SplitString(std::string_view input, char sep);

// Splits on any whitespace run; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view input);

// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view input);

// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view s);

// Human-readable byte count, e.g. "12.3 MB".
std::string HumanBytes(uint64_t bytes);

}  // namespace ssdb

#endif  // SSDB_UTIL_STRING_UTIL_H_
