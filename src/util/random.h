// Deterministic pseudo-random number generator for workload generation and
// tests (xoshiro256**). NOT used for the cryptographic client shares — those
// come from the ChaCha20-based PRG in src/prg/ so that the secret-sharing
// security argument stays intact.

#ifndef SSDB_UTIL_RANDOM_H_
#define SSDB_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ssdb {

class Random {
 public:
  explicit Random(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, n) without modulo bias; n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // True with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

  // Uniform double in [0, 1).
  double NextDouble();

  // Skewed pick in [0, n): Zipf-like with exponent `s`, favouring small
  // indices; used by the XMark generator for realistic word frequencies.
  uint64_t Zipf(uint64_t n, double s = 1.0);

  // Picks a random element from a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Uniform(items.size())];
  }

 private:
  uint64_t state_[4];
};

}  // namespace ssdb

#endif  // SSDB_UTIL_RANDOM_H_
