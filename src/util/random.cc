#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace ssdb {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  // Seed expansion via SplitMix64 per the xoshiro authors' recommendation.
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  SSDB_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  SSDB_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Random::Zipf(uint64_t n, double s) {
  SSDB_DCHECK(n > 0);
  // Inverse-CDF on a truncated harmonic series; O(n) setup avoided by a
  // simple power-law approximation adequate for text synthesis.
  double u = NextDouble();
  double x = std::pow(static_cast<double>(n), 1.0 - u);
  uint64_t idx = static_cast<uint64_t>(x) - (x >= 1.0 ? 1 : 0);
  if (s != 1.0) {
    // Sharpen or flatten by re-biasing toward 0 for s > 1.
    double frac = static_cast<double>(idx) / static_cast<double>(n);
    frac = std::pow(frac, s);
    idx = static_cast<uint64_t>(frac * static_cast<double>(n));
  }
  return idx < n ? idx : n - 1;
}

}  // namespace ssdb
