#include "util/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/random.h"

namespace ssdb {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed: " + path);
  }
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for write: " + path);
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IOError("file_size failed: " + path + ": " + ec.message());
  }
  return size;
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::IOError("remove failed: " + path + ": " + ec.message());
  }
  return Status::OK();
}

TempDir::TempDir(const std::string& prefix) {
  static Random rng(0x5eedf00dULL ^
                    static_cast<uint64_t>(
                        std::chrono::steady_clock::now().time_since_epoch()
                            .count()));
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::string candidate = "/tmp/" + prefix + "_" +
                            std::to_string(rng.Next() & 0xffffffffULL);
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec) && !ec) {
      path_ = candidate;
      return;
    }
  }
  SSDB_LOG(FATAL) << "could not create temp dir with prefix " << prefix;
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
}

}  // namespace ssdb
