#include "util/json.h"

#include <cctype>

namespace ssdb {

Status JsonParser::Corrupt(const std::string& what) const {
  return Status::Corruption(std::string(context_) + ": " + what);
}

void JsonParser::SkipSpace() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool JsonParser::Consume(char c) {
  SkipSpace();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

Status JsonParser::Expect(char c) {
  if (!Consume(c)) {
    return Corrupt(std::string("expected '") + c + "' at offset " +
                   std::to_string(pos_));
  }
  return Status::OK();
}

Status JsonParser::ParseString(std::string* out) {
  SSDB_RETURN_IF_ERROR(Expect('"'));
  out->clear();
  while (pos_ < text_.size()) {
    char c = text_[pos_++];
    if (c == '"') {
      if (out->size() > max_string_bytes_) {
        return Corrupt("string exceeds bound");
      }
      return Status::OK();
    }
    if (c == '\\') {
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        default:
          return Corrupt("unsupported escape");
      }
      continue;
    }
    out->push_back(c);
  }
  return Corrupt("unterminated string");
}

Status JsonParser::ParseUint(uint64_t* out) {
  SkipSpace();
  if (pos_ >= text_.size() ||
      !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
    return Corrupt("expected number at offset " + std::to_string(pos_));
  }
  uint64_t value = 0;
  while (pos_ < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
    uint64_t digit = static_cast<uint64_t>(text_[pos_] - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Corrupt("number overflows");
    }
    value = value * 10 + digit;
    ++pos_;
  }
  *out = value;
  return Status::OK();
}

Status JsonParser::SkipValue() {
  SkipSpace();
  if (pos_ >= text_.size()) {
    return Corrupt("truncated value");
  }
  char c = text_[pos_];
  if (c == '"') {
    std::string ignored;
    return ParseString(&ignored);
  }
  if (c == '{' || c == '[') {
    char close = c == '{' ? '}' : ']';
    ++pos_;
    if (Consume(close)) return Status::OK();
    do {
      if (c == '{') {
        std::string key;
        SSDB_RETURN_IF_ERROR(ParseString(&key));
        SSDB_RETURN_IF_ERROR(Expect(':'));
      }
      SSDB_RETURN_IF_ERROR(SkipValue());
    } while (Consume(','));
    return Expect(close);
  }
  // number / true / false / null
  while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
         text_[pos_] != ']' &&
         !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
  return Status::OK();
}

char JsonParser::PeekChar() {
  SkipSpace();
  return pos_ < text_.size() ? text_[pos_] : '\0';
}

Status JsonParser::AtEnd() {
  SkipSpace();
  if (pos_ != text_.size()) {
    return Corrupt("trailing bytes at offset " + std::to_string(pos_));
  }
  return Status::OK();
}

void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

namespace {

// Recursive-descent DOM builder over the streaming parser, with depth and
// node budgets charged before each value is built.
class DomParser {
 public:
  DomParser(std::string_view text, const JsonLimits& limits)
      : parser_(text, "JSON", limits.max_string_bytes), limits_(limits) {}

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > limits_.max_depth) {
      return Status::Corruption("JSON: nesting exceeds depth bound");
    }
    if (++nodes_ > limits_.max_nodes) {
      return Status::Corruption("JSON: node count exceeds bound");
    }
    parser_.SkipSpace();
    if (parser_.Consume('{')) return ParseObject(out, depth);
    if (parser_.Consume('[')) return ParseArray(out, depth);
    if (ConsumeWord("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (parser_.PeekChar() == '"') {
      out->kind = JsonValue::Kind::kString;
      return parser_.ParseString(&out->string_value);
    }
    return ParseNumber(out);
  }

  Status Finish() { return parser_.AtEnd(); }

 private:
  bool ConsumeWord(std::string_view word) {
    // Words are consumed char by char; all start with distinct letters so a
    // failed first char means no rollback is needed.
    if (!parser_.Consume(word[0])) return false;
    for (size_t i = 1; i < word.size(); ++i) {
      if (!parser_.Consume(word[i])) return false;  // malformed; caught below
    }
    return true;
  }

  Status ParseNumber(JsonValue* out) {
    uint64_t whole = 0;
    SSDB_RETURN_IF_ERROR(parser_.ParseUint(&whole));
    out->kind = JsonValue::Kind::kNumber;
    out->number = static_cast<double>(whole);
    if (parser_.Consume('.')) {
      uint64_t frac = 0;
      size_t before = parser_.offset();
      SSDB_RETURN_IF_ERROR(parser_.ParseUint(&frac));
      size_t digits = parser_.offset() - before;
      double scale = 1;
      for (size_t i = 0; i < digits; ++i) scale *= 10;
      out->number += static_cast<double>(frac) / scale;
    }
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    out->kind = JsonValue::Kind::kObject;
    if (parser_.Consume('}')) return Status::OK();
    do {
      std::string key;
      SSDB_RETURN_IF_ERROR(parser_.ParseString(&key));
      SSDB_RETURN_IF_ERROR(parser_.Expect(':'));
      JsonValue value;
      SSDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
    } while (parser_.Consume(','));
    return parser_.Expect('}');
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    out->kind = JsonValue::Kind::kArray;
    if (parser_.Consume(']')) return Status::OK();
    do {
      JsonValue value;
      SSDB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
    } while (parser_.Consume(','));
    return parser_.Expect(']');
  }

  JsonParser parser_;
  JsonLimits limits_;
  size_t nodes_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

uint64_t JsonValue::GetUint(std::string_view key, uint64_t def) const {
  const JsonValue* v = Get(key);
  if (v == nullptr || !v->is_number() || v->number < 0) return def;
  return static_cast<uint64_t>(v->number);
}

std::string JsonValue::GetString(std::string_view key, std::string def) const {
  const JsonValue* v = Get(key);
  if (v == nullptr || !v->is_string()) return def;
  return v->string_value;
}

StatusOr<JsonValue> ParseJson(std::string_view text, const JsonLimits& limits) {
  DomParser dom(text, limits);
  JsonValue root;
  SSDB_RETURN_IF_ERROR(dom.ParseValue(&root, 0));
  SSDB_RETURN_IF_ERROR(dom.Finish());
  return root;
}

}  // namespace ssdb
