// Bit-level packing of small unsigned integers into a byte buffer.
//
// Polynomials over GF(q) are stored as q-1 coefficients of ceil(log2 q) bits
// each — the paper's "(p^e - 1) * log2(p^e) bits" storage cost. BitWriter /
// BitReader implement the little-endian bit stream used for that encoding.

#ifndef SSDB_UTIL_BITPACK_H_
#define SSDB_UTIL_BITPACK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace ssdb {

// Number of bits needed to represent values in [0, n-1]; BitWidth(1) == 1.
int BitWidth(uint64_t n);

class BitWriter {
 public:
  BitWriter() = default;

  // Appends the low `bits` bits of `value` (1 <= bits <= 57).
  void Write(uint64_t value, int bits);

  // Flushes pending bits and returns the packed buffer.
  std::string Finish();

  // Total bits written so far.
  size_t bit_count() const { return bit_count_; }

 private:
  std::string bytes_;
  uint64_t pending_ = 0;  // bits not yet flushed, little-endian
  int pending_bits_ = 0;
  size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  // Reads `bits` bits (1 <= bits <= 57) into *value. Fails with OutOfRange
  // when the buffer is exhausted.
  Status Read(int bits, uint64_t* value);

  // Bits remaining in the buffer.
  size_t remaining_bits() const { return data_.size() * 8 - bit_pos_; }

 private:
  std::string_view data_;
  size_t bit_pos_ = 0;
};

// Convenience: packs `values`, each `bits` wide. Inverse of UnpackVector.
std::string PackVector(const std::vector<uint32_t>& values, int bits);

// Unpacks `count` values of `bits` bits each from `data`.
StatusOr<std::vector<uint32_t>> UnpackVector(std::string_view data, int bits,
                                             size_t count);

}  // namespace ssdb

#endif  // SSDB_UTIL_BITPACK_H_
