// Wall-clock stopwatch for the experiment harnesses.

#ifndef SSDB_UTIL_STOPWATCH_H_
#define SSDB_UTIL_STOPWATCH_H_

#include <chrono>

namespace ssdb {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ssdb

#endif  // SSDB_UTIL_STOPWATCH_H_
