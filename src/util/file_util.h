// Whole-file IO helpers and a temporary-directory guard for tests.

#ifndef SSDB_UTIL_FILE_UTIL_H_
#define SSDB_UTIL_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace ssdb {

// Reads an entire file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Writes (creating or truncating) a whole file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

// True if the path exists.
bool FileExists(const std::string& path);

// Size in bytes, or error.
StatusOr<uint64_t> FileSize(const std::string& path);

// Removes a file if present (missing file is not an error).
Status RemoveFileIfExists(const std::string& path);

// Creates a unique temporary directory under /tmp and removes it (recursively)
// on destruction. Used by storage/integration tests.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "ssdb");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string FilePath(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace ssdb

#endif  // SSDB_UTIL_FILE_UTIL_H_
