// Minimal logging and assertion macros (glog-flavoured).
//
//   SSDB_LOG(INFO) << "encoded " << n << " nodes";
//   SSDB_CHECK(x > 0) << "x must be positive, got " << x;
//   SSDB_CHECK_EQ(a, b);
//
// CHECK failures print the message and abort. DCHECK compiles out in
// release builds (NDEBUG).

#ifndef SSDB_UTIL_LOGGING_H_
#define SSDB_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ssdb {
namespace logging_internal {

enum class Severity { kInfo, kWarning, kError, kFatal };

class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  Severity severity_;
  std::ostringstream stream_;
};

// Swallows streamed messages; keeps DCHECK expressions compiling in release.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Converts a streamed LogMessage to void so it can sit in a ternary.
struct Voidify {
  void operator&(std::ostream&) {}
};

// Global switch used by tests/benches to silence INFO logs.
void SetMinLogSeverity(Severity severity);
Severity MinLogSeverity();

}  // namespace logging_internal

#define SSDB_LOG_INFO \
  ::ssdb::logging_internal::LogMessage( \
      ::ssdb::logging_internal::Severity::kInfo, __FILE__, __LINE__) \
      .stream()
#define SSDB_LOG_WARNING \
  ::ssdb::logging_internal::LogMessage( \
      ::ssdb::logging_internal::Severity::kWarning, __FILE__, __LINE__) \
      .stream()
#define SSDB_LOG_ERROR \
  ::ssdb::logging_internal::LogMessage( \
      ::ssdb::logging_internal::Severity::kError, __FILE__, __LINE__) \
      .stream()
#define SSDB_LOG_FATAL \
  ::ssdb::logging_internal::LogMessage( \
      ::ssdb::logging_internal::Severity::kFatal, __FILE__, __LINE__) \
      .stream()

#define SSDB_LOG(severity) SSDB_LOG_##severity

#define SSDB_CHECK(cond)                                          \
  (cond) ? (void)0                                                \
         : ::ssdb::logging_internal::Voidify() &                  \
               ::ssdb::logging_internal::LogMessage(              \
                   ::ssdb::logging_internal::Severity::kFatal,    \
                   __FILE__, __LINE__)                            \
                   .stream()                                      \
               << "Check failed: " #cond " "

#define SSDB_CHECK_EQ(a, b) SSDB_CHECK((a) == (b))
#define SSDB_CHECK_NE(a, b) SSDB_CHECK((a) != (b))
#define SSDB_CHECK_LT(a, b) SSDB_CHECK((a) < (b))
#define SSDB_CHECK_LE(a, b) SSDB_CHECK((a) <= (b))
#define SSDB_CHECK_GT(a, b) SSDB_CHECK((a) > (b))
#define SSDB_CHECK_GE(a, b) SSDB_CHECK((a) >= (b))
#define SSDB_CHECK_OK(expr)                                      \
  do {                                                           \
    const auto& _ssdb_s = (expr);                                \
    SSDB_CHECK(_ssdb_s.ok()) << _ssdb_s.ToString();              \
  } while (0)

#ifdef NDEBUG
#define SSDB_DCHECK(cond) \
  while (false) ::ssdb::logging_internal::NullStream()
#else
#define SSDB_DCHECK(cond) SSDB_CHECK(cond)
#endif

}  // namespace ssdb

#endif  // SSDB_UTIL_LOGGING_H_
