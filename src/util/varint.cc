#include "util/varint.h"

namespace ssdb {

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutVarintSigned64(std::string* dst, int64_t value) {
  // Zigzag: maps small-magnitude signed values to small unsigned ones.
  uint64_t encoded =
      (static_cast<uint64_t>(value) << 1) ^
      static_cast<uint64_t>(value >> 63);
  PutVarint64(dst, encoded);
}

void PutFixed32(std::string* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutFixed64(std::string* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("malformed varint64");
}

Status GetVarintSigned64(std::string_view* input, int64_t* value) {
  uint64_t encoded = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(input, &encoded));
  *value = static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
  return Status::OK();
}

Status GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  uint32_t result = 0;
  for (int i = 0; i < 4; ++i) {
    result |= static_cast<uint32_t>(static_cast<uint8_t>((*input)[i]))
              << (8 * i);
  }
  input->remove_prefix(4);
  *value = result;
  return Status::OK();
}

Status GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<uint64_t>(static_cast<uint8_t>((*input)[i]))
              << (8 * i);
  }
  input->remove_prefix(8);
  *value = result;
  return Status::OK();
}

Status GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed string");
  }
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return Status::OK();
}

}  // namespace ssdb
