// Status: lightweight error propagation in the style of RocksDB/Abseil.
// Library code never throws; every fallible operation returns a Status or a
// StatusOr<T> (see util/statusor.h).

#ifndef SSDB_UTIL_STATUS_H_
#define SSDB_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ssdb {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kFailedPrecondition = 6,
  kOutOfRange = 7,
  kUnimplemented = 8,
  kInternal = 9,
  // A backend is known-unreachable (health monitor says down, or a dial
  // failed); retrying later may succeed. DESIGN.md §11.
  kUnavailable = 10,
};

// Human-readable name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  // Default construction yields OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

// Propagates a non-OK status to the caller.
#define SSDB_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::ssdb::Status _ssdb_status = (expr);           \
    if (!_ssdb_status.ok()) return _ssdb_status;    \
  } while (0)

// Evaluates a StatusOr expression, assigning the value or returning the error.
#define SSDB_ASSIGN_OR_RETURN(lhs, expr)            \
  SSDB_ASSIGN_OR_RETURN_IMPL_(                      \
      SSDB_STATUS_CONCAT_(_ssdb_statusor, __LINE__), lhs, expr)

#define SSDB_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value();

#define SSDB_STATUS_CONCAT_(a, b) SSDB_STATUS_CONCAT_IMPL_(a, b)
#define SSDB_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace ssdb

#endif  // SSDB_UTIL_STATUS_H_
