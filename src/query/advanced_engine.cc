#include "query/advanced_engine.h"

#include "util/stopwatch.h"

namespace ssdb::query {

using filter::NodeMeta;

StatusOr<std::vector<NodeMeta>> AdvancedEngine::Execute(const Query& query,
                                                        MatchMode mode,
                                                        QueryStats* stats) {
  Stopwatch watch;
  filter::EvalStats before = filter_->stats();

  SSDB_ASSIGN_OR_RETURN(NodeMeta root, filter_->Root());
  SSDB_ASSIGN_OR_RETURN(
      std::vector<NodeMeta> result,
      RunSteps(query.steps, {root}, /*from_document_root=*/true, mode,
               stats));

  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
    stats->result_size = result.size();
    internal::FillStatsDelta(before, filter_->stats(), stats);
  }
  return result;
}

std::vector<gf::Elem> AdvancedEngine::LookaheadValues(
    const std::vector<Step>& steps, size_t from, bool* absent_name) const {
  std::vector<gf::Elem> values;
  *absent_name = false;
  for (size_t i = from; i < steps.size(); ++i) {
    const Step& step = steps[i];
    if (step.kind == Step::Kind::kParent) break;  // pruning unsound past '..'
    if (step.kind != Step::Kind::kName) continue;
    StatusOr<gf::Elem> value = map_->Lookup(step.name);
    if (!value.ok()) {
      *absent_name = true;
      return values;
    }
    values.push_back(*value);
  }
  return values;
}

StatusOr<bool> AdvancedEngine::ContainsAll(
    const NodeMeta& node, const std::vector<gf::Elem>& values) {
  // One batched exchange for the whole look-ahead set (k evaluations, one
  // server call) — the chatty alternative is measured in bench_rpc.
  return filter_->ContainsAllValues(node, values);
}

StatusOr<std::vector<NodeMeta>> AdvancedEngine::FilterByLookahead(
    std::vector<NodeMeta> nodes, const std::vector<gf::Elem>& values) {
  if (nodes.empty() || values.empty()) return nodes;
  SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                        filter_->ContainsAllValuesBatch(nodes, values));
  return internal::ApplyMask(std::move(nodes), mask);
}

StatusOr<std::vector<NodeMeta>> AdvancedEngine::RunSteps(
    const std::vector<Step>& steps, std::vector<NodeMeta> candidates,
    bool from_document_root, MatchMode mode, QueryStats* stats) {
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    bool first = (i == 0);

    // The look-ahead: values of every later named step. `lookahead_rest`
    // excludes the current step.
    bool absent = false;
    std::vector<gf::Elem> lookahead_rest = LookaheadValues(steps, i + 1,
                                                           &absent);
    if (absent) return std::vector<NodeMeta>{};

    if (step.kind == Step::Kind::kParent) {
      std::vector<NodeMeta> parents;
      for (const NodeMeta& node : candidates) {
        StatusOr<NodeMeta> parent = filter_->Parent(node);
        if (parent.ok()) parents.push_back(*parent);
      }
      internal::Canonicalize(&parents);
      candidates = std::move(parents);
      continue;
    }

    gf::Elem value = 0;
    if (step.kind == Step::Kind::kName) {
      StatusOr<gf::Elem> mapped = map_->Lookup(step.name);
      if (!mapped.ok()) return std::vector<NodeMeta>{};
      value = *mapped;
    }

    std::vector<NodeMeta> next;
    if (step.axis == Step::Axis::kChild) {
      // Step-level batching: expand the whole candidate set in one
      // exchange, name-test the pool in one batch, then apply the
      // look-ahead to the survivors (one exchange per remaining value).
      std::vector<NodeMeta> pool;
      if (first && from_document_root) {
        // The root is the document node's only child: test it in place.
        pool = candidates;
      } else {
        SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<NodeMeta>> child_lists,
                              filter_->ChildrenBatch(candidates));
        for (std::vector<NodeMeta>& children : child_lists) {
          pool.insert(pool.end(), children.begin(), children.end());
        }
      }
      if (stats != nullptr) stats->candidates_examined += pool.size();
      if (step.kind == Step::Kind::kName) {
        SSDB_ASSIGN_OR_RETURN(
            pool, internal::TestNodes(filter_, std::move(pool), value, mode));
      }
      SSDB_ASSIGN_OR_RETURN(
          next, FilterByLookahead(std::move(pool), lookahead_rest));
    } else if (step.kind == Step::Kind::kWildcard) {
      // No tag to prune on: expand all descendants (plus the node itself
      // when stepping from the virtual document node, whose descendants
      // include the root), filter by look-ahead in one batch.
      std::vector<NodeMeta> pool;
      if (first && from_document_root) {
        pool = candidates;
      }
      for (const NodeMeta& node : candidates) {
        SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> descendants,
                              filter_->Descendants(node));
        pool.insert(pool.end(), descendants.begin(), descendants.end());
      }
      internal::Canonicalize(&pool);
      if (stats != nullptr) stats->candidates_examined += pool.size();
      SSDB_ASSIGN_OR_RETURN(
          next, FilterByLookahead(std::move(pool), lookahead_rest));
    } else {
      // Named descendant step: pruned level-order search.
      if (first && from_document_root) {
        // '//x' from the document node may match the root itself. One
        // containment batch serves both the self-test and root pruning.
        if (stats != nullptr) stats->candidates_examined += candidates.size();
        SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                              filter_->ContainsValueBatch(candidates, value));
        std::vector<NodeMeta> roots =
            internal::ApplyMask(std::move(candidates), mask);
        SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> self_matches,
                              FilterByLookahead(roots, lookahead_rest));
        if (mode == MatchMode::kEquality && !self_matches.empty()) {
          SSDB_ASSIGN_OR_RETURN(
              std::vector<uint8_t> eq_mask,
              filter_->EqualsValueBatch(self_matches, value));
          self_matches =
              internal::ApplyMask(std::move(self_matches), eq_mask);
        }
        next.insert(next.end(), self_matches.begin(), self_matches.end());
        SSDB_RETURN_IF_ERROR(DescendantSearch(roots, value, lookahead_rest,
                                              mode, stats, &next));
      } else {
        SSDB_RETURN_IF_ERROR(DescendantSearch(candidates, value,
                                              lookahead_rest, mode, stats,
                                              &next));
      }
    }
    internal::Canonicalize(&next);

    // Predicate filtering (relative sub-path existence).
    if (!step.predicate.empty()) {
      std::vector<NodeMeta> kept;
      for (const NodeMeta& node : next) {
        SSDB_ASSIGN_OR_RETURN(
            std::vector<NodeMeta> sub,
            RunSteps(step.predicate, {node}, /*from_document_root=*/false,
                     mode, stats));
        if (!sub.empty()) kept.push_back(node);
      }
      next = std::move(kept);
    }

    candidates = std::move(next);
    if (candidates.empty()) break;
  }
  return candidates;
}

Status AdvancedEngine::DescendantSearch(
    const std::vector<NodeMeta>& roots, gf::Elem value,
    const std::vector<gf::Elem>& lookahead, MatchMode mode,
    QueryStats* stats, std::vector<NodeMeta>* out) {
  // Walk downwards level by level while subtrees still contain `value`
  // (§5.3 "//city"). Each level is three batched exchanges — children,
  // containment, look-ahead (plus equality in strict mode) — so the cost in
  // round trips is bounded by the tree depth, never the branch count.
  std::vector<NodeMeta> frontier = roots;
  internal::Canonicalize(&frontier);
  while (!frontier.empty()) {
    SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<NodeMeta>> child_lists,
                          filter_->ChildrenBatch(frontier));
    std::vector<NodeMeta> level;
    for (std::vector<NodeMeta>& children : child_lists) {
      level.insert(level.end(), children.begin(), children.end());
    }
    internal::Canonicalize(&level);
    if (level.empty()) break;
    if (stats != nullptr) stats->candidates_examined += level.size();

    // Prune dead branches: only children whose subtree still contains the
    // value survive (and only they are descended into).
    SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> contains_mask,
                          filter_->ContainsValueBatch(level, value));
    std::vector<NodeMeta> survivors =
        internal::ApplyMask(std::move(level), contains_mask);

    // Matches at this level: survivors that can also complete the rest of
    // the query (and, in strict mode, whose own tag is the value).
    SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> matches,
                          FilterByLookahead(survivors, lookahead));
    if (mode == MatchMode::kEquality && !matches.empty()) {
      SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> eq_mask,
                            filter_->EqualsValueBatch(matches, value));
      matches = internal::ApplyMask(std::move(matches), eq_mask);
    }
    out->insert(out->end(), matches.begin(), matches.end());

    frontier = std::move(survivors);
  }
  return Status::OK();
}

}  // namespace ssdb::query
