#include "query/advanced_engine.h"

#include "util/stopwatch.h"

namespace ssdb::query {

using filter::NodeMeta;

StatusOr<std::vector<NodeMeta>> AdvancedEngine::Execute(const Query& query,
                                                        MatchMode mode,
                                                        QueryStats* stats) {
  Stopwatch watch;
  filter::EvalStats before = filter_->stats();

  SSDB_ASSIGN_OR_RETURN(NodeMeta root, filter_->Root());
  SSDB_ASSIGN_OR_RETURN(
      std::vector<NodeMeta> result,
      RunSteps(query.steps, {root}, /*from_document_root=*/true, mode,
               stats));

  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
    stats->result_size = result.size();
    filter::EvalStats after = filter_->stats();
    stats->eval.evaluations = after.evaluations - before.evaluations;
    stats->eval.containment_tests =
        after.containment_tests - before.containment_tests;
    stats->eval.equality_tests = after.equality_tests - before.equality_tests;
    stats->eval.shares_fetched = after.shares_fetched - before.shares_fetched;
    stats->eval.nodes_visited = after.nodes_visited - before.nodes_visited;
    stats->eval.server_calls = after.server_calls - before.server_calls;
  }
  return result;
}

std::vector<gf::Elem> AdvancedEngine::LookaheadValues(
    const std::vector<Step>& steps, size_t from, bool* absent_name) const {
  std::vector<gf::Elem> values;
  *absent_name = false;
  for (size_t i = from; i < steps.size(); ++i) {
    const Step& step = steps[i];
    if (step.kind == Step::Kind::kParent) break;  // pruning unsound past '..'
    if (step.kind != Step::Kind::kName) continue;
    StatusOr<gf::Elem> value = map_->Lookup(step.name);
    if (!value.ok()) {
      *absent_name = true;
      return values;
    }
    values.push_back(*value);
  }
  return values;
}

StatusOr<bool> AdvancedEngine::ContainsAll(
    const NodeMeta& node, const std::vector<gf::Elem>& values) {
  // One batched exchange for the whole look-ahead set (k evaluations, one
  // server call) — the chatty alternative is measured in bench_rpc.
  return filter_->ContainsAllValues(node, values);
}

StatusOr<std::vector<NodeMeta>> AdvancedEngine::RunSteps(
    const std::vector<Step>& steps, std::vector<NodeMeta> candidates,
    bool from_document_root, MatchMode mode, QueryStats* stats) {
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    bool first = (i == 0);

    // The look-ahead: values of the current step's name (if any) and every
    // later named step. `lookahead_rest` excludes the current step.
    bool absent = false;
    std::vector<gf::Elem> lookahead_rest = LookaheadValues(steps, i + 1,
                                                           &absent);
    if (absent) return std::vector<NodeMeta>{};

    if (step.kind == Step::Kind::kParent) {
      std::vector<NodeMeta> parents;
      for (const NodeMeta& node : candidates) {
        StatusOr<NodeMeta> parent = filter_->Parent(node);
        if (parent.ok()) parents.push_back(*parent);
      }
      internal::Canonicalize(&parents);
      candidates = std::move(parents);
      continue;
    }

    gf::Elem value = 0;
    if (step.kind == Step::Kind::kName) {
      StatusOr<gf::Elem> mapped = map_->Lookup(step.name);
      if (!mapped.ok()) return std::vector<NodeMeta>{};
      value = *mapped;
    }

    std::vector<NodeMeta> next;
    if (first && from_document_root && step.axis == Step::Axis::kChild) {
      // The root is the document node's only child: test it in place.
      for (const NodeMeta& node : candidates) {
        if (stats != nullptr) ++stats->candidates_examined;
        if (step.kind == Step::Kind::kName) {
          SSDB_ASSIGN_OR_RETURN(bool pass,
                                internal::TestNode(filter_, node, value,
                                                   mode));
          if (!pass) continue;
          SSDB_ASSIGN_OR_RETURN(bool future, ContainsAll(node,
                                                         lookahead_rest));
          if (!future) continue;
        } else {
          SSDB_ASSIGN_OR_RETURN(bool future, ContainsAll(node,
                                                         lookahead_rest));
          if (!future) continue;
        }
        next.push_back(node);
      }
    } else if (step.axis == Step::Axis::kChild) {
      for (const NodeMeta& node : candidates) {
        SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> children,
                              filter_->Children(node));
        for (const NodeMeta& child : children) {
          if (stats != nullptr) ++stats->candidates_examined;
          if (step.kind == Step::Kind::kName) {
            SSDB_ASSIGN_OR_RETURN(
                bool pass, internal::TestNode(filter_, child, value, mode));
            if (!pass) continue;
          }
          SSDB_ASSIGN_OR_RETURN(bool future,
                                ContainsAll(child, lookahead_rest));
          if (!future) continue;
          next.push_back(child);
        }
      }
    } else {
      // Descendant step: pruned DFS. kWildcard with '//' degenerates to
      // "all descendants that can still complete the query".
      for (const NodeMeta& node : candidates) {
        if (first && from_document_root &&
            step.kind == Step::Kind::kName) {
          // '//x' from the document node may match the root itself.
          if (stats != nullptr) ++stats->candidates_examined;
          SSDB_ASSIGN_OR_RETURN(bool self_contains,
                                filter_->ContainsValue(node, value));
          if (self_contains) {
            SSDB_ASSIGN_OR_RETURN(bool future,
                                  ContainsAll(node, lookahead_rest));
            if (future) {
              if (mode == MatchMode::kContainment) {
                next.push_back(node);
              } else {
                SSDB_ASSIGN_OR_RETURN(bool self_is,
                                      filter_->EqualsValue(node, value));
                if (self_is) next.push_back(node);
              }
            }
            SSDB_RETURN_IF_ERROR(DescendantSearch(
                node, value, lookahead_rest, mode, stats, &next));
          }
          continue;
        }
        if (step.kind == Step::Kind::kWildcard) {
          // No tag to prune on: expand all descendants (plus the node
          // itself when stepping from the virtual document node, whose
          // descendants include the root), filter by look-ahead.
          if (first && from_document_root) {
            if (stats != nullptr) ++stats->candidates_examined;
            SSDB_ASSIGN_OR_RETURN(bool self_future,
                                  ContainsAll(node, lookahead_rest));
            if (self_future) next.push_back(node);
          }
          SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> descendants,
                                filter_->Descendants(node));
          for (const NodeMeta& d : descendants) {
            if (stats != nullptr) ++stats->candidates_examined;
            SSDB_ASSIGN_OR_RETURN(bool future,
                                  ContainsAll(d, lookahead_rest));
            if (future) next.push_back(d);
          }
          continue;
        }
        SSDB_RETURN_IF_ERROR(DescendantSearch(node, value, lookahead_rest,
                                              mode, stats, &next));
      }
    }
    internal::Canonicalize(&next);

    // Predicate filtering (relative sub-path existence).
    if (!step.predicate.empty()) {
      std::vector<NodeMeta> kept;
      for (const NodeMeta& node : next) {
        SSDB_ASSIGN_OR_RETURN(
            std::vector<NodeMeta> sub,
            RunSteps(step.predicate, {node}, /*from_document_root=*/false,
                     mode, stats));
        if (!sub.empty()) kept.push_back(node);
      }
      next = std::move(kept);
    }

    candidates = std::move(next);
    if (candidates.empty()) break;
  }
  return candidates;
}

Status AdvancedEngine::DescendantSearch(
    const NodeMeta& node, gf::Elem value,
    const std::vector<gf::Elem>& lookahead, MatchMode mode,
    QueryStats* stats, std::vector<NodeMeta>* out) {
  // Walk downwards while the subtree still contains `value` (§5.3 "//city").
  SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> children,
                        filter_->Children(node));
  for (const NodeMeta& child : children) {
    if (stats != nullptr) ++stats->candidates_examined;
    SSDB_ASSIGN_OR_RETURN(bool contains,
                          filter_->ContainsValue(child, value));
    if (!contains) continue;  // dead branch
    SSDB_ASSIGN_OR_RETURN(bool future, ContainsAll(child, lookahead));
    if (future) {
      if (mode == MatchMode::kContainment) {
        out->push_back(child);
      } else {
        SSDB_ASSIGN_OR_RETURN(bool is_match,
                              filter_->EqualsValue(child, value));
        if (is_match) out->push_back(child);
      }
    }
    SSDB_RETURN_IF_ERROR(
        DescendantSearch(child, value, lookahead, mode, stats, out));
  }
  return Status::OK();
}

}  // namespace ssdb::query
