// SimpleQuery (§5.3): parses the query left to right; each step expands the
// candidate set structurally (children / descendants) and filters with a
// single test per candidate at the current step's mapped tag value. No
// look-ahead.

#ifndef SSDB_QUERY_SIMPLE_ENGINE_H_
#define SSDB_QUERY_SIMPLE_ENGINE_H_

#include "query/engine.h"

namespace ssdb::query {

class SimpleEngine : public QueryEngine {
 public:
  // Both must outlive the engine.
  SimpleEngine(filter::ClientFilter* filter, const mapping::TagMap* map)
      : filter_(filter), map_(map) {}

  std::string_view name() const override { return "simple"; }

  StatusOr<std::vector<filter::NodeMeta>> Execute(const Query& query,
                                                  MatchMode mode,
                                                  QueryStats* stats) override;

 private:
  StatusOr<std::vector<filter::NodeMeta>> RunSteps(
      const std::vector<Step>& steps,
      std::vector<filter::NodeMeta> candidates, bool from_document_root,
      MatchMode mode, QueryStats* stats);

  filter::ClientFilter* filter_;
  const mapping::TagMap* map_;
};

}  // namespace ssdb::query

#endif  // SSDB_QUERY_SIMPLE_ENGINE_H_
