#include "query/engine.h"

#include <algorithm>

namespace ssdb::query {

std::string_view MatchModeName(MatchMode mode) {
  return mode == MatchMode::kContainment ? "non-strict" : "strict";
}

namespace internal {

void Canonicalize(std::vector<filter::NodeMeta>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const filter::NodeMeta& a, const filter::NodeMeta& b) {
              return a.pre < b.pre;
            });
  nodes->erase(std::unique(nodes->begin(), nodes->end(),
                           [](const filter::NodeMeta& a,
                              const filter::NodeMeta& b) {
                             return a.pre == b.pre;
                           }),
               nodes->end());
}

StatusOr<bool> TestNode(filter::ClientFilter* filter,
                        const filter::NodeMeta& node, gf::Elem value,
                        MatchMode mode) {
  if (mode == MatchMode::kContainment) {
    return filter->ContainsValue(node, value);
  }
  return filter->EqualsValue(node, value);
}

}  // namespace internal
}  // namespace ssdb::query
