#include "query/engine.h"

#include <algorithm>

namespace ssdb::query {

std::string_view MatchModeName(MatchMode mode) {
  return mode == MatchMode::kContainment ? "non-strict" : "strict";
}

namespace internal {

void Canonicalize(std::vector<filter::NodeMeta>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const filter::NodeMeta& a, const filter::NodeMeta& b) {
              return a.pre < b.pre;
            });
  nodes->erase(std::unique(nodes->begin(), nodes->end(),
                           [](const filter::NodeMeta& a,
                              const filter::NodeMeta& b) {
                             return a.pre == b.pre;
                           }),
               nodes->end());
}

StatusOr<std::vector<filter::NodeMeta>> TestNodes(
    filter::ClientFilter* filter, std::vector<filter::NodeMeta> nodes,
    gf::Elem value, MatchMode mode) {
  if (nodes.empty()) return nodes;
  std::vector<uint8_t> mask;
  if (mode == MatchMode::kContainment) {
    SSDB_ASSIGN_OR_RETURN(mask, filter->ContainsValueBatch(nodes, value));
  } else {
    SSDB_ASSIGN_OR_RETURN(mask, filter->EqualsValueBatch(nodes, value));
  }
  return ApplyMask(std::move(nodes), mask);
}

StatusOr<bool> TestNode(filter::ClientFilter* filter,
                        const filter::NodeMeta& node, gf::Elem value,
                        MatchMode mode) {
  if (mode == MatchMode::kContainment) {
    return filter->ContainsValue(node, value);
  }
  return filter->EqualsValue(node, value);
}

std::vector<filter::NodeMeta> ApplyMask(std::vector<filter::NodeMeta> nodes,
                                        const std::vector<uint8_t>& mask) {
  std::vector<filter::NodeMeta> kept;
  kept.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size() && i < mask.size(); ++i) {
    if (mask[i]) kept.push_back(nodes[i]);
  }
  return kept;
}

void FillStatsDelta(const filter::EvalStats& before,
                    const filter::EvalStats& after, QueryStats* stats) {
  stats->eval.evaluations = after.evaluations - before.evaluations;
  stats->eval.containment_tests =
      after.containment_tests - before.containment_tests;
  stats->eval.equality_tests = after.equality_tests - before.equality_tests;
  stats->eval.shares_fetched = after.shares_fetched - before.shares_fetched;
  stats->eval.nodes_visited = after.nodes_visited - before.nodes_visited;
  stats->eval.server_calls = after.server_calls - before.server_calls;
  stats->eval.round_trips = after.round_trips - before.round_trips;
  stats->eval.batched_evaluations =
      after.batched_evaluations - before.batched_evaluations;
  stats->eval.aggregate_ops = after.aggregate_ops - before.aggregate_ops;
  stats->eval.verified_aggregate_ops =
      after.verified_aggregate_ops - before.verified_aggregate_ops;
  stats->eval.proof_words = after.proof_words - before.proof_words;
  stats->eval.straggler_seconds =
      after.straggler_seconds - before.straggler_seconds;
  stats->eval.per_server_round_trips.assign(
      after.per_server_round_trips.size(), 0);
  for (size_t i = 0; i < after.per_server_round_trips.size(); ++i) {
    uint64_t prior = i < before.per_server_round_trips.size()
                         ? before.per_server_round_trips[i]
                         : 0;
    stats->eval.per_server_round_trips[i] =
        after.per_server_round_trips[i] - prior;
  }
}

}  // namespace internal
}  // namespace ssdb::query
