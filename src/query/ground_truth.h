// Plaintext reference evaluator: runs the same XPath subset over a DOM with
// exact name matching. This is the baseline E for the fig. 7 accuracy
// experiment (E/C) and the oracle against which the strict engines are
// verified (they must agree exactly).

#ifndef SSDB_QUERY_GROUND_TRUTH_H_
#define SSDB_QUERY_GROUND_TRUTH_H_

#include <vector>

#include "query/xpath.h"
#include "util/statusor.h"
#include "xml/dom.h"

namespace ssdb::query {

// Evaluates `query` on `doc` (must be AnnotatePrePost'ed) and returns the
// matching nodes' pre numbers in document order.
StatusOr<std::vector<uint32_t>> EvaluateGroundTruth(const Query& query,
                                                    const xml::Document& doc);

}  // namespace ssdb::query

#endif  // SSDB_QUERY_GROUND_TRUTH_H_
