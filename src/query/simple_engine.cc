#include "query/simple_engine.h"

#include "util/stopwatch.h"

namespace ssdb::query {

using filter::NodeMeta;

StatusOr<std::vector<NodeMeta>> SimpleEngine::Execute(const Query& query,
                                                      MatchMode mode,
                                                      QueryStats* stats) {
  Stopwatch watch;
  filter::EvalStats before = filter_->stats();

  SSDB_ASSIGN_OR_RETURN(NodeMeta root, filter_->Root());
  // Steps run from the virtual document node, whose only child is the root.
  SSDB_ASSIGN_OR_RETURN(
      std::vector<NodeMeta> result,
      RunSteps(query.steps, {root}, /*from_document_root=*/true, mode,
               stats));

  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
    stats->result_size = result.size();
    // Delta of the filter's counters over this query.
    internal::FillStatsDelta(before, filter_->stats(), stats);
  }
  return result;
}

StatusOr<std::vector<NodeMeta>> SimpleEngine::RunSteps(
    const std::vector<Step>& steps, std::vector<NodeMeta> candidates,
    bool from_document_root, MatchMode mode, QueryStats* stats) {
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    bool first = (i == 0);

    // 1. Structural expansion.
    std::vector<NodeMeta> expanded;
    if (step.kind == Step::Kind::kParent) {
      for (const NodeMeta& node : candidates) {
        StatusOr<NodeMeta> parent = filter_->Parent(node);
        if (parent.ok()) expanded.push_back(*parent);
        // Root has no parent: it simply drops out.
      }
      internal::Canonicalize(&expanded);
      candidates = std::move(expanded);
      continue;  // no name filtering on '..'
    }
    if (first && from_document_root) {
      // From the virtual document node: '/x' sees only the root as a child;
      // '//x' sees the root and everything below it.
      if (step.axis == Step::Axis::kChild) {
        expanded = candidates;
      } else {
        expanded = candidates;  // the root itself ...
        for (const NodeMeta& node : candidates) {
          SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> descendants,
                                filter_->Descendants(node));
          expanded.insert(expanded.end(), descendants.begin(),
                          descendants.end());
        }
      }
    } else if (step.axis == Step::Axis::kChild) {
      // One exchange expands the whole candidate set.
      SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<NodeMeta>> child_lists,
                            filter_->ChildrenBatch(candidates));
      for (std::vector<NodeMeta>& children : child_lists) {
        expanded.insert(expanded.end(), children.begin(), children.end());
      }
    } else {
      for (const NodeMeta& node : candidates) {
        SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> descendants,
                              filter_->Descendants(node));
        expanded.insert(expanded.end(), descendants.begin(),
                        descendants.end());
      }
    }
    internal::Canonicalize(&expanded);
    if (stats != nullptr) stats->candidates_examined += expanded.size();

    // 2. Name filtering: one test per candidate (§5.3 SimpleQuery), issued
    // as a single step-level batch — one server exchange for the whole set.
    std::vector<NodeMeta> filtered;
    if (step.kind == Step::Kind::kWildcard) {
      filtered = std::move(expanded);
    } else {
      StatusOr<gf::Elem> value = map_->Lookup(step.name);
      if (!value.ok()) {
        // A name outside the map can never match (the map covers the DTD).
        candidates.clear();
        return candidates;
      }
      SSDB_ASSIGN_OR_RETURN(
          filtered,
          internal::TestNodes(filter_, std::move(expanded), *value, mode));
    }

    // 3. Predicate filtering (existence of the relative sub-path).
    if (!step.predicate.empty()) {
      std::vector<NodeMeta> kept;
      for (const NodeMeta& node : filtered) {
        SSDB_ASSIGN_OR_RETURN(
            std::vector<NodeMeta> sub,
            RunSteps(step.predicate, {node}, /*from_document_root=*/false,
                     mode, stats));
        if (!sub.empty()) kept.push_back(node);
      }
      filtered = std::move(kept);
    }

    candidates = std::move(filtered);
    if (candidates.empty()) break;
  }
  return candidates;
}

}  // namespace ssdb::query
