#include "query/simple_engine.h"

#include "util/stopwatch.h"

namespace ssdb::query {

using filter::NodeMeta;

StatusOr<std::vector<NodeMeta>> SimpleEngine::Execute(const Query& query,
                                                      MatchMode mode,
                                                      QueryStats* stats) {
  Stopwatch watch;
  filter::EvalStats before = filter_->stats();

  SSDB_ASSIGN_OR_RETURN(NodeMeta root, filter_->Root());
  // Steps run from the virtual document node, whose only child is the root.
  SSDB_ASSIGN_OR_RETURN(
      std::vector<NodeMeta> result,
      RunSteps(query.steps, {root}, /*from_document_root=*/true, mode,
               stats));

  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
    stats->result_size = result.size();
    // Delta of the filter's counters over this query.
    filter::EvalStats after = filter_->stats();
    stats->eval.evaluations = after.evaluations - before.evaluations;
    stats->eval.containment_tests =
        after.containment_tests - before.containment_tests;
    stats->eval.equality_tests = after.equality_tests - before.equality_tests;
    stats->eval.shares_fetched = after.shares_fetched - before.shares_fetched;
    stats->eval.nodes_visited = after.nodes_visited - before.nodes_visited;
    stats->eval.server_calls = after.server_calls - before.server_calls;
  }
  return result;
}

StatusOr<std::vector<NodeMeta>> SimpleEngine::RunSteps(
    const std::vector<Step>& steps, std::vector<NodeMeta> candidates,
    bool from_document_root, MatchMode mode, QueryStats* stats) {
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    bool first = (i == 0);

    // 1. Structural expansion.
    std::vector<NodeMeta> expanded;
    if (step.kind == Step::Kind::kParent) {
      for (const NodeMeta& node : candidates) {
        StatusOr<NodeMeta> parent = filter_->Parent(node);
        if (parent.ok()) expanded.push_back(*parent);
        // Root has no parent: it simply drops out.
      }
      internal::Canonicalize(&expanded);
      candidates = std::move(expanded);
      continue;  // no name filtering on '..'
    }
    if (first && from_document_root) {
      // From the virtual document node: '/x' sees only the root as a child;
      // '//x' sees the root and everything below it.
      if (step.axis == Step::Axis::kChild) {
        expanded = candidates;
      } else {
        expanded = candidates;  // the root itself ...
        for (const NodeMeta& node : candidates) {
          SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> descendants,
                                filter_->Descendants(node));
          expanded.insert(expanded.end(), descendants.begin(),
                          descendants.end());
        }
      }
    } else if (step.axis == Step::Axis::kChild) {
      for (const NodeMeta& node : candidates) {
        SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> children,
                              filter_->Children(node));
        expanded.insert(expanded.end(), children.begin(), children.end());
      }
    } else {
      for (const NodeMeta& node : candidates) {
        SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> descendants,
                              filter_->Descendants(node));
        expanded.insert(expanded.end(), descendants.begin(),
                        descendants.end());
      }
    }
    internal::Canonicalize(&expanded);
    if (stats != nullptr) stats->candidates_examined += expanded.size();

    // 2. Name filtering: exactly one test per candidate (§5.3 SimpleQuery).
    std::vector<NodeMeta> filtered;
    if (step.kind == Step::Kind::kWildcard) {
      filtered = std::move(expanded);
    } else {
      StatusOr<gf::Elem> value = map_->Lookup(step.name);
      if (!value.ok()) {
        // A name outside the map can never match (the map covers the DTD).
        candidates.clear();
        return candidates;
      }
      for (const NodeMeta& node : expanded) {
        SSDB_ASSIGN_OR_RETURN(bool pass,
                              internal::TestNode(filter_, node, *value, mode));
        if (pass) filtered.push_back(node);
      }
    }

    // 3. Predicate filtering (existence of the relative sub-path).
    if (!step.predicate.empty()) {
      std::vector<NodeMeta> kept;
      for (const NodeMeta& node : filtered) {
        SSDB_ASSIGN_OR_RETURN(
            std::vector<NodeMeta> sub,
            RunSteps(step.predicate, {node}, /*from_document_root=*/false,
                     mode, stats));
        if (!sub.empty()) kept.push_back(node);
      }
      filtered = std::move(kept);
    }

    candidates = std::move(filtered);
    if (candidates.empty()) break;
  }
  return candidates;
}

}  // namespace ssdb::query
