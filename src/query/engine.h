// Common query-engine interface and shared machinery for the two search
// strategies of §5.3 (SimpleQuery and AdvancedQuery).
//
// MatchMode selects the §6.3 strictness:
//   kContainment (non-strict) — cheap subtree test; result is a superset.
//   kEquality    (strict)     — exact tag test via polynomial division.

#ifndef SSDB_QUERY_ENGINE_H_
#define SSDB_QUERY_ENGINE_H_

#include <string_view>
#include <vector>

#include "filter/client_filter.h"
#include "mapping/tag_map.h"
#include "query/xpath.h"
#include "util/statusor.h"

namespace ssdb::query {

enum class MatchMode {
  kContainment,  // non-strict
  kEquality,     // strict
};

std::string_view MatchModeName(MatchMode mode);

struct QueryStats {
  filter::EvalStats eval;          // delta over the query's execution
  uint64_t result_size = 0;
  uint64_t candidates_examined = 0;
  double seconds = 0.0;
};

class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  virtual std::string_view name() const = 0;

  // Runs an absolute query; the result is the candidate set after the final
  // step, sorted by pre. `stats` may be null.
  virtual StatusOr<std::vector<filter::NodeMeta>> Execute(
      const Query& query, MatchMode mode, QueryStats* stats) = 0;
};

namespace internal {

// Sorts by pre and removes duplicates.
void Canonicalize(std::vector<filter::NodeMeta>* nodes);

// Filters a whole candidate set against a mapped tag value under the given
// mode — the step-level primitive of the batched pipeline: one joint server
// exchange for containment, two for equality, independent of the number of
// candidates.
StatusOr<std::vector<filter::NodeMeta>> TestNodes(
    filter::ClientFilter* filter, std::vector<filter::NodeMeta> nodes,
    gf::Elem value, MatchMode mode);

// Tests one node against a mapped tag value under the given mode (wrapper
// over TestNodes for diagnostics and tests).
StatusOr<bool> TestNode(filter::ClientFilter* filter,
                        const filter::NodeMeta& node, gf::Elem value,
                        MatchMode mode);

// Keeps nodes[i] iff mask[i] != 0.
std::vector<filter::NodeMeta> ApplyMask(std::vector<filter::NodeMeta> nodes,
                                        const std::vector<uint8_t>& mask);

// Fills stats->eval with the filter-counter delta across a query execution.
void FillStatsDelta(const filter::EvalStats& before,
                    const filter::EvalStats& after, QueryStats* stats);

}  // namespace internal

}  // namespace ssdb::query

#endif  // SSDB_QUERY_ENGINE_H_
