// XPath-subset parser (§5.3): absolute queries made of child (/) and
// descendant (//) steps over tag names, with the two special tests the paper
// supports — `*` (every child) and `..` (parent) — plus one predicate form
// per step:
//   [relative/path]                  existence of a sub-path
//   [contains(text(), "word")]      §4 trie search, rewritten to the
//                                    character chain //w/o/r/d at parse time.
//
// Aggregate forms (DESIGN.md §8) wrap a whole query:
//   count(/a/b)   sum(//a/b)   exists(/a//b)
// They are answered server-side over secret shares — one word per server —
// instead of materializing the result set. A wildcard final step groups by
// tag: count(/a/*) yields one count per mapped tag.

#ifndef SSDB_QUERY_XPATH_H_
#define SSDB_QUERY_XPATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace ssdb::query {

struct Step {
  enum class Axis { kChild, kDescendant };
  enum class Kind { kName, kWildcard, kParent };

  Axis axis = Axis::kChild;
  Kind kind = Kind::kName;
  std::string name;           // for kind == kName
  std::vector<Step> predicate;  // empty = no predicate; exists-semantics

  bool operator==(const Step& other) const {
    return axis == other.axis && kind == other.kind && name == other.name &&
           predicate == other.predicate;
  }
};

// Aggregate function wrapping a query, if any (DESIGN.md §8).
enum class Aggregate : uint8_t {
  kNone = 0,
  kCount = 1,
  kSum = 2,     // total occurrences of the final tag in result subtrees
  kExists = 3,
};

std::string_view AggregateName(Aggregate aggregate);

struct Query {
  std::vector<Step> steps;
  Aggregate aggregate = Aggregate::kNone;
  std::string text;  // original source, for reporting
};

StatusOr<Query> ParseQuery(std::string_view input);

// Canonical rendering (predicates included).
std::string QueryToString(const Query& query);
std::string StepsToString(const std::vector<Step>& steps);

}  // namespace ssdb::query

#endif  // SSDB_QUERY_XPATH_H_
