// XPath-subset parser (§5.3): absolute queries made of child (/) and
// descendant (//) steps over tag names, with the two special tests the paper
// supports — `*` (every child) and `..` (parent) — plus one predicate form
// per step:
//   [relative/path]                  existence of a sub-path
//   [contains(text(), "word")]      §4 trie search, rewritten to the
//                                    character chain //w/o/r/d at parse time.

#ifndef SSDB_QUERY_XPATH_H_
#define SSDB_QUERY_XPATH_H_

#include <string>
#include <vector>

#include "util/statusor.h"

namespace ssdb::query {

struct Step {
  enum class Axis { kChild, kDescendant };
  enum class Kind { kName, kWildcard, kParent };

  Axis axis = Axis::kChild;
  Kind kind = Kind::kName;
  std::string name;           // for kind == kName
  std::vector<Step> predicate;  // empty = no predicate; exists-semantics

  bool operator==(const Step& other) const {
    return axis == other.axis && kind == other.kind && name == other.name &&
           predicate == other.predicate;
  }
};

struct Query {
  std::vector<Step> steps;
  std::string text;  // original source, for reporting
};

StatusOr<Query> ParseQuery(std::string_view input);

// Canonical rendering (predicates included).
std::string QueryToString(const Query& query);
std::string StepsToString(const std::vector<Step>& steps);

}  // namespace ssdb::query

#endif  // SSDB_QUERY_XPATH_H_
