#include "query/xpath.h"

#include <cctype>

#include "trie/trie_xml.h"

namespace ssdb::query {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  StatusOr<std::vector<Step>> ParseSteps(bool top_level) {
    std::vector<Step> steps;
    // A relative predicate path may start without a slash: implicit child.
    while (!AtEnd() && Peek() != ']') {
      Step step;
      if (Peek() == '/') {
        Advance();
        if (!AtEnd() && Peek() == '/') {
          Advance();
          step.axis = Step::Axis::kDescendant;
        }
      } else if (!steps.empty() || top_level) {
        return Error("expected '/' between steps");
      }
      SSDB_RETURN_IF_ERROR(ParseNodeTest(&step));
      if (!AtEnd() && Peek() == '[') {
        SSDB_RETURN_IF_ERROR(ParsePredicate(&step));
      }
      steps.push_back(std::move(step));
    }
    if (steps.empty()) {
      return Error("empty path");
    }
    return steps;
  }

  bool AtEnd() const { return pos_ >= input_.size(); }

 private:
  char Peek() const { return input_[pos_]; }
  char Advance() { return input_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("XPath error at offset " +
                                   std::to_string(pos_) + ": " + message +
                                   " in \"" + std::string(input_) + "\"");
  }

  Status ParseNodeTest(Step* step) {
    if (AtEnd()) return Error("expected node test");
    char c = Peek();
    if (c == '*') {
      Advance();
      step->kind = Step::Kind::kWildcard;
      return Status::OK();
    }
    if (c == '.') {
      Advance();
      if (AtEnd() || Advance() != '.') {
        return Error("'.' is only supported as '..'");
      }
      step->kind = Step::Kind::kParent;
      return Status::OK();
    }
    if (!IsNameChar(c)) {
      return Error(std::string("unexpected character '") + c + "'");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    step->kind = Step::Kind::kName;
    step->name = std::string(input_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParsePredicate(Step* step) {
    Advance();  // '['
    // contains(text(), "word") rewrites to the trie character chain (§4).
    constexpr std::string_view kContains = "contains(text(),";
    if (input_.substr(pos_).substr(0, kContains.size()) == kContains) {
      pos_ += kContains.size();
      while (!AtEnd() && Peek() == ' ') Advance();
      if (AtEnd() || Advance() != '"') return Error("expected '\"'");
      size_t start = pos_;
      while (!AtEnd() && Peek() != '"') Advance();
      if (AtEnd()) return Error("unterminated string literal");
      std::string word(input_.substr(start, pos_ - start));
      Advance();  // '"'
      if (AtEnd() || Advance() != ')') return Error("expected ')'");
      if (AtEnd() || Advance() != ']') return Error("expected ']'");
      if (word.empty()) return Error("empty contains() word");
      // /name[contains(text(),"Joan")] -> /name[//j/o/a/n]
      bool first = true;
      for (const std::string& label : trie::WordToSteps(word)) {
        Step char_step;
        char_step.axis =
            first ? Step::Axis::kDescendant : Step::Axis::kChild;
        char_step.kind = Step::Kind::kName;
        char_step.name = label;
        step->predicate.push_back(std::move(char_step));
        first = false;
      }
      if (step->predicate.empty()) {
        return Error("contains() word has no searchable characters");
      }
      return Status::OK();
    }
    // Otherwise: a relative path predicate.
    SSDB_ASSIGN_OR_RETURN(step->predicate, ParseSteps(/*top_level=*/false));
    if (AtEnd() || Advance() != ']') return Error("expected ']'");
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

void AppendStep(const Step& step, std::string* out) {
  *out += step.axis == Step::Axis::kDescendant ? "//" : "/";
  switch (step.kind) {
    case Step::Kind::kWildcard:
      *out += "*";
      break;
    case Step::Kind::kParent:
      *out += "..";
      break;
    case Step::Kind::kName:
      *out += step.name;
      break;
  }
  if (!step.predicate.empty()) {
    *out += "[";
    std::string inner = StepsToString(step.predicate);
    *out += inner;
    *out += "]";
  }
}

}  // namespace

std::string_view AggregateName(Aggregate aggregate) {
  switch (aggregate) {
    case Aggregate::kNone:
      return "none";
    case Aggregate::kCount:
      return "count";
    case Aggregate::kSum:
      return "sum";
    case Aggregate::kExists:
      return "exists";
  }
  return "?";
}

StatusOr<Query> ParseQuery(std::string_view input) {
  Query query;
  query.text = std::string(input);

  // Aggregate wrapper: count(...), sum(...), exists(...) around an
  // absolute query (DESIGN.md §8).
  std::string_view inner = input;
  for (auto [name, aggregate] :
       {std::pair<std::string_view, Aggregate>{"count(", Aggregate::kCount},
        {"sum(", Aggregate::kSum},
        {"exists(", Aggregate::kExists}}) {
    if (input.size() > name.size() + 1 &&
        input.substr(0, name.size()) == name && input.back() == ')') {
      query.aggregate = aggregate;
      inner = input.substr(name.size(),
                           input.size() - name.size() - 1);
      break;
    }
  }

  Parser parser(inner);
  if (inner.empty() || inner[0] != '/') {
    return Status::InvalidArgument(
        "only absolute queries (starting with '/' or '//') are supported");
  }
  SSDB_ASSIGN_OR_RETURN(query.steps, parser.ParseSteps(/*top_level=*/true));
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing characters after query: " +
                                   std::string(input));
  }
  return query;
}

std::string StepsToString(const std::vector<Step>& steps) {
  std::string out;
  for (const Step& step : steps) AppendStep(step, &out);
  return out;
}

std::string QueryToString(const Query& query) {
  std::string path = StepsToString(query.steps);
  if (query.aggregate == Aggregate::kNone) return path;
  return std::string(AggregateName(query.aggregate)) + "(" + path + ")";
}

}  // namespace ssdb::query
