#include "query/ground_truth.h"

#include <algorithm>
#include <set>

namespace ssdb::query {
namespace {

using xml::Node;

void CollectDescendants(const Node* node, std::vector<const Node*>* out) {
  for (const auto& child : node->children) {
    if (!child->IsElement()) continue;
    out->push_back(child.get());
    CollectDescendants(child.get(), out);
  }
}

void Dedupe(std::vector<const Node*>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const Node* a, const Node* b) { return a->pre < b->pre; });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

// Mirrors the engines' step semantics with exact name matching.
std::vector<const Node*> RunSteps(const std::vector<Step>& steps,
                                  std::vector<const Node*> candidates,
                                  bool from_document_root) {
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    bool first = (i == 0);

    if (step.kind == Step::Kind::kParent) {
      std::vector<const Node*> parents;
      for (const Node* node : candidates) {
        if (node->parent != nullptr) parents.push_back(node->parent);
      }
      Dedupe(&parents);
      candidates = std::move(parents);
      continue;
    }

    std::vector<const Node*> expanded;
    if (first && from_document_root) {
      if (step.axis == Step::Axis::kChild) {
        expanded = candidates;  // the root is the document node's only child
      } else {
        expanded = candidates;
        for (const Node* node : candidates) {
          CollectDescendants(node, &expanded);
        }
      }
    } else if (step.axis == Step::Axis::kChild) {
      for (const Node* node : candidates) {
        for (const auto& child : node->children) {
          if (child->IsElement()) expanded.push_back(child.get());
        }
      }
    } else {
      for (const Node* node : candidates) {
        CollectDescendants(node, &expanded);
      }
    }
    Dedupe(&expanded);

    std::vector<const Node*> filtered;
    if (step.kind == Step::Kind::kWildcard) {
      filtered = std::move(expanded);
    } else {
      for (const Node* node : expanded) {
        if (node->name == step.name) filtered.push_back(node);
      }
    }

    if (!step.predicate.empty()) {
      std::vector<const Node*> kept;
      for (const Node* node : filtered) {
        std::vector<const Node*> sub =
            RunSteps(step.predicate, {node}, /*from_document_root=*/false);
        if (!sub.empty()) kept.push_back(node);
      }
      filtered = std::move(kept);
    }

    candidates = std::move(filtered);
    if (candidates.empty()) break;
  }
  return candidates;
}

}  // namespace

StatusOr<std::vector<uint32_t>> EvaluateGroundTruth(
    const Query& query, const xml::Document& doc) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("empty document");
  }
  if (doc.root()->pre == 0) {
    return Status::FailedPrecondition(
        "document must be AnnotatePrePost'ed first");
  }
  std::vector<const Node*> result =
      RunSteps(query.steps, {doc.root()}, /*from_document_root=*/true);
  std::vector<uint32_t> pres;
  pres.reserve(result.size());
  for (const Node* node : result) pres.push_back(node->pre);
  return pres;
}

}  // namespace ssdb::query
