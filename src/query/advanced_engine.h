// AdvancedQuery (§5.3): walks the tree root-to-leaf and, at every node,
// takes the *whole remaining query* into account — because each polynomial
// knows all tags in its subtree, a node that lacks any remaining tag can be
// pruned immediately ("identify dead branches early ... at the cost of more
// evaluations for each node").
//
// Descendant steps run as a pruned DFS: recurse only into children whose
// subtree still contains the target; in non-strict mode every such node
// joins the result ("all nodes having a city inside"), in strict mode only
// nodes whose own tag matches.
//
// Caveat: the look-ahead set stops at the first '..' step (a parent step can
// climb out of the subtree, invalidating subtree-containment pruning).

#ifndef SSDB_QUERY_ADVANCED_ENGINE_H_
#define SSDB_QUERY_ADVANCED_ENGINE_H_

#include "query/engine.h"

namespace ssdb::query {

class AdvancedEngine : public QueryEngine {
 public:
  AdvancedEngine(filter::ClientFilter* filter, const mapping::TagMap* map)
      : filter_(filter), map_(map) {}

  std::string_view name() const override { return "advanced"; }

  StatusOr<std::vector<filter::NodeMeta>> Execute(const Query& query,
                                                  MatchMode mode,
                                                  QueryStats* stats) override;

 private:
  // Mapped values of the named steps in steps[from..], stopping at '..'.
  // absent_name is set when a named step is not in the map (=> empty result).
  std::vector<gf::Elem> LookaheadValues(const std::vector<Step>& steps,
                                        size_t from, bool* absent_name) const;

  // True iff node's subtree contains every value in `values`.
  StatusOr<bool> ContainsAll(const filter::NodeMeta& node,
                             const std::vector<gf::Elem>& values);

  // Keeps the nodes whose subtree contains every value in `values` — one
  // server exchange per value, not per node.
  StatusOr<std::vector<filter::NodeMeta>> FilterByLookahead(
      std::vector<filter::NodeMeta> nodes,
      const std::vector<gf::Elem>& values);

  StatusOr<std::vector<filter::NodeMeta>> RunSteps(
      const std::vector<Step>& steps,
      std::vector<filter::NodeMeta> candidates, bool from_document_root,
      MatchMode mode, QueryStats* stats);

  // Pruned search for a descendant step, level by level: each tree level
  // costs a constant number of server exchanges regardless of how many
  // branches survive. Collects matches under (but excluding) `roots`.
  Status DescendantSearch(const std::vector<filter::NodeMeta>& roots,
                          gf::Elem value,
                          const std::vector<gf::Elem>& lookahead,
                          MatchMode mode, QueryStats* stats,
                          std::vector<filter::NodeMeta>* out);

  filter::ClientFilter* filter_;
  const mapping::TagMap* map_;
};

}  // namespace ssdb::query

#endif  // SSDB_QUERY_ADVANCED_ENGINE_H_
