/// Shard catalog (DESIGN.md §10): the routing metadata of a multi-document
/// corpus. Every encoded document is owned by exactly one *server group* —
/// the m share-slice servers holding its split — and the catalog maps each
/// document id to its (group, slice-set) entry, in the spirit of MaxScale's
/// schemarouter shard map. The catalog is PUBLIC routing metadata: it names
/// documents and endpoints but carries no key material, no tag map, and no
/// shares, so an untrusted router tier (tools/ssdb_router.cc) may serve it
/// verbatim.
///
/// Two codecs:
///  * a versioned JSON file format — what operators edit and ssdb_router
///    loads ({"version":1,"documents":[{"id":...,"group":...,
///    "slices":[...]}]});
///  * a compact binary wire format (varints, length-prefixed strings) —
///    what the kCatalog/kCatalogResolve RPC ops carry. The decode side is
///    fuzz-hardened (tests/fuzz_test.cc): counts are bounded by the
///    remaining frame bytes so a tiny malformed frame cannot force a huge
///    allocation.

#ifndef SSDB_SHARD_CATALOG_H_
#define SSDB_SHARD_CATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace ssdb::shard {

// One document's routing entry: the owning server group and the endpoints
// of its m share slices, in slice order (slice 0 is the primary that also
// serves structure). Endpoints are unix socket paths in a deployed corpus;
// core::CorpusOptions.local reinterprets them as slice file paths for
// single-machine use.
struct ShardEntry {
  std::string doc_id;
  uint32_t group = 0;
  std::vector<std::string> slices;

  bool operator==(const ShardEntry& other) const {
    return doc_id == other.doc_id && group == other.group &&
           slices == other.slices;
  }
};

class ShardCatalog {
 public:
  // The on-disk/wire format version this build reads and writes. Decoders
  // reject other versions loudly instead of misreading fields.
  static constexpr uint32_t kVersion = 1;

  // Rejects duplicate document ids, empty ids, and entries with no slices
  // (every document needs at least its primary).
  Status Add(ShardEntry entry);

  // nullptr when the document is not in the catalog.
  const ShardEntry* Find(std::string_view doc_id) const;

  const std::vector<ShardEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  // Distinct group ids, ascending.
  std::vector<uint32_t> Groups() const;

  // --- JSON on-disk codec --------------------------------------------------
  std::string ToJson() const;
  // Compact one-object summary for the admin API's /v1/catalog (DESIGN.md
  // §11): version, document/group counts, and per-document {id, group,
  // slice count}. Metadata-only like the catalog itself — no share bytes.
  std::string SummaryJson() const;
  static StatusOr<ShardCatalog> FromJson(std::string_view text);
  static StatusOr<ShardCatalog> Load(const std::string& path);
  Status Save(const std::string& path) const;

 private:
  std::vector<ShardEntry> entries_;
};

// --- binary wire codec (kCatalog / kCatalogResolve payloads) ---------------

void AppendEntry(std::string* out, const ShardEntry& entry);
// Consumes one entry from the front of *data.
Status ConsumeEntry(std::string_view* data, ShardEntry* out);
// A single entry as a whole frame (the kCatalogResolve reply).
std::string EncodeEntry(const ShardEntry& entry);
StatusOr<ShardEntry> DecodeEntry(std::string_view data);

std::string EncodeCatalog(const ShardCatalog& catalog);
StatusOr<ShardCatalog> DecodeCatalog(std::string_view data);

}  // namespace ssdb::shard

#endif  // SSDB_SHARD_CATALOG_H_
