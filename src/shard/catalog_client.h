/// Client side of the catalog tier (DESIGN.md §10): fetches routing
/// metadata from a running ssdb_router over its unix socket. The catalog
/// is public — these calls carry no seed and return none — so they may be
/// made before any trusted state exists (a client bootstraps by fetching
/// the catalog, then opens a shard::Router with its own seed and map).

#ifndef SSDB_SHARD_CATALOG_CLIENT_H_
#define SSDB_SHARD_CATALOG_CLIENT_H_

#include <string>
#include <string_view>

#include "shard/catalog.h"
#include "util/statusor.h"

namespace ssdb::shard {

// Fetches the whole catalog (op kCatalog) from the router at `socket_path`.
StatusOr<ShardCatalog> FetchCatalogUnix(const std::string& socket_path);

// Resolves one document id (op kCatalogResolve); NotFound when the router
// has no such document.
StatusOr<ShardEntry> ResolveDocUnix(const std::string& socket_path,
                                    std::string_view doc_id);

}  // namespace ssdb::shard

#endif  // SSDB_SHARD_CATALOG_CLIENT_H_
