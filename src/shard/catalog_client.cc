#include "shard/catalog_client.h"

#include <memory>
#include <utility>

#include "rpc/channel.h"
#include "rpc/protocol.h"
#include "rpc/socket_channel.h"

namespace ssdb::shard {
namespace {

// One request/response exchange on a fresh connection. Catalog calls are
// bootstrap-time one-shots, so per-call dial cost is irrelevant and keeping
// no connection state keeps the router tier trivially restartable.
StatusOr<std::string> CallOnce(const std::string& socket_path,
                               const rpc::Request& request) {
  SSDB_ASSIGN_OR_RETURN(std::unique_ptr<rpc::Channel> channel,
                        rpc::ConnectUnix(socket_path));
  SSDB_RETURN_IF_ERROR(channel->Send(rpc::EncodeRequest(request)));
  SSDB_ASSIGN_OR_RETURN(std::string response, channel->Receive());
  return rpc::DecodeResponse(response);
}

}  // namespace

StatusOr<ShardCatalog> FetchCatalogUnix(const std::string& socket_path) {
  rpc::Request request;
  request.op = rpc::Op::kCatalog;
  SSDB_ASSIGN_OR_RETURN(std::string payload, CallOnce(socket_path, request));
  return DecodeCatalog(payload);
}

StatusOr<ShardEntry> ResolveDocUnix(const std::string& socket_path,
                                    std::string_view doc_id) {
  rpc::Request request;
  request.op = rpc::Op::kCatalogResolve;
  request.doc_id.assign(doc_id);
  SSDB_ASSIGN_OR_RETURN(std::string payload, CallOnce(socket_path, request));
  return DecodeEntry(payload);
}

}  // namespace ssdb::shard
