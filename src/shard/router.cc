#include "shard/router.h"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "gf/field.h"
#include "rpc/client.h"
#include "storage/table.h"
#include "util/stopwatch.h"

namespace ssdb::shard {

void MergeAggregate(agg::Result* into, const agg::Result& from, bool first) {
  if (first) {
    *into = from;
    return;
  }
  // Additive combination across shards, the corpus-level analog of summing
  // aggregate partials across slices within a group (DESIGN.md §8): every
  // document's result is already exact, so corpus count = Σ_docs count, and
  // exists() ORs for free through the nonzero sum. Verification (§9) is
  // per-document; the corpus is verified iff every document was.
  into->verified = into->verified && from.verified;
  into->proof_words += from.proof_words;
  for (size_t g = 0; g < from.group_names.size(); ++g) {
    auto it = std::find(into->group_names.begin(), into->group_names.end(),
                        from.group_names[g]);
    if (it == into->group_names.end()) {
      into->group_names.push_back(from.group_names[g]);
      into->values.push_back(from.values[g]);
    } else {
      into->values[it - into->group_names.begin()] += from.values[g];
    }
  }
}

Status Router::Attribute(const Status& status, const ShardEntry& entry) {
  if (status.ok()) return status;
  return Status(status.code(), "doc " + entry.doc_id + " (group " +
                                   std::to_string(entry.group) +
                                   "): " + status.message());
}

Status Router::CheckHealth(const ShardEntry& entry) const {
  if (health_ == nullptr) return Status::OK();
  for (size_t i = 0; i < entry.slices.size(); ++i) {
    if (health_->IsDown(entry.slices[i])) {
      return Status::Unavailable("server " + std::to_string(i) + " (" +
                                 entry.slices[i] +
                                 ") is down (health monitor, DESIGN.md §11)");
    }
  }
  return Status::OK();
}

void Router::SetHealth(const control::HealthView* health) {
  health_ = health;
  for (auto& stack : stacks_) {
    if (stack->fanout != nullptr) {
      stack->fanout->SetEndpointHealth(health, stack->entry->slices);
    }
  }
}

Status Router::FinishStack(DocStack* stack, const gf::Ring& ring,
                           const prg::Seed& seed) {
  stack->client = std::make_unique<filter::ClientFilter>(ring, prg::Prg(seed),
                                                         stack->view);
  stack->simple = std::make_unique<query::SimpleEngine>(stack->client.get(),
                                                        map_);
  stack->advanced = std::make_unique<query::AdvancedEngine>(
      stack->client.get(), map_);
  stack->agg = std::make_unique<agg::AggregationEngine>(stack->client.get(),
                                                        map_);
  stack->agg->set_verify(options_.verify_aggregate);
  stack->mutator = std::make_unique<encode::Mutator>(ring, *map_,
                                                     prg::Prg(seed),
                                                     stack->view);
  stack->engine =
      options_.engine == core::EngineKind::kSimple
          ? static_cast<query::QueryEngine*>(stack->simple.get())
          : static_cast<query::QueryEngine*>(stack->advanced.get());
  if (options_.probe_shares) {
    // Same probe ssdb_query runs: recover the root's own tag through the
    // verified equality-test division, so a catalog entry listing the wrong
    // slices (or paired with the wrong seed) fails at open, not with
    // silently wrong answers.
    auto root = stack->client->Root();
    if (!root.ok()) return root.status();
    auto probe = stack->client->RecoverOwnValue(*root);
    if (!probe.ok()) {
      return Status(probe.status().code(),
                    "share-sum sanity probe failed (are all slices listed in "
                    "slice order, with this document's seed?): " +
                        probe.status().message());
    }
    stack->client->stats().Reset();
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Router>> Router::Open(
    ShardCatalog catalog, const mapping::TagMap* map,
    const prg::Seed& default_seed,
    const std::map<std::string, prg::Seed>& seeds,
    const core::CorpusOptions& options) {
  auto field = gf::Field::Make(options.p, options.e);
  if (!field.ok()) return field.status();
  gf::Ring ring(*field);
  std::unique_ptr<Router> router(
      new Router(std::move(catalog), map, options));
  for (const ShardEntry& entry : router->catalog_.entries()) {
    auto stack = std::make_unique<DocStack>();
    stack->entry = &entry;
    // The whole per-document build in one scope, so partial_ok can treat
    // any failure — a dead socket, a missing slice file, a failed open
    // probe — as "this document is unreachable" and move on.
    Status built = [&]() -> Status {
      if (options.local) {
        std::vector<filter::ServerFilter*> raw;
        for (const std::string& path : entry.slices) {
          auto disk = storage::DiskNodeStore::Open(path);
          if (!disk.ok()) return disk.status();
          stack->stores.push_back(std::move(*disk));
          stack->backends.push_back(
              std::make_unique<filter::LocalServerFilter>(
                  ring, stack->stores.back().get()));
          raw.push_back(stack->backends.back().get());
        }
        if (raw.size() == 1) {
          stack->view = raw[0];
        } else {
          auto fanout = std::make_unique<filter::MultiServerFilter>(
              ring, std::move(raw));
          stack->fanout = fanout.get();
          stack->owned_filter = std::move(fanout);
          stack->view = stack->owned_filter.get();
        }
      } else {
        auto session =
            rpc::MultiServerSession::ConnectUnix(ring, entry.slices);
        if (!session.ok()) return session.status();
        stack->session = std::move(*session);
        stack->fanout = stack->session->filter();
        stack->view = stack->session->filter();
      }
      auto it = seeds.find(entry.doc_id);
      const prg::Seed& seed = it == seeds.end() ? default_seed : it->second;
      return router->FinishStack(stack.get(), ring, seed);
    }();
    if (!built.ok()) {
      built = Attribute(built, entry);
      if (!options.partial_ok) return built;
      router->unreachable_.push_back(
          MissingDoc{entry.doc_id, entry.group, std::move(built)});
      continue;
    }
    router->by_doc_.emplace(entry.doc_id, stack.get());
    router->stacks_.push_back(std::move(stack));
  }
  if (router->stacks_.empty() && !router->unreachable_.empty()) {
    // partial_ok tolerates degraded, not dead: every document failed.
    const Status& first = router->unreachable_.front().error;
    return Status(first.code(),
                  "all " + std::to_string(router->unreachable_.size()) +
                      " documents unreachable; first: " + first.message());
  }
  return router;
}

StatusOr<std::unique_ptr<Router>> Router::FromBackends(
    ShardCatalog catalog, const mapping::TagMap* map,
    const prg::Seed& default_seed,
    const std::map<std::string, prg::Seed>& seeds,
    const core::CorpusOptions& options,
    const std::map<std::string, std::vector<filter::ServerFilter*>>&
        backends) {
  auto field = gf::Field::Make(options.p, options.e);
  if (!field.ok()) return field.status();
  gf::Ring ring(*field);
  std::unique_ptr<Router> router(
      new Router(std::move(catalog), map, options));
  for (const ShardEntry& entry : router->catalog_.entries()) {
    auto it = backends.find(entry.doc_id);
    if (it == backends.end() || it->second.empty()) {
      return Status::InvalidArgument("no backends injected for doc " +
                                     entry.doc_id);
    }
    auto stack = std::make_unique<DocStack>();
    stack->entry = &entry;
    if (it->second.size() == 1) {
      stack->view = it->second[0];
    } else {
      auto fanout =
          std::make_unique<filter::MultiServerFilter>(ring, it->second);
      stack->fanout = fanout.get();
      stack->owned_filter = std::move(fanout);
      stack->view = stack->owned_filter.get();
    }
    auto seed_it = seeds.find(entry.doc_id);
    const prg::Seed& seed =
        seed_it == seeds.end() ? default_seed : seed_it->second;
    Status built = router->FinishStack(stack.get(), ring, seed);
    if (!built.ok()) {
      built = Attribute(built, entry);
      if (!options.partial_ok) return built;
      router->unreachable_.push_back(
          MissingDoc{entry.doc_id, entry.group, std::move(built)});
      continue;
    }
    router->by_doc_.emplace(entry.doc_id, stack.get());
    router->stacks_.push_back(std::move(stack));
  }
  if (router->stacks_.empty() && !router->unreachable_.empty()) {
    const Status& first = router->unreachable_.front().error;
    return Status(first.code(),
                  "all " + std::to_string(router->unreachable_.size()) +
                      " documents unreachable; first: " + first.message());
  }
  return router;
}

Router::~Router() = default;

uint64_t Router::bytes_on_wire() const {
  uint64_t total = 0;
  for (const auto& stack : stacks_) {
    if (stack->session != nullptr) total += stack->session->bytes_on_wire();
  }
  return total;
}

StatusOr<DocResult> Router::RunOnStack(DocStack* stack,
                                       const query::Query& query,
                                       query::MatchMode mode) {
  // Fail fast while the group is marked down (DESIGN.md §11) — this also
  // covers single-backend stacks, which have no fan-out filter of their
  // own to consult the health view.
  Status health = CheckHealth(*stack->entry);
  if (!health.ok()) return health;
  DocResult out;
  out.doc_id = stack->entry->doc_id;
  out.group = stack->entry->group;
  if (query.aggregate != query::Aggregate::kNone) {
    out.is_aggregate = true;
    auto result = stack->agg->Execute(stack->engine, query, mode, &out.stats);
    if (!result.ok()) return result.status();
    out.aggregate = std::move(*result);
  } else {
    auto result = stack->engine->Execute(query, mode, &out.stats);
    if (!result.ok()) return result.status();
    out.nodes = std::move(*result);
  }
  return out;
}

StatusOr<Router::DocStack*> Router::FindStack(std::string_view doc_id) {
  auto it = by_doc_.find(doc_id);
  if (it == by_doc_.end()) {
    // A document skipped at open (partial_ok) fails with its recorded
    // error — fast, and naming the original cause — not NotFound.
    for (const MissingDoc& missing : unreachable_) {
      if (missing.doc_id == doc_id) return missing.error;
    }
    return Status::NotFound("no document '" + std::string(doc_id) +
                            "' in the shard catalog");
  }
  return it->second;
}

StatusOr<DocResult> Router::QueryDoc(std::string_view doc_id,
                                     const query::Query& query,
                                     query::MatchMode mode) {
  SSDB_ASSIGN_OR_RETURN(DocStack * stack, FindStack(doc_id));
  auto result = RunOnStack(stack, query, mode);
  if (!result.ok()) return Attribute(result.status(), *stack->entry);
  return result;
}

StatusOr<DocMutation> Router::DriveOnStack(DocStack* stack,
                                           encode::PlannedMutation planned) {
  // Same fail-fast health gate as queries: don't prepare a txn the group
  // cannot finish while a slice server is known down.
  SSDB_RETURN_IF_ERROR(CheckHealth(*stack->entry));
  Status prepared = stack->view->PrepareMutation(planned.txn, planned.plans);
  if (!prepared.ok()) {
    (void)stack->view->AbortMutation(planned.txn);  // best-effort cleanup
    return prepared;
  }
  SSDB_RETURN_IF_ERROR(stack->view->CommitMutation(planned.txn));
  DocMutation out;
  out.doc_id = stack->entry->doc_id;
  out.group = stack->entry->group;
  out.version = planned.txn;
  out.stats = planned.stats;
  return out;
}

StatusOr<DocMutation> Router::UpdateDoc(
    std::string_view doc_id, uint32_t pre, std::string_view new_tag,
    const std::optional<std::string>& new_text) {
  SSDB_ASSIGN_OR_RETURN(DocStack * stack, FindStack(doc_id));
  auto planned = stack->mutator->PlanUpdate(pre, new_tag, new_text);
  if (!planned.ok()) return Attribute(planned.status(), *stack->entry);
  auto result = DriveOnStack(stack, std::move(*planned));
  if (!result.ok()) return Attribute(result.status(), *stack->entry);
  return result;
}

StatusOr<DocMutation> Router::InsertDoc(std::string_view doc_id,
                                        uint32_t parent_pre,
                                        std::string_view fragment_xml) {
  SSDB_ASSIGN_OR_RETURN(DocStack * stack, FindStack(doc_id));
  auto planned = stack->mutator->PlanInsert(parent_pre, fragment_xml);
  if (!planned.ok()) return Attribute(planned.status(), *stack->entry);
  auto result = DriveOnStack(stack, std::move(*planned));
  if (!result.ok()) return Attribute(result.status(), *stack->entry);
  return result;
}

StatusOr<DocMutation> Router::DeleteDoc(std::string_view doc_id,
                                        uint32_t pre) {
  SSDB_ASSIGN_OR_RETURN(DocStack * stack, FindStack(doc_id));
  auto planned = stack->mutator->PlanDelete(pre);
  if (!planned.ok()) return Attribute(planned.status(), *stack->entry);
  auto result = DriveOnStack(stack, std::move(*planned));
  if (!result.ok()) return Attribute(result.status(), *stack->entry);
  return result;
}

Status Router::RecoverDoc(std::string_view doc_id) {
  SSDB_ASSIGN_OR_RETURN(DocStack * stack, FindStack(doc_id));
  for (int round = 0; round < 64; ++round) {
    auto states = stack->view->MutationStates();
    if (!states.ok()) return Attribute(states.status(), *stack->entry);
    uint64_t pending = 0;
    uint64_t committed = 0;
    for (const storage::MutationState& st : *states) {
      pending = std::max(pending, st.pending_txn);
      committed = std::max(committed, st.version);
    }
    if (pending == 0) return Status::OK();
    Status verdict = committed >= pending
                         ? stack->view->CommitMutation(pending)
                         : stack->view->AbortMutation(pending);
    if (!verdict.ok()) return Attribute(verdict, *stack->entry);
  }
  return Attribute(Status::Internal("mutation recovery did not converge"),
                   *stack->entry);
}

StatusOr<CorpusResult> Router::QueryCorpus(const query::Query& query,
                                           query::MatchMode mode) {
  if (stacks_.empty()) {
    return Status::FailedPrecondition("the shard catalog is empty");
  }
  Stopwatch watch;

  // One thread per document: each stack is confined to its thread for the
  // duration (a stack is NOT safe for concurrent queries), so every server
  // group progresses in parallel and the corpus costs one straggler of wall
  // clock, mirroring MultiServerFilter's fan-out across slices.
  std::vector<std::optional<StatusOr<DocResult>>> results(stacks_.size());
  if (stacks_.size() == 1) {
    results[0] = RunOnStack(stacks_[0].get(), query, mode);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(stacks_.size());
    for (size_t i = 0; i < stacks_.size(); ++i) {
      threads.emplace_back([this, i, &query, mode, &results] {
        results[i] = RunOnStack(stacks_[i].get(), query, mode);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  CorpusResult out;
  out.is_aggregate = query.aggregate != query::Aggregate::kNone;
  // Open-time skips (partial_ok) ride along on every corpus result so a
  // caller always sees the full degraded picture, not just this query's
  // failures.
  out.missing = unreachable_;
  std::set<uint32_t> groups;
  bool first = true;
  for (size_t i = 0; i < stacks_.size(); ++i) {
    const ShardEntry& entry = *stacks_[i]->entry;
    StatusOr<DocResult>& result = *results[i];
    if (!result.ok()) {
      Status attributed = Attribute(result.status(), entry);
      if (!options_.partial_ok) return attributed;
      out.missing.push_back(
          MissingDoc{entry.doc_id, entry.group, std::move(attributed)});
      continue;
    }
    groups.insert(entry.group);
    ++out.documents;
    DocResult& doc = *result;
    if (first) {
      out.stats = doc.stats;
    } else {
      out.stats.eval.MergeConcurrent(doc.stats.eval);
      out.stats.result_size += doc.stats.result_size;
      out.stats.candidates_examined += doc.stats.candidates_examined;
    }
    if (out.is_aggregate) {
      MergeAggregate(&out.aggregate, doc.aggregate, first);
    } else {
      out.nodes.push_back(
          CorpusResult::DocNodes{doc.doc_id, std::move(doc.nodes)});
    }
    first = false;
  }
  if (out.documents == 0) {
    // partial_ok tolerates degraded, not dead: nothing answered.
    const Status& first_error = out.missing.front().error;
    return Status(first_error.code(),
                  "corpus query failed on all " +
                      std::to_string(out.missing.size()) +
                      " documents; first: " + first_error.message());
  }
  out.groups = groups.size();
  if (out.is_aggregate) {
    // Group count after the cross-document union, not the per-doc sum.
    out.stats.result_size = out.aggregate.values.size();
  }
  out.stats.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace ssdb::shard
