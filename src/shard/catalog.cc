#include "shard/catalog.h"

#include <algorithm>
#include <set>

#include "util/file_util.h"
#include "util/json.h"
#include "util/varint.h"

namespace ssdb::shard {
namespace {

// Catalog strings ride length-prefixed on the wire; a bound keeps a
// corrupted length varint from forcing a huge allocation and keeps socket
// paths inside sockaddr_un limits with headroom for file paths.
constexpr size_t kMaxStringBytes = 4096;
// Far above any sane deployment (kMaxServers is 256), far below anything
// that could exhaust memory during decode.
constexpr size_t kMaxSlices = 1024;

Status ConsumeBoundedString(std::string_view* data, std::string* out) {
  std::string_view value;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(data, &value));
  if (value.size() > kMaxStringBytes) {
    return Status::Corruption("catalog string exceeds bound");
  }
  out->assign(value);
  return Status::OK();
}

// The JSON subset codec lives in util/json (DESIGN.md §10); the catalog
// schema is decoded through the streaming JsonParser so unknown keys are
// skipped and future fields stay forward-compatible within a version.

Status ParseEntryJson(JsonParser* parser, ShardEntry* entry) {
  SSDB_RETURN_IF_ERROR(parser->Expect('{'));
  bool saw_id = false;
  bool saw_slices = false;
  if (!parser->Consume('}')) {
    do {
      std::string key;
      SSDB_RETURN_IF_ERROR(parser->ParseString(&key));
      SSDB_RETURN_IF_ERROR(parser->Expect(':'));
      if (key == "id") {
        SSDB_RETURN_IF_ERROR(parser->ParseString(&entry->doc_id));
        saw_id = true;
      } else if (key == "group") {
        uint64_t group = 0;
        SSDB_RETURN_IF_ERROR(parser->ParseUint(&group));
        if (group > UINT32_MAX) {
          return Status::Corruption("catalog JSON: group id overflows");
        }
        entry->group = static_cast<uint32_t>(group);
      } else if (key == "slices") {
        SSDB_RETURN_IF_ERROR(parser->Expect('['));
        saw_slices = true;
        if (!parser->Consume(']')) {
          do {
            std::string slice;
            SSDB_RETURN_IF_ERROR(parser->ParseString(&slice));
            if (entry->slices.size() >= kMaxSlices) {
              return Status::Corruption("catalog JSON: too many slices");
            }
            entry->slices.push_back(std::move(slice));
          } while (parser->Consume(','));
          SSDB_RETURN_IF_ERROR(parser->Expect(']'));
        }
      } else {
        SSDB_RETURN_IF_ERROR(parser->SkipValue());
      }
    } while (parser->Consume(','));
    SSDB_RETURN_IF_ERROR(parser->Expect('}'));
  }
  if (!saw_id || !saw_slices) {
    return Status::Corruption("catalog JSON: document needs id and slices");
  }
  return Status::OK();
}

}  // namespace

Status ShardCatalog::Add(ShardEntry entry) {
  if (entry.doc_id.empty()) {
    return Status::InvalidArgument("document id must be non-empty");
  }
  if (entry.doc_id.size() > kMaxStringBytes) {
    return Status::InvalidArgument("document id exceeds bound");
  }
  if (entry.slices.empty()) {
    return Status::InvalidArgument("document " + entry.doc_id +
                                   " has no slices");
  }
  if (entry.slices.size() > kMaxSlices) {
    return Status::InvalidArgument("document " + entry.doc_id +
                                   " has too many slices");
  }
  for (const std::string& slice : entry.slices) {
    if (slice.empty() || slice.size() > kMaxStringBytes) {
      return Status::InvalidArgument("document " + entry.doc_id +
                                     " has an empty or oversized slice path");
    }
  }
  if (Find(entry.doc_id) != nullptr) {
    return Status::AlreadyExists("duplicate document id " + entry.doc_id);
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

const ShardEntry* ShardCatalog::Find(std::string_view doc_id) const {
  for (const ShardEntry& entry : entries_) {
    if (entry.doc_id == doc_id) return &entry;
  }
  return nullptr;
}

std::vector<uint32_t> ShardCatalog::Groups() const {
  std::set<uint32_t> groups;
  for (const ShardEntry& entry : entries_) groups.insert(entry.group);
  return std::vector<uint32_t>(groups.begin(), groups.end());
}

std::string ShardCatalog::ToJson() const {
  std::string out = "{\n  \"version\": " + std::to_string(kVersion) +
                    ",\n  \"documents\": [";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ShardEntry& entry = entries_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"id\": ";
    AppendJsonString(&out, entry.doc_id);
    out += ", \"group\": " + std::to_string(entry.group) + ", \"slices\": [";
    for (size_t j = 0; j < entry.slices.size(); ++j) {
      if (j > 0) out += ", ";
      AppendJsonString(&out, entry.slices[j]);
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string ShardCatalog::SummaryJson() const {
  std::string out = "{\"version\":" + std::to_string(kVersion) +
                    ",\"documents\":" + std::to_string(entries_.size()) +
                    ",\"groups\":" + std::to_string(Groups().size()) +
                    ",\"entries\":[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ShardEntry& entry = entries_[i];
    if (i > 0) out += ",";
    out += "{\"id\":";
    AppendJsonString(&out, entry.doc_id);
    out += ",\"group\":" + std::to_string(entry.group) +
           ",\"slices\":" + std::to_string(entry.slices.size()) + "}";
  }
  out += "]}";
  return out;
}

StatusOr<ShardCatalog> ShardCatalog::FromJson(std::string_view text) {
  JsonParser parser(text, "catalog JSON", kMaxStringBytes);
  SSDB_RETURN_IF_ERROR(parser.Expect('{'));
  ShardCatalog catalog;
  bool saw_version = false;
  if (!parser.Consume('}')) {
    do {
      std::string key;
      SSDB_RETURN_IF_ERROR(parser.ParseString(&key));
      SSDB_RETURN_IF_ERROR(parser.Expect(':'));
      if (key == "version") {
        uint64_t version = 0;
        SSDB_RETURN_IF_ERROR(parser.ParseUint(&version));
        if (version != kVersion) {
          return Status::Unimplemented(
              "catalog version " + std::to_string(version) +
              " not supported (this build reads version " +
              std::to_string(kVersion) + ")");
        }
        saw_version = true;
      } else if (key == "documents") {
        SSDB_RETURN_IF_ERROR(parser.Expect('['));
        if (!parser.Consume(']')) {
          do {
            ShardEntry entry;
            SSDB_RETURN_IF_ERROR(ParseEntryJson(&parser, &entry));
            SSDB_RETURN_IF_ERROR(catalog.Add(std::move(entry)));
          } while (parser.Consume(','));
          SSDB_RETURN_IF_ERROR(parser.Expect(']'));
        }
      } else {
        SSDB_RETURN_IF_ERROR(parser.SkipValue());
      }
    } while (parser.Consume(','));
    SSDB_RETURN_IF_ERROR(parser.Expect('}'));
  }
  SSDB_RETURN_IF_ERROR(parser.AtEnd());
  if (!saw_version) {
    return Status::Corruption("catalog JSON: missing version");
  }
  return catalog;
}

StatusOr<ShardCatalog> ShardCatalog::Load(const std::string& path) {
  SSDB_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return FromJson(text);
}

Status ShardCatalog::Save(const std::string& path) const {
  return WriteStringToFile(path, ToJson());
}

void AppendEntry(std::string* out, const ShardEntry& entry) {
  PutLengthPrefixed(out, entry.doc_id);
  PutVarint64(out, entry.group);
  PutVarint64(out, entry.slices.size());
  for (const std::string& slice : entry.slices) {
    PutLengthPrefixed(out, slice);
  }
}

Status ConsumeEntry(std::string_view* data, ShardEntry* out) {
  SSDB_RETURN_IF_ERROR(ConsumeBoundedString(data, &out->doc_id));
  uint64_t v = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(data, &v));
  if (v > UINT32_MAX) return Status::Corruption("group id overflows");
  out->group = static_cast<uint32_t>(v);
  uint64_t slices = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(data, &slices));
  // Every slice costs at least one length byte, so a count beyond the
  // remaining frame is corrupt — reject before allocating.
  if (slices > data->size() || slices > kMaxSlices) {
    return Status::Corruption("slice count exceeds frame size");
  }
  out->slices.clear();
  out->slices.reserve(slices);
  for (uint64_t i = 0; i < slices; ++i) {
    std::string slice;
    SSDB_RETURN_IF_ERROR(ConsumeBoundedString(data, &slice));
    out->slices.push_back(std::move(slice));
  }
  return Status::OK();
}

std::string EncodeEntry(const ShardEntry& entry) {
  std::string out;
  AppendEntry(&out, entry);
  return out;
}

StatusOr<ShardEntry> DecodeEntry(std::string_view data) {
  ShardEntry entry;
  SSDB_RETURN_IF_ERROR(ConsumeEntry(&data, &entry));
  if (!data.empty()) {
    return Status::Corruption("trailing bytes in catalog entry");
  }
  return entry;
}

std::string EncodeCatalog(const ShardCatalog& catalog) {
  std::string out;
  PutVarint64(&out, ShardCatalog::kVersion);
  PutVarint64(&out, catalog.size());
  for (const ShardEntry& entry : catalog.entries()) {
    AppendEntry(&out, entry);
  }
  return out;
}

StatusOr<ShardCatalog> DecodeCatalog(std::string_view data) {
  uint64_t version = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &version));
  if (version != ShardCatalog::kVersion) {
    return Status::Unimplemented("catalog wire version " +
                                 std::to_string(version) + " not supported");
  }
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(GetVarint64(&data, &count));
  if (count > data.size()) {
    return Status::Corruption("entry count exceeds frame size");
  }
  ShardCatalog catalog;
  for (uint64_t i = 0; i < count; ++i) {
    ShardEntry entry;
    SSDB_RETURN_IF_ERROR(ConsumeEntry(&data, &entry));
    SSDB_RETURN_IF_ERROR(catalog.Add(std::move(entry)));
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes in catalog");
  }
  return catalog;
}

}  // namespace ssdb::shard
