/// Shard router (DESIGN.md §10): the stateless coordinator that turns the
/// one-document query stack into a corpus database. Given a ShardCatalog —
/// document id -> (server group, slice set) — it owns one client stack
/// (channels or local stores, ClientFilter, engines, AggregationEngine) per
/// document and offers two entry points:
///
///  * QueryDoc: a query tagged with a document id runs against the owning
///    group alone — exactly the single-document pipeline, plus routing.
///  * QueryCorpus: a corpus-wide query fans out to every owning group
///    concurrently (one thread per document, groups progress in parallel)
///    and merges: fetch results concatenate per document; COUNT/SUM/EXISTS/
///    GROUP-BY results combine additively across shards — corpus count =
///    Σ_docs count(doc) — exactly as aggregate partials combine across
///    slices within a group (§8), so round trips stay O(query steps) per
///    group and the corpus costs one straggler of wall clock.
///
/// The router is TRUSTED (it holds seeds); the catalog-serving tier
/// (tools/ssdb_router.cc) is not. Verified aggregation (§9) survives the
/// extra tier: a tampering server inside one group fails that document's
/// proof check, and the router rethrows the Corruption status prefixed
/// "doc <id> (group <g>):" — blame crosses the router without dilution.
///
/// Every document may carry its own seed (recommended: with a shared seed,
/// two slices of different documents hosted by one physical server are
/// masked by the same PRG stream — see §10's threat-model note).

#ifndef SSDB_SHARD_ROUTER_H_
#define SSDB_SHARD_ROUTER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "agg/aggregation.h"
#include "control/health.h"
#include "core/options.h"
#include "encode/reshare.h"
#include "filter/client_filter.h"
#include "filter/multi_server_filter.h"
#include "mapping/tag_map.h"
#include "prg/seed.h"
#include "query/advanced_engine.h"
#include "query/engine.h"
#include "query/simple_engine.h"
#include "query/xpath.h"
#include "rpc/multi_session.h"
#include "shard/catalog.h"
#include "storage/node_store.h"
#include "util/statusor.h"

namespace ssdb::shard {

// One document's answer, routed to its owning group.
struct DocResult {
  std::string doc_id;
  uint32_t group = 0;
  bool is_aggregate = false;
  agg::Result aggregate;
  std::vector<filter::NodeMeta> nodes;  // empty for aggregates
  query::QueryStats stats;
};

// A document the router could not answer for — its group unreachable at
// open (partial_ok mode) or its query failed mid-corpus. The error is
// already attributed ("doc <id> (group <g>): ...").
struct MissingDoc {
  std::string doc_id;
  uint32_t group = 0;
  Status error;
};

// Outcome of a mutation routed to one document's group (DESIGN.md §12).
struct DocMutation {
  std::string doc_id;
  uint32_t group = 0;
  uint64_t version = 0;  // the document version the group advanced to
  encode::MutateStats stats;
};

// A corpus-wide answer, merged across every owning group.
struct CorpusResult {
  bool is_aggregate = false;
  // Merged additively across documents; group-by groups union by tag name.
  agg::Result aggregate;
  // Fetch results stay per-document (pre numbers only make sense within a
  // document), in catalog order.
  struct DocNodes {
    std::string doc_id;
    std::vector<filter::NodeMeta> nodes;
  };
  std::vector<DocNodes> nodes;
  // Straggler-merged (filter::EvalStats::MergeConcurrent): work counters
  // sum, round_trips/straggler_seconds take the slowest document's value.
  query::QueryStats stats;
  // Documents that contributed to the merge / distinct groups among them.
  size_t documents = 0;
  size_t groups = 0;
  // Documents that did NOT contribute (CorpusOptions::partial_ok only);
  // empty on an all-or-nothing router or a fully healthy corpus.
  std::vector<MissingDoc> missing;
};

class Router {
 public:
  // Opens every document's stack from the catalog: slice endpoints are
  // dialed as unix sockets, or opened as local slice files when
  // options.local is set. `map` must outlive the router; `seeds` may give
  // individual documents their own seed (strongly recommended for documents
  // sharing physical servers), all others use `default_seed`.
  static StatusOr<std::unique_ptr<Router>> Open(
      ShardCatalog catalog, const mapping::TagMap* map,
      const prg::Seed& default_seed,
      const std::map<std::string, prg::Seed>& seeds,
      const core::CorpusOptions& options);

  // Test/bench injection: pre-built slice filters per document id (slice
  // order), bypassing sockets and disk. Backends must outlive the router.
  static StatusOr<std::unique_ptr<Router>> FromBackends(
      ShardCatalog catalog, const mapping::TagMap* map,
      const prg::Seed& default_seed,
      const std::map<std::string, prg::Seed>& seeds,
      const core::CorpusOptions& options,
      const std::map<std::string, std::vector<filter::ServerFilter*>>&
          backends);

  ~Router();

  // Routes one parsed query to the named document's group. NotFound when
  // the catalog has no such document.
  StatusOr<DocResult> QueryDoc(std::string_view doc_id,
                               const query::Query& query,
                               query::MatchMode mode);

  // Fans one parsed query out to every document's group concurrently and
  // merges. Plain (fetch) queries concatenate per document; aggregate forms
  // merge additively. Any document's failure fails the corpus query with
  // the document and group named.
  StatusOr<CorpusResult> QueryCorpus(const query::Query& query,
                                     query::MatchMode mode);

  // --- Mutations (DESIGN.md §12) ------------------------------------------
  // Routes a two-phase INSERT/UPDATE/DELETE to the named document's group:
  // the document's own stack plans against its slices and seed, prepares on
  // every slice, then commits. Errors carry the §9-style blame prefix
  // "doc <id> (group <g>): ...", so a slice that rejects a plan (or a crash
  // mid-commit) is attributed across the router tier without dilution.
  StatusOr<DocMutation> UpdateDoc(std::string_view doc_id, uint32_t pre,
                                  std::string_view new_tag,
                                  const std::optional<std::string>& new_text);
  StatusOr<DocMutation> InsertDoc(std::string_view doc_id,
                                  uint32_t parent_pre,
                                  std::string_view fragment_xml);
  StatusOr<DocMutation> DeleteDoc(std::string_view doc_id, uint32_t pre);
  // Drives any undecided prepared txn on the document's group to a verdict
  // (commit if any slice committed, abort otherwise).
  Status RecoverDoc(std::string_view doc_id);

  const ShardCatalog& catalog() const { return catalog_; }
  size_t document_count() const { return stacks_.size(); }
  // Total bytes over every remote channel (0 for local/injected stacks).
  uint64_t bytes_on_wire() const;

  // Degraded-mode failover (DESIGN.md §11): consult `health` before every
  // query and fail fast with Unavailable — naming the slice server — when
  // a document's group has a kDown endpoint, instead of eating an io
  // timeout per query. Propagates to each stack's fan-out filter (the
  // catalog slice strings are the endpoints). `health` must outlive the
  // router; call before sharing the router across threads.
  void SetHealth(const control::HealthView* health);

  // Documents skipped at Open because their group was unreachable
  // (CorpusOptions::partial_ok only). Every corpus result repeats these
  // in CorpusResult::missing.
  const std::vector<MissingDoc>& unreachable() const { return unreachable_; }

 private:
  // The single-document client pipeline, owned per catalog entry.
  struct DocStack {
    const ShardEntry* entry = nullptr;  // points into catalog_
    std::unique_ptr<rpc::MultiServerSession> session;  // remote mode
    std::vector<std::unique_ptr<storage::NodeStore>> stores;  // local mode
    std::vector<std::unique_ptr<filter::ServerFilter>> backends;
    std::unique_ptr<filter::ServerFilter> owned_filter;
    // The fan-out filter when the stack has one (owned_filter or the
    // session's); health propagation target. Null for single-backend
    // injected/local stacks — the router-level check covers those.
    filter::MultiServerFilter* fanout = nullptr;
    filter::ServerFilter* view = nullptr;
    std::unique_ptr<filter::ClientFilter> client;
    std::unique_ptr<query::SimpleEngine> simple;
    std::unique_ptr<query::AdvancedEngine> advanced;
    std::unique_ptr<agg::AggregationEngine> agg;
    std::unique_ptr<encode::Mutator> mutator;  // mutation planner (§12)
    query::QueryEngine* engine = nullptr;  // selected by options.engine
  };

  Router(ShardCatalog catalog, const mapping::TagMap* map,
         core::CorpusOptions options)
      : catalog_(std::move(catalog)), map_(map), options_(options) {}

  // Builds the client half of a stack (filter, engines) over stack->view.
  Status FinishStack(DocStack* stack, const gf::Ring& ring,
                     const prg::Seed& seed);

  // Runs one query against one stack; errors come back unprefixed.
  StatusOr<DocResult> RunOnStack(DocStack* stack, const query::Query& query,
                                 query::MatchMode mode);

  static Status Attribute(const Status& status, const ShardEntry& entry);

  // The stack owning `doc_id`, or the attributed open-time/NotFound error.
  StatusOr<DocStack*> FindStack(std::string_view doc_id);

  // Prepares + commits an already planned mutation on the stack's group;
  // errors come back unprefixed (callers attribute).
  StatusOr<DocMutation> DriveOnStack(DocStack* stack,
                                     encode::PlannedMutation planned);

  // Unavailable naming the first kDown slice server of `entry`, or OK.
  Status CheckHealth(const ShardEntry& entry) const;

  ShardCatalog catalog_;
  const mapping::TagMap* map_;
  core::CorpusOptions options_;
  const control::HealthView* health_ = nullptr;
  std::vector<std::unique_ptr<DocStack>> stacks_;  // catalog order
  std::map<std::string, DocStack*, std::less<>> by_doc_;
  std::vector<MissingDoc> unreachable_;  // open-time skips (partial_ok)
};

// Merges another document's aggregate into `into` (additive across shards;
// group-by unions groups by name). The first merge into a default
// constructed Result adopts `from`'s shape. Exposed for tests.
void MergeAggregate(agg::Result* into, const agg::Result& from, bool first);

}  // namespace ssdb::shard

#endif  // SSDB_SHARD_ROUTER_H_
