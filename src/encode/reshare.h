/// Mutator (DESIGN.md §12): the client-side planner for secret-shared
/// INSERT/UPDATE/DELETE. A mutation re-shares only the touched subtree plus
/// its root path — every re-shared node draws a fresh PRG nonce from the
/// document's watermark, gets a freshly split polynomial, rebuilt aggregate
/// columns (§8), a rebuilt verification track (§9, slice 0) and a re-sealed
/// payload — and ships as one storage::MutationPlan per share slice, applied
/// through the stores' two-phase prepare/commit protocol.
///
/// The planner reads the document only through the ServerFilter view: root
/// path metas, the path's column blobs (unmasked client-side with the PRG),
/// and the polynomials of the path nodes' children, so planning costs
/// O(subtree + Σ fanout along the path) server work — never O(document).

#ifndef SSDB_ENCODE_RESHARE_H_
#define SSDB_ENCODE_RESHARE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "filter/server_filter.h"
#include "gf/ring.h"
#include "mapping/tag_map.h"
#include "prg/prg.h"
#include "storage/mutation.h"
#include "util/statusor.h"

namespace ssdb::encode {

// What a planned mutation touched — the proportionality contract: cost
// scales with the mutated subtree and its root path, not the document.
struct MutateStats {
  uint64_t path_nodes = 0;        // root-path nodes re-shared
  uint64_t subtree_nodes = 0;     // nodes inserted / deleted (1 for UPDATE)
  uint64_t children_fetched = 0;  // sibling polynomials reconstructed
  uint64_t reshared_bytes = 0;    // upsert payload bytes across all slices
};

// A fully planned mutation, ready for the two-phase drive: txn is
// base_version + 1 and plans[i] goes to share slice i.
struct PlannedMutation {
  uint64_t txn = 0;
  std::vector<storage::MutationPlan> plans;
  MutateStats stats;
};

class Mutator {
 public:
  // `map` and `filter` must outlive the mutator. `filter` is the client's
  // server view — a fan-out for m > 1, whose MutationStates() tells the
  // planner how many slices to build plans for.
  Mutator(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
          filter::ServerFilter* filter);

  // Re-tags node `pre` to `new_tag` (empty = keep the tag) and/or replaces
  // its text (sealed-content databases only). Re-shares the root path; when
  // the tag actually changes, ancestor polynomials are rebuilt from their
  // children's, so the cost is Σ fanout along the path.
  StatusOr<PlannedMutation> PlanUpdate(
      uint32_t pre, std::string_view new_tag,
      const std::optional<std::string>& new_text);

  // Parses `fragment_xml` (one rooted element) and plans its insertion as
  // the LAST child of node `parent_pre`. Following nodes shift right by the
  // fragment size; shifted rows keep their shares (addressed by their
  // recorded nonce), so only the fragment and the root path are re-shared.
  StatusOr<PlannedMutation> PlanInsert(uint32_t parent_pre,
                                       std::string_view fragment_xml);

  // Plans removal of the whole subtree rooted at `pre` (not the document
  // root). Following nodes shift left by the subtree size.
  StatusOr<PlannedMutation> PlanDelete(uint32_t pre);

 private:
  gf::Ring ring_;
  const mapping::TagMap& map_;
  prg::Prg prg_;
  filter::ServerFilter* filter_;
};

}  // namespace ssdb::encode

#endif  // SSDB_ENCODE_RESHARE_H_
