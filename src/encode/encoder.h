/// Streaming encoder — the paper's MySQLEncode (§5.1). Parses XML with the
/// SAX parser (memory proportional to tree depth), assigns pre/post/parent
/// numbers, builds each node's polynomial bottom-up, splits it into a
/// pseudorandom client share (discarded — regenerable from the seed) and
/// one server share per configured server, and inserts rows
/// (pre, post, parent, share) into each server's NodeStore.
///
/// Two encoding paths (ablation A1 in DESIGN.md §4):
///  * evaluation domain (default): a node's evaluation vector is
///    (g^i - map(tag)) * prod(children), O(q) per node, with one inverse
///    DFT per node for coefficient storage;
///  * coefficient domain: ring convolution per child, O(q^2) — the naive
///    reading of the paper.
///
/// Multi-server fan-out (DESIGN.md §5): with m stores, slice i >= 1 of each
/// node polynomial is PRG-derived (never more than one slice materialized at
/// a time) and slice 0 is the remainder, so f = c + s_0 + ... + s_{m-1}.
/// Structure columns are replicated to every store; the sealed payload (§4
/// extension) lives only on the primary (slice 0). With one store the
/// output is bit-identical to the classic 2-party split.

#ifndef SSDB_ENCODE_ENCODER_H_
#define SSDB_ENCODE_ENCODER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gf/dft.h"
#include "gf/ring.h"
#include "mapping/tag_map.h"
#include "prg/prg.h"
#include "storage/node_store.h"
#include "util/statusor.h"

namespace ssdb::encode {

struct EncodeOptions {
  // Apply the §4 trie transformation to text content first (data becomes
  // searchable). Off: text nodes are ignored, as in the paper's §3 scheme.
  bool trie = false;
  bool trie_compressed = true;
  // false selects the coefficient-domain path (ablation).
  bool use_eval_domain = true;
  // §4 extension: store "tag-name \n direct-text", stream-encrypted under
  // the seed, alongside each node's share so matched nodes can be revealed
  // client-side. The server sees only ciphertext.
  bool seal_content = false;
  // DESIGN.md §8: store each node's masked aggregate-column slice (7 uint32
  // words per mapped tag value, agg/columns.h) so servers can answer
  // COUNT/SUM/EXISTS/GROUP-BY with one word per group instead of the client
  // fetching the candidate set. Costs 28·|map| bytes per node per slice;
  // disable for minimal storage or very large maps on the disk backend.
  bool aggregate_columns = true;
  // DESIGN.md §9: additionally store the aggregate *verification track* on
  // slice 0 — per aggregate word a masked wide share (uint64) and a masked
  // keyed-checksum share (uint64), so verified aggregate replies carry proof
  // words a tampering server cannot forge (failure probability ≤ 2⁻³²).
  // Costs 112·|map| bytes per node on slice 0 only, which exceeds the 4 KiB
  // disk page for large maps — hence opt-in (`ssdb_encode --verify-agg`).
  // Requires aggregate_columns.
  bool verify_aggregate = false;
};

struct EncodeResult {
  uint64_t node_count = 0;
  uint64_t max_depth = 0;
  uint64_t input_bytes = 0;
  uint64_t share_bytes = 0;   // serialized polynomial payload, all slices
  uint64_t agg_bytes = 0;     // aggregate-column payload, all slices (§8)
  uint64_t verify_bytes = 0;  // verification-track payload, slice 0 (§9)
};

class Encoder {
 public:
  // `store` must be empty; the map must cover every tag in the document
  // (plus the trie alphabet when options.trie is set).
  Encoder(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
          storage::NodeStore* store, const EncodeOptions& options = {});

  // m-server variant: writes share slice i of every node polynomial to
  // stores[i] (all must be empty). stores.size() is m; a single store is
  // the classic split.
  Encoder(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
          std::vector<storage::NodeStore*> stores,
          const EncodeOptions& options = {});

  StatusOr<EncodeResult> EncodeString(std::string_view xml);
  StatusOr<EncodeResult> EncodeFile(const std::string& path);

 private:
  gf::Ring ring_;
  gf::Evaluator evaluator_;
  const mapping::TagMap& map_;
  prg::Prg prg_;
  std::vector<storage::NodeStore*> stores_;  // stores_[i] holds slice i
  EncodeOptions options_;
};

}  // namespace ssdb::encode

#endif  // SSDB_ENCODE_ENCODER_H_
