#include "encode/reshare.h"

#include <algorithm>
#include <map>
#include <utility>

#include "agg/columns.h"
#include "xml/sax.h"

namespace ssdb::encode {
namespace {

// The five bottom-up accumulators of encode/encoder.cc's Close(), recovered
// from a node's stored plain columns. Every stored column is a projection of
// this state plus the node's own tag, so a mutation can edit the state and
// re-derive the columns with the encoder's exact formulas.
struct ColState {
  uint32_t own_index = 0;  // rank of the node's tag among mapped values
  std::vector<agg::Word> mult;           // subtree tag histogram (incl. self)
  std::vector<agg::Word> child_equal;    // per-tag direct-child count
  std::vector<agg::Word> child_contain;  // children whose subtree contains τ
  std::vector<agg::Word> desc_contain;   // descendants whose subtree contains τ
  std::vector<agg::Word> desc_mult;      // Σ over descendants of their mult
};

ColState ZeroState(size_t value_count) {
  ColState state;
  state.mult.assign(value_count, 0);
  state.child_equal.assign(value_count, 0);
  state.child_contain.assign(value_count, 0);
  state.desc_contain.assign(value_count, 0);
  state.desc_mult.assign(value_count, 0);
  return state;
}

// Folds a completed child into a parent's accumulators — the same arithmetic
// as the encoder's parent fold-in, so a state built by AddChild matches what
// a fresh encode of the mutated document would produce.
void AddChild(ColState* parent, const ColState& child) {
  parent->child_equal[child.own_index] += 1;
  const size_t T = parent->mult.size();
  for (size_t t = 0; t < T; ++t) {
    agg::Word contains = child.mult[t] > 0 ? 1 : 0;
    parent->child_contain[t] += contains;
    parent->desc_contain[t] += child.desc_contain[t] + contains;
    parent->desc_mult[t] += child.desc_mult[t] + child.mult[t];
    parent->mult[t] += child.mult[t];
  }
}

// Exact inverse of AddChild (counts are unsigned; the true values never go
// negative because the child really is accounted in the parent).
void RemoveChild(ColState* parent, const ColState& child) {
  parent->child_equal[child.own_index] -= 1;
  const size_t T = parent->mult.size();
  for (size_t t = 0; t < T; ++t) {
    agg::Word contains = child.mult[t] > 0 ? 1 : 0;
    parent->child_contain[t] -= contains;
    parent->desc_contain[t] -= child.desc_contain[t] + contains;
    parent->desc_mult[t] -= child.desc_mult[t] + child.mult[t];
    parent->mult[t] -= child.mult[t];
  }
}

// Inverse of RecoverState: the seven stored columns the encoder derives in
// Close(), from the accumulator state.
std::vector<agg::Word> StoredColumns(const ColState& state) {
  const size_t T = state.mult.size();
  std::vector<agg::Word> out(agg::WordsPerNode(T), 0);
  auto col = [&](agg::Col c) { return out.data() + agg::WordIndex(c, T, 0); };
  col(agg::Col::kEqualSelf)[state.own_index] = 1;
  for (size_t t = 0; t < T; ++t) {
    col(agg::Col::kEqualChild)[t] = state.child_equal[t];
    col(agg::Col::kEqualDesc)[t] =
        state.mult[t] - (t == state.own_index ? 1 : 0);
    col(agg::Col::kContainSelf)[t] = state.mult[t] > 0 ? 1 : 0;
    col(agg::Col::kContainChild)[t] = state.child_contain[t];
    col(agg::Col::kContainDesc)[t] = state.desc_contain[t];
    col(agg::Col::kMultDesc)[t] = state.desc_mult[t];
  }
  return out;
}

StatusOr<ColState> RecoverState(const std::vector<agg::Word>& plain) {
  const size_t T = plain.size() / agg::kColCount;
  ColState state = ZeroState(T);
  size_t ones = 0;
  for (size_t t = 0; t < T; ++t) {
    agg::Word self = plain[agg::WordIndex(agg::Col::kEqualSelf, T, t)];
    if (self == 1) {
      state.own_index = static_cast<uint32_t>(t);
      ++ones;
    } else if (self != 0) {
      ones = 2;  // force the corruption path
      break;
    }
  }
  if (ones != 1) {
    return Status::Corruption(
        "node aggregate columns are corrupt: EqualSelf is not one-hot");
  }
  for (size_t t = 0; t < T; ++t) {
    state.mult[t] = plain[agg::WordIndex(agg::Col::kEqualDesc, T, t)] +
                    plain[agg::WordIndex(agg::Col::kEqualSelf, T, t)];
    state.child_equal[t] = plain[agg::WordIndex(agg::Col::kEqualChild, T, t)];
    state.child_contain[t] =
        plain[agg::WordIndex(agg::Col::kContainChild, T, t)];
    state.desc_contain[t] = plain[agg::WordIndex(agg::Col::kContainDesc, T, t)];
    state.desc_mult[t] = plain[agg::WordIndex(agg::Col::kMultDesc, T, t)];
  }
  return state;
}

// One node of a parsed INSERT fragment, fully encoded client-side: local
// pre/post/parent numbering (1-based, 0 = fragment root's parent), the
// accumulator state and stored columns, and the node polynomial.
struct FragNode {
  uint32_t local_pre = 0;
  uint32_t local_post = 0;
  uint32_t local_parent = 0;
  gf::Elem tag_value = 0;
  std::string tag_name;
  std::string text;
  ColState state;
  std::vector<agg::Word> stored;
  gf::RingElem poly;
};

// SAX handler running the encoder's Close() recurrences over an INSERT
// fragment — coefficient-domain only (fragments are small).
class FragmentBuilder : public xml::SaxHandler {
 public:
  FragmentBuilder(const gf::Ring& ring, const mapping::TagMap& map)
      : ring_(ring), map_(map) {}

  Status StartElement(std::string_view name,
                      const xml::AttributeList&) override {
    StatusOr<gf::Elem> value = map_.Lookup(name);
    if (!value.ok()) {
      return Status::InvalidArgument("tag not covered by the map file: " +
                                     std::string(name));
    }
    StatusOr<uint32_t> index = map_.ValueIndex(*value);
    SSDB_RETURN_IF_ERROR(index.status());
    Frame frame;
    frame.node_index = nodes_.size();
    nodes_.emplace_back();
    FragNode& node = nodes_.back();
    node.local_pre = static_cast<uint32_t>(nodes_.size());
    node.local_parent =
        stack_.empty() ? 0 : nodes_[stack_.back().node_index].local_pre;
    node.tag_value = *value;
    node.tag_name = std::string(name);
    node.state = ZeroState(map_.size());
    node.state.own_index = *index;
    frame.child_coeffs = ring_.One();
    stack_.push_back(std::move(frame));
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    FragNode& node = nodes_[frame.node_index];
    node.local_post = ++post_counter_;
    node.text = std::move(frame.text);
    node.state.mult[node.state.own_index] += 1;
    node.stored = StoredColumns(node.state);
    node.poly = ring_.MulXMinus(frame.child_coeffs, node.tag_value);
    if (!stack_.empty()) {
      Frame& parent = stack_.back();
      AddChild(&nodes_[parent.node_index].state, node.state);
      parent.child_coeffs = ring_.Mul(parent.child_coeffs, node.poly);
    }
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    if (!stack_.empty()) stack_.back().text += std::string(text);
    return Status::OK();
  }

  std::vector<FragNode> TakeNodes() { return std::move(nodes_); }

 private:
  struct Frame {
    size_t node_index = 0;
    gf::RingElem child_coeffs;  // running product of completed children
    std::string text;
  };

  const gf::Ring& ring_;
  const mapping::TagMap& map_;
  std::vector<FragNode> nodes_;  // pre-order; local_pre = index + 1
  std::vector<Frame> stack_;
  uint32_t post_counter_ = 0;
};

// One root-path node with everything the planner recovered about it.
struct PathNode {
  filter::NodeMeta meta;
  ColState state;
  std::string sealed_plain;  // unsealed "tag\ntext"; empty when sealing off
};

struct LoadedPath {
  std::vector<PathNode> nodes;  // [target, parent, ..., root]
  bool sealed_db = false;
  bool verify_db = false;
};

// Children metas per path level plus reconstructed polynomials of every
// off-path child (the on-path child's poly is recomputed, not fetched).
struct Siblings {
  std::vector<std::vector<filter::NodeMeta>> children;  // indexed by level
  std::map<uint32_t, gf::RingElem> polys;               // keyed by child pre
  uint64_t fetched = 0;
};

// Everything one Plan* call needs; built fresh per call so the Mutator
// itself stays stateless and trivially thread-compatible.
class Planner {
 public:
  Planner(const gf::Ring& ring, const mapping::TagMap& map,
          const prg::Prg& prg, filter::ServerFilter* filter)
      : ring_(ring), map_(map), prg_(prg), filter_(filter) {}

  StatusOr<PlannedMutation> Update(uint32_t pre, std::string_view new_tag,
                                   const std::optional<std::string>& new_text);
  StatusOr<PlannedMutation> Insert(uint32_t parent_pre,
                                   std::string_view fragment_xml);
  StatusOr<PlannedMutation> Delete(uint32_t pre);

 private:
  struct TxnContext {
    size_t m = 0;               // share-slice count
    uint64_t base_version = 0;  // agreed committed version
    uint64_t next_nonce = 0;    // fresh-nonce watermark
  };

  StatusOr<TxnContext> BeginPlan();
  StatusOr<uint64_t> AllocNonce(TxnContext* ctx);
  StatusOr<LoadedPath> LoadPath(uint32_t pre);
  StatusOr<std::vector<agg::Word>> PlainColumns(const std::string& blob,
                                                uint64_t nonce, size_t m);
  StatusOr<std::vector<gf::RingElem>> FetchPolys(
      const std::vector<filter::NodeMeta>& metas);
  StatusOr<Siblings> LoadSiblings(const LoadedPath& path, size_t start_level);
  gf::Elem TagValueOf(const PathNode& node) const {
    return map_.values_in_order()[node.state.own_index];
  }
  void SplitNode(uint32_t pre, uint32_t post, uint32_t parent, uint64_t nonce,
                 const gf::RingElem& poly,
                 const std::vector<agg::Word>& plain_cols,
                 const std::string& sealed_plain, bool sealed_db,
                 bool verify_db, std::vector<storage::MutationPlan>* plans,
                 MutateStats* stats);
  std::vector<storage::MutationPlan> MakePlans(const TxnContext& ctx,
                                               storage::MutationKind kind);

  const gf::Ring& ring_;
  const mapping::TagMap& map_;
  const prg::Prg& prg_;
  filter::ServerFilter* filter_;
  std::vector<uint64_t> alpha_;  // §9 keys, filled lazily for verify DBs
};

StatusOr<Planner::TxnContext> Planner::BeginPlan() {
  SSDB_ASSIGN_OR_RETURN(std::vector<storage::MutationState> states,
                        filter_->MutationStates());
  if (states.empty()) {
    return Status::Internal("no mutation states reported");
  }
  TxnContext ctx;
  ctx.m = states.size();
  ctx.base_version = states[0].version;
  ctx.next_nonce = prg::kFirstMutationNonce;
  for (size_t i = 0; i < states.size(); ++i) {
    if (states[i].pending_txn != 0) {
      return Status::FailedPrecondition(
          "server " + std::to_string(i) + " has an undecided mutation (txn " +
          std::to_string(states[i].pending_txn) +
          "); recover before planning a new one");
    }
    if (states[i].version != ctx.base_version) {
      return Status::FailedPrecondition(
          "server slices disagree on the committed version (server 0 at " +
          std::to_string(ctx.base_version) + ", server " + std::to_string(i) +
          " at " + std::to_string(states[i].version) +
          "); recover before planning a new one");
    }
    ctx.next_nonce = std::max(ctx.next_nonce, states[i].next_nonce);
  }
  return ctx;
}

StatusOr<uint64_t> Planner::AllocNonce(TxnContext* ctx) {
  if (ctx->next_nonce >= prg::kMutationNonceLimit) {
    return Status::FailedPrecondition(
        "mutation nonce space exhausted (2^40 re-shares); re-encode the "
        "document to reset the watermark");
  }
  return ctx->next_nonce++;
}

std::vector<storage::MutationPlan> Planner::MakePlans(
    const TxnContext& ctx, storage::MutationKind kind) {
  std::vector<storage::MutationPlan> plans(ctx.m);
  for (storage::MutationPlan& plan : plans) {
    plan.kind = kind;
    plan.base_version = ctx.base_version;
  }
  return plans;
}

StatusOr<std::vector<agg::Word>> Planner::PlainColumns(const std::string& blob,
                                                       uint64_t nonce,
                                                       size_t m) {
  const size_t T = map_.size();
  std::vector<agg::Word> words(agg::WordsPerNode(T));
  for (size_t w = 0; w < words.size(); ++w) {
    words[w] = agg::BlobWord(blob, w);
  }
  // plain = slice 0 (the stored remainder) + the PRG-defined slices 1..m-1
  // + the client's mask — the inverse of the encoder's split.
  for (uint32_t i = 0; i < m; ++i) {
    prg::Prg::Stream mask = prg_.StreamForAggColumns(nonce, i);
    for (agg::Word& word : words) word += mask.NextUint32();
  }
  return words;
}

StatusOr<LoadedPath> Planner::LoadPath(uint32_t pre) {
  SSDB_ASSIGN_OR_RETURN(std::vector<storage::MutationState> states,
                        filter_->MutationStates());
  const size_t m = states.size();
  std::vector<filter::NodeMeta> metas;
  SSDB_ASSIGN_OR_RETURN(filter::NodeMeta meta, filter_->GetNode(pre));
  metas.push_back(meta);
  while (metas.back().parent != 0) {
    SSDB_ASSIGN_OR_RETURN(meta, filter_->GetNode(metas.back().parent));
    if (meta.pre >= metas.back().pre) {
      return Status::Corruption(
          "parent pointers do not form a rooted path (pre numbering broken)");
    }
    metas.push_back(meta);
  }
  std::vector<uint32_t> pres;
  pres.reserve(metas.size());
  for (const filter::NodeMeta& node : metas) pres.push_back(node.pre);
  SSDB_ASSIGN_OR_RETURN(std::vector<storage::ColumnBlobs> cols,
                        filter_->FetchColumnsBatch(pres));
  if (cols.size() != metas.size()) {
    return Status::Internal("column fetch returned the wrong count");
  }
  const size_t T = map_.size();
  LoadedPath out;
  for (size_t i = 0; i < metas.size(); ++i) {
    if (cols[i].agg.empty()) {
      return Status::FailedPrecondition(
          "node " + std::to_string(metas[i].pre) +
          " has no aggregate columns — mutations need a database encoded "
          "with aggregates (DESIGN.md §12)");
    }
    if (agg::BlobValueCount(cols[i].agg) != T) {
      return Status::FailedPrecondition(
          "tag map size does not match the database's aggregate columns");
    }
    SSDB_ASSIGN_OR_RETURN(
        std::vector<agg::Word> plain,
        PlainColumns(cols[i].agg, metas[i].ShareNonce(), m));
    SSDB_ASSIGN_OR_RETURN(ColState state, RecoverState(plain));
    out.nodes.push_back(PathNode{metas[i], std::move(state), std::string()});
  }
  out.verify_db = !cols[0].verify.empty();
  for (size_t i = 0; i < metas.size(); ++i) {
    SSDB_ASSIGN_OR_RETURN(std::string sealed,
                          filter_->FetchSealed(metas[i].pre));
    if (i == 0) {
      out.sealed_db = !sealed.empty();
      if (!out.sealed_db) break;
    }
    std::string plain = prg_.UnsealPayload(metas[i].ShareNonce(), sealed);
    if (plain.find('\n') == std::string::npos) {
      return Status::Corruption("sealed payload has no tag line (node " +
                                std::to_string(metas[i].pre) + ")");
    }
    out.nodes[i].sealed_plain = std::move(plain);
  }
  return out;
}

StatusOr<std::vector<gf::RingElem>> Planner::FetchPolys(
    const std::vector<filter::NodeMeta>& metas) {
  std::vector<uint32_t> pres;
  pres.reserve(metas.size());
  for (const filter::NodeMeta& node : metas) pres.push_back(node.pre);
  std::vector<gf::RingElem> sums;
  if (!pres.empty()) {
    SSDB_ASSIGN_OR_RETURN(sums, filter_->FetchShareBatch(pres));
    if (sums.size() != metas.size()) {
      return Status::Internal("share fetch returned the wrong count");
    }
  }
  // f = c + Σ slices: the fan-out already summed the server slices.
  for (size_t i = 0; i < sums.size(); ++i) {
    ring_.AddInto(&sums[i], prg_.ClientShare(ring_, metas[i].ShareNonce()));
  }
  return sums;
}

StatusOr<Siblings> Planner::LoadSiblings(const LoadedPath& path,
                                         size_t start_level) {
  std::vector<uint32_t> pres;
  for (size_t j = start_level; j < path.nodes.size(); ++j) {
    pres.push_back(path.nodes[j].meta.pre);
  }
  SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<filter::NodeMeta>> lists,
                        filter_->ChildrenBatch(pres));
  if (lists.size() != pres.size()) {
    return Status::Internal("children fetch returned the wrong count");
  }
  Siblings out;
  out.children.resize(path.nodes.size());
  for (size_t j = 0; j < lists.size(); ++j) {
    out.children[start_level + j] = std::move(lists[j]);
  }
  std::vector<filter::NodeMeta> fetch;
  for (size_t j = start_level; j < path.nodes.size(); ++j) {
    for (const filter::NodeMeta& child : out.children[j]) {
      // The on-path child's polynomial is recomputed, never fetched.
      if (j >= 1 && child.pre == path.nodes[j - 1].meta.pre) continue;
      fetch.push_back(child);
    }
  }
  SSDB_ASSIGN_OR_RETURN(std::vector<gf::RingElem> polys, FetchPolys(fetch));
  for (size_t i = 0; i < fetch.size(); ++i) {
    out.polys.emplace(fetch[i].pre, std::move(polys[i]));
  }
  out.fetched = fetch.size();
  return out;
}

void Planner::SplitNode(uint32_t pre, uint32_t post, uint32_t parent,
                        uint64_t nonce, const gf::RingElem& poly,
                        const std::vector<agg::Word>& plain_cols,
                        const std::string& sealed_plain, bool sealed_db,
                        bool verify_db,
                        std::vector<storage::MutationPlan>* plans,
                        MutateStats* stats) {
  const size_t m = plans->size();
  const size_t T = map_.size();
  std::vector<agg::Word> agg_words = plain_cols;
  std::string verify_blob;
  if (verify_db) {
    if (alpha_.empty()) {
      alpha_.reserve(T);
      for (uint32_t t = 0; t < T; ++t) alpha_.push_back(prg_.AggVerifyKey(t));
    }
    // Rebuild the §9 track from the still-plain words, interleaving mask
    // draws exactly as the encoder does.
    std::vector<uint64_t> wide(agg_words.size());
    std::vector<uint64_t> proof(agg_words.size());
    prg::Prg::Stream vmask = prg_.StreamForVerifyColumns(nonce);
    for (size_t w = 0; w < agg_words.size(); ++w) {
      uint64_t plain = agg_words[w];
      wide[w] = plain - vmask.NextUint64();
      proof[w] = alpha_[w % T] * plain - vmask.NextUint64();
    }
    verify_blob = agg::SerializeVerify(wide, proof);
  }
  prg::Prg::Stream mask = prg_.StreamForAggColumns(nonce, 0);
  for (agg::Word& word : agg_words) word -= mask.NextUint32();
  gf::RingElem remainder = ring_.Sub(poly, prg_.ClientShare(ring_, nonce));
  storage::NodeRow row;
  row.pre = pre;
  row.post = post;
  row.parent = parent;
  row.nonce = nonce;
  for (size_t i = m; i-- > 1;) {
    gf::RingElem slice =
        prg_.ServerSliceShare(ring_, nonce, static_cast<uint32_t>(i));
    row.share = ring_.Serialize(slice);
    prg::Prg::Stream slice_mask =
        prg_.StreamForAggColumns(nonce, static_cast<uint32_t>(i));
    std::vector<agg::Word> slice_words(agg_words.size());
    for (size_t w = 0; w < slice_words.size(); ++w) {
      slice_words[w] = slice_mask.NextUint32();
      agg_words[w] -= slice_words[w];
    }
    row.agg = agg::SerializeWords(slice_words);
    stats->reshared_bytes += row.share.size() + row.agg.size();
    (*plans)[i].upserts.push_back(row);
    remainder = ring_.Sub(remainder, slice);
  }
  row.share = ring_.Serialize(remainder);
  row.agg = agg::SerializeWords(agg_words);
  row.verify = std::move(verify_blob);
  if (sealed_db) row.sealed = prg_.SealPayload(nonce, sealed_plain);
  stats->reshared_bytes += row.share.size() + row.agg.size() +
                           row.verify.size() + row.sealed.size();
  (*plans)[0].upserts.push_back(std::move(row));
}

StatusOr<PlannedMutation> Planner::Update(
    uint32_t pre, std::string_view new_tag,
    const std::optional<std::string>& new_text) {
  if (new_tag.empty() && !new_text.has_value()) {
    return Status::InvalidArgument("update changes neither tag nor text");
  }
  SSDB_ASSIGN_OR_RETURN(TxnContext ctx, BeginPlan());
  SSDB_ASSIGN_OR_RETURN(LoadedPath path, LoadPath(pre));
  if (new_text.has_value() && !path.sealed_db) {
    return Status::FailedPrecondition(
        "database was encoded without sealed content; there is no text to "
        "update");
  }
  const PathNode& target = path.nodes[0];
  uint32_t new_index = target.state.own_index;
  gf::Elem new_value = TagValueOf(target);
  if (!new_tag.empty()) {
    StatusOr<gf::Elem> value = map_.Lookup(new_tag);
    if (!value.ok()) {
      return Status::InvalidArgument("tag not covered by the map file: " +
                                     std::string(new_tag));
    }
    new_value = *value;
    SSDB_ASSIGN_OR_RETURN(new_index, map_.ValueIndex(new_value));
  }
  const bool retag = new_index != target.state.own_index;

  // Accumulators after the re-tag, propagated root-ward child-by-child.
  std::vector<ColState> new_states;
  new_states.reserve(path.nodes.size());
  new_states.push_back(target.state);
  if (retag) {
    new_states[0].mult[target.state.own_index] -= 1;
    new_states[0].mult[new_index] += 1;
    new_states[0].own_index = new_index;
  }
  for (size_t j = 1; j < path.nodes.size(); ++j) {
    new_states.push_back(path.nodes[j].state);
    RemoveChild(&new_states[j], path.nodes[j - 1].state);
    AddChild(&new_states[j], new_states[j - 1]);
  }

  // New polynomials. A pure text edit leaves every polynomial's value
  // unchanged, so each path node's poly is reconstructed directly; a re-tag
  // changes the target's factor in every ancestor product, so those are
  // rebuilt from the children.
  std::vector<gf::RingElem> new_polys(path.nodes.size());
  MutateStats stats;
  if (!retag) {
    std::vector<filter::NodeMeta> metas;
    for (const PathNode& node : path.nodes) metas.push_back(node.meta);
    SSDB_ASSIGN_OR_RETURN(new_polys, FetchPolys(metas));
  } else {
    SSDB_ASSIGN_OR_RETURN(Siblings siblings, LoadSiblings(path, 0));
    stats.children_fetched = siblings.fetched;
    for (size_t j = 0; j < path.nodes.size(); ++j) {
      gf::RingElem product = ring_.One();
      for (const filter::NodeMeta& child : siblings.children[j]) {
        if (j >= 1 && child.pre == path.nodes[j - 1].meta.pre) continue;
        product = ring_.Mul(product, siblings.polys.at(child.pre));
      }
      if (j >= 1) product = ring_.Mul(product, new_polys[j - 1]);
      gf::Elem tag = j == 0 ? new_value : TagValueOf(path.nodes[j]);
      new_polys[j] = ring_.MulXMinus(product, tag);
    }
  }

  // Sealed payloads: ancestors re-seal unchanged, the target's tag line and
  // text are rewritten as requested.
  std::vector<std::string> new_plain(path.nodes.size());
  if (path.sealed_db) {
    for (size_t j = 1; j < path.nodes.size(); ++j) {
      new_plain[j] = path.nodes[j].sealed_plain;
    }
    size_t cut = target.sealed_plain.find('\n');
    std::string tag_line = new_tag.empty()
                               ? target.sealed_plain.substr(0, cut)
                               : std::string(new_tag);
    std::string text = new_text.has_value()
                           ? *new_text
                           : target.sealed_plain.substr(cut + 1);
    new_plain[0] = tag_line + "\n" + text;
  }

  PlannedMutation out;
  out.txn = ctx.base_version + 1;
  out.plans = MakePlans(ctx, storage::MutationKind::kUpdate);
  out.stats = stats;
  for (size_t j = 0; j < path.nodes.size(); ++j) {
    SSDB_ASSIGN_OR_RETURN(uint64_t nonce, AllocNonce(&ctx));
    const filter::NodeMeta& meta = path.nodes[j].meta;
    SplitNode(meta.pre, meta.post, meta.parent, nonce, new_polys[j],
              StoredColumns(new_states[j]), new_plain[j], path.sealed_db,
              path.verify_db, &out.plans, &out.stats);
  }
  for (storage::MutationPlan& plan : out.plans) {
    plan.next_nonce = ctx.next_nonce;
  }
  out.stats.path_nodes = path.nodes.size();
  out.stats.subtree_nodes = 1;
  return out;
}

StatusOr<PlannedMutation> Planner::Delete(uint32_t pre) {
  SSDB_ASSIGN_OR_RETURN(TxnContext ctx, BeginPlan());
  SSDB_ASSIGN_OR_RETURN(LoadedPath path, LoadPath(pre));
  if (path.nodes[0].meta.parent == 0) {
    return Status::InvalidArgument("cannot delete the document root");
  }
  const PathNode& victim = path.nodes[0];
  uint64_t subtree = 0;
  for (agg::Word count : victim.state.mult) subtree += count;
  const uint32_t S = static_cast<uint32_t>(subtree);

  std::vector<ColState> new_states(path.nodes.size());
  new_states[1] = path.nodes[1].state;
  RemoveChild(&new_states[1], victim.state);
  for (size_t j = 2; j < path.nodes.size(); ++j) {
    new_states[j] = path.nodes[j].state;
    RemoveChild(&new_states[j], path.nodes[j - 1].state);
    AddChild(&new_states[j], new_states[j - 1]);
  }

  SSDB_ASSIGN_OR_RETURN(Siblings siblings, LoadSiblings(path, 1));
  std::vector<gf::RingElem> new_polys(path.nodes.size());
  for (size_t j = 1; j < path.nodes.size(); ++j) {
    gf::RingElem product = ring_.One();
    for (const filter::NodeMeta& child : siblings.children[j]) {
      if (child.pre == path.nodes[j - 1].meta.pre) continue;
      product = ring_.Mul(product, siblings.polys.at(child.pre));
    }
    // At the parent the deleted child simply disappears from the product;
    // higher up the on-path child's new polynomial takes its place.
    if (j >= 2) product = ring_.Mul(product, new_polys[j - 1]);
    new_polys[j] = ring_.MulXMinus(product, TagValueOf(path.nodes[j]));
  }

  PlannedMutation out;
  out.txn = ctx.base_version + 1;
  out.plans = MakePlans(ctx, storage::MutationKind::kDelete);
  for (size_t j = 1; j < path.nodes.size(); ++j) {
    SSDB_ASSIGN_OR_RETURN(uint64_t nonce, AllocNonce(&ctx));
    const filter::NodeMeta& meta = path.nodes[j].meta;
    SplitNode(meta.pre, meta.post - S, meta.parent, nonce, new_polys[j],
              StoredColumns(new_states[j]), path.nodes[j].sealed_plain,
              path.sealed_db, path.verify_db, &out.plans, &out.stats);
  }
  for (storage::MutationPlan& plan : out.plans) {
    plan.next_nonce = ctx.next_nonce;
    plan.erase_lo = victim.meta.pre;
    plan.erase_hi = victim.meta.pre + S - 1;
    plan.shift_pre_gt = victim.meta.pre + S - 1;
    plan.shift_delta = -static_cast<int64_t>(S);
  }
  out.stats.path_nodes = path.nodes.size() - 1;
  out.stats.subtree_nodes = S;
  out.stats.children_fetched = siblings.fetched;
  return out;
}

StatusOr<PlannedMutation> Planner::Insert(uint32_t parent_pre,
                                          std::string_view fragment_xml) {
  SSDB_ASSIGN_OR_RETURN(TxnContext ctx, BeginPlan());
  SSDB_ASSIGN_OR_RETURN(LoadedPath path, LoadPath(parent_pre));
  FragmentBuilder builder(ring_, map_);
  xml::SaxParser parser;
  SSDB_RETURN_IF_ERROR(parser.Parse(fragment_xml, &builder));
  std::vector<FragNode> fragment = builder.TakeNodes();
  if (fragment.empty()) {
    return Status::InvalidArgument("insert fragment has no elements");
  }
  const uint32_t S = static_cast<uint32_t>(fragment.size());
  const PathNode& parent = path.nodes[0];
  uint64_t parent_size = 0;
  for (agg::Word count : parent.state.mult) parent_size += count;
  // Last pre of the parent's subtree: the fragment lands right after it.
  const uint32_t pre_anchor =
      parent.meta.pre + static_cast<uint32_t>(parent_size) - 1;
  if (static_cast<uint64_t>(pre_anchor) + S > 0xffffffffull) {
    return Status::InvalidArgument("document is out of pre-number space");
  }

  std::vector<ColState> new_states;
  new_states.reserve(path.nodes.size());
  new_states.push_back(parent.state);
  AddChild(&new_states[0], fragment[0].state);
  for (size_t j = 1; j < path.nodes.size(); ++j) {
    new_states.push_back(path.nodes[j].state);
    RemoveChild(&new_states[j], path.nodes[j - 1].state);
    AddChild(&new_states[j], new_states[j - 1]);
  }

  SSDB_ASSIGN_OR_RETURN(Siblings siblings, LoadSiblings(path, 0));
  std::vector<gf::RingElem> new_polys(path.nodes.size());
  for (size_t j = 0; j < path.nodes.size(); ++j) {
    gf::RingElem product = ring_.One();
    for (const filter::NodeMeta& child : siblings.children[j]) {
      if (j >= 1 && child.pre == path.nodes[j - 1].meta.pre) continue;
      product = ring_.Mul(product, siblings.polys.at(child.pre));
    }
    // The parent keeps all of its old children and gains the fragment root;
    // higher levels swap in the on-path child's new polynomial.
    product = ring_.Mul(product,
                        j == 0 ? fragment[0].poly : new_polys[j - 1]);
    new_polys[j] = ring_.MulXMinus(product, TagValueOf(path.nodes[j]));
  }

  PlannedMutation out;
  out.txn = ctx.base_version + 1;
  out.plans = MakePlans(ctx, storage::MutationKind::kInsert);
  for (const FragNode& node : fragment) {
    SSDB_ASSIGN_OR_RETURN(uint64_t nonce, AllocNonce(&ctx));
    uint32_t node_pre = pre_anchor + node.local_pre;
    uint32_t node_post = parent.meta.post + node.local_post - 1;
    uint32_t node_parent = node.local_parent == 0
                               ? parent.meta.pre
                               : pre_anchor + node.local_parent;
    std::string sealed_plain;
    if (path.sealed_db) sealed_plain = node.tag_name + "\n" + node.text;
    SplitNode(node_pre, node_post, node_parent, nonce, node.poly, node.stored,
              sealed_plain, path.sealed_db, path.verify_db, &out.plans,
              &out.stats);
  }
  for (size_t j = 0; j < path.nodes.size(); ++j) {
    SSDB_ASSIGN_OR_RETURN(uint64_t nonce, AllocNonce(&ctx));
    const filter::NodeMeta& meta = path.nodes[j].meta;
    SplitNode(meta.pre, meta.post + S, meta.parent, nonce, new_polys[j],
              StoredColumns(new_states[j]), path.nodes[j].sealed_plain,
              path.sealed_db, path.verify_db, &out.plans, &out.stats);
  }
  for (storage::MutationPlan& plan : out.plans) {
    plan.next_nonce = ctx.next_nonce;
    plan.shift_pre_gt = pre_anchor;
    plan.shift_delta = static_cast<int64_t>(S);
  }
  out.stats.path_nodes = path.nodes.size();
  out.stats.subtree_nodes = S;
  out.stats.children_fetched = siblings.fetched;
  return out;
}

}  // namespace

Mutator::Mutator(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
                 filter::ServerFilter* filter)
    : ring_(std::move(ring)),
      map_(map),
      prg_(std::move(prg)),
      filter_(filter) {}

StatusOr<PlannedMutation> Mutator::PlanUpdate(
    uint32_t pre, std::string_view new_tag,
    const std::optional<std::string>& new_text) {
  return Planner(ring_, map_, prg_, filter_).Update(pre, new_tag, new_text);
}

StatusOr<PlannedMutation> Mutator::PlanInsert(uint32_t parent_pre,
                                              std::string_view fragment_xml) {
  return Planner(ring_, map_, prg_, filter_).Insert(parent_pre, fragment_xml);
}

StatusOr<PlannedMutation> Mutator::PlanDelete(uint32_t pre) {
  return Planner(ring_, map_, prg_, filter_).Delete(pre);
}

}  // namespace ssdb::encode
