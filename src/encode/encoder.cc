#include "encode/encoder.h"

#include <algorithm>
#include <vector>

#include "agg/columns.h"
#include "trie/trie.h"
#include "util/file_util.h"
#include "xml/sax.h"

namespace ssdb::encode {
namespace {

// SAX handler that carries the whole encoding pipeline. One stack frame per
// open element holds the running product of completed child polynomials —
// in evaluation or coefficient form depending on the configured path.
class EncodingHandler : public xml::SaxHandler {
 public:
  EncodingHandler(const gf::Ring& ring, const gf::Evaluator& evaluator,
                  const mapping::TagMap& map, const prg::Prg& prg,
                  const std::vector<storage::NodeStore*>& stores,
                  const EncodeOptions& options)
      : ring_(ring),
        evaluator_(evaluator),
        map_(map),
        prg_(prg),
        stores_(stores),
        options_(options),
        value_count_(options.aggregate_columns ? map.size() : 0) {
    // Verification track (DESIGN.md §9): one client-held α key per mapped
    // value, drawn once up front from the bit 60+61 nonce subspace.
    if (options.verify_aggregate && value_count_ > 0) {
      alpha_.reserve(value_count_);
      for (uint32_t t = 0; t < value_count_; ++t) {
        alpha_.push_back(prg_.AggVerifyKey(t));
      }
    }
  }

  Status StartElement(std::string_view name,
                      const xml::AttributeList&) override {
    return Open(name);
  }

  Status EndElement(std::string_view) override { return Close(); }

  Status Characters(std::string_view text) override {
    if (options_.seal_content && !stack_.empty()) {
      stack_.back().direct_text += std::string(text);
    }
    if (!options_.trie) return Status::OK();  // §3 scheme: tags only
    // §4 scheme: expand the text into a trie of single-character elements.
    trie::Trie built =
        trie::BuildTrieFromText(text, options_.trie_compressed);
    return EmitTrie(*built.root());
  }

  EncodeResult TakeResult() {
    result_.node_count = node_count_;
    result_.max_depth = max_depth_;
    result_.share_bytes = share_bytes_;
    result_.agg_bytes = agg_bytes_;
    result_.verify_bytes = verify_bytes_;
    return result_;
  }

 private:
  struct Frame {
    uint32_t pre = 0;
    uint32_t parent = 0;
    gf::Elem tag_value = 0;
    uint32_t value_index = 0;  // rank of tag_value among the mapped values
    std::string tag_name;     // kept only when sealing
    std::string direct_text;  // kept only when sealing
    // Product of completed child polynomials; exactly one representation is
    // active, per options_.use_eval_domain.
    gf::EvalVector child_evals;   // starts all-ones
    gf::RingElem child_coeffs;    // starts at the ring's 1
    bool has_children = false;
    // Aggregate-column accumulators (DESIGN.md §8), indexed by value rank;
    // allocated only when aggregate columns are enabled. `mult` collects the
    // subtree tag histogram bottom-up (own tag added at Close); the other
    // four collect the child/descendant sums the stored columns need.
    std::vector<agg::Word> mult;
    std::vector<agg::Word> child_equal;
    std::vector<agg::Word> child_contain;
    std::vector<agg::Word> desc_contain;
    std::vector<agg::Word> desc_mult;
  };

  Status Open(std::string_view name) {
    StatusOr<gf::Elem> value = map_.Lookup(name);
    if (!value.ok()) {
      return Status::InvalidArgument("tag not covered by the map file: " +
                                     std::string(name));
    }
    Frame frame;
    frame.pre = ++pre_counter_;
    frame.parent = stack_.empty() ? 0 : stack_.back().pre;
    frame.tag_value = *value;
    if (options_.seal_content) frame.tag_name = std::string(name);
    if (value_count_ > 0) {
      StatusOr<uint32_t> index = map_.ValueIndex(*value);
      SSDB_RETURN_IF_ERROR(index.status());
      frame.value_index = *index;
      frame.mult.assign(value_count_, 0);
      frame.child_equal.assign(value_count_, 0);
      frame.child_contain.assign(value_count_, 0);
      frame.desc_contain.assign(value_count_, 0);
      frame.desc_mult.assign(value_count_, 0);
    }
    if (options_.use_eval_domain) {
      frame.child_evals.assign(ring_.n(), 1);
    } else {
      frame.child_coeffs = ring_.One();
    }
    stack_.push_back(std::move(frame));
    max_depth_ = std::max(max_depth_, stack_.size());
    return Status::OK();
  }

  Status Close() {
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    uint32_t post = ++post_counter_;

    // f(node) = (x - map(node)) * prod(children)   (§3 step 2, reduced).
    gf::RingElem node_poly;
    if (options_.use_eval_domain) {
      gf::EvalVector evals = std::move(frame.child_evals);
      const gf::Field& field = ring_.field();
      for (uint32_t i = 0; i < ring_.n(); ++i) {
        evals[i] = field.Mul(
            field.Sub(evaluator_.point(i), frame.tag_value), evals[i]);
      }
      node_poly = evaluator_.Inverse(evals);
      if (!stack_.empty()) {
        // Fold this node's evaluations into the parent's running product.
        gf::EvalVector& parent = stack_.back().child_evals;
        for (uint32_t i = 0; i < ring_.n(); ++i) {
          parent[i] = field.Mul(parent[i], evals[i]);
        }
        stack_.back().has_children = true;
      }
    } else {
      node_poly = frame.has_children
                      ? ring_.MulXMinus(frame.child_coeffs, frame.tag_value)
                      : ring_.XMinus(frame.tag_value);
      if (!stack_.empty()) {
        stack_.back().child_coeffs =
            ring_.Mul(stack_.back().child_coeffs, node_poly);
        stack_.back().has_children = true;
      }
    }

    // Aggregate columns (DESIGN.md §8): finalize this node's subtree
    // histogram, derive the seven stored columns, and fold the node into
    // its parent's child/descendant accumulators.
    std::vector<agg::Word> agg_plain;
    std::string verify_blob;
    if (value_count_ > 0) {
      const size_t T = value_count_;
      frame.mult[frame.value_index] += 1;
      agg_plain.assign(agg::WordsPerNode(T), 0);
      auto col = [&](agg::Col c) {
        return agg_plain.data() + agg::WordIndex(c, T, 0);
      };
      col(agg::Col::kEqualSelf)[frame.value_index] = 1;
      for (size_t t = 0; t < T; ++t) {
        col(agg::Col::kEqualChild)[t] = frame.child_equal[t];
        col(agg::Col::kEqualDesc)[t] =
            frame.mult[t] - (t == frame.value_index ? 1 : 0);
        col(agg::Col::kContainSelf)[t] = frame.mult[t] > 0 ? 1 : 0;
        col(agg::Col::kContainChild)[t] = frame.child_contain[t];
        col(agg::Col::kContainDesc)[t] = frame.desc_contain[t];
        col(agg::Col::kMultDesc)[t] = frame.desc_mult[t];
      }
      if (!stack_.empty()) {
        Frame& parent = stack_.back();
        parent.child_equal[frame.value_index] += 1;
        for (size_t t = 0; t < T; ++t) {
          agg::Word contains = frame.mult[t] > 0 ? 1 : 0;
          parent.child_contain[t] += contains;
          parent.desc_contain[t] += frame.desc_contain[t] + contains;
          parent.desc_mult[t] += frame.desc_mult[t] + frame.mult[t];
          parent.mult[t] += frame.mult[t];
        }
      }
      // Verification track (DESIGN.md §9), built from the still-plain
      // words: per word w the wide share ŵ (zero-extended) and the keyed
      // checksum α_τ·ŵ mod 2^64 (τ = w mod T in the column-major layout),
      // each masked only by the client's bit-61 stream — the track is
      // independent of the server count and lives on slice 0 alone.
      if (!alpha_.empty()) {
        std::vector<uint64_t> wide(agg_plain.size());
        std::vector<uint64_t> proof(agg_plain.size());
        prg::Prg::Stream vmask = prg_.StreamForVerifyColumns(frame.pre);
        for (size_t w = 0; w < agg_plain.size(); ++w) {
          uint64_t plain = agg_plain[w];
          wide[w] = plain - vmask.NextUint64();
          proof[w] = alpha_[w % T] * plain - vmask.NextUint64();
        }
        verify_blob = agg::SerializeVerify(wide, proof);
        verify_bytes_ += verify_blob.size();
      }
      // Mask with the client's PRG stream: every stored word carries an
      // independent uniform pad, so any subset of server slices is jointly
      // uniform — the aggregate analog of the polynomial split.
      prg::Prg::Stream mask = prg_.StreamForAggColumns(frame.pre, 0);
      for (agg::Word& word : agg_plain) word -= mask.NextUint32();
    }

    // Split: the client share is the PRG stream at this node's pre
    // position; server slices i >= 1 are further PRG streams (one slice
    // materialized at a time); slice 0 is the remainder, so
    // f = c + s_0 + ... + s_{m-1} (DESIGN.md §5). Only server slices are
    // stored; structure columns are replicated to every store. The
    // aggregate columns split the same way in Z_{2^32}.
    gf::RingElem remainder =
        ring_.Sub(node_poly, prg_.ClientShare(ring_, frame.pre));

    storage::NodeRow row;
    row.pre = frame.pre;
    row.post = post;
    row.parent = frame.parent;
    for (size_t i = stores_.size(); i-- > 1;) {
      gf::RingElem slice = prg_.ServerSliceShare(
          ring_, frame.pre, static_cast<uint32_t>(i));
      row.share = ring_.Serialize(slice);
      share_bytes_ += row.share.size();
      if (value_count_ > 0) {
        prg::Prg::Stream slice_mask =
            prg_.StreamForAggColumns(frame.pre, static_cast<uint32_t>(i));
        std::vector<agg::Word> slice_words(agg_plain.size());
        for (size_t w = 0; w < slice_words.size(); ++w) {
          slice_words[w] = slice_mask.NextUint32();
          agg_plain[w] -= slice_words[w];
        }
        row.agg = agg::SerializeWords(slice_words);
        agg_bytes_ += row.agg.size();
      }
      SSDB_RETURN_IF_ERROR(stores_[i]->Insert(row));
      remainder = ring_.Sub(remainder, slice);
    }
    row.share = ring_.Serialize(remainder);
    if (value_count_ > 0) {
      row.agg = agg::SerializeWords(agg_plain);
      agg_bytes_ += row.agg.size();
      // The verification track rides only on the primary slice's row; the
      // slices above answered with row.verify still empty.
      row.verify = std::move(verify_blob);
    }
    if (options_.seal_content) {
      row.sealed = prg_.SealPayload(
          frame.pre, frame.tag_name + "\n" + frame.direct_text);
    }
    share_bytes_ += row.share.size();
    ++node_count_;
    return stores_[0]->Insert(row);
  }

  // Emits a trie as nested virtual elements (depth-first).
  Status EmitTrie(const trie::TrieNode& node) {
    for (const auto& [key, child] : node.children) {
      (void)key;
      SSDB_RETURN_IF_ERROR(Open(child->label));
      SSDB_RETURN_IF_ERROR(EmitTrie(*child));
      SSDB_RETURN_IF_ERROR(Close());
    }
    return Status::OK();
  }

  const gf::Ring& ring_;
  const gf::Evaluator& evaluator_;
  const mapping::TagMap& map_;
  const prg::Prg& prg_;
  const std::vector<storage::NodeStore*>& stores_;
  EncodeOptions options_;
  // Mapped-value count T when aggregate columns are on, 0 when off.
  size_t value_count_ = 0;
  // Verification keys α_τ, one per mapped value; empty when the
  // verification track is off (DESIGN.md §9).
  std::vector<uint64_t> alpha_;

  std::vector<Frame> stack_;
  uint32_t pre_counter_ = 0;
  uint32_t post_counter_ = 0;
  uint64_t node_count_ = 0;
  uint64_t share_bytes_ = 0;
  uint64_t agg_bytes_ = 0;
  uint64_t verify_bytes_ = 0;
  uint64_t max_depth_ = 0;
  EncodeResult result_;
};

}  // namespace

Encoder::Encoder(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
                 storage::NodeStore* store, const EncodeOptions& options)
    : Encoder(ring, map, std::move(prg),
              std::vector<storage::NodeStore*>{store}, options) {}

Encoder::Encoder(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
                 std::vector<storage::NodeStore*> stores,
                 const EncodeOptions& options)
    : ring_(ring),
      evaluator_(ring),
      map_(map),
      prg_(std::move(prg)),
      stores_(std::move(stores)),
      options_(options) {}

StatusOr<EncodeResult> Encoder::EncodeString(std::string_view xml) {
  if (stores_.empty()) {
    return Status::InvalidArgument("encoder needs at least one store");
  }
  for (storage::NodeStore* store : stores_) {
    SSDB_ASSIGN_OR_RETURN(uint64_t existing, store->NodeCount());
    if (existing != 0) {
      return Status::FailedPrecondition("target store is not empty");
    }
  }
  EncodingHandler handler(ring_, evaluator_, map_, prg_, stores_, options_);
  xml::SaxParser parser;
  SSDB_RETURN_IF_ERROR(parser.Parse(xml, &handler));
  for (storage::NodeStore* store : stores_) {
    SSDB_RETURN_IF_ERROR(store->Flush());
  }
  EncodeResult result = handler.TakeResult();
  result.input_bytes = xml.size();
  return result;
}

StatusOr<EncodeResult> Encoder::EncodeFile(const std::string& path) {
  SSDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return EncodeString(contents);
}

}  // namespace ssdb::encode
