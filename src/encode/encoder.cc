#include "encode/encoder.h"

#include <algorithm>
#include <vector>

#include "trie/trie.h"
#include "util/file_util.h"
#include "xml/sax.h"

namespace ssdb::encode {
namespace {

// SAX handler that carries the whole encoding pipeline. One stack frame per
// open element holds the running product of completed child polynomials —
// in evaluation or coefficient form depending on the configured path.
class EncodingHandler : public xml::SaxHandler {
 public:
  EncodingHandler(const gf::Ring& ring, const gf::Evaluator& evaluator,
                  const mapping::TagMap& map, const prg::Prg& prg,
                  const std::vector<storage::NodeStore*>& stores,
                  const EncodeOptions& options)
      : ring_(ring),
        evaluator_(evaluator),
        map_(map),
        prg_(prg),
        stores_(stores),
        options_(options) {}

  Status StartElement(std::string_view name,
                      const xml::AttributeList&) override {
    return Open(name);
  }

  Status EndElement(std::string_view) override { return Close(); }

  Status Characters(std::string_view text) override {
    if (options_.seal_content && !stack_.empty()) {
      stack_.back().direct_text += std::string(text);
    }
    if (!options_.trie) return Status::OK();  // §3 scheme: tags only
    // §4 scheme: expand the text into a trie of single-character elements.
    trie::Trie built =
        trie::BuildTrieFromText(text, options_.trie_compressed);
    return EmitTrie(*built.root());
  }

  EncodeResult TakeResult() {
    result_.node_count = node_count_;
    result_.max_depth = max_depth_;
    result_.share_bytes = share_bytes_;
    return result_;
  }

 private:
  struct Frame {
    uint32_t pre = 0;
    uint32_t parent = 0;
    gf::Elem tag_value = 0;
    std::string tag_name;     // kept only when sealing
    std::string direct_text;  // kept only when sealing
    // Product of completed child polynomials; exactly one representation is
    // active, per options_.use_eval_domain.
    gf::EvalVector child_evals;   // starts all-ones
    gf::RingElem child_coeffs;    // starts at the ring's 1
    bool has_children = false;
  };

  Status Open(std::string_view name) {
    StatusOr<gf::Elem> value = map_.Lookup(name);
    if (!value.ok()) {
      return Status::InvalidArgument("tag not covered by the map file: " +
                                     std::string(name));
    }
    Frame frame;
    frame.pre = ++pre_counter_;
    frame.parent = stack_.empty() ? 0 : stack_.back().pre;
    frame.tag_value = *value;
    if (options_.seal_content) frame.tag_name = std::string(name);
    if (options_.use_eval_domain) {
      frame.child_evals.assign(ring_.n(), 1);
    } else {
      frame.child_coeffs = ring_.One();
    }
    stack_.push_back(std::move(frame));
    max_depth_ = std::max(max_depth_, stack_.size());
    return Status::OK();
  }

  Status Close() {
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    uint32_t post = ++post_counter_;

    // f(node) = (x - map(node)) * prod(children)   (§3 step 2, reduced).
    gf::RingElem node_poly;
    if (options_.use_eval_domain) {
      gf::EvalVector evals = std::move(frame.child_evals);
      const gf::Field& field = ring_.field();
      for (uint32_t i = 0; i < ring_.n(); ++i) {
        evals[i] = field.Mul(
            field.Sub(evaluator_.point(i), frame.tag_value), evals[i]);
      }
      node_poly = evaluator_.Inverse(evals);
      if (!stack_.empty()) {
        // Fold this node's evaluations into the parent's running product.
        gf::EvalVector& parent = stack_.back().child_evals;
        for (uint32_t i = 0; i < ring_.n(); ++i) {
          parent[i] = field.Mul(parent[i], evals[i]);
        }
        stack_.back().has_children = true;
      }
    } else {
      node_poly = frame.has_children
                      ? ring_.MulXMinus(frame.child_coeffs, frame.tag_value)
                      : ring_.XMinus(frame.tag_value);
      if (!stack_.empty()) {
        stack_.back().child_coeffs =
            ring_.Mul(stack_.back().child_coeffs, node_poly);
        stack_.back().has_children = true;
      }
    }

    // Split: the client share is the PRG stream at this node's pre
    // position; server slices i >= 1 are further PRG streams (one slice
    // materialized at a time); slice 0 is the remainder, so
    // f = c + s_0 + ... + s_{m-1} (DESIGN.md §5). Only server slices are
    // stored; structure columns are replicated to every store.
    gf::RingElem remainder =
        ring_.Sub(node_poly, prg_.ClientShare(ring_, frame.pre));

    storage::NodeRow row;
    row.pre = frame.pre;
    row.post = post;
    row.parent = frame.parent;
    for (size_t i = stores_.size(); i-- > 1;) {
      gf::RingElem slice = prg_.ServerSliceShare(
          ring_, frame.pre, static_cast<uint32_t>(i));
      row.share = ring_.Serialize(slice);
      share_bytes_ += row.share.size();
      SSDB_RETURN_IF_ERROR(stores_[i]->Insert(row));
      remainder = ring_.Sub(remainder, slice);
    }
    row.share = ring_.Serialize(remainder);
    if (options_.seal_content) {
      row.sealed = prg_.SealPayload(
          frame.pre, frame.tag_name + "\n" + frame.direct_text);
    }
    share_bytes_ += row.share.size();
    ++node_count_;
    return stores_[0]->Insert(row);
  }

  // Emits a trie as nested virtual elements (depth-first).
  Status EmitTrie(const trie::TrieNode& node) {
    for (const auto& [key, child] : node.children) {
      (void)key;
      SSDB_RETURN_IF_ERROR(Open(child->label));
      SSDB_RETURN_IF_ERROR(EmitTrie(*child));
      SSDB_RETURN_IF_ERROR(Close());
    }
    return Status::OK();
  }

  const gf::Ring& ring_;
  const gf::Evaluator& evaluator_;
  const mapping::TagMap& map_;
  const prg::Prg& prg_;
  const std::vector<storage::NodeStore*>& stores_;
  EncodeOptions options_;

  std::vector<Frame> stack_;
  uint32_t pre_counter_ = 0;
  uint32_t post_counter_ = 0;
  uint64_t node_count_ = 0;
  uint64_t share_bytes_ = 0;
  uint64_t max_depth_ = 0;
  EncodeResult result_;
};

}  // namespace

Encoder::Encoder(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
                 storage::NodeStore* store, const EncodeOptions& options)
    : Encoder(ring, map, std::move(prg),
              std::vector<storage::NodeStore*>{store}, options) {}

Encoder::Encoder(gf::Ring ring, const mapping::TagMap& map, prg::Prg prg,
                 std::vector<storage::NodeStore*> stores,
                 const EncodeOptions& options)
    : ring_(ring),
      evaluator_(ring),
      map_(map),
      prg_(std::move(prg)),
      stores_(std::move(stores)),
      options_(options) {}

StatusOr<EncodeResult> Encoder::EncodeString(std::string_view xml) {
  if (stores_.empty()) {
    return Status::InvalidArgument("encoder needs at least one store");
  }
  for (storage::NodeStore* store : stores_) {
    SSDB_ASSIGN_OR_RETURN(uint64_t existing, store->NodeCount());
    if (existing != 0) {
      return Status::FailedPrecondition("target store is not empty");
    }
  }
  EncodingHandler handler(ring_, evaluator_, map_, prg_, stores_, options_);
  xml::SaxParser parser;
  SSDB_RETURN_IF_ERROR(parser.Parse(xml, &handler));
  for (storage::NodeStore* store : stores_) {
    SSDB_RETURN_IF_ERROR(store->Flush());
  }
  EncodeResult result = handler.TakeResult();
  result.input_bytes = xml.size();
  return result;
}

StatusOr<EncodeResult> Encoder::EncodeFile(const std::string& path) {
  SSDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return EncodeString(contents);
}

}  // namespace ssdb::encode
