// Top-level configuration for the encrypted XML database.

#ifndef SSDB_CORE_OPTIONS_H_
#define SSDB_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "encode/encoder.h"

namespace ssdb::core {

enum class Backend {
  kMemory,  // in-RAM store (tests, algorithm benchmarks)
  kDisk,    // paged B+tree engine (the paper's MySQL role)
};

enum class EngineKind {
  kSimple,    // §5.3 SimpleQuery
  kAdvanced,  // §5.3 AdvancedQuery (look-ahead)
};

struct DatabaseOptions {
  // Field parameters; the paper uses p=83, e=1 for tag search and p=29 for
  // the trie cost analysis.
  uint32_t p = 83;
  uint32_t e = 1;

  Backend backend = Backend::kMemory;
  std::string disk_path;          // required for Backend::kDisk
  size_t buffer_pool_pages = 1024;

  encode::EncodeOptions encode;
};

}  // namespace ssdb::core

#endif  // SSDB_CORE_OPTIONS_H_
