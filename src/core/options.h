// Top-level configuration for the encrypted XML database.

#ifndef SSDB_CORE_OPTIONS_H_
#define SSDB_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "encode/encoder.h"

namespace ssdb::core {

// Upper bound on DatabaseOptions::servers — far below the PRG's 2^16-slice
// nonce space, and a sanity guard against a typo'd flag allocating
// thousands of stores.
inline constexpr uint32_t kMaxServers = 256;

enum class Backend {
  kMemory,  // in-RAM store (tests, algorithm benchmarks)
  kDisk,    // paged B+tree engine (the paper's MySQL role)
};

enum class EngineKind {
  kSimple,    // §5.3 SimpleQuery
  kAdvanced,  // §5.3 AdvancedQuery (look-ahead)
};

struct DatabaseOptions {
  // Field parameters; the paper uses p=83, e=1 for tag search and p=29 for
  // the trie cost analysis.
  uint32_t p = 83;
  uint32_t e = 1;

  Backend backend = Backend::kMemory;
  std::string disk_path;          // required for Backend::kDisk
  size_t buffer_pool_pages = 1024;

  // Number of servers the additive share is split across (DESIGN.md §5):
  // f = c + s_0 + ... + s_{m-1}. With 1 (the default) the classic 2-party
  // split is produced, bit-identical to earlier versions. With m > 1 and a
  // disk backend, slice i is written to ShareSlicePath(disk_path, i, m).
  // At most kMaxServers: slice indices must stay inside the PRG's
  // dedicated nonce bits (src/prg/prg.h).
  uint32_t servers = 1;

  encode::EncodeOptions encode;
};

// How a shard router opens and queries a multi-document corpus
// (src/shard/router.h, DESIGN.md §10). One options block covers every
// document: the corpus shares a tag map and field parameters, while each
// document keeps its own server group and (optionally) its own seed.
struct CorpusOptions {
  uint32_t p = 83;
  uint32_t e = 1;

  // Interpret catalog slice endpoints as local slice *files* (opened with
  // the disk backend) instead of unix sockets — single-machine corpora,
  // tests, and benches.
  bool local = false;

  EngineKind engine = EngineKind::kAdvanced;

  // Verified aggregation (DESIGN.md §9) on every aggregate the router
  // merges; failures name the document, group, and server.
  bool verify_aggregate = false;

  // Share-sum sanity probe per document at open: recover the root tag
  // through the verified equality test so a mis-listed slice set fails at
  // open time, not with silently wrong answers.
  bool probe_shares = true;

  // Degraded-mode corpus queries (DESIGN.md §11): when set, a document
  // whose server group is unreachable — at open or mid-query — is recorded
  // in CorpusResult::missing instead of failing the whole corpus; the
  // query errors only when EVERY document fails. QueryDoc against a
  // missing document still fails, fast, with the recorded error.
  bool partial_ok = false;
};

// File naming for share slices: the base path itself for a single server,
// "<base>.s<i>of<m>" for slice i of an m-server split.
inline std::string ShareSlicePath(const std::string& base, uint32_t index,
                                  uint32_t servers) {
  if (servers <= 1) return base;
  return base + ".s" + std::to_string(index) + "of" + std::to_string(servers);
}

}  // namespace ssdb::core

#endif  // SSDB_CORE_OPTIONS_H_
