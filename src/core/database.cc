#include "core/database.h"

#include <algorithm>

#include "encode/encoder.h"
#include "prg/prg.h"
#include "rpc/client.h"
#include "storage/memory_backend.h"
#include "storage/page.h"
#include "storage/table.h"
#include "trie/trie_xml.h"
#include "xml/dtd.h"

namespace ssdb::core {

StatusOr<mapping::TagMap> EncryptedXmlDatabase::TagMapForDtd(
    const std::string& dtd_text, const gf::Field& field,
    bool include_trie_alphabet) {
  SSDB_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text));
  std::vector<std::string> names = dtd.ElementNames();
  if (include_trie_alphabet) {
    for (const std::string& label : trie::TrieAlphabet()) {
      names.push_back(label);
    }
  }
  return mapping::TagMap::FromNames(names, field);
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>> EncryptedXmlDatabase::Encode(
    std::string_view xml, const mapping::TagMap& map, const prg::Seed& seed,
    const DatabaseOptions& options) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field,
                        gf::Field::Make(options.p, options.e));
  gf::Ring ring(field);

  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));

  const uint32_t servers = options.servers == 0 ? 1 : options.servers;
  if (servers > kMaxServers) {
    return Status::InvalidArgument("servers exceeds kMaxServers (" +
                                   std::to_string(kMaxServers) + ")");
  }
  // No tag-map size cap for the disk backend: the §8/§9 column blobs live
  // in the side column store (src/colstore), not the 4 KiB heap row, so
  // arbitrarily large maps spill into overflow chains there (DESIGN.md §12).
  for (uint32_t i = 0; i < servers; ++i) {
    if (options.backend == Backend::kDisk) {
      if (options.disk_path.empty()) {
        return Status::InvalidArgument("disk backend requires disk_path");
      }
      storage::DiskStoreOptions disk_options;
      disk_options.buffer_pool_pages = options.buffer_pool_pages;
      SSDB_ASSIGN_OR_RETURN(
          std::unique_ptr<storage::NodeStore> store,
          storage::DiskNodeStore::Create(
              ShareSlicePath(options.disk_path, i, servers), disk_options));
      db->stores_.push_back(std::move(store));
    } else {
      db->stores_.push_back(std::make_unique<storage::MemoryNodeStore>());
    }
  }

  std::vector<storage::NodeStore*> store_ptrs;
  for (const auto& store : db->stores_) store_ptrs.push_back(store.get());
  encode::Encoder encoder(ring, db->map_, prg::Prg(seed), store_ptrs,
                          options.encode);
  SSDB_ASSIGN_OR_RETURN(db->encode_result_, encoder.EncodeString(xml));

  if (servers == 1) {
    db->server_ = std::make_unique<filter::LocalServerFilter>(
        ring, db->stores_[0].get());
  } else {
    std::vector<filter::ServerFilter*> backends;
    for (const auto& store : db->stores_) {
      db->backends_.push_back(
          std::make_unique<filter::LocalServerFilter>(ring, store.get()));
      backends.push_back(db->backends_.back().get());
    }
    db->server_ = std::make_unique<filter::MultiServerFilter>(
        ring, std::move(backends));
  }
  db->server_view_ = db->server_.get();
  db->trie_ = options.encode.trie;
  db->BuildEngines(seed);
  return db;
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>>
EncryptedXmlDatabase::ConnectRemote(std::unique_ptr<rpc::Channel> channel,
                                    const mapping::TagMap& map,
                                    const prg::Seed& seed, uint32_t p,
                                    uint32_t e) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field, gf::Field::Make(p, e));
  gf::Ring ring(field);
  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));
  db->server_ = std::make_unique<rpc::RemoteServerFilter>(
      ring, std::move(channel));
  db->server_view_ = db->server_.get();
  db->BuildEngines(seed);
  return db;
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>>
EncryptedXmlDatabase::ConnectRemoteMulti(
    std::vector<std::unique_ptr<rpc::Channel>> channels,
    const mapping::TagMap& map, const prg::Seed& seed, uint32_t p,
    uint32_t e) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field, gf::Field::Make(p, e));
  gf::Ring ring(field);
  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));
  SSDB_ASSIGN_OR_RETURN(
      db->session_,
      rpc::MultiServerSession::FromChannels(ring, std::move(channels)));
  db->server_view_ = db->session_->filter();
  db->BuildEngines(seed);
  return db;
}

void EncryptedXmlDatabase::BuildEngines(const prg::Seed& seed) {
  client_ = std::make_unique<filter::ClientFilter>(ring_, prg::Prg(seed),
                                                   server_view_);
  simple_ = std::make_unique<query::SimpleEngine>(client_.get(), &map_);
  advanced_ = std::make_unique<query::AdvancedEngine>(client_.get(), &map_);
  agg_ = std::make_unique<agg::AggregationEngine>(client_.get(), &map_);
  mutator_ = std::make_unique<encode::Mutator>(ring_, map_, prg::Prg(seed),
                                               server_view_);
}

StatusOr<MutationResult> EncryptedXmlDatabase::Update(
    uint32_t pre, std::string_view new_tag,
    const std::optional<std::string>& new_text) {
  SSDB_RETURN_IF_ERROR(CheckMutable());
  SSDB_ASSIGN_OR_RETURN(encode::PlannedMutation planned,
                        mutator_->PlanUpdate(pre, new_tag, new_text));
  return DriveMutation(std::move(planned));
}

StatusOr<MutationResult> EncryptedXmlDatabase::Insert(
    uint32_t parent_pre, std::string_view fragment_xml) {
  SSDB_RETURN_IF_ERROR(CheckMutable());
  SSDB_ASSIGN_OR_RETURN(encode::PlannedMutation planned,
                        mutator_->PlanInsert(parent_pre, fragment_xml));
  return DriveMutation(std::move(planned));
}

StatusOr<MutationResult> EncryptedXmlDatabase::Delete(uint32_t pre) {
  SSDB_RETURN_IF_ERROR(CheckMutable());
  SSDB_ASSIGN_OR_RETURN(encode::PlannedMutation planned,
                        mutator_->PlanDelete(pre));
  return DriveMutation(std::move(planned));
}

Status EncryptedXmlDatabase::CheckMutable() {
  if (trie_) {
    return Status::Unimplemented(
        "mutations on a trie-encoded database are not supported "
        "(DESIGN.md §12)");
  }
  if (server_view_ == nullptr) {
    return Status::FailedPrecondition("no server filter attached");
  }
  return Status::OK();
}

StatusOr<MutationResult> EncryptedXmlDatabase::DriveMutation(
    encode::PlannedMutation planned) {
  // Two-phase drive (DESIGN.md §12): prepare on every slice, then commit.
  // A prepare failure aborts best-effort — nothing was applied, so the
  // document is untouched. A failure *during* commit leaves the txn
  // decided (some slice committed); RecoverMutations() finishes the job.
  Status prepared = server_view_->PrepareMutation(planned.txn, planned.plans);
  if (!prepared.ok()) {
    (void)server_view_->AbortMutation(planned.txn);  // best-effort cleanup
    return prepared;
  }
  SSDB_RETURN_IF_ERROR(server_view_->CommitMutation(planned.txn));
  MutationResult result;
  result.version = planned.txn;
  result.stats = planned.stats;
  return result;
}

Status EncryptedXmlDatabase::RecoverMutations() {
  if (server_view_ == nullptr) {
    return Status::FailedPrecondition("no server filter attached");
  }
  // Any slice that committed a txn proves the coordinator decided to
  // commit, so undecided slices follow it; a txn no slice committed is
  // rolled back. Loop because aborting one txn can expose an older one.
  for (int round = 0; round < 64; ++round) {
    SSDB_ASSIGN_OR_RETURN(std::vector<storage::MutationState> states,
                          server_view_->MutationStates());
    uint64_t pending = 0;
    uint64_t committed = 0;
    for (const storage::MutationState& st : states) {
      pending = std::max(pending, st.pending_txn);
      committed = std::max(committed, st.version);
    }
    if (pending == 0) return Status::OK();
    if (committed >= pending) {
      SSDB_RETURN_IF_ERROR(server_view_->CommitMutation(pending));
    } else {
      SSDB_RETURN_IF_ERROR(server_view_->AbortMutation(pending));
    }
  }
  return Status::Internal("mutation recovery did not converge");
}

StatusOr<QueryResult> EncryptedXmlDatabase::Query(std::string_view xpath,
                                                  EngineKind engine,
                                                  query::MatchMode mode) {
  SSDB_ASSIGN_OR_RETURN(query::Query parsed, query::ParseQuery(xpath));
  return QueryParsed(parsed, engine, mode);
}

StatusOr<QueryResult> EncryptedXmlDatabase::QueryParsed(
    const query::Query& query, EngineKind engine, query::MatchMode mode) {
  query::QueryEngine* chosen =
      engine == EngineKind::kSimple
          ? static_cast<query::QueryEngine*>(simple_.get())
          : static_cast<query::QueryEngine*>(advanced_.get());
  QueryResult result;
  if (query.aggregate != query::Aggregate::kNone) {
    // Aggregate form (DESIGN.md §8): the servers fold their column slices;
    // only per-group words come home.
    result.is_aggregate = true;
    SSDB_ASSIGN_OR_RETURN(
        result.aggregate, agg_->Execute(chosen, query, mode, &result.stats));
    return result;
  }
  SSDB_ASSIGN_OR_RETURN(result.nodes,
                        chosen->Execute(query, mode, &result.stats));
  return result;
}

filter::ServerFilter* EncryptedXmlDatabase::slice_filter(size_t i) {
  if (!backends_.empty()) {
    return i < backends_.size() ? backends_[i].get() : nullptr;
  }
  if (i == 0 && !stores_.empty()) return server_.get();
  return nullptr;
}

Status EncryptedXmlDatabase::Serve(rpc::Channel* channel) {
  if (server_view_ == nullptr) {
    return Status::FailedPrecondition("no server filter attached");
  }
  rpc::RpcServer server(ring_, server_view_);
  return server.Serve(channel);
}

Status EncryptedXmlDatabase::ServeSlice(size_t index, rpc::Channel* channel) {
  if (index >= stores_.size()) {
    return Status::InvalidArgument("no such share slice");
  }
  filter::LocalServerFilter slice_filter(ring_, stores_[index].get());
  rpc::RpcServer server(ring_, &slice_filter);
  return server.Serve(channel);
}

}  // namespace ssdb::core
