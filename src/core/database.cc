#include "core/database.h"

#include "encode/encoder.h"
#include "prg/prg.h"
#include "rpc/client.h"
#include "storage/memory_backend.h"
#include "storage/page.h"
#include "storage/table.h"
#include "trie/trie_xml.h"
#include "xml/dtd.h"

namespace ssdb::core {

StatusOr<mapping::TagMap> EncryptedXmlDatabase::TagMapForDtd(
    const std::string& dtd_text, const gf::Field& field,
    bool include_trie_alphabet) {
  SSDB_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text));
  std::vector<std::string> names = dtd.ElementNames();
  if (include_trie_alphabet) {
    for (const std::string& label : trie::TrieAlphabet()) {
      names.push_back(label);
    }
  }
  return mapping::TagMap::FromNames(names, field);
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>> EncryptedXmlDatabase::Encode(
    std::string_view xml, const mapping::TagMap& map, const prg::Seed& seed,
    const DatabaseOptions& options) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field,
                        gf::Field::Make(options.p, options.e));
  gf::Ring ring(field);

  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));

  const uint32_t servers = options.servers == 0 ? 1 : options.servers;
  if (servers > kMaxServers) {
    return Status::InvalidArgument("servers exceeds kMaxServers (" +
                                   std::to_string(kMaxServers) + ")");
  }
  if (options.backend == Backend::kDisk && options.encode.verify_aggregate) {
    // The disk row must fit one 4 KiB heap page (no overflow pages). The §8
    // aggregate blob (28·|map|) plus the §9 verification track (112·|map|)
    // alone can exceed that for large tag maps — fail up front with the
    // budget instead of deep inside HeapFile::Append mid-encode.
    const size_t fixed_blobs = size_t{140} * map.size();
    const size_t budget = storage::kPageSize - 20;  // page header + slot
    if (fixed_blobs > budget) {
      return Status::InvalidArgument(
          "verification track does not fit a disk page: the §8+§9 blobs need "
          "140·|map| = " + std::to_string(fixed_blobs) + " bytes per node "
          "but a " + std::to_string(storage::kPageSize) + "-byte page holds "
          "at most " + std::to_string(budget) + " (tag map must stay under " +
          std::to_string(budget / 140) + " tags); use a smaller DTD, the "
          "memory backend, or drop --verify-agg (DESIGN.md §9)");
    }
  }
  for (uint32_t i = 0; i < servers; ++i) {
    if (options.backend == Backend::kDisk) {
      if (options.disk_path.empty()) {
        return Status::InvalidArgument("disk backend requires disk_path");
      }
      storage::DiskStoreOptions disk_options;
      disk_options.buffer_pool_pages = options.buffer_pool_pages;
      SSDB_ASSIGN_OR_RETURN(
          std::unique_ptr<storage::NodeStore> store,
          storage::DiskNodeStore::Create(
              ShareSlicePath(options.disk_path, i, servers), disk_options));
      db->stores_.push_back(std::move(store));
    } else {
      db->stores_.push_back(std::make_unique<storage::MemoryNodeStore>());
    }
  }

  std::vector<storage::NodeStore*> store_ptrs;
  for (const auto& store : db->stores_) store_ptrs.push_back(store.get());
  encode::Encoder encoder(ring, db->map_, prg::Prg(seed), store_ptrs,
                          options.encode);
  SSDB_ASSIGN_OR_RETURN(db->encode_result_, encoder.EncodeString(xml));

  if (servers == 1) {
    db->server_ = std::make_unique<filter::LocalServerFilter>(
        ring, db->stores_[0].get());
  } else {
    std::vector<filter::ServerFilter*> backends;
    for (const auto& store : db->stores_) {
      db->backends_.push_back(
          std::make_unique<filter::LocalServerFilter>(ring, store.get()));
      backends.push_back(db->backends_.back().get());
    }
    db->server_ = std::make_unique<filter::MultiServerFilter>(
        ring, std::move(backends));
  }
  db->server_view_ = db->server_.get();
  db->BuildEngines(seed);
  return db;
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>>
EncryptedXmlDatabase::ConnectRemote(std::unique_ptr<rpc::Channel> channel,
                                    const mapping::TagMap& map,
                                    const prg::Seed& seed, uint32_t p,
                                    uint32_t e) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field, gf::Field::Make(p, e));
  gf::Ring ring(field);
  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));
  db->server_ = std::make_unique<rpc::RemoteServerFilter>(
      ring, std::move(channel));
  db->server_view_ = db->server_.get();
  db->BuildEngines(seed);
  return db;
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>>
EncryptedXmlDatabase::ConnectRemoteMulti(
    std::vector<std::unique_ptr<rpc::Channel>> channels,
    const mapping::TagMap& map, const prg::Seed& seed, uint32_t p,
    uint32_t e) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field, gf::Field::Make(p, e));
  gf::Ring ring(field);
  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));
  SSDB_ASSIGN_OR_RETURN(
      db->session_,
      rpc::MultiServerSession::FromChannels(ring, std::move(channels)));
  db->server_view_ = db->session_->filter();
  db->BuildEngines(seed);
  return db;
}

void EncryptedXmlDatabase::BuildEngines(const prg::Seed& seed) {
  client_ = std::make_unique<filter::ClientFilter>(ring_, prg::Prg(seed),
                                                   server_view_);
  simple_ = std::make_unique<query::SimpleEngine>(client_.get(), &map_);
  advanced_ = std::make_unique<query::AdvancedEngine>(client_.get(), &map_);
  agg_ = std::make_unique<agg::AggregationEngine>(client_.get(), &map_);
}

StatusOr<QueryResult> EncryptedXmlDatabase::Query(std::string_view xpath,
                                                  EngineKind engine,
                                                  query::MatchMode mode) {
  SSDB_ASSIGN_OR_RETURN(query::Query parsed, query::ParseQuery(xpath));
  return QueryParsed(parsed, engine, mode);
}

StatusOr<QueryResult> EncryptedXmlDatabase::QueryParsed(
    const query::Query& query, EngineKind engine, query::MatchMode mode) {
  query::QueryEngine* chosen =
      engine == EngineKind::kSimple
          ? static_cast<query::QueryEngine*>(simple_.get())
          : static_cast<query::QueryEngine*>(advanced_.get());
  QueryResult result;
  if (query.aggregate != query::Aggregate::kNone) {
    // Aggregate form (DESIGN.md §8): the servers fold their column slices;
    // only per-group words come home.
    result.is_aggregate = true;
    SSDB_ASSIGN_OR_RETURN(
        result.aggregate, agg_->Execute(chosen, query, mode, &result.stats));
    return result;
  }
  SSDB_ASSIGN_OR_RETURN(result.nodes,
                        chosen->Execute(query, mode, &result.stats));
  return result;
}

filter::ServerFilter* EncryptedXmlDatabase::slice_filter(size_t i) {
  if (!backends_.empty()) {
    return i < backends_.size() ? backends_[i].get() : nullptr;
  }
  if (i == 0 && !stores_.empty()) return server_.get();
  return nullptr;
}

Status EncryptedXmlDatabase::Serve(rpc::Channel* channel) {
  if (server_view_ == nullptr) {
    return Status::FailedPrecondition("no server filter attached");
  }
  rpc::RpcServer server(ring_, server_view_);
  return server.Serve(channel);
}

Status EncryptedXmlDatabase::ServeSlice(size_t index, rpc::Channel* channel) {
  if (index >= stores_.size()) {
    return Status::InvalidArgument("no such share slice");
  }
  filter::LocalServerFilter slice_filter(ring_, stores_[index].get());
  rpc::RpcServer server(ring_, &slice_filter);
  return server.Serve(channel);
}

}  // namespace ssdb::core
