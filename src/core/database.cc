#include "core/database.h"

#include "encode/encoder.h"
#include "prg/prg.h"
#include "rpc/client.h"
#include "storage/memory_backend.h"
#include "storage/table.h"
#include "trie/trie_xml.h"
#include "xml/dtd.h"

namespace ssdb::core {

StatusOr<mapping::TagMap> EncryptedXmlDatabase::TagMapForDtd(
    const std::string& dtd_text, const gf::Field& field,
    bool include_trie_alphabet) {
  SSDB_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text));
  std::vector<std::string> names = dtd.ElementNames();
  if (include_trie_alphabet) {
    for (const std::string& label : trie::TrieAlphabet()) {
      names.push_back(label);
    }
  }
  return mapping::TagMap::FromNames(names, field);
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>> EncryptedXmlDatabase::Encode(
    std::string_view xml, const mapping::TagMap& map, const prg::Seed& seed,
    const DatabaseOptions& options) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field,
                        gf::Field::Make(options.p, options.e));
  gf::Ring ring(field);

  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));

  if (options.backend == Backend::kDisk) {
    if (options.disk_path.empty()) {
      return Status::InvalidArgument("disk backend requires disk_path");
    }
    storage::DiskStoreOptions disk_options;
    disk_options.buffer_pool_pages = options.buffer_pool_pages;
    SSDB_ASSIGN_OR_RETURN(
        db->store_,
        storage::DiskNodeStore::Create(options.disk_path, disk_options));
  } else {
    db->store_ = std::make_unique<storage::MemoryNodeStore>();
  }

  encode::Encoder encoder(ring, db->map_, prg::Prg(seed), db->store_.get(),
                          options.encode);
  SSDB_ASSIGN_OR_RETURN(db->encode_result_, encoder.EncodeString(xml));

  db->server_ =
      std::make_unique<filter::LocalServerFilter>(ring, db->store_.get());
  db->BuildEngines(seed);
  return db;
}

StatusOr<std::unique_ptr<EncryptedXmlDatabase>>
EncryptedXmlDatabase::ConnectRemote(std::unique_ptr<rpc::Channel> channel,
                                    const mapping::TagMap& map,
                                    const prg::Seed& seed, uint32_t p,
                                    uint32_t e) {
  SSDB_ASSIGN_OR_RETURN(gf::Field field, gf::Field::Make(p, e));
  gf::Ring ring(field);
  auto db = std::unique_ptr<EncryptedXmlDatabase>(
      new EncryptedXmlDatabase(ring, map));
  db->server_ = std::make_unique<rpc::RemoteServerFilter>(
      ring, std::move(channel));
  db->BuildEngines(seed);
  return db;
}

void EncryptedXmlDatabase::BuildEngines(const prg::Seed& seed) {
  client_ = std::make_unique<filter::ClientFilter>(ring_, prg::Prg(seed),
                                                   server_.get());
  simple_ = std::make_unique<query::SimpleEngine>(client_.get(), &map_);
  advanced_ = std::make_unique<query::AdvancedEngine>(client_.get(), &map_);
}

StatusOr<QueryResult> EncryptedXmlDatabase::Query(std::string_view xpath,
                                                  EngineKind engine,
                                                  query::MatchMode mode) {
  SSDB_ASSIGN_OR_RETURN(query::Query parsed, query::ParseQuery(xpath));
  return QueryParsed(parsed, engine, mode);
}

StatusOr<QueryResult> EncryptedXmlDatabase::QueryParsed(
    const query::Query& query, EngineKind engine, query::MatchMode mode) {
  query::QueryEngine* chosen =
      engine == EngineKind::kSimple
          ? static_cast<query::QueryEngine*>(simple_.get())
          : static_cast<query::QueryEngine*>(advanced_.get());
  QueryResult result;
  SSDB_ASSIGN_OR_RETURN(result.nodes,
                        chosen->Execute(query, mode, &result.stats));
  return result;
}

Status EncryptedXmlDatabase::Serve(rpc::Channel* channel) {
  if (server_ == nullptr) {
    return Status::FailedPrecondition("no server filter attached");
  }
  rpc::RpcServer server(ring_, server_.get());
  return server.Serve(channel);
}

}  // namespace ssdb::core
