// EncryptedXmlDatabase — the library's public facade tying the full pipeline
// together (fig. 3, DESIGN.md §1): encode a plaintext XML document into
// secret-shared polynomials on one or more storage backends
// (DatabaseOptions::servers selects the m-server split of DESIGN.md §5),
// then answer XPath-subset queries with either search strategy and either
// matching rule, locally or across client/server channels.
//
// Quickstart:
//   auto field = gf::Field::Make(83).value();
//   auto map = core::EncryptedXmlDatabase::TagMapForDtd(dtd, field).value();
//   auto db = core::EncryptedXmlDatabase::Encode(xml, map, seed, {}).value();
//   auto result = db->Query("/site//person", core::EngineKind::kAdvanced,
//                           query::MatchMode::kEquality).value();

#ifndef SSDB_CORE_DATABASE_H_
#define SSDB_CORE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "agg/aggregation.h"
#include "core/options.h"
#include "encode/reshare.h"
#include "filter/client_filter.h"
#include "filter/server_filter.h"
#include "gf/field.h"
#include "gf/ring.h"
#include "mapping/tag_map.h"
#include "prg/seed.h"
#include "query/advanced_engine.h"
#include "query/engine.h"
#include "query/simple_engine.h"
#include "query/xpath.h"
#include "filter/multi_server_filter.h"
#include "rpc/channel.h"
#include "rpc/multi_session.h"
#include "rpc/server.h"
#include "storage/node_store.h"
#include "util/statusor.h"

namespace ssdb::core {

struct QueryResult {
  std::vector<filter::NodeMeta> nodes;
  query::QueryStats stats;
  // Set iff the query carried an aggregate form (count()/sum()/exists(),
  // DESIGN.md §8); `nodes` stays empty — the matched set never reaches the
  // client, stats.result_size counts groups.
  bool is_aggregate = false;
  agg::Result aggregate;
};

// Outcome of a committed mutation (DESIGN.md §12): the document version the
// stores advanced to and what the planner touched — the proportionality
// contract (cost ∝ subtree + root path) is asserted on these stats in tests.
struct MutationResult {
  uint64_t version = 0;
  encode::MutateStats stats;
};

class EncryptedXmlDatabase {
 public:
  // Builds a tag map covering a DTD's elements (plus the trie alphabet when
  // the database will be encoded with options.encode.trie).
  static StatusOr<mapping::TagMap> TagMapForDtd(const std::string& dtd_text,
                                                const gf::Field& field,
                                                bool include_trie_alphabet);

  // Encodes a plaintext document into a fresh encrypted database. The seed
  // is the only secret needed later (plus the map for query translation).
  static StatusOr<std::unique_ptr<EncryptedXmlDatabase>> Encode(
      std::string_view xml, const mapping::TagMap& map,
      const prg::Seed& seed, const DatabaseOptions& options);

  // Client side of a remote deployment: queries are answered through the
  // channel; this process holds only the seed and the map.
  static StatusOr<std::unique_ptr<EncryptedXmlDatabase>> ConnectRemote(
      std::unique_ptr<rpc::Channel> channel, const mapping::TagMap& map,
      const prg::Seed& seed, uint32_t p, uint32_t e);

  // m-server variant (DESIGN.md §5): channel i must reach the server
  // holding share slice i. Evaluations fan out to every channel
  // concurrently and the replies are summed client-side.
  static StatusOr<std::unique_ptr<EncryptedXmlDatabase>> ConnectRemoteMulti(
      std::vector<std::unique_ptr<rpc::Channel>> channels,
      const mapping::TagMap& map, const prg::Seed& seed, uint32_t p,
      uint32_t e);

  // --- Mutations (DESIGN.md §12) ------------------------------------------
  // Secret-shared two-phase INSERT/UPDATE/DELETE: the client plans one
  // MutationPlan per share slice (re-sharing only the touched subtree plus
  // its root path), prepares them on every slice, then commits. On a
  // prepare failure the txn is aborted best-effort and the error returned;
  // a crash between the phases is healed by RecoverMutations().

  // Re-tags node `pre` and/or replaces its text (pass empty / nullopt to
  // keep either). Text edits need a sealed-content database.
  StatusOr<MutationResult> Update(uint32_t pre, std::string_view new_tag,
                                  const std::optional<std::string>& new_text);
  // Inserts `fragment_xml` (one rooted element) as the last child of node
  // `parent_pre`.
  StatusOr<MutationResult> Insert(uint32_t parent_pre,
                                  std::string_view fragment_xml);
  // Deletes the subtree rooted at node `pre` (not the document root).
  StatusOr<MutationResult> Delete(uint32_t pre);
  // Drives any undecided prepared txn to a verdict: if some slice already
  // committed it, commit everywhere; otherwise abort everywhere. Safe to
  // call when nothing is pending.
  Status RecoverMutations();

  // Parses and runs a query.
  StatusOr<QueryResult> Query(std::string_view xpath, EngineKind engine,
                              query::MatchMode mode);
  StatusOr<QueryResult> QueryParsed(const query::Query& query,
                                    EngineKind engine,
                                    query::MatchMode mode);

  const gf::Ring& ring() const { return ring_; }
  const mapping::TagMap& tag_map() const { return map_; }
  const encode::EncodeResult& encode_result() const {
    return encode_result_;
  }

  // Local-mode accessors (null in remote mode). store() is the primary
  // (slice 0) store; slice_store(i) reaches the other slices of an
  // m-server encode.
  storage::NodeStore* store() {
    return stores_.empty() ? nullptr : stores_[0].get();
  }
  storage::NodeStore* slice_store(size_t i) {
    return i < stores_.size() ? stores_[i].get() : nullptr;
  }
  size_t server_count() const {
    if (!stores_.empty()) return stores_.size();
    if (session_ != nullptr) return session_->server_count();
    return server_view_ != nullptr ? 1 : 0;
  }
  filter::ClientFilter* client_filter() { return client_.get(); }
  filter::ServerFilter* server_filter() { return server_view_; }
  agg::AggregationEngine* aggregation_engine() { return agg_.get(); }

  // Long-lived filter over share slice i, shared by every connection a
  // concurrent transport dispatches (DESIGN.md §7) — unlike ServeSlice,
  // which builds a per-call filter. Null when i is out of range or in
  // remote mode. For m == 1, slice 0 is the whole server share.
  filter::ServerFilter* slice_filter(size_t i);

  // Total server exchanges so far (wire round trips in remote mode,
  // straggler-counted under multi-server fan-out); the per-query delta is
  // reported in QueryStats.eval.round_trips.
  uint64_t server_round_trips() const {
    return server_view_ == nullptr ? 0 : server_view_->RoundTrips();
  }

  // Serves this database's server side over a channel (blocking). The peer
  // is typically another process using ConnectRemote.
  Status Serve(rpc::Channel* channel);

  // Serves exactly one share slice of an m-server encode (blocking) — what
  // a real deployment's per-host ssdb_server process does. The peer is one
  // of the channels a ConnectRemoteMulti client holds.
  Status ServeSlice(size_t index, rpc::Channel* channel);

 private:
  explicit EncryptedXmlDatabase(gf::Ring ring, mapping::TagMap map)
      : ring_(std::move(ring)), map_(std::move(map)) {}

  void BuildEngines(const prg::Seed& seed);
  Status CheckMutable();
  StatusOr<MutationResult> DriveMutation(encode::PlannedMutation planned);

  gf::Ring ring_;
  mapping::TagMap map_;
  encode::EncodeResult encode_result_;
  // Local mode: stores_[i] holds share slice i; backends_ the per-slice
  // filters when m > 1; server_ the filter the client stack talks to (a
  // LocalServerFilter, RemoteServerFilter, or MultiServerFilter).
  std::vector<std::unique_ptr<storage::NodeStore>> stores_;
  std::vector<std::unique_ptr<filter::ServerFilter>> backends_;
  std::unique_ptr<filter::ServerFilter> server_;
  // Remote multi mode: the session owns the channels and the fan-out.
  std::unique_ptr<rpc::MultiServerSession> session_;
  // Always points at the active server filter (server_ or the session's).
  filter::ServerFilter* server_view_ = nullptr;
  std::unique_ptr<filter::ClientFilter> client_;
  std::unique_ptr<query::SimpleEngine> simple_;
  std::unique_ptr<query::AdvancedEngine> advanced_;
  std::unique_ptr<agg::AggregationEngine> agg_;
  std::unique_ptr<encode::Mutator> mutator_;
  // Trie-encoded databases interleave character nodes the mutation planner
  // does not rebuild; mutations on them are rejected (DESIGN.md §12).
  bool trie_ = false;
};

}  // namespace ssdb::core

#endif  // SSDB_CORE_DATABASE_H_
