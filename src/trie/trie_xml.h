// The §4 trie enhancement applied to XML documents: every text node is
// replaced by a trie of single-character element nodes, making data content
// searchable by the same polynomial machinery that handles tags.
//
// Queries are rewritten accordingly:
//   /name[contains(text(), "Joan")]  ->  /name[//J/o/a/n]  (paper §4),
// i.e. a word becomes a chain of child steps over its characters.

#ifndef SSDB_TRIE_TRIE_XML_H_
#define SSDB_TRIE_TRIE_XML_H_

#include <string>
#include <vector>

#include "util/statusor.h"
#include "xml/dom.h"

namespace ssdb::trie {

struct TrieTransformOptions {
  bool compressed = true;  // share word prefixes (fig. 2(b)) or not (2(c))
};

// Rewrites `doc` in place: each text node becomes a subtree of single-char
// elements (labels "a".."z", "0".."9") with "_end_" terminal markers.
// Returns the number of text nodes transformed.
size_t TransformDocument(xml::Document* doc,
                         const TrieTransformOptions& options = {});

// The element names a trie-transformed document can contain in addition to
// the original tags: one per character plus the terminal marker. These must
// be added to the tag map.
std::vector<std::string> TrieAlphabet();

// Translates a word to the chain of trie steps (lower-cased characters).
// E.g. "Joan" -> {"j", "o", "a", "n"}; append kTerminalLabel for whole-word
// matching.
std::vector<std::string> WordToSteps(std::string_view word);

}  // namespace ssdb::trie

#endif  // SSDB_TRIE_TRIE_XML_H_
