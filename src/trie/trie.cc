#include "trie/trie.h"

#include <cctype>
#include <set>

namespace ssdb::trie {
namespace {

size_t CountNodes(const TrieNode& node) {
  size_t count = node.children.size();
  for (const auto& [label, child] : node.children) {
    count += CountNodes(*child);
  }
  return count;
}

void CollectWords(const TrieNode& node, std::string* prefix,
                  std::vector<std::string>* out) {
  for (const auto& [label, child] : node.children) {
    if (child->IsTerminal()) {
      out->push_back(*prefix);
      continue;
    }
    prefix->append(label);
    CollectWords(*child, prefix, out);
    prefix->resize(prefix->size() - label.size());
  }
}

}  // namespace

void Trie::Insert(std::string_view word, bool compressed) {
  if (word.empty()) return;
  TrieNode* node = root_.get();
  for (size_t i = 0; i < word.size(); ++i) {
    std::string label(1, word[i]);
    if (compressed) {
      auto it = node->children.find(label);
      if (it != node->children.end()) {
        node = it->second.get();
        continue;
      }
    }
    // Uncompressed mode must not share, but std::map keys collide; we make
    // per-occurrence keys unique by suffixing a counter while keeping the
    // node's logical label a single character.
    std::string key = label;
    if (!compressed) {
      int suffix = 0;
      while (node->children.count(key) > 0) {
        key = label + "#" + std::to_string(suffix++);
      }
    }
    auto child = std::make_unique<TrieNode>();
    child->label = label;
    TrieNode* raw = child.get();
    node->children.emplace(std::move(key), std::move(child));
    node = raw;
  }
  // Terminal marker (shared in compressed mode).
  if (node->children.count(kTerminalLabel) == 0) {
    auto terminal = std::make_unique<TrieNode>();
    terminal->label = kTerminalLabel;
    node->children.emplace(kTerminalLabel, std::move(terminal));
  } else if (!compressed) {
    std::string key = std::string(kTerminalLabel) + "#";
    int suffix = 0;
    while (node->children.count(key) > 0) {
      key = std::string(kTerminalLabel) + "#" + std::to_string(suffix++);
    }
    auto terminal = std::make_unique<TrieNode>();
    terminal->label = kTerminalLabel;
    node->children.emplace(std::move(key), std::move(terminal));
  }
}

bool Trie::ContainsWord(std::string_view word) const {
  const TrieNode* node = root_.get();
  for (char c : word) {
    auto it = node->children.find(std::string(1, c));
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return node->children.count(kTerminalLabel) > 0;
}

bool Trie::ContainsPrefix(std::string_view prefix) const {
  const TrieNode* node = root_.get();
  for (char c : prefix) {
    auto it = node->children.find(std::string(1, c));
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return true;
}

size_t Trie::NodeCount() const { return CountNodes(*root_); }

std::vector<std::string> Trie::Words() const {
  std::vector<std::string> out;
  std::string prefix;
  CollectWords(*root_, &prefix, &out);
  return out;
}

std::vector<std::string> SplitIntoWords(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

Trie BuildTrieFromText(std::string_view text, bool compressed) {
  Trie trie;
  for (const auto& word : SplitIntoWords(text)) {
    trie.Insert(word, compressed);
  }
  return trie;
}

TrieStats AnalyzeText(std::string_view text, bool compressed) {
  TrieStats stats;
  std::set<std::string> distinct;
  Trie trie;
  for (const auto& word : SplitIntoWords(text)) {
    ++stats.word_count;
    stats.total_chars += word.size();
    distinct.insert(word);
    trie.Insert(word, compressed);
  }
  stats.distinct_word_count = distinct.size();
  stats.node_count = trie.NodeCount();
  return stats;
}

}  // namespace ssdb::trie
