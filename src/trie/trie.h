// Trie representation of text data (§4, fig. 2). A data string is split into
// words; each word becomes a path of single-character nodes terminated by a
// ⊥ marker node. A *compressed* trie shares common prefixes across words
// (losing word order and multiplicity); an *uncompressed* trie keeps one
// path per word occurrence.
//
// The terminal marker is spelled "_end_" in tag names so that it remains a
// valid XML element name (the paper draws it as ⊥).

#ifndef SSDB_TRIE_TRIE_H_
#define SSDB_TRIE_TRIE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ssdb::trie {

inline constexpr char kTerminalLabel[] = "_end_";

struct TrieNode {
  std::string label;  // single character, or kTerminalLabel
  std::map<std::string, std::unique_ptr<TrieNode>> children;

  bool IsTerminal() const { return label == kTerminalLabel; }
};

// Statistics used by the §4 storage-cost analysis (bench_trie).
struct TrieStats {
  size_t word_count = 0;          // words fed in (with duplicates)
  size_t distinct_word_count = 0;
  size_t total_chars = 0;         // characters fed in (with duplicates)
  size_t node_count = 0;          // trie nodes incl. terminal markers
};

class Trie {
 public:
  Trie() : root_(std::make_unique<TrieNode>()) {}
  Trie(Trie&&) = default;
  Trie& operator=(Trie&&) = default;

  // Inserts a word as a path of single-character nodes + terminal marker.
  // In compressed mode repeated insertions share prefixes; `compressed`
  // false gives one fresh path per insertion (fig. 2(c)).
  void Insert(std::string_view word, bool compressed);

  // True if the word was inserted (exact, i.e. terminal-marked).
  bool ContainsWord(std::string_view word) const;

  // True if some inserted word starts with this prefix.
  bool ContainsPrefix(std::string_view prefix) const;

  const TrieNode* root() const { return root_.get(); }

  // Number of nodes excluding the synthetic root.
  size_t NodeCount() const;

  // All inserted words in lexicographic order (deduplicated in compressed
  // mode by construction).
  std::vector<std::string> Words() const;

 private:
  std::unique_ptr<TrieNode> root_;
};

// Splits text into lowercase alphanumeric words (the normalization applied
// before trie construction; punctuation separates words).
std::vector<std::string> SplitIntoWords(std::string_view text);

// Builds a trie over the words of `text`.
Trie BuildTrieFromText(std::string_view text, bool compressed);

// Stats for the §4 size analysis over a whole corpus.
TrieStats AnalyzeText(std::string_view text, bool compressed);

}  // namespace ssdb::trie

#endif  // SSDB_TRIE_TRIE_H_
