#include "trie/trie_xml.h"

#include <cctype>

#include "trie/trie.h"

namespace ssdb::trie {
namespace {

// Converts a trie subtree into DOM element nodes under `parent`.
void AttachTrie(const TrieNode& trie_node, xml::Node* parent) {
  for (const auto& [key, child] : trie_node.children) {
    (void)key;
    auto element = std::make_unique<xml::Node>();
    element->type = xml::Node::Type::kElement;
    element->name = child->label;
    element->parent = parent;
    AttachTrie(*child, element.get());
    parent->children.push_back(std::move(element));
  }
}

size_t TransformNode(xml::Node* node, const TrieTransformOptions& options) {
  size_t transformed = 0;
  for (auto& child : node->children) {
    if (child->IsElement()) {
      transformed += TransformNode(child.get(), options);
    }
  }
  // Splice: keep element children, expand each text node into trie paths.
  std::vector<std::unique_ptr<xml::Node>> new_children;
  new_children.reserve(node->children.size());
  for (auto& child : node->children) {
    if (!child->IsText()) {
      new_children.push_back(std::move(child));
      continue;
    }
    ++transformed;
    Trie trie = BuildTrieFromText(child->text, options.compressed);
    // Attach the trie's top-level children directly under this element,
    // exactly like fig. 2 hangs "J-o-a-n" under <name>.
    auto holder = std::make_unique<xml::Node>();
    holder->type = xml::Node::Type::kElement;
    AttachTrie(*trie.root(), holder.get());
    for (auto& trie_child : holder->children) {
      trie_child->parent = node;
      new_children.push_back(std::move(trie_child));
    }
  }
  node->children = std::move(new_children);
  return transformed;
}

}  // namespace

size_t TransformDocument(xml::Document* doc,
                         const TrieTransformOptions& options) {
  if (doc->root() == nullptr) return 0;
  return TransformNode(doc->root(), options);
}

std::vector<std::string> TrieAlphabet() {
  std::vector<std::string> names;
  for (char c = 'a'; c <= 'z'; ++c) names.emplace_back(1, c);
  for (char c = '0'; c <= '9'; ++c) names.emplace_back(1, c);
  names.emplace_back(kTerminalLabel);
  return names;
}

std::vector<std::string> WordToSteps(std::string_view word) {
  std::vector<std::string> steps;
  steps.reserve(word.size());
  for (char c : word) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      steps.emplace_back(
          1, static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return steps;
}

}  // namespace ssdb::trie
