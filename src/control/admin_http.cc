#include "control/admin_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ssdb::control {
namespace {

// Writes the whole buffer or gives up (the socket has a send timeout; an
// admin client that cannot drain a few KiB of JSON is abandoned).
void WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;
    data.remove_prefix(static_cast<size_t>(n));
  }
}

void WriteResponse(int fd, int code, const char* reason,
                   std::string_view body) {
  std::string head = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                     "\r\n"
                     "Content-Type: application/json\r\n"
                     "Content-Length: " +
                     std::to_string(body.size()) +
                     "\r\n"
                     "Connection: close\r\n\r\n";
  WriteAll(fd, head);
  WriteAll(fd, body);
}

void WriteError(int fd, int code, const char* reason,
                std::string_view detail) {
  std::string body = "{\"error\":\"";
  body.append(detail);
  body += "\"}";
  WriteResponse(fd, code, reason, body);
}

}  // namespace

AdminHttpServer::AdminHttpServer(AdminOptions options)
    : options_(std::move(options)) {}

AdminHttpServer::~AdminHttpServer() { Shutdown(); }

void AdminHttpServer::Route(std::string path, Provider provider) {
  routes_.emplace_back(std::move(path), std::move(provider));
}

Status AdminHttpServer::Start() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("admin socket: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("admin bind address '" +
                                   options_.bind_address + "' is not IPv4");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("admin bind " + options_.bind_address + ":" +
                               std::to_string(options_.port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    Status s =
        Status::IOError(std::string("admin listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Status::IOError(std::string("admin getsockname: ") +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void AdminHttpServer::Shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminHttpServer::ServeLoop() {
  // Poll with a short timeout instead of blocking in accept, so Shutdown
  // is seen within ~100ms without self-pipe machinery.
  for (;;) {
    if (stopping_.load(std::memory_order_relaxed)) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    timeval tv{};
    tv.tv_sec = options_.io_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    HandleConnection(fd);
    ::close(fd);
  }
}

void AdminHttpServer::HandleConnection(int fd) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  // Read until the end of headers or the size cap; the request body (there
  // is none for GET) is ignored.
  std::string request;
  for (;;) {
    if (request.size() > options_.max_request_bytes) {
      WriteError(fd, 400, "Bad Request", "request exceeds size cap");
      return;
    }
    char buf[1024];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (request.empty()) return;  // peer vanished before sending anything
      WriteError(fd, 400, "Bad Request", "truncated request");
      return;
    }
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      break;
    }
  }

  // Request line: METHOD SP PATH SP VERSION.
  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) line_end = request.find('\n');
  std::string_view line = std::string_view(request).substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    WriteError(fd, 400, "Bad Request", "malformed request line");
    return;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteError(fd, 405, "Method Not Allowed", "GET only");
    return;
  }
  // Strip any query string; routes are exact paths.
  size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);

  for (const auto& [path, provider] : routes_) {
    if (target == path) {
      WriteResponse(fd, 200, "OK", provider());
      return;
    }
  }
  WriteError(fd, 404, "Not Found", "no such endpoint");
}

}  // namespace ssdb::control
