#include "control/monitor.h"

#include <chrono>
#include <utility>

#include "rpc/client.h"
#include "rpc/socket_channel.h"
#include "util/json.h"

namespace ssdb::control {

std::string_view ServerStateName(ServerState state) {
  switch (state) {
    case ServerState::kUp: return "up";
    case ServerState::kSuspect: return "suspect";
    case ServerState::kDown: return "down";
    case ServerState::kRecovering: return "recovering";
  }
  return "unknown";
}

StatusOr<rpc::PingInfo> ProbeUnixPing(const std::string& endpoint,
                                      int timeout_seconds) {
  SSDB_ASSIGN_OR_RETURN(std::unique_ptr<rpc::Channel> channel,
                        rpc::ConnectUnix(endpoint));
  if (timeout_seconds > 0) {
    SSDB_RETURN_IF_ERROR(channel->SetIoTimeout(timeout_seconds));
  }
  StatusOr<rpc::PingInfo> info = rpc::Ping(channel.get());
  channel->Close();
  return info;
}

Monitor::Monitor(std::vector<MonitorTarget> targets, MonitorOptions options)
    : options_(std::move(options)) {
  targets_.reserve(targets.size());
  for (MonitorTarget& target : targets) {
    ServerHealth health;
    health.name = std::move(target.name);
    health.endpoint = std::move(target.endpoint);
    targets_.push_back(std::move(health));
  }
}

Monitor::~Monitor() { Stop(); }

void Monitor::Start() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] {
    for (;;) {
      ProbeOnce();
      std::unique_lock<std::mutex> lock(run_mu_);
      run_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.probe_interval_ms),
                       [this] { return stopping_; });
      if (stopping_) return;
    }
  });
}

void Monitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    stopping_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Monitor::ProbeOnce() {
  const ProbeFn& probe = options_.probe ? options_.probe : ProbeUnixPing;
  for (size_t i = 0; i < targets_.size(); ++i) {
    std::string endpoint;
    {
      std::lock_guard<std::mutex> lock(mu_);
      endpoint = targets_[i].endpoint;
    }
    auto start = std::chrono::steady_clock::now();
    StatusOr<rpc::PingInfo> result =
        probe(endpoint, options_.probe_timeout_seconds);
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    Apply(i, result, elapsed_ms);
  }
}

void Monitor::Apply(size_t index, const StatusOr<rpc::PingInfo>& result,
                    double elapsed_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ServerHealth& h = targets_[index];
  ++h.probes;
  h.last_probe_ms = elapsed_ms;
  auto transition = [&h](ServerState next) {
    h.state = next;
    ++h.transitions;
  };
  if (result.ok()) {
    h.consecutive_failures = 0;
    ++h.consecutive_successes;
    h.build = result->build;
    h.uptime_seconds = result->uptime_seconds;
    h.stats_epoch = result->stats_epoch;
    switch (h.state) {
      case ServerState::kUp:
        break;
      case ServerState::kSuspect:
        // A blip, not an outage: the server never reached kDown, so one
        // good probe restores full trust.
        transition(ServerState::kUp);
        break;
      case ServerState::kDown:
        transition(ServerState::kRecovering);
        [[fallthrough]];
      case ServerState::kRecovering:
        if (h.consecutive_successes >=
            static_cast<uint64_t>(options_.rise > 0 ? options_.rise : 1)) {
          transition(ServerState::kUp);
        }
        break;
    }
  } else {
    h.consecutive_successes = 0;
    ++h.consecutive_failures;
    h.last_error = result.status().ToString();
    switch (h.state) {
      case ServerState::kUp:
        transition(ServerState::kSuspect);
        [[fallthrough]];
      case ServerState::kSuspect:
        if (h.consecutive_failures >=
            static_cast<uint64_t>(options_.fall > 0 ? options_.fall : 1)) {
          transition(ServerState::kDown);
        }
        break;
      case ServerState::kRecovering:
        // Relapse during recovery goes straight back down: the server
        // already proved unreliable, no fresh `fall` budget.
        transition(ServerState::kDown);
        break;
      case ServerState::kDown:
        break;
    }
  }
}

std::vector<ServerHealth> Monitor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return targets_;
}

ServerState Monitor::StateOf(std::string_view endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ServerHealth& h : targets_) {
    if (h.endpoint == endpoint) return h.state;
  }
  return ServerState::kUp;
}

std::string Monitor::ServersJson() const {
  std::vector<ServerHealth> servers = Snapshot();
  std::string out = "{\"servers\":[";
  for (size_t i = 0; i < servers.size(); ++i) {
    const ServerHealth& h = servers[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(&out, h.name);
    out += ",\"endpoint\":";
    AppendJsonString(&out, h.endpoint);
    out += ",\"state\":";
    AppendJsonString(&out, ServerStateName(h.state));
    out += ",\"consecutive_failures\":" +
           std::to_string(h.consecutive_failures);
    out += ",\"consecutive_successes\":" +
           std::to_string(h.consecutive_successes);
    out += ",\"probes\":" + std::to_string(h.probes);
    out += ",\"transitions\":" + std::to_string(h.transitions);
    // Fixed-point milliseconds: the JSON subset has no exponent form.
    out += ",\"last_probe_ms\":" +
           std::to_string(static_cast<uint64_t>(h.last_probe_ms * 1000) /
                          1000) +
           "." +
           [&] {
             uint64_t micros =
                 static_cast<uint64_t>(h.last_probe_ms * 1000) % 1000;
             std::string frac = std::to_string(micros);
             return std::string(3 - frac.size(), '0') + frac;
           }();
    out += ",\"last_error\":";
    AppendJsonString(&out, h.last_error);
    out += ",\"build\":";
    AppendJsonString(&out, h.build);
    out += ",\"uptime_seconds\":" + std::to_string(h.uptime_seconds);
    out += ",\"stats_epoch\":" + std::to_string(h.stats_epoch) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace ssdb::control
