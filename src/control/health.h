/// Control plane (DESIGN.md §11): the health vocabulary shared by the
/// monitor, the fan-out filter, and the shard router. This header is a
/// dependency-free leaf so filter/ and shard/ can consult server health
/// without pulling in the monitor (or creating a layering cycle).
///
/// The per-server state machine follows MaxScale's `mariadbmon` shape:
///
///   kUp ──fail──▶ kSuspect ──fall consecutive fails──▶ kDown
///    ▲              │ success                            │ success
///    └──────────────┘                                    ▼
///    ▲                                              kRecovering
///    └───────────── rise consecutive successes ──────────┘
///
/// Only kDown triggers fail-fast behaviour downstream; kSuspect and
/// kRecovering keep serving (a single dropped probe must not take a
/// healthy server out of rotation).

#ifndef SSDB_CONTROL_HEALTH_H_
#define SSDB_CONTROL_HEALTH_H_

#include <string_view>

namespace ssdb::control {

enum class ServerState {
  kUp,          // probes succeeding
  kSuspect,     // failing, but fewer than `fall` consecutive failures
  kDown,        // `fall` consecutive failures — fail fast, stop dialing
  kRecovering,  // probes succeeding again, fewer than `rise` in a row
};

// Lowercase wire/JSON name: "up", "suspect", "down", "recovering".
std::string_view ServerStateName(ServerState state);

// Read-side interface consulted before dialing or fanning out to a
// backend. Implemented by control::Monitor; queries key by endpoint (the
// catalog's slice string). Unknown endpoints report kUp — absence of
// monitoring is not evidence of failure.
class HealthView {
 public:
  virtual ~HealthView() = default;

  virtual ServerState StateOf(std::string_view endpoint) const = 0;

  bool IsDown(std::string_view endpoint) const {
    return StateOf(endpoint) == ServerState::kDown;
  }
};

}  // namespace ssdb::control

#endif  // SSDB_CONTROL_HEALTH_H_
