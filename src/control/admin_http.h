/// AdminHttpServer (DESIGN.md §11): a deliberately tiny HTTP/1.0 JSON
/// admin surface, hand-rolled like the §10 JSON codec — no framework, no
/// TLS, no write path. GET only; anything else is 405. Routes are
/// registered as callbacks returning a JSON body, so the server stays
/// decoupled from what it serves (`/v1/stats` closes over a
/// ConcurrentServer, `/v1/servers` over a Monitor, `/v1/catalog` over a
/// ShardCatalog).
///
/// Trust model: the admin surface discloses METADATA ONLY — server
/// states, counters, catalog topology. It never serves shares, key
/// material, or document content, and it binds 127.0.0.1 by default so
/// it is not reachable from the share-server trust boundary. Requests
/// are capped at max_request_bytes (an oversized or malformed request is
/// rejected and the connection closed) and handled one at a time — an
/// admin endpoint has no business being a throughput surface.

#ifndef SSDB_CONTROL_ADMIN_HTTP_H_
#define SSDB_CONTROL_ADMIN_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ssdb::control {

struct AdminOptions {
  std::string bind_address = "127.0.0.1";
  // TCP port; 0 picks an ephemeral port (read it back via port() — the
  // daemons print it so scripts can scrape it).
  uint16_t port = 0;
  // Reject requests larger than this before parsing (431-ish, answered
  // as 400): nothing a GET-only metadata API accepts is ever this big.
  size_t max_request_bytes = 4096;
  // Per-connection socket send/receive timeout; a stalled admin client
  // can hold the (single) serving thread at most ~2x this.
  int io_timeout_seconds = 5;
};

class AdminHttpServer {
 public:
  // A route's body producer; invoked per request, must be thread-safe
  // against whatever it snapshots.
  using Provider = std::function<std::string()>;

  explicit AdminHttpServer(AdminOptions options = {});
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  // Registers `path` (exact match, e.g. "/v1/stats") before Start().
  void Route(std::string path, Provider provider);

  // Binds, listens, and spawns the serving thread.
  Status Start();
  void Shutdown();

  // The bound port (resolves an ephemeral request); valid after Start().
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  AdminOptions options_;
  std::vector<std::pair<std::string, Provider>> routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace ssdb::control

#endif  // SSDB_CONTROL_ADMIN_HTTP_H_
