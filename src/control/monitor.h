/// Monitor (DESIGN.md §11): a background thread that probes every
/// configured server with the lightweight kPing RPC and drives the
/// per-server state machine of control/health.h, in the style of
/// MaxScale's `mariadbmon`. One probe sweep walks all targets; between
/// sweeps the thread sleeps `probe_interval_ms` (interruptible, so Stop()
/// is prompt). Probes are injectable (`MonitorOptions::probe`) so tests
/// can script success/failure sequences deterministically and wrap real
/// channels in fault injection; the default probe dials the target's unix
/// socket with `probe_timeout_seconds` and runs rpc::Ping.
///
/// The Monitor is itself a HealthView: MultiServerFilter and shard::Router
/// consult StateOf() to fail fast on kDown backends instead of eating a
/// connect/io timeout per query.

#ifndef SSDB_CONTROL_MONITOR_H_
#define SSDB_CONTROL_MONITOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "control/health.h"
#include "rpc/protocol.h"
#include "util/statusor.h"

namespace ssdb::control {

// One monitored server: a display name ("doc1[0]", "catalog") and the
// endpoint to probe (unix socket path).
struct MonitorTarget {
  std::string name;
  std::string endpoint;
};

// A probe attempt's verdict: the ping reply, or why it failed.
using ProbeFn =
    std::function<StatusOr<rpc::PingInfo>(const std::string& endpoint,
                                          int timeout_seconds)>;

// The default probe: dial the unix socket, bound every read/write by the
// timeout, one kPing round trip. Exposed for tools and tests.
StatusOr<rpc::PingInfo> ProbeUnixPing(const std::string& endpoint,
                                      int timeout_seconds);

struct MonitorOptions {
  // Sweep cadence; a probe sweep starts every probe_interval_ms.
  int probe_interval_ms = 1000;
  // Per-probe dial/IO bound — a dead-but-routable server costs at most
  // this long per sweep.
  int probe_timeout_seconds = 1;
  // Consecutive failures before kSuspect hardens into kDown.
  int fall = 3;
  // Consecutive successes before kRecovering is trusted as kUp.
  int rise = 2;
  // Probe implementation; defaults to ProbeUnixPing.
  ProbeFn probe;
};

// Everything /v1/servers discloses about one target. Metadata only.
struct ServerHealth {
  std::string name;
  std::string endpoint;
  ServerState state = ServerState::kUp;
  uint64_t consecutive_failures = 0;
  uint64_t consecutive_successes = 0;
  uint64_t probes = 0;       // total probes sent
  uint64_t transitions = 0;  // state changes observed
  double last_probe_ms = 0;  // latency of the last probe (success or fail)
  std::string last_error;    // last failing probe's status text
  // Echoed by the last successful ping.
  std::string build;
  uint64_t uptime_seconds = 0;
  uint64_t stats_epoch = 0;
};

class Monitor : public HealthView {
 public:
  Monitor(std::vector<MonitorTarget> targets, MonitorOptions options);
  ~Monitor() override;

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // Spawns the probe thread. Stop() (or destruction) joins it.
  void Start();
  void Stop();

  // One synchronous probe sweep over every target — the unit the thread
  // repeats, exposed so tests drive the state machine deterministically.
  void ProbeOnce();

  // Coherent copy of every target's health.
  std::vector<ServerHealth> Snapshot() const;

  // HealthView: state by endpoint; kUp for unmonitored endpoints.
  ServerState StateOf(std::string_view endpoint) const override;

  // The /v1/servers response body: {"servers":[{...}, ...]}.
  std::string ServersJson() const;

 private:
  void Apply(size_t index, const StatusOr<rpc::PingInfo>& result,
             double elapsed_ms);

  const MonitorOptions options_;
  mutable std::mutex mu_;
  std::vector<ServerHealth> targets_;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ssdb::control

#endif  // SSDB_CONTROL_MONITOR_H_
