// ColumnStore (DESIGN.md §12): a per-column-family page store for the blob
// columns that used to ride inside every heap row — the §8 aggregate-column
// slice (family kAgg) and the §9 verification track (family kVerify). Rows
// in the main table keep only their fixed columns; blobs live here, keyed by
// (family, share nonce), which makes them immune to the pre/post shifts an
// INSERT/DELETE applies to the row table.
//
// Why a separate store: the slotted heap caps one record at a page
// (~4 KiB), and the aggregate blob alone is 28·|map| bytes per node — the
// old in-row layout capped the tag map near ~140 entries. Here a blob that
// fits comfortably in a page is packed into a slotted heap page alongside
// its neighbours, and a larger one spills into a chain of dedicated
// overflow pages, so |map| is bounded by disk, not by kPageSize.
//
// Layout (own pager/file, "<table>.cols"):
//   meta slot 0: format magic            slot 3: heap last page
//   meta slot 1: directory B+tree root   slot 4: free-chain head (0 = none)
//   meta slot 2: heap first page         slot 5/6: blob count / blob bytes
//   directory  : B+tree (family << 56 | nonce) -> ref; a ref is either a
//                heap RecordId (bit 63 clear) or a chain head page (bit 63
//                set)
//   chain page : common 8-byte header, [8..12) next page (0 = end),
//                [12..14) used bytes, payload from byte 14
// Erased chains go on the store's own free list (relinked through the next
// field) and are reused before the file grows.
//
// Thread safety: none here — DiskNodeStore calls in under its own lock,
// with the shared/exclusive discipline it already applies to the row table.

#ifndef SSDB_COLSTORE_COLUMN_STORE_H_
#define SSDB_COLSTORE_COLUMN_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/pager.h"
#include "util/statusor.h"

namespace ssdb::colstore {

enum class Family : uint8_t {
  kAgg = 0,     // §8 aggregate columns, 7·|map| masked words, column-major
  kVerify = 1,  // §9 verification track, 16 bytes per aggregate word
};

struct ColumnStoreStats {
  uint64_t blob_count = 0;
  uint64_t blob_bytes = 0;
  uint64_t file_bytes = 0;
  uint64_t page_count = 0;
};

class ColumnStore {
 public:
  static StatusOr<std::unique_ptr<ColumnStore>> Create(
      const std::string& path, size_t buffer_pool_pages);
  static StatusOr<std::unique_ptr<ColumnStore>> Open(
      const std::string& path, size_t buffer_pool_pages);

  // Inserts or replaces the blob stored under (family, nonce).
  Status Put(Family family, uint64_t nonce, std::string_view blob);

  // NotFound when nothing is stored under (family, nonce).
  StatusOr<std::string> Get(Family family, uint64_t nonce) const;

  bool Has(Family family, uint64_t nonce) const;

  // Removes the blob (chain pages go to the free list); OK when absent.
  Status Erase(Family family, uint64_t nonce);

  // Re-keys a blob without rewriting its pages; OK when absent.
  Status Rekey(Family family, uint64_t old_nonce, uint64_t new_nonce);

  ColumnStoreStats Stats() const;

  // Persists directory root / heap pages / counters and fsyncs.
  Status Flush();

 private:
  ColumnStore() = default;

  Status SaveMeta();
  StatusOr<std::string> ReadChain(storage::PageId head) const;
  Status FreeChain(storage::PageId head);
  StatusOr<storage::PageId> WriteChain(std::string_view blob);
  StatusOr<storage::PageId> TakeFreePage();

  std::unique_ptr<storage::Pager> pager_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::optional<storage::BTree> directory_;
  std::optional<storage::HeapFile> heap_;
  storage::PageId free_head_ = 0;  // 0 = empty (page 0 is meta, never a blob)
  uint64_t blob_count_ = 0;
  uint64_t blob_bytes_ = 0;
};

}  // namespace ssdb::colstore

#endif  // SSDB_COLSTORE_COLUMN_STORE_H_
