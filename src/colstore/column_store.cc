#include "colstore/column_store.h"

#include <algorithm>
#include <cstring>

namespace ssdb::colstore {
namespace {

using storage::BTree;
using storage::BufferPool;
using storage::HeapFile;
using storage::kInvalidRecordId;
using storage::kPageSize;
using storage::LoadU16;
using storage::LoadU32;
using storage::PageHandle;
using storage::PageId;
using storage::Pager;
using storage::PageType;
using storage::RecordId;
using storage::SetPageType;
using storage::StoreU16;
using storage::StoreU32;

// "SSDBCOLS" as a little-endian u64, versioned in the low byte of slot 0's
// complement — bump if the layout ever changes incompatibly.
constexpr uint64_t kMagic = 0x31534C4F43424453ULL;  // "SDBCOLS1"

constexpr int kSlotMagic = 0;
constexpr int kSlotDirectoryRoot = 1;
constexpr int kSlotHeapFirst = 2;
constexpr int kSlotHeapLast = 3;
constexpr int kSlotFreeHead = 4;
constexpr int kSlotBlobCount = 5;
constexpr int kSlotBlobBytes = 6;

// Chain page body: next page id then a byte count, payload after.
constexpr size_t kChainNextOffset = 8;
constexpr size_t kChainUsedOffset = 12;
constexpr size_t kChainPayloadOffset = 14;
constexpr size_t kChainCapacity = kPageSize - kChainPayloadOffset;

// Blobs at or below this go through the slotted heap (packed many to a
// page); larger ones get a dedicated chain. Comfortably below the heap's
// own per-record ceiling (~kPageSize - 24).
constexpr size_t kMaxHeapBlob = kPageSize - 64;

constexpr uint64_t kChainRefBit = 1ULL << 63;

uint64_t DirectoryKey(Family family, uint64_t nonce) {
  return (static_cast<uint64_t>(family) << 56) | nonce;
}

}  // namespace

StatusOr<std::unique_ptr<ColumnStore>> ColumnStore::Create(
    const std::string& path, size_t buffer_pool_pages) {
  SSDB_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                        Pager::Open(path, /*create_if_missing=*/true));
  if (pager->GetMetaSlot(kSlotMagic) != 0) {
    return Status::AlreadyExists("column store already exists: " + path);
  }
  auto store = std::unique_ptr<ColumnStore>(new ColumnStore());
  store->pager_ = std::move(pager);
  store->pool_ = std::make_unique<BufferPool>(store->pager_.get(),
                                              buffer_pool_pages);
  SSDB_ASSIGN_OR_RETURN(BTree directory, BTree::Create(store->pool_.get()));
  store->directory_ = directory;
  SSDB_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(store->pool_.get()));
  store->heap_ = heap;
  SSDB_RETURN_IF_ERROR(store->pager_->SetMetaSlot(kSlotMagic, kMagic));
  SSDB_RETURN_IF_ERROR(store->Flush());
  return store;
}

StatusOr<std::unique_ptr<ColumnStore>> ColumnStore::Open(
    const std::string& path, size_t buffer_pool_pages) {
  SSDB_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                        Pager::Open(path, /*create_if_missing=*/false));
  if (pager->GetMetaSlot(kSlotMagic) != kMagic) {
    return Status::Corruption("not a column store file: " + path);
  }
  auto store = std::unique_ptr<ColumnStore>(new ColumnStore());
  store->pager_ = std::move(pager);
  store->pool_ = std::make_unique<BufferPool>(store->pager_.get(),
                                              buffer_pool_pages);
  store->directory_ = BTree::Open(
      store->pool_.get(),
      static_cast<PageId>(store->pager_->GetMetaSlot(kSlotDirectoryRoot)));
  SSDB_ASSIGN_OR_RETURN(
      HeapFile heap,
      HeapFile::Open(
          store->pool_.get(),
          static_cast<PageId>(store->pager_->GetMetaSlot(kSlotHeapFirst)),
          static_cast<PageId>(store->pager_->GetMetaSlot(kSlotHeapLast))));
  store->heap_ = heap;
  store->free_head_ =
      static_cast<PageId>(store->pager_->GetMetaSlot(kSlotFreeHead));
  store->blob_count_ = store->pager_->GetMetaSlot(kSlotBlobCount);
  store->blob_bytes_ = store->pager_->GetMetaSlot(kSlotBlobBytes);
  return store;
}

Status ColumnStore::SaveMeta() {
  SSDB_RETURN_IF_ERROR(
      pager_->SetMetaSlot(kSlotDirectoryRoot, directory_->root()));
  SSDB_RETURN_IF_ERROR(
      pager_->SetMetaSlot(kSlotHeapFirst, heap_->first_page()));
  SSDB_RETURN_IF_ERROR(pager_->SetMetaSlot(kSlotHeapLast, heap_->last_page()));
  SSDB_RETURN_IF_ERROR(pager_->SetMetaSlot(kSlotFreeHead, free_head_));
  SSDB_RETURN_IF_ERROR(pager_->SetMetaSlot(kSlotBlobCount, blob_count_));
  return pager_->SetMetaSlot(kSlotBlobBytes, blob_bytes_);
}

StatusOr<storage::PageId> ColumnStore::TakeFreePage() {
  if (free_head_ != 0) {
    PageId id = free_head_;
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(id));
    free_head_ = LoadU32(page.data() + kChainNextOffset);
    StoreU32(page.data() + kChainNextOffset, 0);
    StoreU16(page.data() + kChainUsedOffset, 0);
    page.MarkDirty();
    return id;
  }
  SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->NewPage());
  SetPageType(page.data(), PageType::kColumnBlob);
  page.MarkDirty();
  return page.id();
}

StatusOr<storage::PageId> ColumnStore::WriteChain(std::string_view blob) {
  PageId head = 0;
  PageId prev = 0;
  size_t offset = 0;
  // An empty blob never reaches here (Put stores those in the heap), so the
  // loop always allocates at least one page.
  while (offset < blob.size()) {
    size_t take = std::min(kChainCapacity, blob.size() - offset);
    SSDB_ASSIGN_OR_RETURN(PageId id, TakeFreePage());
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(id));
    StoreU32(page.data() + kChainNextOffset, 0);
    StoreU16(page.data() + kChainUsedOffset, static_cast<uint16_t>(take));
    std::memcpy(page.data() + kChainPayloadOffset, blob.data() + offset, take);
    page.MarkDirty();
    if (prev != 0) {
      SSDB_ASSIGN_OR_RETURN(PageHandle prev_page, pool_->Fetch(prev));
      StoreU32(prev_page.data() + kChainNextOffset, id);
      prev_page.MarkDirty();
    } else {
      head = id;
    }
    prev = id;
    offset += take;
  }
  return head;
}

StatusOr<std::string> ColumnStore::ReadChain(storage::PageId head) const {
  std::string out;
  PageId id = head;
  uint64_t hops = 0;
  while (id != 0) {
    if (++hops > pager_->page_count()) {
      return Status::Corruption("column-store chain cycle");
    }
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(id));
    if (storage::GetPageType(page.data()) != PageType::kColumnBlob) {
      return Status::Corruption("column-store chain points at a non-blob page");
    }
    size_t used = LoadU16(page.data() + kChainUsedOffset);
    if (used > kChainCapacity) {
      return Status::Corruption("column-store chain page overfull");
    }
    out.append(reinterpret_cast<const char*>(page.data()) +
                   kChainPayloadOffset,
               used);
    id = LoadU32(page.data() + kChainNextOffset);
  }
  return out;
}

Status ColumnStore::FreeChain(storage::PageId head) {
  PageId id = head;
  uint64_t hops = 0;
  while (id != 0) {
    if (++hops > pager_->page_count()) {
      return Status::Corruption("column-store chain cycle");
    }
    SSDB_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(id));
    PageId next = LoadU32(page.data() + kChainNextOffset);
    StoreU32(page.data() + kChainNextOffset, free_head_);
    StoreU16(page.data() + kChainUsedOffset, 0);
    page.MarkDirty();
    free_head_ = id;
    id = next;
  }
  return Status::OK();
}

Status ColumnStore::Put(Family family, uint64_t nonce,
                        std::string_view blob) {
  SSDB_RETURN_IF_ERROR(Erase(family, nonce));
  uint64_t ref = 0;
  if (blob.size() <= kMaxHeapBlob) {
    SSDB_ASSIGN_OR_RETURN(RecordId rid, heap_->Append(blob));
    ref = rid;
  } else {
    SSDB_ASSIGN_OR_RETURN(PageId head, WriteChain(blob));
    ref = kChainRefBit | head;
  }
  SSDB_RETURN_IF_ERROR(directory_->Insert(DirectoryKey(family, nonce), ref));
  ++blob_count_;
  blob_bytes_ += blob.size();
  return Status::OK();
}

StatusOr<std::string> ColumnStore::Get(Family family, uint64_t nonce) const {
  SSDB_ASSIGN_OR_RETURN(uint64_t ref,
                        directory_->Get(DirectoryKey(family, nonce)));
  if (ref & kChainRefBit) {
    return ReadChain(static_cast<PageId>(ref & ~kChainRefBit));
  }
  return heap_->Get(static_cast<RecordId>(ref));
}

bool ColumnStore::Has(Family family, uint64_t nonce) const {
  return directory_->Contains(DirectoryKey(family, nonce));
}

Status ColumnStore::Erase(Family family, uint64_t nonce) {
  StatusOr<uint64_t> ref = directory_->Get(DirectoryKey(family, nonce));
  if (!ref.ok()) {
    if (ref.status().IsNotFound()) return Status::OK();
    return ref.status();
  }
  size_t released = 0;
  if (*ref & kChainRefBit) {
    SSDB_ASSIGN_OR_RETURN(std::string blob,
                          ReadChain(static_cast<PageId>(*ref & ~kChainRefBit)));
    released = blob.size();
    SSDB_RETURN_IF_ERROR(FreeChain(static_cast<PageId>(*ref & ~kChainRefBit)));
  } else {
    SSDB_ASSIGN_OR_RETURN(std::string blob,
                          heap_->Get(static_cast<RecordId>(*ref)));
    released = blob.size();
    SSDB_RETURN_IF_ERROR(heap_->Delete(static_cast<RecordId>(*ref)));
  }
  SSDB_RETURN_IF_ERROR(directory_->Delete(DirectoryKey(family, nonce)));
  --blob_count_;
  blob_bytes_ -= released;
  return Status::OK();
}

Status ColumnStore::Rekey(Family family, uint64_t old_nonce,
                          uint64_t new_nonce) {
  if (old_nonce == new_nonce) return Status::OK();
  StatusOr<uint64_t> ref = directory_->Get(DirectoryKey(family, old_nonce));
  if (!ref.ok()) {
    if (ref.status().IsNotFound()) return Status::OK();
    return ref.status();
  }
  SSDB_RETURN_IF_ERROR(
      directory_->Insert(DirectoryKey(family, new_nonce), *ref));
  return directory_->Delete(DirectoryKey(family, old_nonce));
}

ColumnStoreStats ColumnStore::Stats() const {
  ColumnStoreStats stats;
  stats.blob_count = blob_count_;
  stats.blob_bytes = blob_bytes_;
  stats.file_bytes = pager_->file_bytes();
  stats.page_count = pager_->page_count();
  return stats;
}

Status ColumnStore::Flush() {
  SSDB_RETURN_IF_ERROR(SaveMeta());
  SSDB_RETURN_IF_ERROR(pool_->FlushAll());
  return pager_->Sync();
}

}  // namespace ssdb::colstore
