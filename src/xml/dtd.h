// Minimal DTD parser: extracts <!ELEMENT name (content-model)> declarations.
// The paper's mapping function is defined over "tag names ... chosen from a
// fixed sized set (described in a DTD)" — this module supplies that set (the
// XMark auction DTD from the paper's appendix ships in src/xmark).

#ifndef SSDB_XML_DTD_H_
#define SSDB_XML_DTD_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace ssdb::xml {

struct ElementDecl {
  std::string name;
  std::string content_model;  // raw text between the parentheses/keywords
  // Child element names referenced by the content model (no duplicates,
  // in first-appearance order). #PCDATA is not included.
  std::vector<std::string> children;
};

class Dtd {
 public:
  const std::vector<ElementDecl>& elements() const { return elements_; }

  // Declared element names in declaration order.
  std::vector<std::string> ElementNames() const;

  bool HasElement(std::string_view name) const;
  const ElementDecl* FindElement(std::string_view name) const;

  void AddElement(ElementDecl decl) { elements_.push_back(std::move(decl)); }

 private:
  std::vector<ElementDecl> elements_;
};

// Parses the <!ELEMENT ...> declarations out of DTD text; <!ATTLIST ...>,
// <!ENTITY ...> and comments are skipped.
StatusOr<Dtd> ParseDtd(std::string_view input);
StatusOr<Dtd> ParseDtdFile(const std::string& path);

}  // namespace ssdb::xml

#endif  // SSDB_XML_DTD_H_
