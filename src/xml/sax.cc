#include "xml/sax.h"

#include <cctype>

#include "util/file_util.h"
#include "xml/escape.h"

namespace ssdb::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void AdvanceBy(size_t count) {
    for (size_t i = 0; i < count && !AtEnd(); ++i) Advance();
  }

  bool ConsumePrefix(std::string_view prefix) {
    if (input_.substr(pos_).substr(0, prefix.size()) != prefix) return false;
    AdvanceBy(prefix.size());
    return true;
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  size_t pos() const { return pos_; }
  int line() const { return line_; }
  std::string_view SliceFrom(size_t start) const {
    return input_.substr(start, pos_ - start);
  }
  // Finds `needle` starting at the current position; npos when absent.
  size_t Find(std::string_view needle) const {
    return input_.find(needle, pos_);
  }
  void JumpTo(size_t pos) {
    while (pos_ < pos && !AtEnd()) Advance();
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

Status ParseError(const Cursor& cursor, const std::string& message) {
  return Status::Corruption("XML parse error at line " +
                            std::to_string(cursor.line()) + ": " + message);
}

}  // namespace

Status SaxParser::Parse(std::string_view input, SaxHandler* handler) {
  Cursor cursor(input);
  // Skip UTF-8 BOM if present.
  cursor.ConsumePrefix("\xef\xbb\xbf");

  SSDB_RETURN_IF_ERROR(handler->StartDocument());

  std::vector<std::string> open_elements;
  std::string text_buffer;
  bool seen_root = false;

  auto flush_text = [&]() -> Status {
    if (text_buffer.empty()) return Status::OK();
    if (!open_elements.empty()) {
      SSDB_RETURN_IF_ERROR(handler->Characters(text_buffer));
    } else {
      // Text outside the root must be whitespace.
      for (char c : text_buffer) {
        if (!IsSpace(c)) {
          return Status::Corruption("text content outside root element");
        }
      }
    }
    text_buffer.clear();
    return Status::OK();
  };

  while (!cursor.AtEnd()) {
    if (cursor.Peek() != '<') {
      // Accumulate raw text up to the next markup; decode entities at flush.
      size_t start = cursor.pos();
      while (!cursor.AtEnd() && cursor.Peek() != '<') cursor.Advance();
      SSDB_ASSIGN_OR_RETURN(std::string decoded,
                            UnescapeEntities(cursor.SliceFrom(start)));
      text_buffer += decoded;
      continue;
    }

    // Markup.
    if (cursor.ConsumePrefix("<!--")) {
      size_t end = cursor.Find("-->");
      if (end == std::string_view::npos) {
        return ParseError(cursor, "unterminated comment");
      }
      cursor.JumpTo(end + 3);
      continue;
    }
    if (cursor.ConsumePrefix("<![CDATA[")) {
      size_t end = cursor.Find("]]>");
      if (end == std::string_view::npos) {
        return ParseError(cursor, "unterminated CDATA section");
      }
      size_t start = cursor.pos();
      cursor.JumpTo(end);
      text_buffer += std::string(cursor.SliceFrom(start));
      cursor.AdvanceBy(3);
      continue;
    }
    if (cursor.ConsumePrefix("<?")) {
      size_t end = cursor.Find("?>");
      if (end == std::string_view::npos) {
        return ParseError(cursor, "unterminated processing instruction");
      }
      cursor.JumpTo(end + 2);
      continue;
    }
    if (cursor.ConsumePrefix("<!DOCTYPE")) {
      // Skip, honouring a bracketed internal subset.
      int depth = 0;
      while (!cursor.AtEnd()) {
        char c = cursor.Advance();
        if (c == '[') {
          ++depth;
        } else if (c == ']') {
          --depth;
        } else if (c == '>' && depth == 0) {
          break;
        }
      }
      continue;
    }
    if (cursor.ConsumePrefix("</")) {
      SSDB_RETURN_IF_ERROR(flush_text());
      size_t start = cursor.pos();
      while (!cursor.AtEnd() && IsNameChar(cursor.Peek())) cursor.Advance();
      std::string name(cursor.SliceFrom(start));
      if (name.empty()) return ParseError(cursor, "empty closing tag name");
      cursor.SkipSpace();
      if (cursor.AtEnd() || cursor.Advance() != '>') {
        return ParseError(cursor, "malformed closing tag </" + name);
      }
      if (open_elements.empty()) {
        return ParseError(cursor, "closing tag </" + name +
                                      "> with no open element");
      }
      if (open_elements.back() != name) {
        return ParseError(cursor, "mismatched closing tag </" + name +
                                      ">, expected </" +
                                      open_elements.back() + ">");
      }
      open_elements.pop_back();
      SSDB_RETURN_IF_ERROR(handler->EndElement(name));
      continue;
    }

    // Opening tag.
    cursor.AdvanceBy(1);  // consume '<'
    if (cursor.AtEnd() || !IsNameStartChar(cursor.Peek())) {
      return ParseError(cursor, "invalid character after '<'");
    }
    SSDB_RETURN_IF_ERROR(flush_text());
    size_t start = cursor.pos();
    while (!cursor.AtEnd() && IsNameChar(cursor.Peek())) cursor.Advance();
    std::string name(cursor.SliceFrom(start));

    AttributeList attributes;
    bool self_closing = false;
    for (;;) {
      cursor.SkipSpace();
      if (cursor.AtEnd()) return ParseError(cursor, "unterminated tag");
      char c = cursor.Peek();
      if (c == '>') {
        cursor.AdvanceBy(1);
        break;
      }
      if (c == '/') {
        cursor.AdvanceBy(1);
        if (cursor.AtEnd() || cursor.Advance() != '>') {
          return ParseError(cursor, "malformed self-closing tag");
        }
        self_closing = true;
        break;
      }
      if (!IsNameStartChar(c)) {
        return ParseError(cursor, "invalid attribute name");
      }
      size_t attr_start = cursor.pos();
      while (!cursor.AtEnd() && IsNameChar(cursor.Peek())) cursor.Advance();
      std::string attr_name(cursor.SliceFrom(attr_start));
      cursor.SkipSpace();
      if (cursor.AtEnd() || cursor.Advance() != '=') {
        return ParseError(cursor, "attribute " + attr_name + " missing '='");
      }
      cursor.SkipSpace();
      if (cursor.AtEnd()) return ParseError(cursor, "unterminated attribute");
      char quote = cursor.Advance();
      if (quote != '"' && quote != '\'') {
        return ParseError(cursor, "attribute value must be quoted");
      }
      size_t value_start = cursor.pos();
      while (!cursor.AtEnd() && cursor.Peek() != quote) cursor.Advance();
      if (cursor.AtEnd()) {
        return ParseError(cursor, "unterminated attribute value");
      }
      SSDB_ASSIGN_OR_RETURN(std::string value,
                            UnescapeEntities(cursor.SliceFrom(value_start)));
      cursor.AdvanceBy(1);  // closing quote
      attributes.emplace_back(std::move(attr_name), std::move(value));
    }

    if (open_elements.empty() && seen_root) {
      return ParseError(cursor, "multiple root elements");
    }
    seen_root = true;
    SSDB_RETURN_IF_ERROR(handler->StartElement(name, attributes));
    if (self_closing) {
      SSDB_RETURN_IF_ERROR(handler->EndElement(name));
    } else {
      open_elements.push_back(std::move(name));
    }
  }

  SSDB_RETURN_IF_ERROR(flush_text());
  if (!open_elements.empty()) {
    return Status::Corruption("unexpected end of input; <" +
                              open_elements.back() + "> not closed");
  }
  if (!seen_root) {
    return Status::Corruption("document has no root element");
  }
  return handler->EndDocument();
}

Status SaxParser::ParseFile(const std::string& path, SaxHandler* handler) {
  SSDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return Parse(contents, handler);
}

}  // namespace ssdb::xml
