// Serializes a DOM back to XML text; inverse of ParseDocument (round-trip
// property-tested). Used by the XMark generator and the trie transformation.

#ifndef SSDB_XML_WRITER_H_
#define SSDB_XML_WRITER_H_

#include <string>

#include "xml/dom.h"

namespace ssdb::xml {

struct WriterOptions {
  bool pretty = false;    // newline + two-space indentation per depth
  bool declaration = false;  // emit <?xml version="1.0"?> prolog
};

std::string WriteDocument(const Document& doc,
                          const WriterOptions& options = {});
std::string WriteNode(const Node& node, const WriterOptions& options = {});

}  // namespace ssdb::xml

#endif  // SSDB_XML_WRITER_H_
