#include "xml/dom.h"

#include <cctype>

#include "util/logging.h"

namespace ssdb::xml {
namespace {

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class DomBuilder : public SaxHandler {
 public:
  explicit DomBuilder(Document* doc) : doc_(doc) {}

  Status StartElement(std::string_view name,
                      const AttributeList& attributes) override {
    auto node = std::make_unique<Node>();
    node->type = Node::Type::kElement;
    node->name = std::string(name);
    node->attributes = attributes;
    Node* raw = node.get();
    if (stack_.empty()) {
      node->parent = nullptr;
      doc_->set_root(std::move(node));
    } else {
      node->parent = stack_.back();
      stack_.back()->children.push_back(std::move(node));
    }
    stack_.push_back(raw);
    return Status::OK();
  }

  Status EndElement(std::string_view name) override {
    (void)name;  // the SAX parser already validated matching
    stack_.pop_back();
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    if (stack_.empty()) return Status::OK();
    if (IsAllWhitespace(text)) return Status::OK();
    Node* parent = stack_.back();
    // Merge consecutive character callbacks into one text node.
    if (!parent->children.empty() && parent->children.back()->IsText()) {
      parent->children.back()->text += std::string(text);
      return Status::OK();
    }
    auto node = std::make_unique<Node>();
    node->type = Node::Type::kText;
    node->text = std::string(text);
    node->parent = parent;
    parent->children.push_back(std::move(node));
    return Status::OK();
  }

 private:
  Document* doc_;
  std::vector<Node*> stack_;
};

void CountElements(const Node* node, size_t* count) {
  if (!node->IsElement()) return;
  ++*count;
  for (const auto& child : node->children) CountElements(child.get(), count);
}

size_t MaxDepth(const Node* node) {
  if (!node->IsElement()) return 0;
  size_t deepest = 0;
  for (const auto& child : node->children) {
    deepest = std::max(deepest, MaxDepth(child.get()));
  }
  return deepest + 1;
}

// Document-order numbering: pre increments on element open, post on close.
void Annotate(Node* node, uint32_t parent_pre, uint32_t* pre_counter,
              uint32_t* post_counter) {
  if (!node->IsElement()) return;
  node->pre = ++*pre_counter;
  node->parent_pre = parent_pre;
  for (auto& child : node->children) {
    Annotate(child.get(), node->pre, pre_counter, post_counter);
  }
  node->post = ++*post_counter;
}

}  // namespace

std::string Node::DirectText() const {
  std::string out;
  for (const auto& child : children) {
    if (child->IsText()) out += child->text;
  }
  return out;
}

size_t Document::ElementCount() const {
  size_t count = 0;
  if (root_) CountElements(root_.get(), &count);
  return count;
}

size_t Document::Depth() const {
  return root_ ? MaxDepth(root_.get()) : 0;
}

StatusOr<Document> ParseDocument(std::string_view input) {
  Document doc;
  DomBuilder builder(&doc);
  SaxParser parser;
  SSDB_RETURN_IF_ERROR(parser.Parse(input, &builder));
  return doc;
}

StatusOr<Document> ParseDocumentFile(const std::string& path) {
  Document doc;
  DomBuilder builder(&doc);
  SaxParser parser;
  SSDB_RETURN_IF_ERROR(parser.ParseFile(path, &builder));
  return doc;
}

void AnnotatePrePost(Document* doc) {
  if (doc->root() == nullptr) return;
  uint32_t pre = 0, post = 0;
  Annotate(doc->root(), 0, &pre, &post);
}

void ForEachElement(const Node* node,
                    const std::function<void(const Node&)>& fn) {
  if (node == nullptr || !node->IsElement()) return;
  fn(*node);
  for (const auto& child : node->children) {
    ForEachElement(child.get(), fn);
  }
}

}  // namespace ssdb::xml
