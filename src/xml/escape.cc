#include "xml/escape.h"

#include <cstdlib>

namespace ssdb::xml {

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

StatusOr<std::string> UnescapeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      return Status::Corruption("unterminated entity reference");
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code <= 0 || code > 0x10ffff) {
        return Status::Corruption("invalid numeric character reference");
      }
      // Minimal UTF-8 encoding.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else {
        out.push_back(static_cast<char>(0xf0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      }
    } else {
      return Status::Corruption("unknown entity: &" + std::string(entity) +
                                ";");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace ssdb::xml
