#include "xml/dtd.h"

#include <cctype>

#include "util/file_util.h"

namespace ssdb::xml {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

// Extracts element names from a content model like
// "(location, quantity, name?, (a | b)*)".
std::vector<std::string> ExtractChildNames(std::string_view model) {
  std::vector<std::string> names;
  size_t i = 0;
  while (i < model.size()) {
    char c = model[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < model.size() && IsNameChar(model[i])) ++i;
      std::string name(model.substr(start, i - start));
      if (name != "EMPTY" && name != "ANY") {
        bool seen = false;
        for (const auto& existing : names) {
          if (existing == name) {
            seen = true;
            break;
          }
        }
        if (!seen) names.push_back(std::move(name));
      }
    } else {
      ++i;
    }
  }
  return names;
}

}  // namespace

std::vector<std::string> Dtd::ElementNames() const {
  std::vector<std::string> names;
  names.reserve(elements_.size());
  for (const auto& decl : elements_) names.push_back(decl.name);
  return names;
}

bool Dtd::HasElement(std::string_view name) const {
  return FindElement(name) != nullptr;
}

const ElementDecl* Dtd::FindElement(std::string_view name) const {
  for (const auto& decl : elements_) {
    if (decl.name == name) return &decl;
  }
  return nullptr;
}

StatusOr<Dtd> ParseDtd(std::string_view input) {
  Dtd dtd;
  size_t pos = 0;
  while (pos < input.size()) {
    size_t open = input.find("<!", pos);
    if (open == std::string_view::npos) break;
    if (input.substr(open).substr(0, 4) == "<!--") {
      size_t end = input.find("-->", open);
      if (end == std::string_view::npos) {
        return Status::Corruption("unterminated DTD comment");
      }
      pos = end + 3;
      continue;
    }
    size_t close = input.find('>', open);
    if (close == std::string_view::npos) {
      return Status::Corruption("unterminated DTD declaration");
    }
    std::string_view decl = input.substr(open + 2, close - open - 2);
    pos = close + 1;
    if (decl.substr(0, 7) != "ELEMENT") continue;  // skip ATTLIST/ENTITY/...
    decl.remove_prefix(7);
    // Parse: name, then content model.
    size_t i = 0;
    while (i < decl.size() &&
           std::isspace(static_cast<unsigned char>(decl[i]))) {
      ++i;
    }
    size_t name_start = i;
    while (i < decl.size() && IsNameChar(decl[i])) ++i;
    if (i == name_start) {
      return Status::Corruption("ELEMENT declaration missing name");
    }
    ElementDecl element;
    element.name = std::string(decl.substr(name_start, i - name_start));
    while (i < decl.size() &&
           std::isspace(static_cast<unsigned char>(decl[i]))) {
      ++i;
    }
    element.content_model = std::string(decl.substr(i));
    element.children = ExtractChildNames(element.content_model);
    if (dtd.HasElement(element.name)) {
      return Status::Corruption("duplicate ELEMENT declaration: " +
                                element.name);
    }
    dtd.AddElement(std::move(element));
  }
  if (dtd.elements().empty()) {
    return Status::InvalidArgument("DTD contains no ELEMENT declarations");
  }
  return dtd;
}

StatusOr<Dtd> ParseDtdFile(const std::string& path) {
  SSDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return ParseDtd(contents);
}

}  // namespace ssdb::xml
