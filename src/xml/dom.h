// In-memory document tree built on the SAX parser. Used by the ground-truth
// query evaluator, the trie transformation and tests; the encoder itself
// streams and never materializes a DOM (§5.1).

#ifndef SSDB_XML_DOM_H_
#define SSDB_XML_DOM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/statusor.h"
#include "xml/sax.h"

namespace ssdb::xml {

struct Node {
  enum class Type { kElement, kText };

  Type type = Type::kElement;
  std::string name;  // element tag name; empty for text nodes
  std::string text;  // text content; empty for element nodes
  AttributeList attributes;
  std::vector<std::unique_ptr<Node>> children;
  Node* parent = nullptr;

  // Pre/post/parent numbering in the paper's scheme (open-tag counter /
  // close-tag counter / parent's pre; root parent is 0). Filled by
  // AnnotatePrePost; 0 means "not annotated".
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t parent_pre = 0;

  bool IsElement() const { return type == Type::kElement; }
  bool IsText() const { return type == Type::kText; }

  // Concatenated text of direct text children.
  std::string DirectText() const;
};

class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }
  void set_root(std::unique_ptr<Node> root) { root_ = std::move(root); }

  // Number of element nodes.
  size_t ElementCount() const;
  // Maximum element depth (root = 1).
  size_t Depth() const;

 private:
  std::unique_ptr<Node> root_;
};

// Parses a document; text nodes that are all-whitespace between elements are
// dropped (they are formatting, not data).
StatusOr<Document> ParseDocument(std::string_view input);
StatusOr<Document> ParseDocumentFile(const std::string& path);

// Assigns pre/post/parent numbers over *element* nodes only, in document
// order, matching the streaming encoder's numbering exactly (text nodes get
// pre = 0 and are skipped).
void AnnotatePrePost(Document* doc);

// Visits every element node in document order.
void ForEachElement(const Node* node,
                    const std::function<void(const Node&)>& fn);

}  // namespace ssdb::xml

#endif  // SSDB_XML_DOM_H_
