// XML entity escaping/unescaping.

#ifndef SSDB_XML_ESCAPE_H_
#define SSDB_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "util/statusor.h"

namespace ssdb::xml {

// Escapes &, <, > for element text content.
std::string EscapeText(std::string_view text);

// Escapes &, <, >, ", ' for attribute values.
std::string EscapeAttribute(std::string_view value);

// Decodes the five predefined entities plus numeric character references
// (&#NN; and &#xNN;, ASCII range only). Unknown entities are an error.
StatusOr<std::string> UnescapeEntities(std::string_view text);

}  // namespace ssdb::xml

#endif  // SSDB_XML_ESCAPE_H_
