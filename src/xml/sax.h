// Streaming SAX-style XML parser (§5.1: the paper parses with a SAX parser so
// the client only needs memory proportional to tree depth). Handles elements,
// attributes, text with entity references, CDATA, comments, processing
// instructions and DOCTYPE declarations (skipped).
//
// The dialect is the well-formed subset XMark-style documents use; it is not
// a full XML 1.0 implementation (no namespaces-aware validation, no external
// entities — the latter deliberately, as external entities are an injection
// vector).

#ifndef SSDB_XML_SAX_H_
#define SSDB_XML_SAX_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ssdb::xml {

using AttributeList = std::vector<std::pair<std::string, std::string>>;

// Callback interface; any non-OK return aborts the parse and propagates.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual Status StartDocument() { return Status::OK(); }
  virtual Status EndDocument() { return Status::OK(); }
  virtual Status StartElement(std::string_view name,
                              const AttributeList& attributes) = 0;
  virtual Status EndElement(std::string_view name) = 0;
  // Text content with entities already decoded. May be called multiple times
  // per text node (e.g. around CDATA sections).
  virtual Status Characters(std::string_view text) = 0;
};

class SaxParser {
 public:
  SaxParser() = default;

  // Parses a complete document held in memory. Errors carry line numbers.
  Status Parse(std::string_view input, SaxHandler* handler);

  // Convenience: reads and parses a file.
  Status ParseFile(const std::string& path, SaxHandler* handler);
};

}  // namespace ssdb::xml

#endif  // SSDB_XML_SAX_H_
