#include "xml/writer.h"

#include "xml/escape.h"

namespace ssdb::xml {
namespace {

void WriteNodeRec(const Node& node, const WriterOptions& options, int depth,
                  std::string* out) {
  if (node.IsText()) {
    out->append(EscapeText(node.text));
    return;
  }
  auto indent = [&](int d) {
    if (options.pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };
  if (options.pretty && depth > 0) indent(depth);

  out->push_back('<');
  out->append(node.name);
  for (const auto& [attr_name, value] : node.attributes) {
    out->push_back(' ');
    out->append(attr_name);
    out->append("=\"");
    out->append(EscapeAttribute(value));
    out->push_back('"');
  }
  if (node.children.empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  bool has_element_child = false;
  for (const auto& child : node.children) {
    if (child->IsElement()) has_element_child = true;
    WriteNodeRec(*child, options, depth + 1, out);
  }
  if (options.pretty && has_element_child) {
    out->push_back('\n');
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }
  out->append("</");
  out->append(node.name);
  out->push_back('>');
}

}  // namespace

std::string WriteNode(const Node& node, const WriterOptions& options) {
  std::string out;
  WriteNodeRec(node, options, 0, &out);
  return out;
}

std::string WriteDocument(const Document& doc, const WriterOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out.push_back('\n');
  }
  if (doc.root() != nullptr) {
    WriteNodeRec(*doc.root(), options, 0, &out);
  }
  if (options.pretty) out.push_back('\n');
  return out;
}

}  // namespace ssdb::xml
