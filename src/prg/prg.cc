#include "prg/prg.h"

#include "util/logging.h"

namespace ssdb::prg {

Prg::Prg(const Seed& seed) {
  const auto& bytes = seed.bytes();
  for (size_t i = 0; i < kChaChaKeyBytes; ++i) {
    key_[i] = bytes[i];
  }
}

Prg::Stream::Stream(const std::array<uint8_t, kChaChaKeyBytes>& key,
                    uint64_t nonce)
    : key_(key), nonce_(nonce) {}

void Prg::Stream::Refill() {
  ChaCha20Block(key_, counter_, nonce_, &block_);
  ++counter_;
  offset_ = 0;
}

uint8_t Prg::Stream::NextByte() {
  if (offset_ >= kChaChaBlockBytes) Refill();
  return block_[offset_++];
}

void Prg::Stream::Skip(size_t bytes) {
  // Bytes still buffered in the current block are consumed first; whole
  // remaining blocks are skipped by advancing the counter without running
  // ChaCha at all.
  size_t buffered = kChaChaBlockBytes - offset_;
  if (bytes < buffered) {
    offset_ += bytes;
    return;
  }
  bytes -= buffered;
  offset_ = kChaChaBlockBytes;
  counter_ += bytes / kChaChaBlockBytes;
  size_t remainder = bytes % kChaChaBlockBytes;
  if (remainder != 0) {
    Refill();
    offset_ = remainder;
  }
}

uint32_t Prg::Stream::NextUint32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(NextByte()) << (8 * i);
  }
  return v;
}

uint64_t Prg::Stream::NextUint64() {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(NextByte()) << (8 * i);
  }
  return v;
}

gf::Elem Prg::Stream::NextElem(const gf::Field& field) {
  const uint32_t q = field.q();
  // Rejection sampling on bit_width-sized draws: acceptance >= 1/2.
  const int bits = field.bit_width();
  const uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1);
  // Draw whole bytes and carve out `bits`-bit chunks; simple and fast for
  // bits <= 16 (our q <= 2^16 bound).
  for (;;) {
    uint32_t draw;
    if (bits <= 8) {
      draw = NextByte() & mask;
    } else {
      draw = (static_cast<uint32_t>(NextByte()) |
              (static_cast<uint32_t>(NextByte()) << 8)) &
             mask;
    }
    if (draw < q) return draw;
  }
}

gf::RingElem Prg::Stream::NextRingElem(const gf::Ring& ring) {
  gf::RingElem out(ring.n());
  for (uint32_t i = 0; i < ring.n(); ++i) {
    out[i] = NextElem(ring.field());
  }
  return out;
}

Prg::Stream Prg::StreamForNode(uint64_t pre) const {
  return Stream(key_, pre);
}

Prg::Stream Prg::StreamForServerSlice(uint64_t pre, uint32_t index) const {
  SSDB_DCHECK(index != 0 && index < (1u << 16));
  return Stream(key_, pre | (static_cast<uint64_t>(index) << 40));
}

gf::RingElem Prg::ServerSliceShare(const gf::Ring& ring, uint64_t pre,
                                   uint32_t index) const {
  return StreamForServerSlice(pre, index).NextRingElem(ring);
}

gf::RingElem Prg::ClientShare(const gf::Ring& ring, uint64_t pre) const {
  return StreamForNode(pre).NextRingElem(ring);
}

Prg::Stream Prg::StreamForAggColumns(uint64_t pre, uint32_t slice) const {
  SSDB_DCHECK(slice < (1u << 16));
  return Stream(key_,
                pre | (static_cast<uint64_t>(slice) << 40) | (1ULL << 62));
}

Prg::Stream Prg::StreamForVerifyColumns(uint64_t pre) const {
  return Stream(key_, pre | (1ULL << 61));
}

uint64_t Prg::AggVerifyKey(uint32_t value_index) const {
  Stream stream(key_, (1ULL << 61) | (1ULL << 60));
  stream.Skip(static_cast<size_t>(value_index) * sizeof(uint64_t));
  return stream.NextUint64();
}

std::string Prg::PayloadKeystream(uint64_t pre, size_t length) const {
  Stream stream(key_, pre | (1ULL << 63));
  std::string out(length, '\0');
  for (size_t i = 0; i < length; ++i) {
    out[i] = static_cast<char>(stream.NextByte());
  }
  return out;
}

std::string Prg::SealPayload(uint64_t pre, std::string_view plaintext) const {
  std::string out = PayloadKeystream(pre, plaintext.size());
  for (size_t i = 0; i < plaintext.size(); ++i) {
    out[i] = static_cast<char>(out[i] ^ plaintext[i]);
  }
  return out;
}

}  // namespace ssdb::prg
