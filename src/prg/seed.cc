#include "prg/seed.h"

#include <random>

#include "util/file_util.h"
#include "util/hex.h"
#include "util/string_util.h"

namespace ssdb::prg {

Seed Seed::FromUint64(uint64_t value) {
  std::array<uint8_t, kSeedBytes> bytes{};
  // SplitMix64 expansion so nearby integers give unrelated seeds.
  uint64_t state = value;
  for (size_t i = 0; i < kSeedBytes; i += 8) {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    for (size_t j = 0; j < 8; ++j) {
      bytes[i + j] = static_cast<uint8_t>(z >> (8 * j));
    }
  }
  return Seed(bytes);
}

Seed Seed::Generate() {
  std::random_device rd;
  std::array<uint8_t, kSeedBytes> bytes{};
  for (size_t i = 0; i < kSeedBytes; i += 4) {
    uint32_t word = rd();
    for (size_t j = 0; j < 4; ++j) {
      bytes[i + j] = static_cast<uint8_t>(word >> (8 * j));
    }
  }
  return Seed(bytes);
}

StatusOr<Seed> Seed::LoadFromFile(const std::string& path) {
  SSDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return FromHex(std::string(TrimWhitespace(contents)));
}

Status Seed::SaveToFile(const std::string& path) const {
  return WriteStringToFile(path, ToHex() + "\n");
}

StatusOr<Seed> Seed::FromHex(const std::string& hex) {
  SSDB_ASSIGN_OR_RETURN(std::string raw, HexDecode(hex));
  if (raw.size() != kSeedBytes) {
    return Status::InvalidArgument("seed must be exactly 32 bytes");
  }
  std::array<uint8_t, kSeedBytes> bytes{};
  for (size_t i = 0; i < kSeedBytes; ++i) {
    bytes[i] = static_cast<uint8_t>(raw[i]);
  }
  return Seed(bytes);
}

std::string Seed::ToHex() const {
  return HexEncode(std::string_view(
      reinterpret_cast<const char*>(bytes_.data()), bytes_.size()));
}

}  // namespace ssdb::prg
