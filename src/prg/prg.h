/// Position-addressable pseudorandom generator for client shares (paper
/// §5.2): "ClientFilter first regenerates the client polynomial by using the
/// pseudorandom generator with the secret seed and the pre location".
///
/// Each node position `pre` selects an independent ChaCha20 keystream
/// (nonce = pre), so any node's client share can be regenerated in
/// isolation, in any order — exactly the property the thin-client pipeline
/// needs. Five domain-separated nonce spaces share the key (DESIGN.md §5,
/// §8, §9, §12):
///   bits 0..31   node position `pre` (the nonce of a node as first encoded)
///   bits 32..39  mutation-nonce extension (DESIGN.md §12): a node re-shared
///                by INSERT/UPDATE/DELETE draws a fresh 40-bit nonce from a
///                persistent per-document watermark in
///                [kFirstMutationNonce, kMutationNonceLimit), so mutated
///                masks never collide with any pre-addressed stream
///   bits 40..55  server slice index (multi-server encode; 0 = client share)
///   bit  60      verification α-key stream flag (with bit 61, DESIGN.md §9)
///   bit  61      aggregate verification-track mask stream flag (DESIGN.md §9)
///   bit  62      aggregate-column mask stream flag (DESIGN.md §8)
///   bit  63      sealed-payload keystream flag (§4 extension)

#ifndef SSDB_PRG_PRG_H_
#define SSDB_PRG_PRG_H_

#include <array>
#include <cstdint>

#include "gf/field.h"
#include "gf/ring.h"
#include "prg/chacha.h"
#include "prg/seed.h"

namespace ssdb::prg {

// Mutation nonces (DESIGN.md §12) live strictly above the 32-bit pre space
// and strictly below the slice-index bits: a per-document watermark hands
// them out in [kFirstMutationNonce, kMutationNonceLimit).
inline constexpr uint64_t kFirstMutationNonce = uint64_t{1} << 32;
inline constexpr uint64_t kMutationNonceLimit = uint64_t{1} << 40;

class Prg {
 public:
  explicit Prg(const Seed& seed);

  // An independent deterministic byte/element stream for one node.
  class Stream {
   public:
    Stream(const std::array<uint8_t, kChaChaKeyBytes>& key, uint64_t nonce);

    uint8_t NextByte();
    uint32_t NextUint32();
    uint64_t NextUint64();

    // Advances the stream by `bytes` positions without materializing them.
    // ChaCha20 is a counter-mode cipher, so skipping whole blocks is a
    // counter jump — random access into a node's mask stream is O(1).
    void Skip(size_t bytes);

    // Uniform field element via rejection sampling (no modulo bias).
    gf::Elem NextElem(const gf::Field& field);

    // n = ring.n() uniform coefficients — a client share.
    gf::RingElem NextRingElem(const gf::Ring& ring);

   private:
    void Refill();

    std::array<uint8_t, kChaChaKeyBytes> key_;
    uint64_t nonce_;
    uint64_t counter_ = 0;
    std::array<uint8_t, kChaChaBlockBytes> block_;
    size_t offset_ = kChaChaBlockBytes;  // forces refill on first use
  };

  Stream StreamForNode(uint64_t pre) const;

  // Convenience: the client share for the node at position `pre`.
  gf::RingElem ClientShare(const gf::Ring& ring, uint64_t pre) const;

  // Pseudorandom server share slice `index` (1 <= index < m) for the node at
  // position `pre` — the m-server split's extra slices (DESIGN.md §5).
  // Domain-separated from the client share by nonce bits 40..55, so slice
  // randomness never overlaps share or payload randomness. Only the encoder
  // uses these; querying needs no knowledge of m.
  Stream StreamForServerSlice(uint64_t pre, uint32_t index) const;
  gf::RingElem ServerSliceShare(const gf::Ring& ring, uint64_t pre,
                                uint32_t index) const;

  // Stream of mask words for the node's aggregate columns (DESIGN.md §8):
  // slice 0 is the client's mask stream, slice i >= 1 the pseudorandom part
  // of server slice i. Domain-separated from share randomness by nonce
  // bit 62, so aggregate masks never overlap share or payload bytes.
  Stream StreamForAggColumns(uint64_t pre, uint32_t slice) const;

  // Mask stream for the node's aggregate *verification track* (DESIGN.md
  // §9): 16 bytes per aggregate word position w — the wide-share mask C_w
  // (uint64 at byte 16·w) then the proof-share mask C_p (uint64 at byte
  // 16·w + 8). Only the client ever regenerates it (the track is masked by
  // client randomness alone, independent of the server count m), so nonce
  // bit 61 domain-separates it from every other stream.
  Stream StreamForVerifyColumns(uint64_t pre) const;

  // The client-held verification key α_τ for mapped value index τ
  // (DESIGN.md §9): a uniform uint64 drawn from the bits 60+61 nonce
  // subspace, position-addressed so any single key is an O(1) counter jump.
  uint64_t AggVerifyKey(uint32_t value_index) const;

  // Keystream for the node's sealed payload (§4 extension). Domain-separated
  // from the share stream by the nonce's high bit, so payload bytes never
  // overlap share randomness.
  std::string PayloadKeystream(uint64_t pre, size_t length) const;

  // XOR seal/unseal with the payload keystream (involution).
  std::string SealPayload(uint64_t pre, std::string_view plaintext) const;
  std::string UnsealPayload(uint64_t pre, std::string_view sealed) const {
    return SealPayload(pre, sealed);
  }

 private:
  std::array<uint8_t, kChaChaKeyBytes> key_;
};

}  // namespace ssdb::prg

#endif  // SSDB_PRG_PRG_H_
