// ChaCha20 block function (D.J. Bernstein), implemented from scratch.
// This is the pseudorandom generator behind the client shares: the paper
// requires a PRG whose output can be regenerated per node from (seed, pre),
// which maps naturally onto ChaCha's (key, nonce, counter) addressing.

#ifndef SSDB_PRG_CHACHA_H_
#define SSDB_PRG_CHACHA_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace ssdb::prg {

inline constexpr size_t kChaChaKeyBytes = 32;
inline constexpr size_t kChaChaBlockBytes = 64;

// Produces the 64-byte keystream block for (key, nonce, counter) using 20
// rounds. Layout follows the original djb variant: 64-bit counter + 64-bit
// nonce.
void ChaCha20Block(const std::array<uint8_t, kChaChaKeyBytes>& key,
                   uint64_t counter, uint64_t nonce,
                   std::array<uint8_t, kChaChaBlockBytes>* out);

}  // namespace ssdb::prg

#endif  // SSDB_PRG_CHACHA_H_
