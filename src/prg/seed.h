// The client's secret seed — the only piece of key material in the scheme
// (§5.1: "The seed file acts as the encryption key"). Stored as a hex-encoded
// 32-byte file compatible with the paper's seed-file concept.

#ifndef SSDB_PRG_SEED_H_
#define SSDB_PRG_SEED_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/statusor.h"

namespace ssdb::prg {

inline constexpr size_t kSeedBytes = 32;

class Seed {
 public:
  Seed() : bytes_{} {}
  explicit Seed(std::array<uint8_t, kSeedBytes> bytes) : bytes_(bytes) {}

  // Deterministic expansion of a 64-bit value into a full seed — convenient
  // for tests and benchmarks. NOT for production key material.
  static Seed FromUint64(uint64_t value);

  // Fresh random seed from the OS entropy source.
  static Seed Generate();

  static StatusOr<Seed> LoadFromFile(const std::string& path);
  Status SaveToFile(const std::string& path) const;

  static StatusOr<Seed> FromHex(const std::string& hex);
  std::string ToHex() const;

  const std::array<uint8_t, kSeedBytes>& bytes() const { return bytes_; }

  bool operator==(const Seed& other) const { return bytes_ == other.bytes_; }

 private:
  std::array<uint8_t, kSeedBytes> bytes_;
};

}  // namespace ssdb::prg

#endif  // SSDB_PRG_SEED_H_
