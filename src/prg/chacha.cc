#include "prg/chacha.h"

namespace ssdb::prg {
namespace {

inline uint32_t Rotl32(uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

inline void QuarterRound(uint32_t* a, uint32_t* b, uint32_t* c, uint32_t* d) {
  *a += *b;
  *d ^= *a;
  *d = Rotl32(*d, 16);
  *c += *d;
  *b ^= *c;
  *b = Rotl32(*b, 12);
  *a += *b;
  *d ^= *a;
  *d = Rotl32(*d, 8);
  *c += *d;
  *b ^= *c;
  *b = Rotl32(*b, 7);
}

inline uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void Store32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

void ChaCha20Block(const std::array<uint8_t, kChaChaKeyBytes>& key,
                   uint64_t counter, uint64_t nonce,
                   std::array<uint8_t, kChaChaBlockBytes>* out) {
  // "expand 32-byte k"
  static constexpr uint32_t kSigma[4] = {0x61707865, 0x3320646e, 0x79622d32,
                                         0x6b206574};
  uint32_t state[16];
  state[0] = kSigma[0];
  state[1] = kSigma[1];
  state[2] = kSigma[2];
  state[3] = kSigma[3];
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = Load32(key.data() + 4 * i);
  }
  state[12] = static_cast<uint32_t>(counter);
  state[13] = static_cast<uint32_t>(counter >> 32);
  state[14] = static_cast<uint32_t>(nonce);
  state[15] = static_cast<uint32_t>(nonce >> 32);

  uint32_t working[16];
  for (int i = 0; i < 16; ++i) working[i] = state[i];

  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    QuarterRound(&working[0], &working[4], &working[8], &working[12]);
    QuarterRound(&working[1], &working[5], &working[9], &working[13]);
    QuarterRound(&working[2], &working[6], &working[10], &working[14]);
    QuarterRound(&working[3], &working[7], &working[11], &working[15]);
    // Diagonal rounds.
    QuarterRound(&working[0], &working[5], &working[10], &working[15]);
    QuarterRound(&working[1], &working[6], &working[11], &working[12]);
    QuarterRound(&working[2], &working[7], &working[8], &working[13]);
    QuarterRound(&working[3], &working[4], &working[9], &working[14]);
  }

  for (int i = 0; i < 16; ++i) {
    Store32(out->data() + 4 * i, working[i] + state[i]);
  }
}

}  // namespace ssdb::prg
