#include "agg/columns.h"

namespace ssdb::agg {

std::string SerializeWords(const std::vector<Word>& words) {
  std::string out;
  out.reserve(words.size() * sizeof(Word));
  for (Word word : words) {
    out.push_back(static_cast<char>(word & 0xff));
    out.push_back(static_cast<char>((word >> 8) & 0xff));
    out.push_back(static_cast<char>((word >> 16) & 0xff));
    out.push_back(static_cast<char>((word >> 24) & 0xff));
  }
  return out;
}

size_t BlobValueCount(std::string_view blob) {
  size_t words = blob.size() / sizeof(Word);
  if (words == 0 || blob.size() % sizeof(Word) != 0 ||
      words % kColCount != 0) {
    return 0;
  }
  return words / kColCount;
}

Word BlobWord(std::string_view blob, size_t word_index) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(blob.data()) +
      word_index * sizeof(Word);
  return static_cast<Word>(p[0]) | (static_cast<Word>(p[1]) << 8) |
         (static_cast<Word>(p[2]) << 16) | (static_cast<Word>(p[3]) << 24);
}

namespace {

void PushU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadU64(std::string_view blob, size_t byte_offset) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(blob.data()) + byte_offset;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

// Bytes per aggregate word position in the verify blob: wide u64 + proof
// u64, interleaved (DESIGN.md §9).
constexpr size_t kVerifyRecordBytes = 2 * sizeof(uint64_t);

}  // namespace

std::string SerializeVerify(const std::vector<uint64_t>& wide,
                            const std::vector<uint64_t>& proof) {
  std::string out;
  out.reserve(wide.size() * kVerifyRecordBytes);
  for (size_t w = 0; w < wide.size(); ++w) {
    PushU64(&out, wide[w]);
    PushU64(&out, proof[w]);
  }
  return out;
}

size_t VerifyBlobValueCount(std::string_view blob) {
  size_t records = blob.size() / kVerifyRecordBytes;
  if (records == 0 || blob.size() % kVerifyRecordBytes != 0 ||
      records % kColCount != 0) {
    return 0;
  }
  return records / kColCount;
}

uint64_t BlobWide(std::string_view blob, size_t word_index) {
  return ReadU64(blob, word_index * kVerifyRecordBytes);
}

uint64_t BlobProof(std::string_view blob, size_t word_index) {
  return ReadU64(blob, word_index * kVerifyRecordBytes + sizeof(uint64_t));
}

Status ValidateSpec(const Spec& spec) {
  if (spec.columns == 0 || (spec.columns & ~kAllColsMask) != 0) {
    return Status::InvalidArgument("aggregate column mask invalid: " +
                                   std::to_string(spec.columns));
  }
  if (spec.value_indexes.empty()) {
    return Status::InvalidArgument("aggregate request has no groups");
  }
  return Status::OK();
}

}  // namespace ssdb::agg
