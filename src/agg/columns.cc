#include "agg/columns.h"

namespace ssdb::agg {

std::string SerializeWords(const std::vector<Word>& words) {
  std::string out;
  out.reserve(words.size() * sizeof(Word));
  for (Word word : words) {
    out.push_back(static_cast<char>(word & 0xff));
    out.push_back(static_cast<char>((word >> 8) & 0xff));
    out.push_back(static_cast<char>((word >> 16) & 0xff));
    out.push_back(static_cast<char>((word >> 24) & 0xff));
  }
  return out;
}

size_t BlobValueCount(std::string_view blob) {
  size_t words = blob.size() / sizeof(Word);
  if (words == 0 || blob.size() % sizeof(Word) != 0 ||
      words % kColCount != 0) {
    return 0;
  }
  return words / kColCount;
}

Word BlobWord(std::string_view blob, size_t word_index) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(blob.data()) +
      word_index * sizeof(Word);
  return static_cast<Word>(p[0]) | (static_cast<Word>(p[1]) << 8) |
         (static_cast<Word>(p[2]) << 16) | (static_cast<Word>(p[3]) << 24);
}

Status ValidateSpec(const Spec& spec) {
  if (spec.columns == 0 || (spec.columns & ~kAllColsMask) != 0) {
    return Status::InvalidArgument("aggregate column mask invalid: " +
                                   std::to_string(spec.columns));
  }
  if (spec.value_indexes.empty()) {
    return Status::InvalidArgument("aggregate request has no groups");
  }
  return Status::OK();
}

}  // namespace ssdb::agg
