/// Aggregate-column algebra (DESIGN.md §8): the encode-time materialization
/// of the §6.3 matching rules that lets the *servers* compute aggregates on
/// additive shares instead of shipping candidate sets home.
///
/// Per node v the encoder derives, for every mapped tag value τ (indexed by
/// mapping::TagMap::ValueIndex), seven 32-bit columns:
///
///   kEqualSelf     [tag(v) = τ]                     (one-hot of v's own tag)
///   kEqualChild    #{c ∈ children(v) : tag(c) = τ}
///   kEqualDesc     #{d ∈ desc(v)     : tag(d) = τ}  (proper descendants)
///   kContainSelf   [τ ∈ subtree(v)]                 (§6.3 containment test)
///   kContainChild  #{c ∈ children(v) : τ ∈ subtree(c)}
///   kContainDesc   #{d ∈ desc(v)     : τ ∈ subtree(d)}
///   kMultDesc      Σ_{d ∈ desc(v)} mult(d, τ)       (mult = occurrences of
///                                                    τ in d's subtree)
///
/// Every aggregate the engine answers — COUNT/SUM/EXISTS/GROUP-BY over a
/// query's final step, both match modes, both axes — is a *linear*
/// functional of these columns over the penultimate candidate frontier, so
/// m servers can each fold their additive slice into one word per group and
/// the client recovers the exact answer by summation, exactly as
/// gf::CombineMulti recovers polynomial values. Two derived identities keep
/// the family at seven instead of nine:
///   Σ_{c ∈ children(v)} mult(c, τ)  =  kEqualDesc(v, τ)
///   mult(v, τ)                      =  kEqualSelf + kEqualDesc
///
/// The stored blob holds one additive slice of all 7·T words (T = mapped
/// value count) masked by the client's PRG stream, so any subset of server
/// slices — including a lone m = 1 server — is jointly uniform.

#ifndef SSDB_AGG_COLUMNS_H_
#define SSDB_AGG_COLUMNS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace ssdb::agg {

// Aggregate partials are additive shares over Z_{2^32}, not ring elements:
// counts must not wrap at the (small) field modulus q. COUNT/EXISTS are
// exact for any document a uint32 pre-numbering can address (the count is
// bounded by the node count); SUM is exact while the true occurrence total
// stays below 2^32 and wraps modulo 2^32 beyond that (reachable only by
// adversarially deep same-tag nesting — see DESIGN.md §8).
using Word = uint32_t;

enum class Col : uint8_t {
  kEqualSelf = 0,
  kEqualChild = 1,
  kEqualDesc = 2,
  kContainSelf = 3,
  kContainChild = 4,
  kContainDesc = 5,
  kMultDesc = 6,
};

inline constexpr size_t kColCount = 7;

// Bitmask selecting a set of columns; a request sums every selected column
// (the client subtracts the matching masks), so derived quantities like
// mult(v) = kEqualSelf + kEqualDesc cost no extra round trip.
inline constexpr uint8_t ColBit(Col col) {
  return static_cast<uint8_t>(1u << static_cast<uint8_t>(col));
}
inline constexpr uint8_t kAllColsMask = (1u << kColCount) - 1;

// Word order within a node's column block: column-major, τ-minor — the word
// for (col, value_index) sits at index col·T + value_index. The client's
// mask stream (prg::Prg::StreamForAggColumns) emits words in this order.
inline size_t WordsPerNode(size_t value_count) {
  return kColCount * value_count;
}
inline size_t WordIndex(Col col, size_t value_count, uint32_t value_index) {
  return static_cast<size_t>(col) * value_count + value_index;
}

// --- blob codec (storage + wire side) --------------------------------------
// A node's stored aggregate slice: 7·T little-endian uint32 words.

std::string SerializeWords(const std::vector<Word>& words);

// Number of mapped values a blob covers; 0 when the blob is absent or not a
// whole number of column blocks (treated as "no aggregate columns").
size_t BlobValueCount(std::string_view blob);

// The word at `word_index`; caller guarantees the index is in range.
Word BlobWord(std::string_view blob, size_t word_index);

// --- verification-track blob codec (DESIGN.md §9) --------------------------
// Slice 0 of a verified database additionally stores, per aggregate word
// position w, a 16-byte record: the masked *wide* share (uint64; the plain
// word zero-extended) then the masked *proof* share (uint64; α_τ · word mod
// 2^64). Both are masked only by the client's bit-61 PRG stream, in exactly
// this interleaved order, so masking is one sequential stream walk.

std::string SerializeVerify(const std::vector<uint64_t>& wide,
                            const std::vector<uint64_t>& proof);

// Number of mapped values a verify blob covers; 0 when absent or misshapen.
size_t VerifyBlobValueCount(std::string_view blob);

// The wide / proof share at aggregate word position `word_index`; caller
// guarantees the index is in range.
uint64_t BlobWide(std::string_view blob, size_t word_index);
uint64_t BlobProof(std::string_view blob, size_t word_index);

// One server's reply to a verified partial-aggregate request (DESIGN.md §9):
// the masked 32-bit partial per group, plus — from the slice that stores the
// verification track (slice 0) — the wide and proof partials. Slices without
// the track reply with empty wide/proof; the client then checks them against
// their PRG expectation instead.
struct VerifiedPartial {
  std::vector<Word> words;
  std::vector<uint64_t> wide;   // empty, or one entry per group
  std::vector<uint64_t> proof;  // same size as wide
};

// --- request spec (client -> server) ---------------------------------------

// A partial-aggregate request (DESIGN.md §8): fold the selected columns of
// the frontier nodes `pres` into one masked word per entry of
// `value_indexes`. The server never sees which axis or aggregate the
// columns encode — only masked word sums leave it.
struct Spec {
  uint8_t columns = 0;                  // ColBit() mask; must be non-zero
  std::vector<uint32_t> pres;           // frontier (deduped client-side)
  std::vector<uint32_t> value_indexes;  // one partial per entry (group-by)
  // Client-side only (never on the wire): the map's value count T, needed
  // to locate mask words; servers derive T from their stored blobs.
  uint32_t value_count = 0;
  // Client-side only: the share nonce per frontier node, parallel to
  // `pres`. 0 (or an absent entry — legacy callers) means "the pre number";
  // re-shared nodes carry an explicit nonce (DESIGN.md §12). The server
  // never needs these: its blobs are already keyed by nonce.
  std::vector<uint64_t> nonces;
};

Status ValidateSpec(const Spec& spec);

}  // namespace ssdb::agg

#endif  // SSDB_AGG_COLUMNS_H_
