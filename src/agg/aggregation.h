/// AggregationEngine (DESIGN.md §8): answers count()/sum()/exists() and
/// group-by-tag queries without materializing the final candidate set at
/// the client. The prefix steps run through a normal QueryEngine (simple or
/// advanced, either match mode); the final step is then answered by a
/// single partial-aggregate exchange: every server folds its additive
/// column slice over the penultimate frontier and returns one masked
/// Z_{2^32} word per group, which ClientFilter::Aggregate unmasks — the
/// servers never learn which nodes matched, the client never downloads the
/// candidates.
///
/// Axis handling is pure column selection (agg/columns.h): a child final
/// step reads the *Child columns of the frontier, a descendant final step
/// the *Desc columns of the frontier's covering set — so the expansion the
/// fetch path pays O(candidates) round-trip bytes for costs the aggregate
/// path nothing. Final steps the column algebra cannot express (a
/// predicate, a '..' test) fall back to the materialized query, keeping
/// answers exact everywhere.

#ifndef SSDB_AGG_AGGREGATION_H_
#define SSDB_AGG_AGGREGATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/columns.h"
#include "filter/client_filter.h"
#include "mapping/tag_map.h"
#include "query/engine.h"
#include "query/xpath.h"
#include "util/statusor.h"

namespace ssdb::agg {

// Which family slot of the column algebra a plan reads, decided by the
// final step's axis and position (agg/columns.h).
enum class Slot : uint8_t {
  kSelf,         // aggregate over the frontier nodes themselves
  kChild,        // ... over their children         (final '/x')
  kDesc,         // ... over their proper descendants (final '//x')
  kSelfAndDesc,  // ... over frontier ∪ descendants (single-step '//x')
};

// A planned aggregate: the frontier to fold over and the columns that
// encode (aggregate function × match mode × axis). Exposed for tests and
// direct API use; Execute() builds it from a parsed aggregate query.
struct Plan {
  query::Aggregate fn = query::Aggregate::kCount;
  uint8_t columns = 0;                     // ColBit() mask
  bool group_by = false;                   // wildcard final step
  bool verify = false;                     // check proofs (DESIGN.md §9)
  std::vector<filter::NodeMeta> frontier;  // deduped; covering for kDesc
  std::vector<uint32_t> value_indexes;     // one group per entry
  std::vector<std::string> group_names;    // parallel to value_indexes
};

struct Result {
  query::Aggregate fn = query::Aggregate::kCount;
  bool group_by = false;
  bool verified = false;       // every value passed proof checks (§9)
  uint64_t proof_words = 0;    // verification words checked
  std::vector<std::string> group_names;  // tag names, parallel to values
  std::vector<uint64_t> values;          // exact counts / sums per group

  // Sum over all groups — the scalar answer of a non-group-by aggregate.
  uint64_t Total() const;
  bool Exists() const { return Total() != 0; }
};

// The column set for one (aggregate, match mode, slot) cell; see the
// semantics table in DESIGN.md §8.
uint8_t ColumnsFor(query::Aggregate fn, query::MatchMode mode, Slot slot);

// Reduces a node set to its covering ancestors (drops every node nested
// inside another's subtree), so descendant folds count each node once.
std::vector<filter::NodeMeta> CoveringSet(std::vector<filter::NodeMeta> nodes);

class AggregationEngine {
 public:
  // Both must outlive the engine. The filter is the same client stack the
  // query engines use, so round trips and masks share one accounting.
  AggregationEngine(filter::ClientFilter* filter,
                    const mapping::TagMap* map)
      : filter_(filter), map_(map) {}

  // Answers `query` (which must carry an aggregate form). The prefix steps
  // run through `engine`; `stats` (may be null) receives the usual
  // QueryStats with result_size = number of groups, NOT matched nodes —
  // the matched set never reaches the client.
  StatusOr<Result> Execute(query::QueryEngine* engine,
                           const query::Query& query, query::MatchMode mode,
                           query::QueryStats* stats);

  // Runs a prepared plan: one masked exchange, unmasked exact answers.
  StatusOr<Result> RunPlan(const Plan& plan);

  // Verified mode (DESIGN.md §9): every Execute() plan also fetches and
  // checks the proof track, so a tampering server turns the query into a
  // Corruption error naming the server instead of a wrong answer. Needs a
  // database encoded with the track (ssdb_encode --verify-agg).
  void set_verify(bool on) { verify_ = on; }
  bool verify() const { return verify_; }

 private:
  filter::ClientFilter* filter_;
  const mapping::TagMap* map_;
  bool verify_ = false;
};

}  // namespace ssdb::agg

#endif  // SSDB_AGG_AGGREGATION_H_
