#include "agg/aggregation.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace ssdb::agg {

using filter::NodeMeta;
using query::Aggregate;
using query::MatchMode;
using query::Step;

uint64_t Result::Total() const {
  uint64_t total = 0;
  for (uint64_t value : values) total += value;
  return total;
}

uint8_t ColumnsFor(Aggregate fn, MatchMode mode, Slot slot) {
  // COUNT and EXISTS read the indicator families; SUM reads the occurrence
  // families, using the identities of agg/columns.h:
  //   mult(v)                 = kEqualSelf + kEqualDesc
  //   Σ_children mult         = kEqualDesc
  // In equality mode a match contributes exactly its own tag occurrence,
  // so SUM degenerates to COUNT by construction (DESIGN.md §8).
  bool contain = mode == MatchMode::kContainment;
  if (fn == Aggregate::kSum && contain) {
    switch (slot) {
      case Slot::kSelf:
        return ColBit(Col::kEqualSelf) | ColBit(Col::kEqualDesc);
      case Slot::kChild:
        return ColBit(Col::kEqualDesc);
      case Slot::kDesc:
        return ColBit(Col::kMultDesc);
      case Slot::kSelfAndDesc:
        return ColBit(Col::kEqualSelf) | ColBit(Col::kEqualDesc) |
               ColBit(Col::kMultDesc);
    }
  }
  Col self = contain ? Col::kContainSelf : Col::kEqualSelf;
  Col child = contain ? Col::kContainChild : Col::kEqualChild;
  Col desc = contain ? Col::kContainDesc : Col::kEqualDesc;
  switch (slot) {
    case Slot::kSelf:
      return ColBit(self);
    case Slot::kChild:
      return ColBit(child);
    case Slot::kDesc:
      return ColBit(desc);
    case Slot::kSelfAndDesc:
      return ColBit(self) | ColBit(desc);
  }
  return 0;
}

std::vector<NodeMeta> CoveringSet(std::vector<NodeMeta> nodes) {
  // pre/post numbering: a is an ancestor of b iff pre(a) < pre(b) and
  // post(a) > post(b). In pre order, non-descendants have strictly
  // increasing post, so one running maximum finds every nested node.
  std::sort(nodes.begin(), nodes.end());
  std::vector<NodeMeta> covering;
  covering.reserve(nodes.size());
  uint32_t max_post = 0;
  bool first = true;
  for (const NodeMeta& node : nodes) {
    if (!covering.empty() && node.pre == covering.back().pre) continue;
    if (first || node.post > max_post) {
      covering.push_back(node);
      max_post = node.post;
      first = false;
    }
  }
  return covering;
}

StatusOr<Result> AggregationEngine::RunPlan(const Plan& plan) {
  Result result;
  result.fn = plan.fn;
  result.group_by = plan.group_by;
  result.group_names = plan.group_names;
  result.values.assign(
      std::max(plan.group_names.size(), plan.value_indexes.size()), 0);
  if (plan.frontier.empty() || plan.value_indexes.empty()) {
    // Empty frontier or an unmapped tag: every group aggregates to zero,
    // which needs no proof to trust.
    result.verified = plan.verify;
    return result;
  }
  Spec spec;
  spec.columns = plan.columns;
  spec.value_indexes = plan.value_indexes;
  spec.value_count = static_cast<uint32_t>(map_->size());
  spec.pres.reserve(plan.frontier.size());
  spec.nonces.reserve(plan.frontier.size());
  for (const NodeMeta& node : plan.frontier) {
    spec.pres.push_back(node.pre);
    spec.nonces.push_back(node.nonce);  // 0 = unmutated (DESIGN.md §12)
  }
  if (plan.verify) {
    SSDB_ASSIGN_OR_RETURN(filter::ClientFilter::VerifiedAggregate verified,
                          filter_->AggregateVerified(spec));
    for (size_t g = 0; g < verified.totals.size(); ++g) {
      result.values[g] = verified.totals[g];
    }
    result.verified = true;
    result.proof_words = verified.proof_words;
    return result;
  }
  SSDB_ASSIGN_OR_RETURN(std::vector<Word> words, filter_->Aggregate(spec));
  for (size_t g = 0; g < words.size(); ++g) {
    result.values[g] = words[g];
  }
  return result;
}

StatusOr<Result> AggregationEngine::Execute(query::QueryEngine* engine,
                                            const query::Query& query,
                                            MatchMode mode,
                                            query::QueryStats* stats) {
  if (query.aggregate == Aggregate::kNone) {
    return Status::InvalidArgument(
        "query has no aggregate form: " + query.text);
  }
  if (query.steps.empty()) {
    return Status::InvalidArgument("aggregate of an empty path");
  }
  Stopwatch watch;
  filter::EvalStats before = filter_->stats();

  const Step& final = query.steps.back();
  // Final steps outside the column algebra: materialize and reduce. Exact,
  // just without the O(1)-response win.
  bool fast = final.predicate.empty() && final.kind != Step::Kind::kParent;
  if (final.kind == Step::Kind::kParent &&
      query.aggregate == Aggregate::kSum) {
    return Status::InvalidArgument(
        "sum() needs a named or wildcard final step: " + query.text);
  }

  // Groups: one for a named final step, one per mapped tag for '*'. A
  // named tag outside the map can never match — the plan keeps its group
  // with no value index and RunPlan reports zero.
  Plan plan;
  plan.fn = query.aggregate;
  plan.verify = verify_;
  if (final.kind == Step::Kind::kName) {
    plan.group_names = {final.name};
    StatusOr<gf::Elem> value = map_->Lookup(final.name);
    if (value.ok()) {
      SSDB_ASSIGN_OR_RETURN(uint32_t index, map_->ValueIndex(*value));
      plan.value_indexes = {index};
    }
  } else if (final.kind == Step::Kind::kWildcard) {
    plan.group_by = true;
    for (uint32_t i = 0; i < map_->size(); ++i) {
      SSDB_ASSIGN_OR_RETURN(std::string name, map_->NameAt(i));
      plan.value_indexes.push_back(i);
      plan.group_names.push_back(std::move(name));
    }
  }

  StatusOr<Result> result = Status::Internal("unset");
  if (!fast) {
    // The materialized result set is the frontier; a kSelf fold turns it
    // into the same counts/sums/histograms the fast path computes.
    query::QueryStats sub_stats;
    SSDB_ASSIGN_OR_RETURN(plan.frontier,
                          engine->Execute(query, mode, &sub_stats));
    if (stats != nullptr) {
      stats->candidates_examined = sub_stats.candidates_examined;
    }
    if (final.kind == Step::Kind::kParent) {
      // '..' has no tag to fold on; COUNT/EXISTS are local to the client.
      Result local;
      local.fn = query.aggregate;
      local.group_names = {".."};
      local.values = {plan.frontier.size()};
      result = local;
    } else {
      plan.columns = ColumnsFor(query.aggregate, mode, Slot::kSelf);
      result = RunPlan(plan);
    }
  } else {
    // Frontier = candidates after the prefix steps; the engine (simple or
    // advanced) runs them under the requested match mode. A single-step
    // aggregate folds over the document root instead.
    Slot slot;
    if (query.steps.size() == 1) {
      SSDB_ASSIGN_OR_RETURN(NodeMeta root, filter_->Root());
      plan.frontier = {root};
      slot = final.axis == Step::Axis::kDescendant ? Slot::kSelfAndDesc
                                                   : Slot::kSelf;
    } else {
      query::Query prefix;
      prefix.steps.assign(query.steps.begin(), query.steps.end() - 1);
      prefix.text = query::QueryToString(prefix);
      query::QueryStats prefix_stats;
      SSDB_ASSIGN_OR_RETURN(plan.frontier,
                            engine->Execute(prefix, mode, &prefix_stats));
      if (stats != nullptr) {
        stats->candidates_examined = prefix_stats.candidates_examined;
      }
      slot = final.axis == Step::Axis::kDescendant ? Slot::kDesc
                                                   : Slot::kChild;
    }
    if (slot == Slot::kDesc || slot == Slot::kSelfAndDesc) {
      plan.frontier = CoveringSet(std::move(plan.frontier));
    } else {
      query::internal::Canonicalize(&plan.frontier);
    }
    plan.columns = ColumnsFor(query.aggregate, mode, slot);
    result = RunPlan(plan);
  }
  SSDB_RETURN_IF_ERROR(result.status());

  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
    // Aggregates materialize groups, not nodes: result_size counts groups.
    stats->result_size = result->values.size();
    query::internal::FillStatsDelta(before, filter_->stats(), stats);
  }
  return result;
}

}  // namespace ssdb::agg
