/// MultiServerFilter (DESIGN.md §5): presents m share-slice servers as one
/// ServerFilter. Share operations (EvalAt*, FetchShare*) fan out to every
/// backend **concurrently** — one persistent worker thread per extra
/// backend, the primary served on the calling thread — and the replies are
/// summed (field sum for evaluations, ring sum for shares), which
/// reconstructs the single-server answer because the additive split
/// commutes with evaluation. Structure operations (navigation, cursors,
/// sealed payloads) go to the primary (backend 0) alone: pre/post/parent
/// are replicated to every slice store, so any backend could serve them,
/// and asking one keeps them a single round trip.
///
/// Round-trip accounting uses straggler semantics: a concurrent fan-out
/// costs one step of latency, so RoundTrips() advances by the *maximum*
/// per-backend delta, making an m-server query step cost exactly as many
/// round trips as the m = 1 case. PerServerRoundTrips() exposes the raw
/// per-backend counters and StragglerSeconds() the wall time spent waiting
/// on the slowest backend.
///
/// With a single backend every call delegates directly (no threads), so the
/// m = 1 path is byte-identical to using the backend alone.
///
/// Thread safety: calls serialize on an internal mutex (the per-backend
/// worker slots and the accounting below are per-filter state), so the
/// filter may be shared by concurrent callers — a shard router fanning
/// corpus queries out across documents, stats readers — without corrupting
/// counters or job slots; within a call the backends still run in parallel.
/// The counters themselves are atomic, so RoundTrips()/StragglerSeconds()
/// can be read while a call is in flight.

#ifndef SSDB_FILTER_MULTI_SERVER_FILTER_H_
#define SSDB_FILTER_MULTI_SERVER_FILTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "control/health.h"
#include "filter/server_filter.h"
#include "gf/ring.h"
#include "util/statusor.h"

namespace ssdb::filter {

class MultiServerFilter : public ServerFilter {
 public:
  // `backends` must be non-empty and outlive the filter; backend i must
  // serve share slice i of the same encoded document. Backends are driven
  // from separate threads during fan-out, so each must be independently
  // usable (distinct channels / stores).
  MultiServerFilter(gf::Ring ring, std::vector<ServerFilter*> backends);
  ~MultiServerFilter() override;

  // --- Structure (primary only) ---
  StatusOr<NodeMeta> Root() override;
  StatusOr<NodeMeta> GetNode(uint32_t pre) override;
  StatusOr<std::vector<NodeMeta>> Children(uint32_t pre) override;
  StatusOr<std::vector<std::vector<NodeMeta>>> ChildrenBatch(
      const std::vector<uint32_t>& pres) override;
  StatusOr<uint64_t> OpenDescendantCursor(uint32_t pre,
                                          uint32_t post) override;
  StatusOr<std::vector<NodeMeta>> NextNodes(uint64_t cursor,
                                            size_t max_batch) override;
  Status CloseCursor(uint64_t cursor) override;
  StatusOr<std::string> FetchSealed(uint32_t pre) override;
  StatusOr<uint64_t> NodeCount() override;
  // Column blobs live on slice 0 alongside the sealed payloads; the mutation
  // planner unmasks them with the other slices' PRG streams (DESIGN.md §12).
  StatusOr<std::vector<storage::ColumnBlobs>> FetchColumnsBatch(
      const std::vector<uint32_t>& pres) override;

  // --- Mutations (concurrent fan-out, DESIGN.md §12) ---
  // One MutationState per backend, in slice order; failures carry
  // "server i:" blame like verified aggregation.
  StatusOr<std::vector<storage::MutationState>> MutationStates() override;
  // plans[i] goes to backend i; plans.size() must equal ServerCount().
  Status PrepareMutation(
      uint64_t txn,
      const std::vector<storage::MutationPlan>& plans) override;
  Status CommitMutation(uint64_t txn) override;
  Status AbortMutation(uint64_t txn) override;

  // --- Shares (concurrent fan-out, replies summed) ---
  // Aggregate partials sum in Z_{2^32} across slices exactly like share
  // evaluations sum in F_q (DESIGN.md §8).
  StatusOr<std::vector<agg::Word>> PartialAggregate(
      const agg::Spec& spec) override;
  // Verified partials are NOT summed here: the client needs each server's
  // words separately to attribute a bad slice (DESIGN.md §9). Backend i's
  // entries land at position i of the result, and a failing backend's error
  // is tagged "server i:" so transport faults carry blame too.
  StatusOr<std::vector<agg::VerifiedPartial>> PartialAggregateVerified(
      const agg::Spec& spec) override;
  StatusOr<gf::Elem> EvalAt(uint32_t pre, gf::Elem t) override;
  StatusOr<std::vector<gf::Elem>> EvalAtBatch(
      const std::vector<uint32_t>& pres, gf::Elem t) override;
  StatusOr<std::vector<gf::Elem>> EvalPointsBatch(
      uint32_t pre, const std::vector<gf::Elem>& points) override;
  StatusOr<gf::RingElem> FetchShare(uint32_t pre) override;
  StatusOr<std::vector<gf::RingElem>> FetchShareBatch(
      const std::vector<uint32_t>& pres) override;

  uint64_t RoundTrips() const override {
    return round_trips_.load(std::memory_order_relaxed);
  }
  size_t ServerCount() const override { return backends_.size(); }
  std::vector<uint64_t> PerServerRoundTrips() const override;
  double StragglerSeconds() const override {
    return straggler_seconds_.load(std::memory_order_relaxed);
  }

  size_t server_count() const { return backends_.size(); }
  ServerFilter* backend(size_t i) { return backends_[i]; }

  // Degraded-mode failover (DESIGN.md §11): consult `health` before every
  // call and fail fast with Unavailable — naming the backend — when an
  // endpoint is kDown, instead of eating a connect/io timeout per query.
  // `endpoints[i]` is backend i's endpoint (the catalog slice string);
  // missing entries are never failed fast. `health` must outlive the
  // filter; call before sharing the filter across threads.
  void SetEndpointHealth(const control::HealthView* health,
                         std::vector<std::string> endpoints);

 private:
  // A persistent worker pinned to one extra backend: fan-out dispatches a
  // job per call instead of paying thread creation per round trip.
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::function<void()> job;  // empty when idle
    bool exit = false;
  };

  // Runs fn(i) for every backend — concurrently when there is more than
  // one — then advances round_trips_ by the straggler's delta and
  // straggler_seconds_ by the fan-out's wall time. fn must only touch
  // backend i.
  Status FanOut(const std::function<Status(size_t)>& fn);
  // Primary-only call with the same round-trip accounting.
  Status Primary(const std::function<Status()>& fn);
  // Unavailable naming the first kDown backend among [first, limit), or OK.
  Status CheckHealth(size_t first, size_t limit) const;

  gf::Ring ring_;
  std::vector<ServerFilter*> backends_;
  const control::HealthView* health_ = nullptr;
  std::vector<std::string> endpoints_;
  std::vector<std::unique_ptr<Worker>> workers_;  // backends_[i + 1] each

  // Serializes FanOut/Primary: the worker job slots hold one job each, and
  // the before/after round-trip deltas only make sense call-at-a-time.
  std::mutex call_mu_;
  // Atomic so concurrent stats readers see torn-free values while a call
  // is in flight; read-modify-writes happen under call_mu_.
  std::atomic<uint64_t> round_trips_{0};
  std::atomic<double> straggler_seconds_{0};
};

}  // namespace ssdb::filter

#endif  // SSDB_FILTER_MULTI_SERVER_FILTER_H_
