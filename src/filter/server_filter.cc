#include "filter/server_filter.h"

namespace ssdb::filter {

StatusOr<NodeMeta> LocalServerFilter::Root() {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetRoot());
  return MetaOf(row);
}

StatusOr<NodeMeta> LocalServerFilter::GetNode(uint32_t pre) {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  return MetaOf(row);
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::Children(uint32_t pre) {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(std::vector<storage::NodeRow> rows,
                        store_->GetChildren(pre));
  std::vector<NodeMeta> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(MetaOf(row));
  return out;
}

StatusOr<std::vector<std::vector<NodeMeta>>> LocalServerFilter::ChildrenBatch(
    const std::vector<uint32_t>& pres) {
  CountTrip();
  std::vector<std::vector<NodeMeta>> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(std::vector<storage::NodeRow> rows,
                          store_->GetChildren(pre));
    std::vector<NodeMeta> metas;
    metas.reserve(rows.size());
    for (const auto& row : rows) metas.push_back(MetaOf(row));
    out.push_back(std::move(metas));
  }
  return out;
}

StatusOr<uint64_t> LocalServerFilter::OpenDescendantCursor(uint32_t pre,
                                                           uint32_t post) {
  return OpenDescendantCursor(SessionId{0}, pre, post);
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::NextNodes(
    uint64_t cursor_id, size_t max_batch) {
  return NextNodes(SessionId{0}, cursor_id, max_batch);
}

Status LocalServerFilter::CloseCursor(uint64_t cursor_id) {
  return CloseCursor(SessionId{0}, cursor_id);
}

StatusOr<uint64_t> LocalServerFilter::OpenDescendantCursor(SessionId session,
                                                           uint32_t pre,
                                                           uint32_t post) {
  CountTrip();
  Cursor cursor;
  cursor.session = session.value;
  SSDB_RETURN_IF_ERROR(store_->ScanDescendants(
      pre, post, [&](const storage::NodeRow& row) {
        cursor.buffered.push_back(MetaOf(row));
        return true;
      }));
  std::lock_guard<std::mutex> lock(cursors_mu_);
  uint64_t id = next_cursor_++;
  cursors_.emplace(id, std::move(cursor));
  return id;
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::NextNodes(
    SessionId session, uint64_t cursor_id, size_t max_batch) {
  CountTrip();
  std::lock_guard<std::mutex> lock(cursors_mu_);
  auto it = cursors_.find(cursor_id);
  // A cursor opened by another connection must look exactly like a cursor
  // that does not exist (DESIGN.md §7).
  if (it == cursors_.end() || it->second.session != session.value) {
    return Status::NotFound("no such cursor");
  }
  Cursor& cursor = it->second;
  std::vector<NodeMeta> batch;
  while (cursor.offset < cursor.buffered.size() && batch.size() < max_batch) {
    batch.push_back(cursor.buffered[cursor.offset++]);
  }
  if (batch.empty()) {
    cursors_.erase(it);  // exhausted cursors self-close
  }
  return batch;
}

Status LocalServerFilter::CloseCursor(SessionId session, uint64_t cursor_id) {
  CountTrip();
  std::lock_guard<std::mutex> lock(cursors_mu_);
  auto it = cursors_.find(cursor_id);
  if (it != cursors_.end() && it->second.session == session.value) {
    cursors_.erase(it);
  }
  return Status::OK();
}

void LocalServerFilter::EndSession(SessionId session) {
  std::lock_guard<std::mutex> lock(cursors_mu_);
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (it->second.session == session.value) {
      it = cursors_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t LocalServerFilter::OpenCursorCount() const {
  std::lock_guard<std::mutex> lock(cursors_mu_);
  return cursors_.size();
}

StatusOr<gf::Elem> LocalServerFilter::EvalAt(uint32_t pre, gf::Elem t) {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
  return ring_.Eval(share, t);
}

StatusOr<std::vector<gf::Elem>> LocalServerFilter::EvalAtBatch(
    const std::vector<uint32_t>& pres, gf::Elem t) {
  CountTrip();
  std::vector<gf::Elem> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
    SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
    out.push_back(ring_.Eval(share, t));
  }
  return out;
}

StatusOr<std::vector<gf::Elem>> LocalServerFilter::EvalPointsBatch(
    uint32_t pre, const std::vector<gf::Elem>& points) {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
  std::vector<gf::Elem> out;
  out.reserve(points.size());
  for (gf::Elem t : points) {
    out.push_back(ring_.Eval(share, t));
  }
  return out;
}

StatusOr<gf::RingElem> LocalServerFilter::FetchShare(uint32_t pre) {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  return ring_.Deserialize(row.share);
}

StatusOr<std::vector<gf::RingElem>> LocalServerFilter::FetchShareBatch(
    const std::vector<uint32_t>& pres) {
  CountTrip();
  std::vector<gf::RingElem> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
    SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
    out.push_back(std::move(share));
  }
  return out;
}

StatusOr<std::string> LocalServerFilter::FetchSealed(uint32_t pre) {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  return row.sealed;
}

StatusOr<uint64_t> LocalServerFilter::NodeCount() {
  CountTrip();
  return store_->NodeCount();
}

}  // namespace ssdb::filter
