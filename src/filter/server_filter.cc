#include "filter/server_filter.h"

namespace ssdb::filter {

StatusOr<NodeMeta> LocalServerFilter::Root() {
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetRoot());
  return MetaOf(row);
}

StatusOr<NodeMeta> LocalServerFilter::GetNode(uint32_t pre) {
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  return MetaOf(row);
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::Children(uint32_t pre) {
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(std::vector<storage::NodeRow> rows,
                        store_->GetChildren(pre));
  std::vector<NodeMeta> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(MetaOf(row));
  return out;
}

StatusOr<std::vector<std::vector<NodeMeta>>> LocalServerFilter::ChildrenBatch(
    const std::vector<uint32_t>& pres) {
  ++round_trips_;
  std::vector<std::vector<NodeMeta>> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(std::vector<storage::NodeRow> rows,
                          store_->GetChildren(pre));
    std::vector<NodeMeta> metas;
    metas.reserve(rows.size());
    for (const auto& row : rows) metas.push_back(MetaOf(row));
    out.push_back(std::move(metas));
  }
  return out;
}

StatusOr<uint64_t> LocalServerFilter::OpenDescendantCursor(uint32_t pre,
                                                           uint32_t post) {
  ++round_trips_;
  Cursor cursor;
  SSDB_RETURN_IF_ERROR(store_->ScanDescendants(
      pre, post, [&](const storage::NodeRow& row) {
        cursor.buffered.push_back(MetaOf(row));
        return true;
      }));
  uint64_t id = next_cursor_++;
  cursors_.emplace(id, std::move(cursor));
  return id;
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::NextNodes(
    uint64_t cursor_id, size_t max_batch) {
  ++round_trips_;
  auto it = cursors_.find(cursor_id);
  if (it == cursors_.end()) {
    return Status::NotFound("no such cursor");
  }
  Cursor& cursor = it->second;
  std::vector<NodeMeta> batch;
  while (cursor.offset < cursor.buffered.size() && batch.size() < max_batch) {
    batch.push_back(cursor.buffered[cursor.offset++]);
  }
  if (batch.empty()) {
    cursors_.erase(it);  // exhausted cursors self-close
  }
  return batch;
}

Status LocalServerFilter::CloseCursor(uint64_t cursor_id) {
  ++round_trips_;
  cursors_.erase(cursor_id);
  return Status::OK();
}

StatusOr<gf::Elem> LocalServerFilter::EvalAt(uint32_t pre, gf::Elem t) {
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
  return ring_.Eval(share, t);
}

StatusOr<std::vector<gf::Elem>> LocalServerFilter::EvalAtBatch(
    const std::vector<uint32_t>& pres, gf::Elem t) {
  ++round_trips_;
  std::vector<gf::Elem> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
    SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
    out.push_back(ring_.Eval(share, t));
  }
  return out;
}

StatusOr<std::vector<gf::Elem>> LocalServerFilter::EvalPointsBatch(
    uint32_t pre, const std::vector<gf::Elem>& points) {
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
  std::vector<gf::Elem> out;
  out.reserve(points.size());
  for (gf::Elem t : points) {
    out.push_back(ring_.Eval(share, t));
  }
  return out;
}

StatusOr<gf::RingElem> LocalServerFilter::FetchShare(uint32_t pre) {
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  return ring_.Deserialize(row.share);
}

StatusOr<std::vector<gf::RingElem>> LocalServerFilter::FetchShareBatch(
    const std::vector<uint32_t>& pres) {
  ++round_trips_;
  std::vector<gf::RingElem> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
    SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ring_.Deserialize(row.share));
    out.push_back(std::move(share));
  }
  return out;
}

StatusOr<std::string> LocalServerFilter::FetchSealed(uint32_t pre) {
  ++round_trips_;
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetByPre(pre));
  return row.sealed;
}

StatusOr<uint64_t> LocalServerFilter::NodeCount() {
  ++round_trips_;
  return store_->NodeCount();
}

}  // namespace ssdb::filter
