#include "filter/server_filter.h"

#include <algorithm>

namespace ssdb::filter {

StatusOr<NodeMeta> LocalServerFilter::Root() {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::NodeRow row, store_->GetRoot());
  return MetaOf(row);
}

StatusOr<NodeMeta> LocalServerFilter::GetNode(uint32_t pre) {
  CountTrip();
  NodeMeta meta;
  SSDB_RETURN_IF_ERROR(store_->VisitByPre(
      pre, [&](const storage::NodeRow& row) { meta = MetaOf(row); }));
  return meta;
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::Children(uint32_t pre) {
  CountTrip();
  std::vector<NodeMeta> out;
  SSDB_RETURN_IF_ERROR(store_->VisitChildren(
      pre, [&](const storage::NodeRow& row) { out.push_back(MetaOf(row)); }));
  return out;
}

StatusOr<std::vector<std::vector<NodeMeta>>> LocalServerFilter::ChildrenBatch(
    const std::vector<uint32_t>& pres) {
  CountTrip();
  std::vector<std::vector<NodeMeta>> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    std::vector<NodeMeta> metas;
    SSDB_RETURN_IF_ERROR(store_->VisitChildren(
        pre,
        [&](const storage::NodeRow& row) { metas.push_back(MetaOf(row)); }));
    out.push_back(std::move(metas));
  }
  return out;
}

StatusOr<uint64_t> LocalServerFilter::OpenDescendantCursor(uint32_t pre,
                                                           uint32_t post) {
  return OpenDescendantCursor(SessionId{0}, pre, post);
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::NextNodes(
    uint64_t cursor_id, size_t max_batch) {
  return NextNodes(SessionId{0}, cursor_id, max_batch);
}

Status LocalServerFilter::CloseCursor(uint64_t cursor_id) {
  return CloseCursor(SessionId{0}, cursor_id);
}

StatusOr<uint64_t> LocalServerFilter::OpenDescendantCursor(SessionId session,
                                                           uint32_t pre,
                                                           uint32_t post) {
  CountTrip();
  Cursor cursor;
  cursor.session = session.value;
  SSDB_RETURN_IF_ERROR(store_->ScanDescendants(
      pre, post, [&](const storage::NodeRow& row) {
        cursor.buffered.push_back(MetaOf(row));
        return true;
      }));
  std::lock_guard<std::mutex> lock(cursors_mu_);
  uint64_t id = next_cursor_++;
  cursors_.emplace(id, std::move(cursor));
  return id;
}

StatusOr<std::vector<NodeMeta>> LocalServerFilter::NextNodes(
    SessionId session, uint64_t cursor_id, size_t max_batch) {
  CountTrip();
  std::lock_guard<std::mutex> lock(cursors_mu_);
  auto it = cursors_.find(cursor_id);
  // A cursor opened by another connection must look exactly like a cursor
  // that does not exist (DESIGN.md §7).
  if (it == cursors_.end() || it->second.session != session.value) {
    return Status::NotFound("no such cursor");
  }
  Cursor& cursor = it->second;
  std::vector<NodeMeta> batch;
  while (cursor.offset < cursor.buffered.size() && batch.size() < max_batch) {
    batch.push_back(cursor.buffered[cursor.offset++]);
  }
  if (batch.empty()) {
    cursors_.erase(it);  // exhausted cursors self-close
  }
  return batch;
}

Status LocalServerFilter::CloseCursor(SessionId session, uint64_t cursor_id) {
  CountTrip();
  std::lock_guard<std::mutex> lock(cursors_mu_);
  auto it = cursors_.find(cursor_id);
  if (it != cursors_.end() && it->second.session == session.value) {
    cursors_.erase(it);
  }
  return Status::OK();
}

void LocalServerFilter::EndSession(SessionId session) {
  std::lock_guard<std::mutex> lock(cursors_mu_);
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (it->second.session == session.value) {
      it = cursors_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t LocalServerFilter::OpenCursorCount() const {
  std::lock_guard<std::mutex> lock(cursors_mu_);
  return cursors_.size();
}

StatusOr<gf::RingElem> LocalServerFilter::ReadShare(uint32_t pre) {
  StatusOr<gf::RingElem> share = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(store_->VisitByPre(
      pre, [&](const storage::NodeRow& row) {
        share = ring_.Deserialize(row.share);
      }));
  return share;
}

StatusOr<gf::Elem> LocalServerFilter::EvalRowAt(uint32_t pre, gf::Elem t) {
  StatusOr<gf::Elem> value = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(store_->VisitByPre(
      pre, [&](const storage::NodeRow& row) {
        StatusOr<gf::RingElem> share = ring_.Deserialize(row.share);
        if (!share.ok()) {
          value = share.status();
          return;
        }
        value = ring_.Eval(*share, t);
      }));
  return value;
}

StatusOr<gf::Elem> LocalServerFilter::EvalAt(uint32_t pre, gf::Elem t) {
  CountTrip();
  return EvalRowAt(pre, t);
}

StatusOr<std::vector<gf::Elem>> LocalServerFilter::EvalAtBatch(
    const std::vector<uint32_t>& pres, gf::Elem t) {
  CountTrip();
  std::vector<gf::Elem> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(gf::Elem value, EvalRowAt(pre, t));
    out.push_back(value);
  }
  return out;
}

StatusOr<std::vector<gf::Elem>> LocalServerFilter::EvalPointsBatch(
    uint32_t pre, const std::vector<gf::Elem>& points) {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ReadShare(pre));
  std::vector<gf::Elem> out;
  out.reserve(points.size());
  for (gf::Elem t : points) {
    out.push_back(ring_.Eval(share, t));
  }
  return out;
}

StatusOr<gf::RingElem> LocalServerFilter::FetchShare(uint32_t pre) {
  CountTrip();
  return ReadShare(pre);
}

StatusOr<std::vector<gf::RingElem>> LocalServerFilter::FetchShareBatch(
    const std::vector<uint32_t>& pres) {
  CountTrip();
  std::vector<gf::RingElem> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(gf::RingElem share, ReadShare(pre));
    out.push_back(std::move(share));
  }
  return out;
}

StatusOr<std::vector<agg::Word>> LocalServerFilter::PartialAggregate(
    const agg::Spec& spec) {
  CountTrip();
  SSDB_RETURN_IF_ERROR(agg::ValidateSpec(spec));
  std::vector<agg::Word> partials(spec.value_indexes.size(), 0);
  // Duplicate frontier entries would double-count; dedup defensively (the
  // client canonicalizes, but the server must not trust it for its own
  // arithmetic to stay meaningful).
  std::vector<uint32_t> pres = spec.pres;
  std::sort(pres.begin(), pres.end());
  pres.erase(std::unique(pres.begin(), pres.end()), pres.end());
  for (uint32_t pre : pres) {
    // Column blobs come through the store's dedicated path (DESIGN.md §12):
    // on the column-store layout the heap row no longer carries them.
    SSDB_ASSIGN_OR_RETURN(storage::ColumnBlobs cols, store_->GetColumns(pre));
    size_t value_count = agg::BlobValueCount(cols.agg);
    if (value_count == 0) {
      return Status::FailedPrecondition(
          "node has no aggregate columns (database encoded without "
          "them, DESIGN.md §8)");
    }
    for (size_t g = 0; g < spec.value_indexes.size(); ++g) {
      uint32_t index = spec.value_indexes[g];
      if (index >= value_count) {
        return Status::InvalidArgument(
            "aggregate value index " + std::to_string(index) +
            " out of range (store has " + std::to_string(value_count) +
            " mapped values)");
      }
      for (size_t c = 0; c < agg::kColCount; ++c) {
        if ((spec.columns & (1u << c)) == 0) continue;
        partials[g] += agg::BlobWord(
            cols.agg,
            agg::WordIndex(static_cast<agg::Col>(c), value_count, index));
      }
    }
  }
  return partials;
}

StatusOr<std::vector<agg::VerifiedPartial>>
LocalServerFilter::PartialAggregateVerified(const agg::Spec& spec) {
  CountTrip();
  SSDB_RETURN_IF_ERROR(agg::ValidateSpec(spec));
  agg::VerifiedPartial partial;
  partial.words.assign(spec.value_indexes.size(), 0);
  // Whether this store carries the verification track is decided by the
  // first frontier row: a slice either stores it for every node (slice 0 of
  // a --verify-agg database) or for none. Mixed stores are corruption.
  bool decided = false;
  bool has_track = false;
  std::vector<uint32_t> pres = spec.pres;
  std::sort(pres.begin(), pres.end());
  pres.erase(std::unique(pres.begin(), pres.end()), pres.end());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(storage::ColumnBlobs cols, store_->GetColumns(pre));
    size_t value_count = agg::BlobValueCount(cols.agg);
    if (value_count == 0) {
      return Status::FailedPrecondition(
          "node has no aggregate columns (database encoded without "
          "them, DESIGN.md §8)");
    }
    size_t verify_count = agg::VerifyBlobValueCount(cols.verify);
    if (!decided) {
      decided = true;
      has_track = verify_count > 0;
      if (has_track) {
        partial.wide.assign(spec.value_indexes.size(), 0);
        partial.proof.assign(spec.value_indexes.size(), 0);
      }
    }
    if (has_track && verify_count != value_count) {
      return Status::Corruption(
          "node verification track disagrees with its aggregate "
          "columns (DESIGN.md §9)");
    }
    for (size_t g = 0; g < spec.value_indexes.size(); ++g) {
      uint32_t index = spec.value_indexes[g];
      if (index >= value_count) {
        return Status::InvalidArgument(
            "aggregate value index " + std::to_string(index) +
            " out of range (store has " + std::to_string(value_count) +
            " mapped values)");
      }
      for (size_t c = 0; c < agg::kColCount; ++c) {
        if ((spec.columns & (1u << c)) == 0) continue;
        size_t w =
            agg::WordIndex(static_cast<agg::Col>(c), value_count, index);
        partial.words[g] += agg::BlobWord(cols.agg, w);
        if (has_track) {
          partial.wide[g] += agg::BlobWide(cols.verify, w);
          partial.proof[g] += agg::BlobProof(cols.verify, w);
        }
      }
    }
  }
  std::vector<agg::VerifiedPartial> out;
  out.push_back(std::move(partial));
  return out;
}

StatusOr<std::vector<storage::MutationState>>
LocalServerFilter::MutationStates() {
  CountTrip();
  SSDB_ASSIGN_OR_RETURN(storage::MutationState state,
                        store_->GetMutationState());
  return std::vector<storage::MutationState>{state};
}

Status LocalServerFilter::PrepareMutation(
    uint64_t txn, const std::vector<storage::MutationPlan>& plans) {
  CountTrip();
  if (plans.size() != 1) {
    return Status::InvalidArgument(
        "single-server filter expects exactly one mutation plan, got " +
        std::to_string(plans.size()));
  }
  return store_->PrepareMutation(txn, plans[0]);
}

Status LocalServerFilter::CommitMutation(uint64_t txn) {
  CountTrip();
  return store_->CommitMutation(txn);
}

Status LocalServerFilter::AbortMutation(uint64_t txn) {
  CountTrip();
  return store_->AbortMutation(txn);
}

StatusOr<std::vector<storage::ColumnBlobs>>
LocalServerFilter::FetchColumnsBatch(const std::vector<uint32_t>& pres) {
  CountTrip();
  std::vector<storage::ColumnBlobs> out;
  out.reserve(pres.size());
  for (uint32_t pre : pres) {
    SSDB_ASSIGN_OR_RETURN(storage::ColumnBlobs cols, store_->GetColumns(pre));
    out.push_back(std::move(cols));
  }
  return out;
}

StatusOr<std::string> LocalServerFilter::FetchSealed(uint32_t pre) {
  CountTrip();
  std::string sealed;
  SSDB_RETURN_IF_ERROR(store_->VisitByPre(
      pre, [&](const storage::NodeRow& row) { sealed = row.sealed; }));
  return sealed;
}

StatusOr<uint64_t> LocalServerFilter::NodeCount() {
  CountTrip();
  return store_->NodeCount();
}

}  // namespace ssdb::filter
