#include "filter/client_filter.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "gf/share.h"

namespace ssdb::filter {
namespace {

// Cursor pull size: the client holds one batch at a time (thin client), the
// server buffers the rest (§5.2).
constexpr size_t kCursorBatch = 64;

// The (pre, effective share nonce) pairs of a spec's frontier, sorted by
// pre and deduped — the canonical order both the server fold and the client
// mask walk iterate in. A missing or zero nonce entry means "the pre
// number" (the unmutated default, DESIGN.md §12).
std::vector<std::pair<uint32_t, uint64_t>> CanonicalFrontier(
    const agg::Spec& spec) {
  std::vector<std::pair<uint32_t, uint64_t>> frontier;
  frontier.reserve(spec.pres.size());
  for (size_t i = 0; i < spec.pres.size(); ++i) {
    uint64_t nonce = i < spec.nonces.size() ? spec.nonces[i] : 0;
    frontier.emplace_back(spec.pres[i], nonce != 0 ? nonce : spec.pres[i]);
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end(),
                             [](const std::pair<uint32_t, uint64_t>& a,
                                const std::pair<uint32_t, uint64_t>& b) {
                               return a.first == b.first;
                             }),
                 frontier.end());
  return frontier;
}

}  // namespace

void EvalStats::MergeConcurrent(const EvalStats& other) {
  evaluations += other.evaluations;
  containment_tests += other.containment_tests;
  equality_tests += other.equality_tests;
  shares_fetched += other.shares_fetched;
  nodes_visited += other.nodes_visited;
  server_calls += other.server_calls;
  batched_evaluations += other.batched_evaluations;
  aggregate_ops += other.aggregate_ops;
  verified_aggregate_ops += other.verified_aggregate_ops;
  proof_words += other.proof_words;
  round_trips = std::max(round_trips, other.round_trips);
  straggler_seconds = std::max(straggler_seconds, other.straggler_seconds);
  per_server_round_trips.insert(per_server_round_trips.end(),
                                other.per_server_round_trips.begin(),
                                other.per_server_round_trips.end());
}

ClientFilter::ClientFilter(gf::Ring ring, prg::Prg prg, ServerFilter* server)
    : ring_(ring),
      evaluator_(ring),
      prg_(std::move(prg)),
      server_(server) {}

StatusOr<NodeMeta> ClientFilter::Root() {
  TripScope trips(this);
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(NodeMeta root, server_->Root());
  ++stats_.nodes_visited;
  return root;
}

StatusOr<NodeMeta> ClientFilter::GetNode(uint32_t pre) {
  TripScope trips(this);
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(NodeMeta node, server_->GetNode(pre));
  ++stats_.nodes_visited;
  return node;
}

StatusOr<NodeMeta> ClientFilter::Parent(const NodeMeta& node) {
  if (node.parent == 0) {
    return Status::NotFound("root has no parent");
  }
  return GetNode(node.parent);
}

StatusOr<std::vector<NodeMeta>> ClientFilter::Children(const NodeMeta& node) {
  TripScope trips(this);
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> children,
                        server_->Children(node.pre));
  stats_.nodes_visited += children.size();
  return children;
}

StatusOr<std::vector<std::vector<NodeMeta>>> ClientFilter::ChildrenBatch(
    const std::vector<NodeMeta>& nodes) {
  if (nodes.empty()) return std::vector<std::vector<NodeMeta>>{};
  TripScope trips(this);
  ++stats_.server_calls;
  std::vector<uint32_t> pres;
  pres.reserve(nodes.size());
  for (const NodeMeta& node : nodes) pres.push_back(node.pre);
  SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<NodeMeta>> lists,
                        server_->ChildrenBatch(pres));
  if (lists.size() != nodes.size()) {
    return Status::Internal("ChildrenBatch size mismatch");
  }
  for (const auto& list : lists) stats_.nodes_visited += list.size();
  return lists;
}

StatusOr<std::vector<NodeMeta>> ClientFilter::Descendants(
    const NodeMeta& node) {
  TripScope trips(this);
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(uint64_t cursor,
                        server_->OpenDescendantCursor(node.pre, node.post));
  std::vector<NodeMeta> all;
  for (;;) {
    ++stats_.server_calls;
    SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> batch,
                          server_->NextNodes(cursor, kCursorBatch));
    if (batch.empty()) break;
    stats_.nodes_visited += batch.size();
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

gf::Elem ClientFilter::EvalClientShare(const NodeMeta& node, gf::Elem t) {
  gf::RingElem share = prg_.ClientShare(ring_, node.ShareNonce());
  return ring_.Eval(share, t);
}

StatusOr<std::vector<agg::Word>> ClientFilter::Aggregate(
    const agg::Spec& spec) {
  SSDB_RETURN_IF_ERROR(agg::ValidateSpec(spec));
  if (spec.value_count == 0) {
    return Status::InvalidArgument("aggregate spec needs the map size");
  }
  for (uint32_t index : spec.value_indexes) {
    if (index >= spec.value_count) {
      return Status::InvalidArgument("aggregate value index out of range");
    }
  }
  // Canonicalize the frontier once so the server fold and the client mask
  // sum cover exactly the same node set. Nonces travel with their pres: the
  // mask walk below is keyed by nonce, the server fold by pre (§12).
  std::vector<std::pair<uint32_t, uint64_t>> frontier =
      CanonicalFrontier(spec);
  agg::Spec canonical = spec;
  canonical.pres.clear();
  canonical.nonces.clear();
  for (const auto& [pre, nonce] : frontier) {
    canonical.pres.push_back(pre);
    canonical.nonces.push_back(nonce);
  }

  TripScope trips(this);
  ++stats_.server_calls;
  stats_.aggregate_ops += canonical.value_indexes.size();
  SSDB_ASSIGN_OR_RETURN(std::vector<agg::Word> totals,
                        server_->PartialAggregate(canonical));
  if (totals.size() != canonical.value_indexes.size()) {
    return Status::Internal("PartialAggregate group count mismatch");
  }

  // Remove the client's masks: for each frontier node, the mask stream
  // words at every (selected column, group value) position. Word positions
  // are visited in ascending order so each node costs one skip-walk of its
  // ChaCha stream — O(selected words), not O(7T).
  std::vector<std::pair<size_t, size_t>> wanted;  // (word index, group)
  for (size_t g = 0; g < canonical.value_indexes.size(); ++g) {
    for (size_t c = 0; c < agg::kColCount; ++c) {
      if ((canonical.columns & (1u << c)) == 0) continue;
      wanted.emplace_back(
          agg::WordIndex(static_cast<agg::Col>(c), spec.value_count,
                         canonical.value_indexes[g]),
          g);
    }
  }
  std::sort(wanted.begin(), wanted.end());
  for (const auto& [pre, nonce] : frontier) {
    prg::Prg::Stream stream = prg_.StreamForAggColumns(nonce, 0);
    size_t position = 0;           // bytes consumed from the stream
    size_t last_byte = SIZE_MAX;   // last word offset read (duplicates)
    agg::Word word = 0;
    for (const auto& [index, group] : wanted) {
      size_t byte = index * sizeof(agg::Word);
      if (byte != last_byte) {
        stream.Skip(byte - position);
        word = stream.NextUint32();
        position = byte + sizeof(agg::Word);
        last_byte = byte;
      }
      totals[group] += word;
    }
  }
  return totals;
}

StatusOr<ClientFilter::VerifiedAggregate> ClientFilter::AggregateVerified(
    const agg::Spec& spec) {
  SSDB_RETURN_IF_ERROR(agg::ValidateSpec(spec));
  if (spec.value_count == 0) {
    return Status::InvalidArgument("aggregate spec needs the map size");
  }
  for (uint32_t index : spec.value_indexes) {
    if (index >= spec.value_count) {
      return Status::InvalidArgument("aggregate value index out of range");
    }
  }
  std::vector<std::pair<uint32_t, uint64_t>> frontier =
      CanonicalFrontier(spec);
  agg::Spec canonical = spec;
  canonical.pres.clear();
  canonical.nonces.clear();
  for (const auto& [pre, nonce] : frontier) {
    canonical.pres.push_back(pre);
    canonical.nonces.push_back(nonce);
  }
  const size_t groups = canonical.value_indexes.size();

  // An empty frontier aggregates nothing: the zero answer is trivially
  // correct and no proof material exists to check.
  VerifiedAggregate out;
  out.totals.assign(groups, 0);
  if (canonical.pres.empty()) return out;

  TripScope trips(this);
  ++stats_.server_calls;
  stats_.aggregate_ops += groups;
  // entries[i] is server i's own partial (slice i); unlike Aggregate, the
  // servers' words are NOT pre-summed — attribution needs them apart.
  SSDB_ASSIGN_OR_RETURN(std::vector<agg::VerifiedPartial> entries,
                        server_->PartialAggregateVerified(canonical));
  if (entries.empty()) {
    return Status::Internal("PartialAggregateVerified returned no entries");
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].words.size() != groups ||
        entries[i].wide.size() != entries[i].proof.size() ||
        (!entries[i].wide.empty() && entries[i].wide.size() != groups)) {
      return Status::Corruption("server " + std::to_string(i) +
                                ": verified partial shape mismatch");
    }
    // Only slice 0 stores the verification track (DESIGN.md §9); a proof
    // from anyone else is an impersonation attempt, not data.
    if (i > 0 && !entries[i].wide.empty()) {
      return Status::Corruption(
          "server " + std::to_string(i) +
          ": unexpected verification track (only slice 0 stores proofs)");
    }
  }
  if (entries[0].wide.empty()) {
    return Status::FailedPrecondition(
        "database carries no aggregate verification track (re-encode with "
        "ssdb_encode --verify-agg; DESIGN.md §9)");
  }

  // Same word-position walk as Aggregate: (word index, group) pairs in
  // ascending order so every stream is consumed in one skip-walk.
  std::vector<std::pair<size_t, size_t>> wanted;  // (word index, group)
  for (size_t g = 0; g < groups; ++g) {
    for (size_t c = 0; c < agg::kColCount; ++c) {
      if ((canonical.columns & (1u << c)) == 0) continue;
      wanted.emplace_back(
          agg::WordIndex(static_cast<agg::Col>(c), spec.value_count,
                         canonical.value_indexes[g]),
          g);
    }
  }
  std::sort(wanted.begin(), wanted.end());

  // Check 1 — slices i >= 1 are deterministic: their stored words are
  // exactly the client's own PRG stream words (DESIGN.md §9), so any
  // deviation identifies that server with certainty.
  for (size_t i = 1; i < entries.size(); ++i) {
    std::vector<agg::Word> expected(groups, 0);
    for (const auto& [pre, nonce] : frontier) {
      prg::Prg::Stream stream = prg_.StreamForAggColumns(nonce, i);
      size_t position = 0;
      size_t last_byte = SIZE_MAX;
      agg::Word word = 0;
      for (const auto& [index, group] : wanted) {
        size_t byte = index * sizeof(agg::Word);
        if (byte != last_byte) {
          stream.Skip(byte - position);
          word = stream.NextUint32();
          position = byte + sizeof(agg::Word);
          last_byte = byte;
        }
        expected[group] += word;
      }
    }
    if (expected != entries[i].words) {
      return Status::Corruption("aggregate verification failed: server " +
                                std::to_string(i) +
                                " returned a tampered partial");
    }
  }

  // Client mask sums over the frontier: the 32-bit answer masks (the same
  // stream Aggregate removes) and the verification-track masks — one
  // 16-byte record (wide then proof) per aggregate word (DESIGN.md §9).
  std::vector<agg::Word> c32(groups, 0);
  std::vector<uint64_t> cw(groups, 0);
  std::vector<uint64_t> cp(groups, 0);
  for (const auto& [pre, nonce] : frontier) {
    prg::Prg::Stream stream = prg_.StreamForAggColumns(nonce, 0);
    prg::Prg::Stream vstream = prg_.StreamForVerifyColumns(nonce);
    size_t position = 0;
    size_t vposition = 0;
    size_t last_byte = SIZE_MAX;
    agg::Word word = 0;
    uint64_t wide_mask = 0;
    uint64_t proof_mask = 0;
    for (const auto& [index, group] : wanted) {
      size_t byte = index * sizeof(agg::Word);
      if (byte != last_byte) {
        stream.Skip(byte - position);
        word = stream.NextUint32();
        position = byte + sizeof(agg::Word);
        size_t vbyte = index * 2 * sizeof(uint64_t);
        vstream.Skip(vbyte - vposition);
        wide_mask = vstream.NextUint64();
        proof_mask = vstream.NextUint64();
        vposition = vbyte + 2 * sizeof(uint64_t);
        last_byte = byte;
      }
      c32[group] += word;
      cw[group] += wide_mask;
      cp[group] += proof_mask;
    }
  }

  // Checks 2 and 3 — the keyed checksum over the wide answer, then the
  // wide answer against the 32-bit answer. Both pin slice 0: slices i >= 1
  // already passed the exact check above, so a failure here can only be
  // server 0's doing. An answer-changing forgery must solve
  // delta_proof = alpha * delta_wide for an unknown uniform 64-bit alpha
  // with delta_wide != 0 mod 2^32 — probability <= 2^-32 (DESIGN.md §9).
  for (size_t g = 0; g < groups; ++g) {
    agg::Word d32 = c32[g];
    for (const agg::VerifiedPartial& entry : entries) d32 += entry.words[g];
    uint64_t wide = entries[0].wide[g] + cw[g];
    uint64_t proof = entries[0].proof[g] + cp[g];
    uint64_t alpha = prg_.AggVerifyKey(canonical.value_indexes[g]);
    if (proof != alpha * wide) {
      return Status::Corruption(
          "aggregate verification failed: server 0 forged its partial "
          "(proof checksum mismatch)");
    }
    if (static_cast<agg::Word>(wide) != d32) {
      return Status::Corruption(
          "aggregate verification failed: server 0 forged its partial "
          "(wide partial disagrees with word partial)");
    }
    out.totals[g] = d32;
  }
  out.proof_words = 2 * groups;
  stats_.proof_words += out.proof_words;
  stats_.verified_aggregate_ops += groups;
  return out;
}

StatusOr<std::vector<uint8_t>> ClientFilter::ContainsValueBatch(
    const std::vector<NodeMeta>& nodes, gf::Elem t) {
  if (nodes.empty()) return std::vector<uint8_t>{};
  TripScope trips(this);
  stats_.containment_tests += nodes.size();
  stats_.evaluations += nodes.size();
  stats_.batched_evaluations += nodes.size();
  ++stats_.server_calls;
  std::vector<uint32_t> pres;
  pres.reserve(nodes.size());
  for (const NodeMeta& node : nodes) pres.push_back(node.pre);
  SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> server_values,
                        server_->EvalAtBatch(pres, t));
  if (server_values.size() != nodes.size()) {
    return Status::Internal("EvalAtBatch size mismatch");
  }
  std::vector<uint8_t> out(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    gf::Elem sum = ring_.field().Add(server_values[i],
                                     EvalClientShare(nodes[i], t));
    out[i] = (sum == 0) ? 1 : 0;
  }
  return out;
}

StatusOr<std::vector<uint8_t>> ClientFilter::ContainsAllValuesBatch(
    const std::vector<NodeMeta>& nodes, const std::vector<gf::Elem>& values) {
  std::vector<uint8_t> alive(nodes.size(), 1);
  if (nodes.empty() || values.empty()) return alive;
  TripScope trips(this);
  // One client-share regeneration per node, reused across all values; one
  // server exchange per value, shrinking to the still-alive subset.
  std::vector<gf::RingElem> client_shares;
  client_shares.reserve(nodes.size());
  for (const NodeMeta& node : nodes) {
    client_shares.push_back(prg_.ClientShare(ring_, node.ShareNonce()));
  }
  for (gf::Elem value : values) {
    std::vector<size_t> indices;
    std::vector<uint32_t> pres;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (alive[i]) {
        indices.push_back(i);
        pres.push_back(nodes[i].pre);
      }
    }
    if (pres.empty()) break;
    stats_.containment_tests += pres.size();
    stats_.evaluations += pres.size();
    stats_.batched_evaluations += pres.size();
    ++stats_.server_calls;
    SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> server_values,
                          server_->EvalAtBatch(pres, value));
    if (server_values.size() != pres.size()) {
      return Status::Internal("EvalAtBatch size mismatch");
    }
    for (size_t j = 0; j < indices.size(); ++j) {
      gf::Elem sum = ring_.field().Add(
          server_values[j], ring_.Eval(client_shares[indices[j]], value));
      if (sum != 0) alive[indices[j]] = 0;
    }
  }
  return alive;
}

StatusOr<bool> ClientFilter::ContainsValue(const NodeMeta& node, gf::Elem t) {
  SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> out,
                        ContainsValueBatch({node}, t));
  return out[0] != 0;
}

StatusOr<bool> ClientFilter::ContainsAllValues(
    const NodeMeta& node, const std::vector<gf::Elem>& values) {
  if (values.empty()) return true;
  if (values.size() == 1) return ContainsValue(node, values[0]);
  TripScope trips(this);
  // One share regeneration + one (batched) server exchange for all points.
  stats_.containment_tests += values.size();
  stats_.evaluations += values.size();
  stats_.batched_evaluations += values.size();
  ++stats_.server_calls;
  gf::RingElem client_share = prg_.ClientShare(ring_, node.ShareNonce());
  SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> server_values,
                        server_->EvalPointsBatch(node.pre, values));
  if (server_values.size() != values.size()) {
    return Status::Internal("EvalPointsBatch size mismatch");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    gf::Elem sum = ring_.field().Add(server_values[i],
                                     ring_.Eval(client_share, values[i]));
    if (sum != 0) return false;
  }
  return true;
}

StatusOr<gf::RingElem> ClientFilter::ReconstructPoly(const NodeMeta& node) {
  TripScope trips(this);
  ++stats_.server_calls;
  ++stats_.shares_fetched;
  SSDB_ASSIGN_OR_RETURN(gf::RingElem server_share,
                        server_->FetchShare(node.pre));
  gf::RingElem client_share = prg_.ClientShare(ring_, node.ShareNonce());
  return gf::Combine(ring_, client_share, server_share);
}

StatusOr<gf::Elem> ClientFilter::RecoverFromPolys(
    const gf::RingElem& node_poly,
    const std::vector<gf::RingElem>& child_polys) {
  // The node's own factor is node(x) / prod(children). The quotient ring
  // has zero divisors, so the division happens in the evaluation domain (a
  // ring isomorphism; see DESIGN.md §3): find a point v where the child
  // product is non-zero, then t = v - node(v)/prod(v).
  //
  // Cost: O(n * children) field operations — Horner at a handful of points
  // rather than a full transform. The division is verified at
  // kVerifyPoints further points (every point in full-verification mode);
  // any mismatch means the stored shares are inconsistent.
  constexpr uint32_t kVerifyPoints = 4;
  const gf::Field& field = ring_.field();

  auto product_at = [&](gf::Elem v) {
    gf::Elem prod = 1;
    for (const gf::RingElem& child : child_polys) {
      prod = field.Mul(prod, ring_.Eval(child, v));
      if (prod == 0) break;
    }
    return prod;
  };

  // Find a point where the child product is non-zero. One always exists
  // when the tag map leaves a spare non-zero value (mapping::TagMap
  // enforces this).
  gf::Elem t = 0;
  uint32_t good = ring_.n();
  for (uint32_t i = 0; i < ring_.n(); ++i) {
    gf::Elem v = evaluator_.point(i);
    gf::Elem prod = product_at(v);
    if (prod == 0) continue;
    good = i;
    t = field.Sub(v, field.Div(ring_.Eval(node_poly, v), prod));
    break;
  }
  if (good == ring_.n()) {
    return Status::FailedPrecondition(
        "equality test: child product vanishes at every point (tag map has "
        "no spare value?)");
  }

  // Verify node(x) == (x - t) * prod(children) at further points.
  uint32_t checks = full_verification_ ? ring_.n() : kVerifyPoints;
  for (uint32_t j = 1; j <= checks && j < ring_.n(); ++j) {
    gf::Elem w = evaluator_.point((good + j) % ring_.n());
    gf::Elem lhs = ring_.Eval(node_poly, w);
    gf::Elem rhs = field.Mul(field.Sub(w, t), product_at(w));
    if (lhs != rhs) {
      return Status::Corruption(
          "equality test: node polynomial is not (x - t) * children "
          "product; shares are inconsistent");
    }
  }
  return t;
}

StatusOr<std::vector<gf::Elem>> ClientFilter::RecoverOwnValueBatch(
    const std::vector<NodeMeta>& nodes) {
  if (nodes.empty()) return std::vector<gf::Elem>{};
  TripScope trips(this);
  stats_.equality_tests += nodes.size();

  // Exchange 1: children of every candidate.
  ++stats_.server_calls;
  std::vector<uint32_t> pres;
  pres.reserve(nodes.size());
  for (const NodeMeta& node : nodes) pres.push_back(node.pre);
  SSDB_ASSIGN_OR_RETURN(std::vector<std::vector<NodeMeta>> child_lists,
                        server_->ChildrenBatch(pres));
  if (child_lists.size() != nodes.size()) {
    return Status::Internal("ChildrenBatch size mismatch");
  }

  // Exchange 2: every needed share (node + children), fetched once even
  // when candidates overlap.
  std::vector<uint32_t> unique;
  std::vector<uint64_t> unique_nonces;  // parallel; PRG keys (§12)
  std::unordered_map<uint32_t, size_t> index;
  auto intern = [&](const NodeMeta& node) {
    auto [it, inserted] = index.emplace(node.pre, unique.size());
    if (inserted) {
      unique.push_back(node.pre);
      unique_nonces.push_back(node.ShareNonce());
    }
    return it->second;
  };
  for (size_t i = 0; i < nodes.size(); ++i) {
    intern(nodes[i]);
    for (const NodeMeta& child : child_lists[i]) intern(child);
  }
  ++stats_.server_calls;
  stats_.shares_fetched += unique.size();
  SSDB_ASSIGN_OR_RETURN(std::vector<gf::RingElem> server_shares,
                        server_->FetchShareBatch(unique));
  if (server_shares.size() != unique.size()) {
    return Status::Internal("FetchShareBatch size mismatch");
  }

  // Reconstruct each distinct polynomial once, then run the local
  // evaluation-domain division per candidate.
  std::vector<gf::RingElem> polys;
  polys.reserve(unique.size());
  for (size_t i = 0; i < unique.size(); ++i) {
    gf::RingElem client_share = prg_.ClientShare(ring_, unique_nonces[i]);
    polys.push_back(gf::Combine(ring_, client_share, server_shares[i]));
  }

  std::vector<gf::Elem> out;
  out.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const gf::RingElem& node_poly = polys[index[nodes[i].pre]];
    std::vector<gf::RingElem> child_polys;
    child_polys.reserve(child_lists[i].size());
    for (const NodeMeta& child : child_lists[i]) {
      child_polys.push_back(polys[index[child.pre]]);
    }
    stats_.evaluations += 1 + child_polys.size();
    stats_.batched_evaluations += 1 + child_polys.size();
    SSDB_ASSIGN_OR_RETURN(gf::Elem t,
                          RecoverFromPolys(node_poly, child_polys));
    out.push_back(t);
  }
  return out;
}

StatusOr<std::vector<uint8_t>> ClientFilter::EqualsValueBatch(
    const std::vector<NodeMeta>& nodes, gf::Elem t) {
  SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> own,
                        RecoverOwnValueBatch(nodes));
  std::vector<uint8_t> out(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    out[i] = (own[i] == t) ? 1 : 0;
  }
  return out;
}

StatusOr<gf::Elem> ClientFilter::RecoverOwnValue(const NodeMeta& node) {
  SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> out,
                        RecoverOwnValueBatch({node}));
  return out[0];
}

StatusOr<bool> ClientFilter::EqualsValue(const NodeMeta& node, gf::Elem t) {
  SSDB_ASSIGN_OR_RETURN(gf::Elem own, RecoverOwnValue(node));
  return own == t;
}

StatusOr<ClientFilter::RevealedNode> ClientFilter::Reveal(
    const NodeMeta& node) {
  TripScope trips(this);
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(std::string sealed, server_->FetchSealed(node.pre));
  if (sealed.empty()) {
    return Status::FailedPrecondition(
        "node has no sealed payload (database encoded without "
        "seal_content)");
  }
  std::string plaintext = prg_.UnsealPayload(node.ShareNonce(), sealed);
  size_t split = plaintext.find('\n');
  if (split == std::string::npos) {
    return Status::Corruption("sealed payload malformed after decryption");
  }
  RevealedNode revealed;
  revealed.name = plaintext.substr(0, split);
  revealed.text = plaintext.substr(split + 1);
  return revealed;
}

}  // namespace ssdb::filter
