#include "filter/client_filter.h"

#include "gf/share.h"

namespace ssdb::filter {
namespace {

// Cursor pull size: the client holds one batch at a time (thin client), the
// server buffers the rest (§5.2).
constexpr size_t kCursorBatch = 64;

}  // namespace

ClientFilter::ClientFilter(gf::Ring ring, prg::Prg prg, ServerFilter* server)
    : ring_(ring),
      evaluator_(ring),
      prg_(std::move(prg)),
      server_(server) {}

StatusOr<NodeMeta> ClientFilter::Root() {
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(NodeMeta root, server_->Root());
  ++stats_.nodes_visited;
  return root;
}

StatusOr<NodeMeta> ClientFilter::GetNode(uint32_t pre) {
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(NodeMeta node, server_->GetNode(pre));
  ++stats_.nodes_visited;
  return node;
}

StatusOr<NodeMeta> ClientFilter::Parent(const NodeMeta& node) {
  if (node.parent == 0) {
    return Status::NotFound("root has no parent");
  }
  return GetNode(node.parent);
}

StatusOr<std::vector<NodeMeta>> ClientFilter::Children(const NodeMeta& node) {
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> children,
                        server_->Children(node.pre));
  stats_.nodes_visited += children.size();
  return children;
}

StatusOr<std::vector<NodeMeta>> ClientFilter::Descendants(
    const NodeMeta& node) {
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(uint64_t cursor,
                        server_->OpenDescendantCursor(node.pre, node.post));
  std::vector<NodeMeta> all;
  for (;;) {
    ++stats_.server_calls;
    SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> batch,
                          server_->NextNodes(cursor, kCursorBatch));
    if (batch.empty()) break;
    stats_.nodes_visited += batch.size();
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

gf::Elem ClientFilter::EvalClientShare(uint32_t pre, gf::Elem t) {
  gf::RingElem share = prg_.ClientShare(ring_, pre);
  return ring_.Eval(share, t);
}

StatusOr<bool> ClientFilter::ContainsValue(const NodeMeta& node, gf::Elem t) {
  ++stats_.containment_tests;
  ++stats_.evaluations;
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(gf::Elem server_value, server_->EvalAt(node.pre, t));
  gf::Elem client_value = EvalClientShare(node.pre, t);
  return ring_.field().Add(server_value, client_value) == 0;
}

StatusOr<bool> ClientFilter::ContainsAllValues(
    const NodeMeta& node, const std::vector<gf::Elem>& values) {
  if (values.empty()) return true;
  if (values.size() == 1) return ContainsValue(node, values[0]);
  // One share regeneration + one (batched) server exchange for all points.
  stats_.containment_tests += values.size();
  stats_.evaluations += values.size();
  ++stats_.server_calls;
  gf::RingElem client_share = prg_.ClientShare(ring_, node.pre);
  SSDB_ASSIGN_OR_RETURN(std::vector<gf::Elem> server_values,
                        server_->EvalPointsBatch(node.pre, values));
  if (server_values.size() != values.size()) {
    return Status::Internal("EvalPointsBatch size mismatch");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    gf::Elem sum = ring_.field().Add(server_values[i],
                                     ring_.Eval(client_share, values[i]));
    if (sum != 0) return false;
  }
  return true;
}

StatusOr<gf::RingElem> ClientFilter::ReconstructPoly(uint32_t pre) {
  ++stats_.server_calls;
  ++stats_.shares_fetched;
  SSDB_ASSIGN_OR_RETURN(gf::RingElem server_share, server_->FetchShare(pre));
  gf::RingElem client_share = prg_.ClientShare(ring_, pre);
  return gf::Combine(ring_, client_share, server_share);
}

StatusOr<gf::Elem> ClientFilter::RecoverOwnValue(const NodeMeta& node) {
  // Reconstruct the node polynomial and every direct child polynomial; the
  // node's own factor is node(x) / prod(children). The quotient ring has
  // zero divisors, so the division happens in the evaluation domain (a ring
  // isomorphism; see DESIGN.md §3): find a point v where the child product
  // is non-zero, then t = v - node(v)/prod(v).
  //
  // Cost: O(n * children) field operations — Horner at a handful of points
  // rather than a full transform. The division is verified at
  // kVerifyPoints further points (every point in full-verification mode);
  // any mismatch means the stored shares are inconsistent.
  constexpr uint32_t kVerifyPoints = 4;
  const gf::Field& field = ring_.field();
  ++stats_.equality_tests;

  SSDB_ASSIGN_OR_RETURN(gf::RingElem node_poly, ReconstructPoly(node.pre));
  ++stats_.evaluations;  // one polynomial-processing unit for the node

  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(std::vector<NodeMeta> children,
                        server_->Children(node.pre));
  std::vector<gf::RingElem> child_polys;
  child_polys.reserve(children.size());
  for (const NodeMeta& child : children) {
    SSDB_ASSIGN_OR_RETURN(gf::RingElem child_poly,
                          ReconstructPoly(child.pre));
    ++stats_.evaluations;  // one unit per child polynomial
    child_polys.push_back(std::move(child_poly));
  }

  auto product_at = [&](gf::Elem v) {
    gf::Elem prod = 1;
    for (const gf::RingElem& child : child_polys) {
      prod = field.Mul(prod, ring_.Eval(child, v));
      if (prod == 0) break;
    }
    return prod;
  };

  // Find a point where the child product is non-zero. One always exists
  // when the tag map leaves a spare non-zero value (mapping::TagMap
  // enforces this).
  gf::Elem t = 0;
  uint32_t good = ring_.n();
  for (uint32_t i = 0; i < ring_.n(); ++i) {
    gf::Elem v = evaluator_.point(i);
    gf::Elem prod = product_at(v);
    if (prod == 0) continue;
    good = i;
    t = field.Sub(v, field.Div(ring_.Eval(node_poly, v), prod));
    break;
  }
  if (good == ring_.n()) {
    return Status::FailedPrecondition(
        "equality test: child product vanishes at every point (tag map has "
        "no spare value?)");
  }

  // Verify node(x) == (x - t) * prod(children) at further points.
  uint32_t checks = full_verification_ ? ring_.n() : kVerifyPoints;
  for (uint32_t j = 1; j <= checks && j < ring_.n(); ++j) {
    gf::Elem w = evaluator_.point((good + j) % ring_.n());
    gf::Elem lhs = ring_.Eval(node_poly, w);
    gf::Elem rhs = field.Mul(field.Sub(w, t), product_at(w));
    if (lhs != rhs) {
      return Status::Corruption(
          "equality test: node polynomial is not (x - t) * children "
          "product; shares are inconsistent");
    }
  }
  return t;
}

StatusOr<ClientFilter::RevealedNode> ClientFilter::Reveal(
    const NodeMeta& node) {
  ++stats_.server_calls;
  SSDB_ASSIGN_OR_RETURN(std::string sealed, server_->FetchSealed(node.pre));
  if (sealed.empty()) {
    return Status::FailedPrecondition(
        "node has no sealed payload (database encoded without "
        "seal_content)");
  }
  std::string plaintext = prg_.UnsealPayload(node.pre, sealed);
  size_t split = plaintext.find('\n');
  if (split == std::string::npos) {
    return Status::Corruption("sealed payload malformed after decryption");
  }
  RevealedNode revealed;
  revealed.name = plaintext.substr(0, split);
  revealed.text = plaintext.substr(split + 1);
  return revealed;
}

StatusOr<bool> ClientFilter::EqualsValue(const NodeMeta& node, gf::Elem t) {
  SSDB_ASSIGN_OR_RETURN(gf::Elem own, RecoverOwnValue(node));
  return own == t;
}

}  // namespace ssdb::filter
