#include "filter/multi_server_filter.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace ssdb::filter {

namespace {

// Counts outstanding fan-out jobs for one call (std::latch is C++20).
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace

MultiServerFilter::MultiServerFilter(gf::Ring ring,
                                     std::vector<ServerFilter*> backends)
    : ring_(std::move(ring)), backends_(std::move(backends)) {
  SSDB_CHECK(!backends_.empty());
  for (size_t i = 1; i < backends_.size(); ++i) {
    auto worker = std::make_unique<Worker>();
    Worker* raw = worker.get();
    worker->thread = std::thread([raw] {
      std::unique_lock<std::mutex> lock(raw->mu);
      for (;;) {
        raw->cv.wait(lock, [raw] { return raw->exit || raw->job; });
        if (raw->exit) return;
        std::function<void()> job = std::move(raw->job);
        raw->job = nullptr;
        lock.unlock();
        job();
        lock.lock();
      }
    });
    workers_.push_back(std::move(worker));
  }
}

MultiServerFilter::~MultiServerFilter() {
  for (const auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->exit = true;
    }
    worker->cv.notify_one();
  }
  for (const auto& worker : workers_) worker->thread.join();
}

void MultiServerFilter::SetEndpointHealth(const control::HealthView* health,
                                          std::vector<std::string> endpoints) {
  health_ = health;
  endpoints_ = std::move(endpoints);
}

Status MultiServerFilter::CheckHealth(size_t first, size_t limit) const {
  if (health_ == nullptr) return Status::OK();
  limit = std::min(limit, endpoints_.size());
  for (size_t i = first; i < limit; ++i) {
    if (health_->IsDown(endpoints_[i])) {
      return Status::Unavailable("server " + std::to_string(i) + " (" +
                                 endpoints_[i] +
                                 ") is down (health monitor, DESIGN.md §11)");
    }
  }
  return Status::OK();
}

Status MultiServerFilter::FanOut(const std::function<Status(size_t)>& fn) {
  if (backends_.size() == 1) return Primary([&] { return fn(0); });

  // Fail fast before queueing behind call_mu_: a query doomed by a kDown
  // backend must not also wait out whatever call is in flight.
  SSDB_RETURN_IF_ERROR(CheckHealth(0, backends_.size()));

  // One call at a time: the worker job slots are single-entry and the
  // before/after deltas below are call-scoped (header: thread safety).
  std::lock_guard<std::mutex> call_lock(call_mu_);
  std::vector<uint64_t> before(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    before[i] = backends_[i]->RoundTrips();
  }

  Stopwatch watch;
  std::vector<Status> statuses(backends_.size(), Status::OK());
  Latch latch(backends_.size() - 1);
  for (size_t i = 1; i < backends_.size(); ++i) {
    Worker* worker = workers_[i - 1].get();
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->job = [&, i] {
        statuses[i] = fn(i);
        latch.CountDown();
      };
    }
    worker->cv.notify_one();
  }
  statuses[0] = fn(0);
  latch.Wait();
  // Plain load+store is race-free here: every writer holds call_mu_, the
  // atomic only keeps concurrent StragglerSeconds() readers torn-free.
  straggler_seconds_.store(
      straggler_seconds_.load(std::memory_order_relaxed) +
          watch.ElapsedSeconds(),
      std::memory_order_relaxed);

  uint64_t straggler = 0;
  for (size_t i = 0; i < backends_.size(); ++i) {
    straggler = std::max(straggler, backends_[i]->RoundTrips() - before[i]);
  }
  round_trips_.fetch_add(straggler, std::memory_order_relaxed);

  for (const Status& status : statuses) {
    SSDB_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

Status MultiServerFilter::Primary(const std::function<Status()>& fn) {
  SSDB_RETURN_IF_ERROR(CheckHealth(0, 1));
  std::lock_guard<std::mutex> call_lock(call_mu_);
  uint64_t before = backends_[0]->RoundTrips();
  Status status = fn();
  round_trips_.fetch_add(backends_[0]->RoundTrips() - before,
                         std::memory_order_relaxed);
  return status;
}

std::vector<uint64_t> MultiServerFilter::PerServerRoundTrips() const {
  std::vector<uint64_t> trips;
  trips.reserve(backends_.size());
  for (const ServerFilter* backend : backends_) {
    trips.push_back(backend->RoundTrips());
  }
  return trips;
}

StatusOr<NodeMeta> MultiServerFilter::Root() {
  StatusOr<NodeMeta> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->Root();
    return out.status();
  }));
  return out;
}

StatusOr<NodeMeta> MultiServerFilter::GetNode(uint32_t pre) {
  StatusOr<NodeMeta> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->GetNode(pre);
    return out.status();
  }));
  return out;
}

StatusOr<std::vector<NodeMeta>> MultiServerFilter::Children(uint32_t pre) {
  StatusOr<std::vector<NodeMeta>> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->Children(pre);
    return out.status();
  }));
  return out;
}

StatusOr<std::vector<std::vector<NodeMeta>>> MultiServerFilter::ChildrenBatch(
    const std::vector<uint32_t>& pres) {
  StatusOr<std::vector<std::vector<NodeMeta>>> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->ChildrenBatch(pres);
    return out.status();
  }));
  return out;
}

StatusOr<uint64_t> MultiServerFilter::OpenDescendantCursor(uint32_t pre,
                                                           uint32_t post) {
  StatusOr<uint64_t> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->OpenDescendantCursor(pre, post);
    return out.status();
  }));
  return out;
}

StatusOr<std::vector<NodeMeta>> MultiServerFilter::NextNodes(
    uint64_t cursor, size_t max_batch) {
  StatusOr<std::vector<NodeMeta>> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->NextNodes(cursor, max_batch);
    return out.status();
  }));
  return out;
}

Status MultiServerFilter::CloseCursor(uint64_t cursor) {
  return Primary([&] { return backends_[0]->CloseCursor(cursor); });
}

StatusOr<std::string> MultiServerFilter::FetchSealed(uint32_t pre) {
  StatusOr<std::string> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->FetchSealed(pre);
    return out.status();
  }));
  return out;
}

StatusOr<uint64_t> MultiServerFilter::NodeCount() {
  StatusOr<uint64_t> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->NodeCount();
    return out.status();
  }));
  return out;
}

StatusOr<std::vector<storage::ColumnBlobs>>
MultiServerFilter::FetchColumnsBatch(const std::vector<uint32_t>& pres) {
  StatusOr<std::vector<storage::ColumnBlobs>> out = Status::Internal("unset");
  SSDB_RETURN_IF_ERROR(Primary([&] {
    out = backends_[0]->FetchColumnsBatch(pres);
    return out.status();
  }));
  return out;
}

StatusOr<std::vector<storage::MutationState>>
MultiServerFilter::MutationStates() {
  std::vector<std::vector<storage::MutationState>> partial(backends_.size());
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    StatusOr<std::vector<storage::MutationState>> reply =
        backends_[i]->MutationStates();
    if (!reply.ok()) {
      return Status(reply.status().code(),
                    "server " + std::to_string(i) + ": " +
                        reply.status().message());
    }
    if (reply->size() != 1) {
      return Status::Internal("server " + std::to_string(i) +
                              ": expected one mutation state, got " +
                              std::to_string(reply->size()));
    }
    partial[i] = std::move(*reply);
    return Status::OK();
  }));
  std::vector<storage::MutationState> out;
  out.reserve(backends_.size());
  for (std::vector<storage::MutationState>& states : partial) {
    out.push_back(states[0]);
  }
  return out;
}

Status MultiServerFilter::PrepareMutation(
    uint64_t txn, const std::vector<storage::MutationPlan>& plans) {
  if (plans.size() != backends_.size()) {
    return Status::InvalidArgument(
        "mutation has " + std::to_string(plans.size()) + " plans for " +
        std::to_string(backends_.size()) + " servers");
  }
  return FanOut([&](size_t i) -> Status {
    Status status = backends_[i]->PrepareMutation(txn, {plans[i]});
    if (!status.ok()) {
      // Blame for the coordinator's abort/retry decision (DESIGN.md §12).
      return Status(status.code(), "server " + std::to_string(i) + ": " +
                                       status.message());
    }
    return status;
  });
}

Status MultiServerFilter::CommitMutation(uint64_t txn) {
  return FanOut([&](size_t i) -> Status {
    Status status = backends_[i]->CommitMutation(txn);
    if (!status.ok()) {
      return Status(status.code(), "server " + std::to_string(i) + ": " +
                                       status.message());
    }
    return status;
  });
}

Status MultiServerFilter::AbortMutation(uint64_t txn) {
  return FanOut([&](size_t i) -> Status {
    Status status = backends_[i]->AbortMutation(txn);
    if (!status.ok()) {
      return Status(status.code(), "server " + std::to_string(i) + ": " +
                                       status.message());
    }
    return status;
  });
}

StatusOr<std::vector<agg::Word>> MultiServerFilter::PartialAggregate(
    const agg::Spec& spec) {
  std::vector<std::vector<agg::Word>> partial(backends_.size());
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    SSDB_ASSIGN_OR_RETURN(partial[i], backends_[i]->PartialAggregate(spec));
    if (partial[i].size() != spec.value_indexes.size()) {
      return Status::Internal("PartialAggregate slice size mismatch");
    }
    return Status::OK();
  }));
  std::vector<agg::Word> sum = std::move(partial[0]);
  for (size_t i = 1; i < partial.size(); ++i) {
    for (size_t j = 0; j < sum.size(); ++j) {
      sum[j] += partial[i][j];
    }
  }
  return sum;
}

StatusOr<std::vector<agg::VerifiedPartial>>
MultiServerFilter::PartialAggregateVerified(const agg::Spec& spec) {
  std::vector<std::vector<agg::VerifiedPartial>> partial(backends_.size());
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    StatusOr<std::vector<agg::VerifiedPartial>> reply =
        backends_[i]->PartialAggregateVerified(spec);
    if (!reply.ok()) {
      // Attribution for transport/shape faults: the client sees which
      // server failed without a proof check (DESIGN.md §9).
      return Status(reply.status().code(),
                    "server " + std::to_string(i) + ": " +
                        reply.status().message());
    }
    for (const agg::VerifiedPartial& entry : *reply) {
      if (entry.words.size() != spec.value_indexes.size() ||
          entry.wide.size() != entry.proof.size() ||
          (!entry.wide.empty() &&
           entry.wide.size() != spec.value_indexes.size())) {
        return Status::Corruption("server " + std::to_string(i) +
                                  ": verified partial group count mismatch");
      }
    }
    partial[i] = std::move(*reply);
    return Status::OK();
  }));
  std::vector<agg::VerifiedPartial> out;
  out.reserve(backends_.size());
  for (std::vector<agg::VerifiedPartial>& entries : partial) {
    for (agg::VerifiedPartial& entry : entries) {
      out.push_back(std::move(entry));
    }
  }
  return out;
}

StatusOr<gf::Elem> MultiServerFilter::EvalAt(uint32_t pre, gf::Elem t) {
  std::vector<gf::Elem> partial(backends_.size(), 0);
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    SSDB_ASSIGN_OR_RETURN(partial[i], backends_[i]->EvalAt(pre, t));
    return Status::OK();
  }));
  gf::Elem sum = 0;
  for (gf::Elem value : partial) sum = ring_.field().Add(sum, value);
  return sum;
}

StatusOr<std::vector<gf::Elem>> MultiServerFilter::EvalAtBatch(
    const std::vector<uint32_t>& pres, gf::Elem t) {
  std::vector<std::vector<gf::Elem>> partial(backends_.size());
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    SSDB_ASSIGN_OR_RETURN(partial[i], backends_[i]->EvalAtBatch(pres, t));
    if (partial[i].size() != pres.size()) {
      return Status::Internal("EvalAtBatch slice size mismatch");
    }
    return Status::OK();
  }));
  std::vector<gf::Elem> sum = std::move(partial[0]);
  for (size_t i = 1; i < partial.size(); ++i) {
    for (size_t j = 0; j < sum.size(); ++j) {
      sum[j] = ring_.field().Add(sum[j], partial[i][j]);
    }
  }
  return sum;
}

StatusOr<std::vector<gf::Elem>> MultiServerFilter::EvalPointsBatch(
    uint32_t pre, const std::vector<gf::Elem>& points) {
  std::vector<std::vector<gf::Elem>> partial(backends_.size());
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    SSDB_ASSIGN_OR_RETURN(partial[i],
                          backends_[i]->EvalPointsBatch(pre, points));
    if (partial[i].size() != points.size()) {
      return Status::Internal("EvalPointsBatch slice size mismatch");
    }
    return Status::OK();
  }));
  std::vector<gf::Elem> sum = std::move(partial[0]);
  for (size_t i = 1; i < partial.size(); ++i) {
    for (size_t j = 0; j < sum.size(); ++j) {
      sum[j] = ring_.field().Add(sum[j], partial[i][j]);
    }
  }
  return sum;
}

StatusOr<gf::RingElem> MultiServerFilter::FetchShare(uint32_t pre) {
  std::vector<gf::RingElem> partial(backends_.size());
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    SSDB_ASSIGN_OR_RETURN(partial[i], backends_[i]->FetchShare(pre));
    return Status::OK();
  }));
  gf::RingElem sum = std::move(partial[0]);
  for (size_t i = 1; i < partial.size(); ++i) {
    ring_.AddInto(&sum, partial[i]);
  }
  return sum;
}

StatusOr<std::vector<gf::RingElem>> MultiServerFilter::FetchShareBatch(
    const std::vector<uint32_t>& pres) {
  std::vector<std::vector<gf::RingElem>> partial(backends_.size());
  SSDB_RETURN_IF_ERROR(FanOut([&](size_t i) -> Status {
    SSDB_ASSIGN_OR_RETURN(partial[i], backends_[i]->FetchShareBatch(pres));
    if (partial[i].size() != pres.size()) {
      return Status::Internal("FetchShareBatch slice size mismatch");
    }
    return Status::OK();
  }));
  std::vector<gf::RingElem> sum = std::move(partial[0]);
  for (size_t i = 1; i < partial.size(); ++i) {
    for (size_t j = 0; j < sum.size(); ++j) {
      ring_.AddInto(&sum[j], partial[i][j]);
    }
  }
  return sum;
}

}  // namespace ssdb::filter
