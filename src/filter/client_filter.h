/// ClientFilter (paper §5.2): the trusted side. Holds the secret seed (via
/// the PRG) and regenerates client shares per node position; combines them
/// with server evaluations so that only the *sum* — which equals the true
/// polynomial's evaluation — is ever learned, and only by the client.
///
/// Two matching rules (DESIGN.md §3):
///  * containment test — one joint evaluation at map(tag); zero sum means
///    the tag occurs somewhere in the node's subtree. Constant cost.
///  * equality test    — reconstructs the node polynomial and all child
///    polynomials, divides out the child product and checks the remaining
///    monomial is (x - map(tag)). Cost grows with the number of children.
///
/// The batch entry points are the primary path (DESIGN.md §6): they
/// regenerate the client shares for a whole candidate set and issue one
/// joint server exchange, so a query step costs O(1) round trips instead of
/// O(candidates). The scalar methods are thin wrappers over batches of one.
/// The filter is deployment-agnostic: behind the ServerFilter it talks to
/// may sit one server or an m-server fan-out (DESIGN.md §5) — the share sums
/// it computes are the same either way.

#ifndef SSDB_FILTER_CLIENT_FILTER_H_
#define SSDB_FILTER_CLIENT_FILTER_H_

#include <cstdint>
#include <vector>

#include "filter/server_filter.h"
#include "gf/dft.h"
#include "gf/ring.h"
#include "prg/prg.h"
#include "util/statusor.h"

namespace ssdb::filter {

// Cost counters; `evaluations` is the unit plotted in the paper's fig. 5
// (one per containment test; 1 + #children per equality test, i.e. one per
// polynomial that must be processed).
struct EvalStats {
  uint64_t evaluations = 0;
  uint64_t containment_tests = 0;
  uint64_t equality_tests = 0;
  uint64_t shares_fetched = 0;     // full polynomials pulled for equality
  uint64_t nodes_visited = 0;      // navigation volume
  uint64_t server_calls = 0;       // logical ServerFilter invocations
  uint64_t round_trips = 0;        // wire exchanges (chunked batches count
                                   // one per chunk), accumulated from the
                                   // server's RoundTrips() deltas; straggler
                                   // semantics under multi-server fan-out
  uint64_t batched_evaluations = 0;  // evaluations that rode a batch call
  uint64_t aggregate_ops = 0;        // server-side partial-aggregate folds
                                     // (DESIGN.md §8), one per exchange
  uint64_t verified_aggregate_ops = 0;  // groups that came home with proofs
                                        // and passed verification (§9)
  uint64_t proof_words = 0;             // verification words received and
                                        // checked (wide + proof, §9)
  // Multi-server fan-out (DESIGN.md §5): raw wire exchanges per backend
  // (empty or size-1 for single-server deployments) and the wall time spent
  // waiting on the slowest server across concurrent fan-outs.
  std::vector<uint64_t> per_server_round_trips;
  double straggler_seconds = 0;

  void Reset() { *this = EvalStats{}; }

  // Corpus-level merge (DESIGN.md §10): folds the stats of a query that ran
  // *concurrently* with this one (a shard router fans per-document queries
  // out to their server groups in parallel). Work counters (evaluations,
  // server calls, bytes-shaped fields) sum; latency-shaped fields
  // (round_trips, straggler_seconds) take the straggler's maximum, because
  // concurrent fan-outs cost one step of wall clock — the same semantics
  // MultiServerFilter uses across slices, lifted across groups. The
  // per-server vectors concatenate: every group's servers are distinct.
  void MergeConcurrent(const EvalStats& other);
};

class ClientFilter {
 public:
  // `server` must outlive the filter. The PRG embeds the secret seed.
  ClientFilter(gf::Ring ring, prg::Prg prg, ServerFilter* server);

  // --- Navigation (structure is public; calls are counted) ---
  StatusOr<NodeMeta> Root();
  StatusOr<NodeMeta> GetNode(uint32_t pre);
  // NotFound for the root (which has no parent).
  StatusOr<NodeMeta> Parent(const NodeMeta& node);
  StatusOr<std::vector<NodeMeta>> Children(const NodeMeta& node);
  // Children of every node in one server exchange; out[i] belongs to
  // nodes[i].
  StatusOr<std::vector<std::vector<NodeMeta>>> ChildrenBatch(
      const std::vector<NodeMeta>& nodes);
  // All proper descendants, pulled through the server-side cursor pipeline.
  StatusOr<std::vector<NodeMeta>> Descendants(const NodeMeta& node);

  // --- Aggregation (DESIGN.md §8) ---
  // Runs a server-side partial aggregate over the spec's frontier and
  // removes the client's PRG masks, returning the *true* Z_{2^32} aggregate
  // per group — the aggregate analog of combining share evaluations. One
  // server exchange however large the frontier; O(groups) response bytes.
  StatusOr<std::vector<agg::Word>> Aggregate(const agg::Spec& spec);

  // Verified aggregation (DESIGN.md §9): like Aggregate, but every server's
  // words come home separately alongside wide and keyed-proof partials from
  // the slice storing the verification track. The client checks
  //   * slices i >= 1 against their PRG expectation (exact, deterministic),
  //   * the keyed checksum Q = α_τ·D̂ over the track (forgery survives with
  //     probability <= 2⁻³²),
  //   * the 32-bit answer against the wide answer D̂ mod 2^32,
  // so a tampering server is *identified*: the returned Corruption status
  // names "server i". FailedPrecondition when the database was encoded
  // without the track (ssdb_encode --verify-agg).
  struct VerifiedAggregate {
    std::vector<agg::Word> totals;  // the true aggregate per group
    uint64_t proof_words = 0;       // verification words checked
  };
  StatusOr<VerifiedAggregate> AggregateVerified(const agg::Spec& spec);

  // --- Matching rules (batch-first) ---
  // out[i] != 0 iff the subtree rooted at nodes[i] contains the mapped
  // value t. One joint server exchange for the whole set.
  StatusOr<std::vector<uint8_t>> ContainsValueBatch(
      const std::vector<NodeMeta>& nodes, gf::Elem t);
  // out[i] != 0 iff nodes[i]'s subtree contains *all* of `values`. One
  // server exchange per value (not per node), with nodes dropping out as
  // soon as a value is missing.
  StatusOr<std::vector<uint8_t>> ContainsAllValuesBatch(
      const std::vector<NodeMeta>& nodes, const std::vector<gf::Elem>& values);
  // out[i] != 0 iff nodes[i]'s own tag is exactly t (strict checking).
  // Two server exchanges for the whole set (children + shares).
  StatusOr<std::vector<uint8_t>> EqualsValueBatch(
      const std::vector<NodeMeta>& nodes, gf::Elem t);
  // Recovers each node's own mapped tag value (the equality test's core).
  StatusOr<std::vector<gf::Elem>> RecoverOwnValueBatch(
      const std::vector<NodeMeta>& nodes);

  // --- Scalar wrappers over the batch path ---
  // Does the subtree rooted at `node` contain the mapped value t?
  StatusOr<bool> ContainsValue(const NodeMeta& node, gf::Elem t);
  // Does it contain *all* of `values`?
  StatusOr<bool> ContainsAllValues(const NodeMeta& node,
                                   const std::vector<gf::Elem>& values);
  // Is the node's own tag exactly t? (strict checking)
  StatusOr<bool> EqualsValue(const NodeMeta& node, gf::Elem t);
  // Recovers the node's own mapped tag value; exposed for diagnostics and
  // tests.
  StatusOr<gf::Elem> RecoverOwnValue(const NodeMeta& node);

  // §4 extension: fetches and decrypts the node's sealed payload.
  // Returns {tag name, direct text}; FailedPrecondition when the database
  // was encoded without sealing.
  struct RevealedNode {
    std::string name;
    std::string text;
  };
  StatusOr<RevealedNode> Reveal(const NodeMeta& node);

  EvalStats& stats() { return stats_; }
  const gf::Ring& ring() const { return ring_; }

  // Integrity mode: verify the equality-test division at every point of the
  // evaluation domain (O(n^2) per test) instead of at a handful of sampled
  // points. Sampled verification already catches inconsistent shares with
  // probability 1 - (1/q)^k; full verification is for tamper-evidence tests.
  void set_full_verification(bool on) { full_verification_ = on; }

 private:
  // Accumulates the server's round-trip delta over one logical call into
  // stats_.round_trips, so the counter resets and deltas like every other
  // EvalStats field. Instantiated only by methods that talk to the server
  // directly (wrappers would double-count).
  class TripScope {
   public:
    explicit TripScope(ClientFilter* filter)
        : filter_(filter),
          multi_(filter->server_->ServerCount() > 1),
          before_(filter->server_->RoundTrips()) {
      // The per-server vectors cost an allocation per capture; only a
      // fan-out filter has anything beyond RoundTrips() to report.
      if (multi_) {
        per_server_before_ = filter->server_->PerServerRoundTrips();
        straggler_before_ = filter->server_->StragglerSeconds();
      }
    }
    ~TripScope() {
      EvalStats& stats = filter_->stats_;
      stats.round_trips += filter_->server_->RoundTrips() - before_;
      if (!multi_) return;
      stats.straggler_seconds +=
          filter_->server_->StragglerSeconds() - straggler_before_;
      std::vector<uint64_t> after = filter_->server_->PerServerRoundTrips();
      if (stats.per_server_round_trips.size() < after.size()) {
        stats.per_server_round_trips.resize(after.size(), 0);
      }
      for (size_t i = 0;
           i < after.size() && i < per_server_before_.size(); ++i) {
        stats.per_server_round_trips[i] += after[i] - per_server_before_[i];
      }
    }
    TripScope(const TripScope&) = delete;
    TripScope& operator=(const TripScope&) = delete;

   private:
    ClientFilter* filter_;
    bool multi_;
    uint64_t before_;
    std::vector<uint64_t> per_server_before_;
    double straggler_before_ = 0;
  };

  // eval(client_share(node), t) — regenerated from the PRG (keyed by the
  // node's share nonce, DESIGN.md §12), never stored.
  gf::Elem EvalClientShare(const NodeMeta& node, gf::Elem t);
  // Reconstructs the full polynomial of a node (client + server share).
  StatusOr<gf::RingElem> ReconstructPoly(const NodeMeta& node);
  // Extracts the node's own factor from its reconstructed polynomial and
  // the reconstructed child polynomials (evaluation-domain division).
  StatusOr<gf::Elem> RecoverFromPolys(
      const gf::RingElem& node_poly,
      const std::vector<gf::RingElem>& child_polys);

  gf::Ring ring_;
  gf::Evaluator evaluator_;
  prg::Prg prg_;
  ServerFilter* server_;
  EvalStats stats_;
  bool full_verification_ = false;
};

}  // namespace ssdb::filter

#endif  // SSDB_FILTER_CLIENT_FILTER_H_
