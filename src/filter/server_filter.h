/// ServerFilter (paper §5.2): the operations an untrusted server exposes.
/// It sees only pre/post/parent (stored in the clear, as in the paper's
/// MySQL schema) and *server shares* of the node polynomials — never tag
/// names, the map, the seed, or reconstructed polynomials. See DESIGN.md §3
/// for the matching rules built on top and §6 for the batch entry points.
///
/// LocalServerFilter runs against a NodeStore in-process; RemoteServerFilter
/// (src/rpc/client.h) speaks the same interface over a channel, replacing
/// the paper's Java RMI; MultiServerFilter (src/filter/multi_server_filter.h,
/// DESIGN.md §5) fans out to m share-slice servers and sums their replies.
///
/// Concurrency (DESIGN.md §7): one LocalServerFilter is shared by every
/// connection a concurrent transport dispatches. Share/structure reads are
/// stateless and embarrassingly parallel (the store serializes internally);
/// the only server-side state — the descendant-cursor registry — is a
/// mutexed table keyed by (session, cursor id), so cursors opened on one
/// connection are invisible to every other and are reclaimed by EndSession
/// when a connection dies.

#ifndef SSDB_FILTER_SERVER_FILTER_H_
#define SSDB_FILTER_SERVER_FILTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "agg/columns.h"
#include "gf/ring.h"
#include "storage/mutation.h"
#include "storage/node_store.h"
#include "util/statusor.h"

namespace ssdb::filter {

// Structure-only view of a node (no polynomial data). `nonce` is the PRG
// nonce the node's shares are derived from: 0 means "the pre number", the
// unmutated default; re-shared or shifted rows carry an explicit nonce
// (DESIGN.md §12). Equality deliberately ignores it — two metas describe
// the same structural node regardless of how often it was re-shared.
struct NodeMeta {
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t parent = 0;
  uint64_t nonce = 0;

  uint64_t ShareNonce() const { return nonce != 0 ? nonce : pre; }

  bool operator==(const NodeMeta& other) const {
    return pre == other.pre && post == other.post && parent == other.parent;
  }
  bool operator<(const NodeMeta& other) const { return pre < other.pre; }
};

inline NodeMeta MetaOf(const storage::NodeRow& row) {
  return NodeMeta{row.pre, row.post, row.parent, row.nonce};
}

// Identity of the connection issuing a cursor operation (DESIGN.md §7).
// Session 0 is the implicit session of the single-connection entry points;
// the concurrent transport passes each connection's id. A strong type so
// the session can never be confused with a pre number or cursor id.
struct SessionId {
  uint64_t value = 0;
};

class ServerFilter {
 public:
  virtual ~ServerFilter() = default;

  // The unique node with parent == 0.
  virtual StatusOr<NodeMeta> Root() = 0;
  virtual StatusOr<NodeMeta> GetNode(uint32_t pre) = 0;
  virtual StatusOr<std::vector<NodeMeta>> Children(uint32_t pre) = 0;
  // Children of many nodes at once; out[i] are the children of pres[i].
  // One round trip remotely — the step-level expansion of the batched
  // query pipeline.
  virtual StatusOr<std::vector<std::vector<NodeMeta>>> ChildrenBatch(
      const std::vector<uint32_t>& pres) = 0;

  // The paper's nextNode() pipeline: the server buffers the intermediate
  // result (descendants of a subtree) and the thin client pulls batches.
  virtual StatusOr<uint64_t> OpenDescendantCursor(uint32_t pre,
                                                  uint32_t post) = 0;
  // Empty batch means the cursor is exhausted (and auto-closed).
  virtual StatusOr<std::vector<NodeMeta>> NextNodes(uint64_t cursor,
                                                    size_t max_batch) = 0;
  virtual Status CloseCursor(uint64_t cursor) = 0;

  // Session-scoped cursor entry points used by the concurrent transport
  // (DESIGN.md §7): a cursor is only visible to the session that opened it.
  // The defaults drop the session — correct for client-side stubs, where
  // the remote server scopes sessions by connection.
  virtual StatusOr<uint64_t> OpenDescendantCursor(SessionId session,
                                                  uint32_t pre,
                                                  uint32_t post) {
    (void)session;
    return OpenDescendantCursor(pre, post);
  }
  virtual StatusOr<std::vector<NodeMeta>> NextNodes(SessionId session,
                                                    uint64_t cursor,
                                                    size_t max_batch) {
    (void)session;
    return NextNodes(cursor, max_batch);
  }
  virtual Status CloseCursor(SessionId session, uint64_t cursor) {
    (void)session;
    return CloseCursor(cursor);
  }
  // Reclaims everything the session left behind (open cursors); called by
  // the transport when a connection closes, however it closed.
  virtual void EndSession(SessionId session) { (void)session; }
  // Open cursors across all sessions (leak detection in tests).
  virtual uint64_t OpenCursorCount() const { return 0; }

  // Evaluates the stored server share of node `pre` at point t.
  virtual StatusOr<gf::Elem> EvalAt(uint32_t pre, gf::Elem t) = 0;
  // Batched variants (one round trip remotely): many nodes at one point,
  // and one node at many points (the advanced engine's look-ahead).
  virtual StatusOr<std::vector<gf::Elem>> EvalAtBatch(
      const std::vector<uint32_t>& pres, gf::Elem t) = 0;
  virtual StatusOr<std::vector<gf::Elem>> EvalPointsBatch(
      uint32_t pre, const std::vector<gf::Elem>& points) = 0;

  // Full server share, needed by the client-side equality test.
  virtual StatusOr<gf::RingElem> FetchShare(uint32_t pre) = 0;
  // Many full shares in one round trip (batched equality tests).
  virtual StatusOr<std::vector<gf::RingElem>> FetchShareBatch(
      const std::vector<uint32_t>& pres) = 0;

  // Partial aggregate (DESIGN.md §8): folds the selected aggregate columns
  // of the frontier nodes into one masked Z_{2^32} word per group — the
  // server *computes* on its additive slice instead of shipping shares, so
  // the response is O(groups) however large the candidate set. Stateless
  // and thread-safe; the default rejects so transports over pre-§8 stores
  // and test fakes fail loudly instead of answering garbage.
  virtual StatusOr<std::vector<agg::Word>> PartialAggregate(
      const agg::Spec& spec) {
    (void)spec;
    return Status::Unimplemented("server does not support aggregation");
  }
  // Session-scoped variant used by the concurrent transport; aggregation
  // holds no per-session state, so the default drops the session.
  virtual StatusOr<std::vector<agg::Word>> PartialAggregate(
      SessionId session, const agg::Spec& spec) {
    (void)session;
    return PartialAggregate(spec);
  }

  // Verified partial aggregate (DESIGN.md §9): like PartialAggregate, but
  // every represented slice answers *separately* (one VerifiedPartial per
  // slice, slice order preserved) so the client can attribute a bad word to
  // a server, and the slice holding the verification track additionally
  // returns the wide and keyed-proof partials. The default rejects like the
  // unverified op.
  virtual StatusOr<std::vector<agg::VerifiedPartial>> PartialAggregateVerified(
      const agg::Spec& spec) {
    (void)spec;
    return Status::Unimplemented(
        "server does not support verified aggregation");
  }
  virtual StatusOr<std::vector<agg::VerifiedPartial>> PartialAggregateVerified(
      SessionId session, const agg::Spec& spec) {
    (void)session;
    return PartialAggregateVerified(spec);
  }

  // Sealed payload bytes (ciphertext; §4 extension). Empty when the
  // database was encoded without sealing.
  virtual StatusOr<std::string> FetchSealed(uint32_t pre) = 0;

  // --- Mutations (DESIGN.md §12) --------------------------------------------
  // Two-phase secret-shared INSERT/UPDATE/DELETE. The coordinator (the
  // client's Mutator) builds one MutationPlan per share slice, prepares them
  // all, then commits; a fan-out filter routes plans[i] to backend i, a
  // single-server filter requires exactly one plan. The defaults reject so
  // read-only transports and test fakes fail loudly.

  // One MutationState per backend slice, in slice order.
  virtual StatusOr<std::vector<storage::MutationState>> MutationStates() {
    return Status::Unimplemented("server does not support mutations");
  }
  virtual Status PrepareMutation(uint64_t txn,
                                 const std::vector<storage::MutationPlan>&
                                     plans) {
    (void)txn;
    (void)plans;
    return Status::Unimplemented("server does not support mutations");
  }
  virtual Status CommitMutation(uint64_t txn) {
    (void)txn;
    return Status::Unimplemented("server does not support mutations");
  }
  virtual Status AbortMutation(uint64_t txn) {
    (void)txn;
    return Status::Unimplemented("server does not support mutations");
  }

  // Aggregate + verification blobs of many nodes in one round trip; out[i]
  // belongs to pres[i]. Used by the mutation planner to rebuild the root
  // path's column state client-side (DESIGN.md §12).
  virtual StatusOr<std::vector<storage::ColumnBlobs>> FetchColumnsBatch(
      const std::vector<uint32_t>& pres) {
    (void)pres;
    return Status::Unimplemented("server does not support column fetches");
  }

  virtual StatusOr<uint64_t> NodeCount() = 0;

  // Number of server exchanges so far. Locally this counts filter calls;
  // remotely it counts actual wire round trips (a chunked batch counts one
  // trip per chunk). A multi-server fan-out counts the straggler only —
  // concurrent exchanges cost one step of latency (DESIGN.md §5). The
  // batched pipeline's win is measured against it.
  virtual uint64_t RoundTrips() const = 0;

  // How many backends answer this filter (1 unless it is a fan-out).
  virtual size_t ServerCount() const { return 1; }

  // Per-backend wire exchanges; single-server filters report {RoundTrips()}.
  virtual std::vector<uint64_t> PerServerRoundTrips() const {
    return {RoundTrips()};
  }

  // Accumulated wall time of the slowest backend across concurrent
  // fan-outs; 0 for single-server filters.
  virtual double StragglerSeconds() const { return 0.0; }
};

// Thread-safe: any number of connections may call concurrently. Reads are
// lock-free here (the store serializes internally); the cursor registry is
// the one mutexed structure (DESIGN.md §7).
class LocalServerFilter : public ServerFilter {
 public:
  // `store` must outlive the filter.
  LocalServerFilter(gf::Ring ring, storage::NodeStore* store)
      : ring_(std::move(ring)), store_(store) {}

  StatusOr<NodeMeta> Root() override;
  StatusOr<NodeMeta> GetNode(uint32_t pre) override;
  StatusOr<std::vector<NodeMeta>> Children(uint32_t pre) override;
  StatusOr<std::vector<std::vector<NodeMeta>>> ChildrenBatch(
      const std::vector<uint32_t>& pres) override;
  StatusOr<uint64_t> OpenDescendantCursor(uint32_t pre,
                                          uint32_t post) override;
  StatusOr<std::vector<NodeMeta>> NextNodes(uint64_t cursor,
                                            size_t max_batch) override;
  Status CloseCursor(uint64_t cursor) override;
  StatusOr<uint64_t> OpenDescendantCursor(SessionId session, uint32_t pre,
                                          uint32_t post) override;
  StatusOr<std::vector<NodeMeta>> NextNodes(SessionId session,
                                            uint64_t cursor,
                                            size_t max_batch) override;
  Status CloseCursor(SessionId session, uint64_t cursor) override;
  void EndSession(SessionId session) override;
  uint64_t OpenCursorCount() const override;
  StatusOr<gf::Elem> EvalAt(uint32_t pre, gf::Elem t) override;
  StatusOr<std::vector<gf::Elem>> EvalAtBatch(
      const std::vector<uint32_t>& pres, gf::Elem t) override;
  StatusOr<std::vector<gf::Elem>> EvalPointsBatch(
      uint32_t pre, const std::vector<gf::Elem>& points) override;
  StatusOr<gf::RingElem> FetchShare(uint32_t pre) override;
  StatusOr<std::vector<gf::RingElem>> FetchShareBatch(
      const std::vector<uint32_t>& pres) override;
  StatusOr<std::vector<agg::Word>> PartialAggregate(
      const agg::Spec& spec) override;
  StatusOr<std::vector<agg::VerifiedPartial>> PartialAggregateVerified(
      const agg::Spec& spec) override;
  StatusOr<std::string> FetchSealed(uint32_t pre) override;
  StatusOr<std::vector<storage::MutationState>> MutationStates() override;
  Status PrepareMutation(
      uint64_t txn,
      const std::vector<storage::MutationPlan>& plans) override;
  Status CommitMutation(uint64_t txn) override;
  Status AbortMutation(uint64_t txn) override;
  StatusOr<std::vector<storage::ColumnBlobs>> FetchColumnsBatch(
      const std::vector<uint32_t>& pres) override;
  StatusOr<uint64_t> NodeCount() override;
  uint64_t RoundTrips() const override {
    return round_trips_.load(std::memory_order_relaxed);
  }

  const gf::Ring& ring() const { return ring_; }

 private:
  struct Cursor {
    uint64_t session = 0;            // owning connection
    std::vector<NodeMeta> buffered;  // server-side buffering (§5.2)
    size_t offset = 0;
  };

  void CountTrip() { round_trips_.fetch_add(1, std::memory_order_relaxed); }

  // Share reads through the store's zero-copy visit path: only the share
  // bytes are decoded, the row's other payloads (sealed, aggregate
  // columns) are never copied.
  StatusOr<gf::RingElem> ReadShare(uint32_t pre);
  StatusOr<gf::Elem> EvalRowAt(uint32_t pre, gf::Elem t);

  gf::Ring ring_;
  storage::NodeStore* store_;
  // Guards cursors_ and next_cursor_; cursor ids are unique across
  // sessions, ownership is checked on every access.
  mutable std::mutex cursors_mu_;
  std::map<uint64_t, Cursor> cursors_;
  uint64_t next_cursor_ = 1;
  std::atomic<uint64_t> round_trips_{0};
};

}  // namespace ssdb::filter

#endif  // SSDB_FILTER_SERVER_FILTER_H_
