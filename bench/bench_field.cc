// Ablation A1 (google-benchmark): finite-field and ring micro-costs that
// explain the macro numbers — field ops across p, Horner evaluation,
// coefficient-domain convolution vs evaluation-domain pointwise
// multiplication, and the two encoder paths end to end.

#include <benchmark/benchmark.h>

#include <set>

#include "encode/encoder.h"
#include "gf/dft.h"
#include "gf/ring.h"
#include "mapping/tag_map.h"
#include "prg/prg.h"
#include "storage/memory_backend.h"
#include "util/random.h"
#include "xmark/generator.h"
#include "xml/dom.h"

namespace ssdb {
namespace {

gf::RingElem RandomElem(const gf::Ring& ring, Random* rng) {
  gf::RingElem f(ring.n());
  for (auto& c : f) {
    c = static_cast<gf::Elem>(rng->Uniform(ring.field().q()));
  }
  return f;
}

void BM_FieldMul(benchmark::State& state) {
  auto field = *gf::Field::Make(static_cast<uint32_t>(state.range(0)));
  Random rng(1);
  gf::Elem a = 1 + static_cast<gf::Elem>(rng.Uniform(field.n()));
  gf::Elem b = 1 + static_cast<gf::Elem>(rng.Uniform(field.n()));
  for (auto _ : state) {
    a = field.Mul(a, b);
    benchmark::DoNotOptimize(a);
    if (a == 0) a = 1;
  }
}
BENCHMARK(BM_FieldMul)->Arg(5)->Arg(29)->Arg(83)->Arg(257);

void BM_FieldInv(benchmark::State& state) {
  auto field = *gf::Field::Make(static_cast<uint32_t>(state.range(0)));
  gf::Elem a = 2;
  for (auto _ : state) {
    a = field.Inv(a);
    benchmark::DoNotOptimize(a);
    a = a == 0 ? 2 : a;
  }
}
BENCHMARK(BM_FieldInv)->Arg(83);

void BM_RingEvalHorner(benchmark::State& state) {
  // One containment-test evaluation: Horner over q-1 coefficients.
  auto field = *gf::Field::Make(static_cast<uint32_t>(state.range(0)));
  gf::Ring ring(field);
  Random rng(2);
  gf::RingElem f = RandomElem(ring, &rng);
  gf::Elem t = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Eval(f, t));
  }
}
BENCHMARK(BM_RingEvalHorner)->Arg(29)->Arg(83)->Arg(257);

void BM_RingMulConvolution(benchmark::State& state) {
  // Coefficient-domain product: O(n^2).
  auto field = *gf::Field::Make(83);
  gf::Ring ring(field);
  Random rng(3);
  gf::RingElem a = RandomElem(ring, &rng);
  gf::RingElem b = RandomElem(ring, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Mul(a, b));
  }
}
BENCHMARK(BM_RingMulConvolution);

void BM_RingMulPointwise(benchmark::State& state) {
  // Evaluation-domain product: O(n) once transformed.
  auto field = *gf::Field::Make(83);
  gf::Ring ring(field);
  gf::Evaluator evaluator(ring);
  Random rng(4);
  gf::EvalVector a = evaluator.Forward(RandomElem(ring, &rng));
  gf::EvalVector b = evaluator.Forward(RandomElem(ring, &rng));
  for (auto _ : state) {
    gf::EvalVector c = a;
    evaluator.PointwiseMulInto(&c, b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RingMulPointwise);

void BM_DftInverse(benchmark::State& state) {
  // The per-node cost the evaluation-domain encoder pays before storage.
  auto field = *gf::Field::Make(83);
  gf::Ring ring(field);
  gf::Evaluator evaluator(ring);
  Random rng(5);
  gf::EvalVector evals = evaluator.Forward(RandomElem(ring, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Inverse(evals));
  }
}
BENCHMARK(BM_DftInverse);

void BM_PrgClientShare(benchmark::State& state) {
  auto field = *gf::Field::Make(83);
  gf::Ring ring(field);
  prg::Prg prg(prg::Seed::FromUint64(6));
  uint64_t pre = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prg.ClientShare(ring, ++pre));
  }
}
BENCHMARK(BM_PrgClientShare);

void BM_EncodeDocument(benchmark::State& state) {
  // End-to-end encoder: eval-domain (arg 1) vs coefficient-domain (arg 0).
  xmark::GeneratorOptions gen;
  gen.target_bytes = 64 << 10;
  std::string xml = xmark::GenerateAuctionDocument(gen).xml;
  auto field = *gf::Field::Make(83);
  gf::Ring ring(field);
  auto doc = *xml::ParseDocument(xml);
  std::vector<std::string> names;
  {
    std::set<std::string> seen;
    xml::ForEachElement(doc.root(), [&](const xml::Node& node) {
      if (seen.insert(node.name).second) names.push_back(node.name);
    });
  }
  auto map = *mapping::TagMap::FromNames(names, field);
  encode::EncodeOptions options;
  options.use_eval_domain = state.range(0) == 1;
  uint64_t nodes = 0;
  for (auto _ : state) {
    storage::MemoryNodeStore store;
    encode::Encoder encoder(ring, map, prg::Prg(prg::Seed::FromUint64(7)),
                            &store, options);
    auto result = encoder.EncodeString(xml);
    benchmark::DoNotOptimize(result);
    nodes = result->node_count;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_EncodeDocument)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssdb

BENCHMARK_MAIN();
