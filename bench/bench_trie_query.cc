// Experiment E7 (the paper's §7 future work, implemented): query cost over
// *data content* with the trie representation. The paper predicts "a major
// improvement especially in the advanced algorithm. Queries over the data
// are more precise ... the query engine can find the path to the answer
// almost immediately."
//
// We measure contains(text(), word) queries over trie-encoded person
// directories of growing size: the advanced engine descends only branches
// whose polynomials still contain the next character, while the simple
// engine enumerates whole candidate subtrees.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "trie/trie_xml.h"
#include "util/random.h"
#include "xmark/words.h"

namespace ssdb::bench {
namespace {

std::string MakePeopleXml(size_t persons, uint64_t seed) {
  Random rng(seed);
  std::string xml = "<people>";
  for (size_t i = 0; i < persons; ++i) {
    xml += "<person><name>";
    xml += rng.Pick(xmark::FirstNames()) + " " + rng.Pick(xmark::LastNames());
    xml += "</name></person>";
  }
  xml += "</people>";
  return xml;
}

void Run() {
  PrintHeader(
      "Section 7 future work: data queries via the trie (p=127)");
  std::printf("%-10s %-10s %-14s %-14s %-12s %-10s\n", "persons", "nodes",
              "evals(simp)", "evals(adv)", "simp/adv", "matches");

  double scale = BenchScale();
  auto field = *gf::Field::Make(127);
  std::vector<std::string> names = {"people", "person", "name"};
  for (const auto& label : trie::TrieAlphabet()) names.push_back(label);
  auto map = *mapping::TagMap::FromNames(names, field);

  const std::string query_text =
      "/people/person/name[contains(text(), \"Joan\")]";

  for (size_t persons : {50u, 200u, 800u}) {
    size_t scaled = static_cast<size_t>(
        std::max(1.0, static_cast<double>(persons) * scale));
    std::string xml = MakePeopleXml(scaled, 7);

    core::DatabaseOptions options;
    options.p = 127;
    options.encode.trie = true;
    auto db = core::EncryptedXmlDatabase::Encode(
        xml, map, prg::Seed::FromUint64(9), options);
    SSDB_CHECK(db.ok()) << db.status().ToString();

    auto parsed = *query::ParseQuery(query_text);
    auto simple = (*db)->QueryParsed(parsed, core::EngineKind::kSimple,
                                     query::MatchMode::kEquality);
    auto advanced = (*db)->QueryParsed(parsed, core::EngineKind::kAdvanced,
                                       query::MatchMode::kEquality);
    SSDB_CHECK(simple.ok() && advanced.ok());
    SSDB_CHECK(simple->nodes.size() == advanced->nodes.size());
    double ratio =
        advanced->stats.eval.evaluations == 0
            ? 0
            : static_cast<double>(simple->stats.eval.evaluations) /
                  static_cast<double>(advanced->stats.eval.evaluations);
    std::printf("%-10zu %-10llu %-14llu %-14llu %-12.2f %-10zu\n", scaled,
                (unsigned long long)(*db)->encode_result().node_count,
                (unsigned long long)simple->stats.eval.evaluations,
                (unsigned long long)advanced->stats.eval.evaluations, ratio,
                simple->nodes.size());
  }
  std::printf(
      "\nPaper prediction (§7): with knowledge of the data at high-level\n"
      "nodes, the engine finds the path to the answer almost immediately —\n"
      "the advanced/simple gap should widen with document size.\n");
}

}  // namespace
}  // namespace ssdb::bench

int main() {
  ssdb::bench::Run();
  return 0;
}
