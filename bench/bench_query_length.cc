// Experiment E2 — reproduces **Table 1 + Figure 5** (query length): the 9
// nested prefixes of
//   /site/regions/europe/item/description/parlist/listitem/text/keyword
// run with the containment test on both engines; reported series are the
// number of polynomial evaluations (simple vs advanced) and the output size.
//
// Paper shape: both engines scale the same way with query length, differing
// by at most a constant factor (the advanced look-ahead overhead); this is
// the worst case for AdvancedQuery because the DTD makes every look-ahead
// check succeed.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace ssdb::bench {
namespace {

const char* kQueries[] = {
    "/site",
    "/site/regions",
    "/site/regions/europe",
    "/site/regions/europe/item",
    "/site/regions/europe/item/description",
    "/site/regions/europe/item/description/parlist",
    "/site/regions/europe/item/description/parlist/listitem",
    "/site/regions/europe/item/description/parlist/listitem/text",
    "/site/regions/europe/item/description/parlist/listitem/text/keyword",
};

void Run() {
  double scale = BenchScale();
  auto db = BuildXmarkDb(static_cast<uint64_t>(scale * (1 << 20)));

  PrintHeader("Table 1 / Figure 5: queries of increasing length "
              "(containment test)");
  std::printf("%-3s %-70s %-12s %-12s %-10s %-10s %-10s %-10s\n", "#",
              "query", "evals(simp)", "evals(adv)", "adv/simp", "rt(simp)",
              "rt(adv)", "output");

  struct JsonRow {
    uint64_t evals_simple = 0;
    uint64_t evals_advanced = 0;
    uint64_t round_trips_advanced = 0;
    double ms_advanced = 0;
    size_t results = 0;
  };
  std::vector<JsonRow> json_rows;

  for (size_t i = 0; i < std::size(kQueries); ++i) {
    RunResult simple = RunQuery(db.get(), kQueries[i],
                                core::EngineKind::kSimple,
                                query::MatchMode::kContainment);
    RunResult advanced = RunQuery(db.get(), kQueries[i],
                                  core::EngineKind::kAdvanced,
                                  query::MatchMode::kContainment);
    json_rows.push_back(JsonRow{
        simple.result.stats.eval.evaluations,
        advanced.result.stats.eval.evaluations,
        advanced.result.stats.eval.round_trips,
        advanced.seconds * 1e3,
        simple.result.nodes.size()});
    double ratio =
        simple.result.stats.eval.evaluations == 0
            ? 0.0
            : static_cast<double>(advanced.result.stats.eval.evaluations) /
                  static_cast<double>(simple.result.stats.eval.evaluations);
    std::printf("%-3zu %-70s %-12llu %-12llu %-10.2f %-10llu %-10llu "
                "%-10llu\n",
                i + 1, kQueries[i],
                static_cast<unsigned long long>(
                    simple.result.stats.eval.evaluations),
                static_cast<unsigned long long>(
                    advanced.result.stats.eval.evaluations),
                ratio,
                static_cast<unsigned long long>(
                    simple.result.stats.eval.round_trips),
                static_cast<unsigned long long>(
                    advanced.result.stats.eval.round_trips),
                static_cast<unsigned long long>(simple.result.nodes.size()));
  }
  std::printf(
      "\nPaper shape: the two series track each other with a bounded\n"
      "constant factor (fig. 5 log-scale lines stay parallel). The rt\n"
      "columns are server round trips under the batched pipeline: they\n"
      "grow with the number of query steps, not with evaluations.\n\n");

  // Machine-readable line for the CI bench-regression guard
  // (tools/check_bench.py); evals and round trips are deterministic at a
  // fixed scale, ms is advisory.
  std::printf("BENCH_JSON {\"bench\":\"query_length\",\"scale\":%.3f,"
              "\"rows\":[",
              scale);
  for (size_t i = 0; i < json_rows.size(); ++i) {
    const JsonRow& r = json_rows[i];
    std::printf(
        "%s{\"steps\":%zu,\"evals_simple\":%llu,\"evals_advanced\":%llu,"
        "\"round_trips\":%llu,\"ms\":%.3f,\"results\":%zu}",
        i == 0 ? "" : ",", i + 1,
        static_cast<unsigned long long>(r.evals_simple),
        static_cast<unsigned long long>(r.evals_advanced),
        static_cast<unsigned long long>(r.round_trips_advanced),
        r.ms_advanced, r.results);
  }
  std::printf("]}\n");
}

}  // namespace
}  // namespace ssdb::bench

int main() {
  ssdb::bench::Run();
  return 0;
}
