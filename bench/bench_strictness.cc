// Experiment E3 — reproduces **Table 2 + Figure 6** (strictness): the five
// queries of Table 2, each run four ways: {simple, advanced} engine x
// {non-strict containment, strict equality} test. The paper plots execution
// time; we report wall time plus the evaluation counters behind it.
//
// Paper shape: the advanced engine outperforms the simple engine on every
// query; strict checking sometimes pays off (it shrinks candidate sets) and
// sometimes adds overhead.

#include <cstdio>

#include "bench/bench_util.h"

namespace ssdb::bench {
namespace {

const char* kQueries[] = {
    "/site//europe/item",
    "/site//europe//item",
    "/site/*/person//city",
    "/*/*/open_auction/bidder/date",
    "//bidder/date",
};

void Run() {
  double scale = BenchScale();
  auto db = BuildXmarkDb(static_cast<uint64_t>(scale * (1 << 20)));

  PrintHeader("Table 2 / Figure 6: strictness (execution time, ms)");
  std::printf("%-3s %-34s %-14s %-14s %-14s %-14s\n", "#", "query",
              "nonstr/simp", "strict/simp", "nonstr/adv", "strict/adv");

  for (size_t i = 0; i < std::size(kQueries); ++i) {
    double times[4];
    uint64_t evals[4];
    uint64_t sizes[4];
    int idx = 0;
    for (core::EngineKind engine :
         {core::EngineKind::kSimple, core::EngineKind::kAdvanced}) {
      for (query::MatchMode mode :
           {query::MatchMode::kContainment, query::MatchMode::kEquality}) {
        RunResult run = RunQuery(db.get(), kQueries[i], engine, mode);
        times[idx] = run.seconds * 1e3;
        evals[idx] = run.result.stats.eval.evaluations;
        sizes[idx] = run.result.nodes.size();
        ++idx;
      }
    }
    std::printf("%-3zu %-34s %-14.1f %-14.1f %-14.1f %-14.1f\n", i + 1,
                kQueries[i], times[0], times[1], times[2], times[3]);
    std::printf("    %-34s %-14llu %-14llu %-14llu %-14llu  (evaluations)\n",
                "", static_cast<unsigned long long>(evals[0]),
                static_cast<unsigned long long>(evals[1]),
                static_cast<unsigned long long>(evals[2]),
                static_cast<unsigned long long>(evals[3]));
    std::printf("    %-34s %-14llu %-14llu %-14llu %-14llu  (result size)\n",
                "", static_cast<unsigned long long>(sizes[0]),
                static_cast<unsigned long long>(sizes[1]),
                static_cast<unsigned long long>(sizes[2]),
                static_cast<unsigned long long>(sizes[3]));
  }
  std::printf(
      "\nPaper shape: advanced beats simple on all five queries; strict\n"
      "checking is sometimes a small overhead, sometimes a large win\n"
      "(most visible on the simple engine, §7).\n");
}

}  // namespace
}  // namespace ssdb::bench

int main() {
  ssdb::bench::Run();
  return 0;
}
