// Shard-router scaling (DESIGN.md §10): corpus-wide aggregates over a
// multi-document corpus as the shard count grows. Each shard group owns one
// XMark document (its own seed, its own 2-way share split); the router fans
// the query out to every group concurrently and merges the additive
// partials, so corpus latency should track the straggler group — not the
// sum — and qps should degrade gently, not linearly, with shard count.
//
// For G in {1, 2, 4} the harness reports corpus count() throughput, the
// straggler round-trip count (which must stay flat across G: fan-out is
// concurrent), and a cross-shard GROUP-BY row whose merged totals are
// checked against every document's own answer.
//
//   bench_shard            # full size
//   SSDB_BENCH_SCALE=0.05 bench_shard   # CI smoke size

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "shard/catalog.h"
#include "shard/router.h"

namespace ssdb::bench {
namespace {

struct ShardMeasurement {
  std::string query;
  uint32_t shards = 0;
  double qps = 0;
  uint64_t round_trips = 0;
  uint64_t results = 0;  // merged total (count) or group count (group-by)
};

void PrintRow(const ShardMeasurement& m) {
  std::printf("%-24s G=%-3u %9.1f qps %6llu trips %8llu out\n",
              m.query.c_str(), m.shards, m.qps,
              static_cast<unsigned long long>(m.round_trips),
              static_cast<unsigned long long>(m.results));
}

}  // namespace

int Main() {
  double scale = BenchScale();
  // Per-document size: the corpus grows with the shard count, each shard
  // carrying a same-order document, as a real horizontal split would.
  uint64_t doc_bytes = static_cast<uint64_t>(scale * (512 << 10));
  const int kReps = 5;

  std::vector<ShardMeasurement> rows;
  for (uint32_t shards : {1u, 2u, 4u}) {
    // One document per group, each with its own seed and a 2-way split.
    std::vector<std::unique_ptr<BenchDb>> docs;
    shard::ShardCatalog catalog;
    std::map<std::string, std::vector<filter::ServerFilter*>> backends;
    std::map<std::string, prg::Seed> seeds;
    for (uint32_t g = 0; g < shards; ++g) {
      docs.push_back(BuildXmarkDb(doc_bytes, /*seed=*/100 + g,
                                  /*servers=*/2));
      std::string id = "doc" + std::to_string(g);
      shard::ShardEntry entry;
      entry.doc_id = id;
      entry.group = g;
      entry.slices = {"mem://" + id + "/0", "mem://" + id + "/1"};
      SSDB_CHECK(catalog.Add(std::move(entry)).ok());
      backends[id] = {docs[g]->db->slice_filter(0),
                      docs[g]->db->slice_filter(1)};
      seeds.emplace(id, prg::Seed::FromUint64(100 + g));
    }
    core::CorpusOptions options;
    auto router = shard::Router::FromBackends(
        catalog, &docs[0]->map, prg::Seed::FromUint64(100), seeds, options,
        backends);
    SSDB_CHECK(router.ok()) << router.status().ToString();
    if (shards == 1) {
      std::printf("bench_shard: %llu nodes/doc, scale %.3f\n",
                  static_cast<unsigned long long>(
                      docs[0]->db->encode_result().node_count),
                  scale);
    }

    // Ground truth: each document answers for itself, the corpus total is
    // the sum.
    auto truth = [&](const std::string& text) {
      uint64_t total = 0;
      for (auto& doc : docs) {
        auto result = doc->db->Query(text, core::EngineKind::kAdvanced,
                                     query::MatchMode::kEquality);
        SSDB_CHECK(result.ok());
        total += result->aggregate.Total();
      }
      return total;
    };

    // Corpus count(): the qps-vs-shard-count headline.
    {
      query::Query counted = *query::ParseQuery("count(/site//person)");
      ShardMeasurement m;
      m.query = "count(/site//person)";
      m.shards = shards;
      uint64_t expected = truth(m.query);
      Stopwatch watch;
      shard::CorpusResult last;
      for (int rep = 0; rep < kReps; ++rep) {
        auto corpus =
            (*router)->QueryCorpus(counted, query::MatchMode::kEquality);
        SSDB_CHECK(corpus.ok()) << corpus.status().ToString();
        SSDB_CHECK(corpus->aggregate.Total() == expected)
            << "corpus count diverged from per-document ground truth";
        last = std::move(*corpus);
      }
      m.qps = kReps / watch.ElapsedSeconds();
      m.round_trips = last.stats.eval.round_trips;
      m.results = last.aggregate.Total();
      rows.push_back(m);
      PrintRow(m);
    }

    // Cross-shard GROUP-BY: every group's per-tag counts merge by name.
    {
      query::Query grouped = *query::ParseQuery("count(//*)");
      ShardMeasurement m;
      m.query = "count(//*)";
      m.shards = shards;
      uint64_t expected = truth(m.query);
      Stopwatch watch;
      shard::CorpusResult last;
      for (int rep = 0; rep < kReps; ++rep) {
        auto corpus =
            (*router)->QueryCorpus(grouped, query::MatchMode::kEquality);
        SSDB_CHECK(corpus.ok()) << corpus.status().ToString();
        SSDB_CHECK(corpus->aggregate.Total() == expected)
            << "corpus group-by diverged from per-document ground truth";
        last = std::move(*corpus);
      }
      m.qps = kReps / watch.ElapsedSeconds();
      m.round_trips = last.stats.eval.round_trips;
      m.results = last.aggregate.values.size();
      rows.push_back(m);
      PrintRow(m);
    }
  }

  // Concurrent fan-out means corpus round trips track the straggler group:
  // the count() trip count must be identical across shard counts (every
  // group answers the same-shape query on a same-order document).
  SSDB_CHECK(rows[0].round_trips == rows[rows.size() - 2].round_trips)
      << "corpus round trips grew with shard count — fan-out serialized?";

  std::printf("BENCH_JSON {\"bench\":\"shard\",\"scale\":%.3f,\"rows\":[",
              scale);
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardMeasurement& m = rows[i];
    std::printf("%s{\"query\":\"%s\",\"shards\":%u,\"docs\":%u,"
                "\"qps\":%.2f,\"round_trips\":%llu,\"results\":%llu}",
                i == 0 ? "" : ",", m.query.c_str(), m.shards, m.shards,
                m.qps, static_cast<unsigned long long>(m.round_trips),
                static_cast<unsigned long long>(m.results));
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace ssdb::bench

int main() { return ssdb::bench::Main(); }
