// Experiment E5 — quantifies the §4 trie claims:
//   * "On average removing duplicate words from a text reduces the size by
//     50%."
//   * "Reducing a text into a compressed trie reduces the size by 75-80%."
//   * "In case p = 29 a polynomial costs 17 bytes. Due to the trie
//     compression the 'encryption' of a single letter will cost
//     approximately 3.5 - 4.5 bytes."
//
// The corpus is pseudo-natural text: a syllable-composed vocabulary (so
// words share prefixes, like real language) sampled with Zipf frequencies
// (so words repeat, like real text). Vocabulary size scales with corpus
// size, keeping the distinct/total ratio in the natural-language regime the
// paper measured.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "trie/trie.h"
#include "util/random.h"

namespace ssdb::bench {
namespace {

const char* kSyllables[] = {
    "an",  "ber", "con", "de",  "er",  "for", "ing", "le",  "men", "non",
    "or",  "pre", "re",  "sta", "ter", "tion", "ver", "al", "ist", "ic",
    "ous", "la",  "mi",  "do",  "ro",  "sen", "ta",  "lu",  "ne",  "ca",
    "po",  "si",  "ma",  "tu",  "ve",  "ri",  "ko",  "ba",  "fe",  "gu",
};
constexpr size_t kSyllableCount = sizeof(kSyllables) / sizeof(kSyllables[0]);

std::vector<std::string> MakeVocabulary(Random* rng, size_t size) {
  std::set<std::string> words;
  while (words.size() < size) {
    std::string word;
    int syllables = 2 + static_cast<int>(rng->Uniform(3));
    for (int i = 0; i < syllables; ++i) {
      word += kSyllables[rng->Uniform(kSyllableCount)];
    }
    words.insert(std::move(word));
  }
  return {words.begin(), words.end()};
}

std::string MakeCorpus(Random* rng, size_t target_bytes) {
  // Vocabulary sized so that the average word repeats a few times — the
  // regime where dedup saves about half the text (§4).
  size_t approx_words = target_bytes / 8;
  std::vector<std::string> vocabulary =
      MakeVocabulary(rng, std::max<size_t>(approx_words * 2, 50));
  std::string corpus;
  while (corpus.size() < target_bytes) {
    corpus += vocabulary[rng->Zipf(vocabulary.size())];
    corpus.push_back(' ');
  }
  return corpus;
}

void Run() {
  PrintHeader("Section 4: trie storage analysis (p=29)");

  auto field = *gf::Field::Make(29);
  gf::Ring ring(field);
  double poly_bytes = static_cast<double>(ring.serialized_bytes());
  std::printf("polynomial size at p=29: %.0f bytes (paper: 17)\n\n",
              poly_bytes);

  std::printf("%-12s %-10s %-10s %-10s %-12s %-12s %-14s\n", "text(KB)",
              "words", "distinct", "dedup(%)", "trie-nodes",
              "trie-red(%)", "bytes/letter");

  Random rng(7);
  for (int kb : {16, 64, 256}) {
    std::string corpus = MakeCorpus(&rng, static_cast<size_t>(kb) * 1024);
    trie::TrieStats stats = trie::AnalyzeText(corpus, /*compressed=*/true);

    // Claim 1: size after removing duplicate words vs original.
    size_t distinct_chars = 0;
    {
      std::set<std::string> seen;
      for (const auto& w : trie::SplitIntoWords(corpus)) {
        if (seen.insert(w).second) distinct_chars += w.size();
      }
    }
    double dedup_reduction =
        100.0 * (1.0 - static_cast<double>(distinct_chars) /
                           static_cast<double>(stats.total_chars));
    // Claim 2: compressed-trie nodes vs original characters.
    double trie_reduction =
        100.0 * (1.0 - static_cast<double>(stats.node_count) /
                           static_cast<double>(stats.total_chars));
    // Claim 3: storage cost per original letter.
    double bytes_per_letter = static_cast<double>(stats.node_count) *
                              poly_bytes /
                              static_cast<double>(stats.total_chars);

    std::printf("%-12d %-10zu %-10zu %-10.1f %-12zu %-12.1f %-14.2f\n", kb,
                stats.word_count, stats.distinct_word_count,
                dedup_reduction, stats.node_count, trie_reduction,
                bytes_per_letter);
  }

  std::printf(
      "\nPaper claims: dedup ~50%%; compressed-trie reduction 75-80%%;\n"
      "per-letter cost ~3.5-4.5 bytes at p=29 (17-byte polynomials).\n");
}

}  // namespace
}  // namespace ssdb::bench

int main() {
  ssdb::bench::Run();
  return 0;
}
