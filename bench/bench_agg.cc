// Secure aggregation vs. fetch-and-count (DESIGN.md §8): the same
// COUNT/GROUP-BY questions answered (a) the pre-§8 way — materialize the
// matching node set at the client and count it — and (b) through the
// aggregation subsystem, where every server folds its aggregate-column
// slice over the frontier and returns one masked word per group.
//
// For each query and m in {1, 2, 4} share-slice servers (in-process
// channels, so byte counters measure exactly the client's traffic) the
// harness reports throughput, client bytes per query (sent + received
// across all slices), round trips, and the fetch/aggregate byte ratio —
// the headline is that the aggregate path moves O(groups) response bytes
// where fetch-and-count moves O(candidates), so the ratio grows with the
// document.
//
// A verified-vs-unverified section ("agg-v" rows, DESIGN.md §9) re-runs
// every aggregate with proof checking on and reports the client-byte
// overhead as verify_overhead_ratio; across the count() workloads the
// harness enforces the <= 2x acceptance bound.
//
//   bench_agg            # full size (~10k+ candidates on the // query)
//   SSDB_BENCH_SCALE=0.05 bench_agg   # CI smoke size

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "agg/aggregation.h"
#include "bench/bench_util.h"
#include "rpc/client.h"
#include "rpc/multi_session.h"
#include "rpc/server.h"

namespace ssdb::bench {
namespace {

struct AggMeasurement {
  std::string path;
  std::string mode;  // "fetch", "agg" or "agg-v" (§9 verified)
  uint32_t servers = 1;
  double qps = 0;
  uint64_t bytes = 0;      // client bytes per query, all channels
  uint64_t round_trips = 0;
  uint64_t candidates = 0;  // candidate set the fetch path materializes
  uint64_t results = 0;     // nodes (fetch) or groups (agg)
  double ratio = 0;         // fetch bytes / agg bytes (agg rows only)
  double verify_ratio = 0;  // verified bytes / unverified bytes (agg-v rows)
};

// One served deployment: m slice servers behind in-process channels, a
// remote client stack in front, with every channel's byte counters at hand.
struct Deployment {
  std::vector<std::unique_ptr<rpc::ServerThread>> servers;
  std::vector<rpc::Channel*> channels;  // client ends (owned by remotes)
  std::vector<std::unique_ptr<rpc::RemoteServerFilter>> remotes;
  std::unique_ptr<filter::MultiServerFilter> fanout;
  std::unique_ptr<filter::ClientFilter> client;
  std::unique_ptr<query::AdvancedEngine> engine;
  std::unique_ptr<agg::AggregationEngine> aggregation;

  uint64_t BytesOnWire() const {
    uint64_t total = 0;
    for (const rpc::Channel* channel : channels) {
      total += channel->bytes_sent() + channel->bytes_received();
    }
    return total;
  }
};

std::unique_ptr<Deployment> Deploy(BenchDb* db, uint32_t servers) {
  auto deployment = std::make_unique<Deployment>();
  std::vector<filter::ServerFilter*> backends;
  for (uint32_t i = 0; i < servers; ++i) {
    rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
    deployment->channels.push_back(pair.client.get());
    deployment->servers.push_back(std::make_unique<rpc::ServerThread>(
        db->db->ring(), db->db->slice_filter(i), std::move(pair.server)));
    deployment->remotes.push_back(std::make_unique<rpc::RemoteServerFilter>(
        db->db->ring(), std::move(pair.client)));
    backends.push_back(deployment->remotes.back().get());
  }
  deployment->fanout = std::make_unique<filter::MultiServerFilter>(
      db->db->ring(), std::move(backends));
  deployment->client = std::make_unique<filter::ClientFilter>(
      db->db->ring(), prg::Prg(prg::Seed::FromUint64(42)),
      deployment->fanout.get());
  deployment->engine = std::make_unique<query::AdvancedEngine>(
      deployment->client.get(), &db->map);
  deployment->aggregation = std::make_unique<agg::AggregationEngine>(
      deployment->client.get(), &db->map);
  return deployment;
}

void PrintRow(const AggMeasurement& m) {
  std::printf("%-28s %-6s m=%-3u %9.1f qps %12llu B/query %6llu trips "
              "%8llu cand %7llu out",
              m.path.c_str(), m.mode.c_str(), m.servers, m.qps,
              static_cast<unsigned long long>(m.bytes),
              static_cast<unsigned long long>(m.round_trips),
              static_cast<unsigned long long>(m.candidates),
              static_cast<unsigned long long>(m.results));
  if (m.ratio > 0) std::printf("   %.0fx fewer bytes", m.ratio);
  if (m.verify_ratio > 0) {
    std::printf("   %.2fx verified overhead", m.verify_ratio);
  }
  std::printf("\n");
}

}  // namespace

int Main() {
  double scale = BenchScale();
  // Sized so the // query examines >= 10k candidates at scale 1 even under
  // the advanced engine's dead-branch pruning.
  uint64_t target_bytes = static_cast<uint64_t>(scale * (3840 << 10));

  // One descendant-axis query whose candidate set is the whole document
  // (the 10k-candidate case at scale 1) and one child-axis query with a
  // frontier of hundreds of person nodes; count(//*) exercises group-by.
  const char* kPaths[] = {"//item", "/site/people/person/name"};
  const int kReps = 5;

  std::vector<AggMeasurement> rows;
  for (uint32_t servers : {1u, 2u, 4u}) {
    // Each m needs its own encode: slice i of an m-way split lives in
    // store i (DESIGN.md §5).
    auto db = BuildXmarkDb(target_bytes, 42, servers,
                           /*verify_aggregate=*/true);
    uint64_t count_plain_bytes = 0;     // unverified agg bytes, count() rows
    uint64_t count_verified_bytes = 0;  // verified agg bytes, count() rows
    if (servers == 1) {
      std::printf("bench_agg: %llu nodes, scale %.3f\n",
                  static_cast<unsigned long long>(
                      db->db->encode_result().node_count),
                  scale);
    }
    auto deployment = Deploy(db.get(), servers);
    for (const char* path : kPaths) {
      auto parsed = *query::ParseQuery(path);
      query::Query counted = *query::ParseQuery(std::string("count(") +
                                                std::string(path) + ")");

      // Fetch-and-count baseline: materialize, then count client-side.
      AggMeasurement fetch;
      fetch.path = path;
      fetch.mode = "fetch";
      fetch.servers = servers;
      uint64_t bytes_before = deployment->BytesOnWire();
      Stopwatch fetch_watch;
      query::QueryStats fetch_stats;
      size_t fetch_count = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        fetch_stats = query::QueryStats();
        auto result = deployment->engine->Execute(
            parsed, query::MatchMode::kContainment, &fetch_stats);
        SSDB_CHECK(result.ok()) << result.status().ToString();
        fetch_count = result->size();
      }
      fetch.qps = kReps / fetch_watch.ElapsedSeconds();
      fetch.bytes = (deployment->BytesOnWire() - bytes_before) / kReps;
      fetch.round_trips = fetch_stats.eval.round_trips;
      fetch.candidates = fetch_stats.candidates_examined;
      fetch.results = fetch_count;
      rows.push_back(fetch);
      PrintRow(fetch);

      // Aggregate path: servers fold, one word per group comes home.
      AggMeasurement agg_row;
      agg_row.path = std::string("count(") + path + ")";
      agg_row.mode = "agg";
      agg_row.servers = servers;
      bytes_before = deployment->BytesOnWire();
      Stopwatch agg_watch;
      query::QueryStats agg_stats;
      uint64_t agg_total = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        agg_stats = query::QueryStats();
        auto result = deployment->aggregation->Execute(
            deployment->engine.get(), counted,
            query::MatchMode::kContainment, &agg_stats);
        SSDB_CHECK(result.ok()) << result.status().ToString();
        agg_total = result->Total();
      }
      agg_row.qps = kReps / agg_watch.ElapsedSeconds();
      agg_row.bytes = (deployment->BytesOnWire() - bytes_before) / kReps;
      agg_row.round_trips = agg_stats.eval.round_trips;
      agg_row.candidates = fetch.candidates;
      agg_row.results = agg_stats.result_size;
      agg_row.ratio = agg_row.bytes > 0
                          ? static_cast<double>(fetch.bytes) / agg_row.bytes
                          : 0;
      SSDB_CHECK(agg_total == fetch_count)
          << "aggregate diverged from fetch-and-count on " << path;
      rows.push_back(agg_row);
      PrintRow(agg_row);

      // Verified aggregation (DESIGN.md §9): same plan, but the partials
      // come home per slice with wide/proof words and get checked before
      // unmasking. The overhead is O(1) extra words per group, so over a
      // real frontier the per-query byte cost stays within 2x.
      AggMeasurement ver;
      ver.path = agg_row.path;
      ver.mode = "agg-v";
      ver.servers = servers;
      bytes_before = deployment->BytesOnWire();
      Stopwatch ver_watch;
      query::QueryStats ver_stats;
      deployment->aggregation->set_verify(true);
      for (int rep = 0; rep < kReps; ++rep) {
        ver_stats = query::QueryStats();
        auto result = deployment->aggregation->Execute(
            deployment->engine.get(), counted,
            query::MatchMode::kContainment, &ver_stats);
        SSDB_CHECK(result.ok()) << result.status().ToString();
        SSDB_CHECK(result->verified);
        SSDB_CHECK(result->Total() == agg_total)
            << "verified aggregate diverged on " << path;
      }
      deployment->aggregation->set_verify(false);
      ver.qps = kReps / ver_watch.ElapsedSeconds();
      ver.bytes = (deployment->BytesOnWire() - bytes_before) / kReps;
      ver.round_trips = ver_stats.eval.round_trips;
      ver.candidates = fetch.candidates;
      ver.results = ver_stats.result_size;
      ver.verify_ratio = agg_row.bytes > 0
                             ? static_cast<double>(ver.bytes) / agg_row.bytes
                             : 0;
      count_plain_bytes += agg_row.bytes;
      count_verified_bytes += ver.bytes;
      rows.push_back(ver);
      PrintRow(ver);
    }
    // The acceptance bound (DESIGN.md §9): across the count() workloads,
    // verified aggregation must cost at most 2x the unverified client
    // bytes. (The group-by row below is reply-dominated — one tiny request,
    // O(tags) reply words — so its ratio is reported and guarded by
    // check_bench.py rather than bounded here.)
    SSDB_CHECK(count_plain_bytes > 0 &&
               count_verified_bytes <= 2 * count_plain_bytes)
        << "verified aggregation exceeded 2x unverified bytes: "
        << count_verified_bytes << " vs " << count_plain_bytes
        << " at m=" << servers;

    // Group-by over every mapped tag: still one exchange, O(tags) words.
    AggMeasurement grouped;
    grouped.path = "count(//*)";
    grouped.mode = "agg";
    grouped.servers = servers;
    query::Query group_query = *query::ParseQuery("count(//*)");
    uint64_t bytes_before = deployment->BytesOnWire();
    Stopwatch group_watch;
    query::QueryStats group_stats;
    for (int rep = 0; rep < kReps; ++rep) {
      group_stats = query::QueryStats();
      auto result = deployment->aggregation->Execute(
          deployment->engine.get(), group_query,
          query::MatchMode::kEquality, &group_stats);
      SSDB_CHECK(result.ok());
      SSDB_CHECK(result->Total() == db->db->encode_result().node_count);
    }
    grouped.qps = kReps / group_watch.ElapsedSeconds();
    grouped.bytes = (deployment->BytesOnWire() - bytes_before) / kReps;
    grouped.round_trips = group_stats.eval.round_trips;
    grouped.results = group_stats.result_size;
    rows.push_back(grouped);
    PrintRow(grouped);

    // Verified group-by: the worst case for the §9 track — the reply is
    // all words, so the wide/proof columns show up at full weight.
    AggMeasurement grouped_ver;
    grouped_ver.path = grouped.path;
    grouped_ver.mode = "agg-v";
    grouped_ver.servers = servers;
    bytes_before = deployment->BytesOnWire();
    Stopwatch grouped_ver_watch;
    query::QueryStats grouped_ver_stats;
    deployment->aggregation->set_verify(true);
    for (int rep = 0; rep < kReps; ++rep) {
      grouped_ver_stats = query::QueryStats();
      auto result = deployment->aggregation->Execute(
          deployment->engine.get(), group_query, query::MatchMode::kEquality,
          &grouped_ver_stats);
      SSDB_CHECK(result.ok()) << result.status().ToString();
      SSDB_CHECK(result->verified);
      SSDB_CHECK(result->Total() == db->db->encode_result().node_count);
    }
    deployment->aggregation->set_verify(false);
    grouped_ver.qps = kReps / grouped_ver_watch.ElapsedSeconds();
    grouped_ver.bytes = (deployment->BytesOnWire() - bytes_before) / kReps;
    grouped_ver.round_trips = grouped_ver_stats.eval.round_trips;
    grouped_ver.results = grouped_ver_stats.result_size;
    grouped_ver.verify_ratio =
        grouped.bytes > 0
            ? static_cast<double>(grouped_ver.bytes) / grouped.bytes
            : 0;
    rows.push_back(grouped_ver);
    PrintRow(grouped_ver);

    for (auto& remote : deployment->remotes) {
      SSDB_CHECK(remote->Shutdown().ok());
    }
  }

  std::printf(
      "BENCH_JSON {\"bench\":\"agg\",\"scale\":%.3f,\"rows\":[", scale);
  for (size_t i = 0; i < rows.size(); ++i) {
    const AggMeasurement& m = rows[i];
    std::printf(
        "%s{\"path\":\"%s\",\"mode\":\"%s\",\"servers\":%u,\"qps\":%.2f,"
        "\"bytes\":%llu,\"round_trips\":%llu,\"candidates\":%llu,"
        "\"results\":%llu,\"byte_ratio\":%.1f",
        i == 0 ? "" : ",", m.path.c_str(), m.mode.c_str(), m.servers, m.qps,
        static_cast<unsigned long long>(m.bytes),
        static_cast<unsigned long long>(m.round_trips),
        static_cast<unsigned long long>(m.candidates),
        static_cast<unsigned long long>(m.results), m.ratio);
    if (m.verify_ratio > 0) {
      std::printf(",\"verify_overhead_ratio\":%.2f", m.verify_ratio);
    }
    std::printf("}");
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace ssdb::bench

int main() { return ssdb::bench::Main(); }
