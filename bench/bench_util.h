// Shared machinery for the experiment harnesses: build an encrypted XMark
// database at a given scale, run queries under each engine/mode, print
// paper-style tables.

#ifndef SSDB_BENCH_BENCH_UTIL_H_
#define SSDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "core/database.h"
#include "query/ground_truth.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "xmark/generator.h"

namespace ssdb::bench {

struct BenchDb {
  std::string xml;
  xml::Document doc;  // annotated plaintext, for ground truth
  mapping::TagMap map;
  std::unique_ptr<core::EncryptedXmlDatabase> db;

  explicit BenchDb(mapping::TagMap m) : map(std::move(m)) {}
};

// Builds a memory-backend encrypted database over a fresh XMark document of
// roughly `target_bytes` of XML; `servers` > 1 splits the share across that
// many slice stores (DESIGN.md §5); `verify_aggregate` adds the §9
// verification track so verified aggregation can be benchmarked.
inline std::unique_ptr<BenchDb> BuildXmarkDb(uint64_t target_bytes,
                                             uint64_t seed = 42,
                                             uint32_t servers = 1,
                                             bool verify_aggregate = false) {
  auto field = *gf::Field::Make(83);
  auto map = core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                      field, false);
  SSDB_CHECK(map.ok());
  auto bench_db = std::make_unique<BenchDb>(std::move(*map));

  xmark::GeneratorOptions gen;
  gen.target_bytes = target_bytes;
  gen.seed = seed;
  bench_db->xml = xmark::GenerateAuctionDocument(gen).xml;

  auto doc = xml::ParseDocument(bench_db->xml);
  SSDB_CHECK(doc.ok());
  bench_db->doc = std::move(*doc);
  xml::AnnotatePrePost(&bench_db->doc);

  core::DatabaseOptions options;
  options.servers = servers;
  options.encode.verify_aggregate = verify_aggregate;
  auto db = core::EncryptedXmlDatabase::Encode(
      bench_db->xml, bench_db->map, prg::Seed::FromUint64(seed), options);
  SSDB_CHECK(db.ok()) << db.status().ToString();
  bench_db->db = std::move(*db);
  return bench_db;
}

struct RunResult {
  core::QueryResult result;
  double seconds = 0;
};

inline RunResult RunQuery(BenchDb* db, const std::string& text,
                          core::EngineKind engine, query::MatchMode mode) {
  auto parsed = query::ParseQuery(text);
  SSDB_CHECK(parsed.ok()) << text;
  Stopwatch watch;
  auto result = db->db->QueryParsed(*parsed, engine, mode);
  SSDB_CHECK(result.ok()) << text << ": " << result.status().ToString();
  RunResult run;
  run.result = std::move(*result);
  run.seconds = watch.ElapsedSeconds();
  return run;
}

inline size_t GroundTruthSize(BenchDb* db, const std::string& text) {
  auto parsed = query::ParseQuery(text);
  SSDB_CHECK(parsed.ok());
  auto truth = query::EvaluateGroundTruth(*parsed, db->doc);
  SSDB_CHECK(truth.ok());
  return truth->size();
}

// Reads an env-var override for bench scale, e.g. SSDB_BENCH_SCALE=0.1 to
// shrink all workloads 10x for smoke runs.
inline double BenchScale() {
  const char* env = std::getenv("SSDB_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace ssdb::bench

#endif  // SSDB_BENCH_BENCH_UTIL_H_
