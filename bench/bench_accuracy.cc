// Experiment E4 — reproduces **Figure 7** (accuracy of the containment
// test): for each Table 2 query, accuracy = |E| / |C| where E is the result
// of the equality (strict) test and C the result of the containment
// (non-strict) test.
//
// Paper shape: 100% for absolute queries without //; accuracy drops with
// every // in the query. Strict results are also cross-checked against the
// plaintext ground truth here.

#include <cstdio>

#include "bench/bench_util.h"

namespace ssdb::bench {
namespace {

const char* kQueries[] = {
    "/site//europe/item",
    "/site//europe//item",
    "/site/*/person//city",
    "/*/*/open_auction/bidder/date",
    "//bidder/date",
};

void Run() {
  double scale = BenchScale();
  auto db = BuildXmarkDb(static_cast<uint64_t>(scale * (1 << 20)));

  PrintHeader("Figure 7: accuracy of the containment test (E/C)");
  std::printf("%-3s %-34s %-8s %-8s %-12s %-12s\n", "#", "query", "|E|",
              "|C|", "accuracy(%)", "truth-check");

  for (size_t i = 0; i < std::size(kQueries); ++i) {
    RunResult strict = RunQuery(db.get(), kQueries[i],
                                core::EngineKind::kSimple,
                                query::MatchMode::kEquality);
    RunResult loose = RunQuery(db.get(), kQueries[i],
                               core::EngineKind::kSimple,
                               query::MatchMode::kContainment);
    size_t truth = GroundTruthSize(db.get(), kQueries[i]);
    double accuracy =
        loose.result.nodes.empty()
            ? 100.0
            : 100.0 * static_cast<double>(strict.result.nodes.size()) /
                  static_cast<double>(loose.result.nodes.size());
    std::printf("%-3zu %-34s %-8zu %-8zu %-12.1f %-12s\n", i + 1,
                kQueries[i], strict.result.nodes.size(),
                loose.result.nodes.size(), accuracy,
                strict.result.nodes.size() == truth ? "exact" : "MISMATCH");
  }
  std::printf(
      "\nPaper shape: accuracy 100%% without '//', dropping for each '//'\n"
      "in the query (fig. 7). E must equal the plaintext ground truth.\n");
}

}  // namespace
}  // namespace ssdb::bench

int main() {
  ssdb::bench::Run();
  return 0;
}
