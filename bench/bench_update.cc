// Mutation cost (DESIGN.md §12): INSERT/UPDATE/DELETE latency as a function
// of the touched subtree, against the only alternative the paper's scheme
// had — re-encoding the whole document.
//
// For m in {1, 2} share-slice servers the harness inserts fragments of
// 1..64 nodes under /site/open_auctions (then deletes them, restoring the
// document), and re-tags one region node back and forth. Each row reports
// ops/s, latency, the bytes re-shared across all slices, and
// reencode_ratio — how many times cheaper the planned mutation is than a
// full re-encode of the same document. The headline: mutation cost follows
// the fragment (plus the root path), not the document, so the ratio grows
// with document size while reshared bytes stay flat.
//
//   bench_update            # full size
//   SSDB_BENCH_SCALE=0.05 bench_update   # CI smoke size
//
// BENCH_JSON rows ride the same identity/guard machinery as the other
// benches (tools/check_bench.py): identity is {op, subtree, servers};
// qps is the guarded metric.

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace ssdb::bench {
namespace {

struct UpdateMeasurement {
  std::string op;        // "insert", "delete", "update"
  uint64_t subtree = 0;  // nodes inserted/deleted/re-tagged
  uint32_t servers = 1;
  double qps = 0;
  double ms = 0;              // mean latency per committed mutation
  uint64_t bytes = 0;         // re-shared upsert bytes, all slices
  uint64_t children = 0;      // sibling polynomials fetched by the planner
  double reencode_ratio = 0;  // full re-encode ms / this mutation's ms
};

void PrintRow(const UpdateMeasurement& m) {
  std::printf("%-8s subtree=%-4llu m=%-2u %9.1f ops/s %8.2f ms %10llu B "
              "%5llu fetched %8.0fx cheaper than re-encode\n",
              m.op.c_str(), static_cast<unsigned long long>(m.subtree),
              m.servers, m.qps, m.ms,
              static_cast<unsigned long long>(m.bytes),
              static_cast<unsigned long long>(m.children), m.reencode_ratio);
}

// The pre of the single node a child-axis query resolves to.
uint32_t ResolvePre(BenchDb* db, const std::string& path) {
  RunResult run = RunQuery(db, path, core::EngineKind::kAdvanced,
                           query::MatchMode::kEquality);
  SSDB_CHECK(!run.result.nodes.empty()) << path;
  return run.result.nodes[0].pre;
}

}  // namespace

int Main() {
  double scale = BenchScale();
  uint64_t target_bytes = static_cast<uint64_t>(scale * (1920 << 10));
  constexpr int kReps = 3;

  std::vector<UpdateMeasurement> rows;
  for (uint32_t servers : {1u, 2u}) {
    auto db = BuildXmarkDb(target_bytes, 42, servers,
                           /*verify_aggregate=*/true);
    uint64_t nodes = db->db->encode_result().node_count;

    // The yardstick: what discarding the database and encoding the
    // document again costs (the pre-§12 way to change one node).
    Stopwatch reencode_watch;
    {
      core::DatabaseOptions options;
      options.servers = servers;
      options.encode.verify_aggregate = true;
      auto fresh = core::EncryptedXmlDatabase::Encode(
          db->xml, db->map, prg::Seed::FromUint64(43), options);
      SSDB_CHECK(fresh.ok()) << fresh.status().ToString();
    }
    double reencode_ms = reencode_watch.ElapsedSeconds() * 1e3;
    std::printf("\nm=%u: %llu nodes, full re-encode %.1f ms\n", servers,
                static_cast<unsigned long long>(nodes), reencode_ms);

    uint32_t host = ResolvePre(db.get(), "/site/open_auctions");

    // INSERT fragments of growing size (and DELETE them again, so every
    // rep mutates the same document shape).
    for (uint64_t subtree : {1u, 4u, 16u, 64u}) {
      std::string fragment = "<open_auction>";
      for (uint64_t i = 1; i < subtree; ++i) fragment += "<bidder/>";
      fragment += "</open_auction>";

      UpdateMeasurement ins{"insert", subtree, servers};
      UpdateMeasurement del{"delete", subtree, servers};
      double insert_seconds = 0;
      double delete_seconds = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch insert_watch;
        auto inserted = db->db->Insert(host, fragment);
        insert_seconds += insert_watch.ElapsedSeconds();
        SSDB_CHECK(inserted.ok()) << inserted.status().ToString();
        SSDB_CHECK(inserted->stats.subtree_nodes == subtree);
        ins.bytes = inserted->stats.reshared_bytes;
        ins.children = inserted->stats.children_fetched;

        // The fragment landed as the last child of the host.
        auto meta = db->db->client_filter()->GetNode(host);
        SSDB_CHECK(meta.ok());
        auto children = db->db->client_filter()->Children(*meta);
        SSDB_CHECK(children.ok() && !children->empty());
        Stopwatch delete_watch;
        auto deleted = db->db->Delete(children->back().pre);
        delete_seconds += delete_watch.ElapsedSeconds();
        SSDB_CHECK(deleted.ok()) << deleted.status().ToString();
        SSDB_CHECK(deleted->stats.subtree_nodes == subtree);
        del.bytes = deleted->stats.reshared_bytes;
        del.children = deleted->stats.children_fetched;
      }
      ins.ms = insert_seconds * 1e3 / kReps;
      ins.qps = kReps / insert_seconds;
      ins.reencode_ratio = ins.ms > 0 ? reencode_ms / ins.ms : 0;
      del.ms = delete_seconds * 1e3 / kReps;
      del.qps = kReps / delete_seconds;
      del.reencode_ratio = del.ms > 0 ? reencode_ms / del.ms : 0;
      rows.push_back(ins);
      PrintRow(ins);
      rows.push_back(del);
      PrintRow(del);
    }

    // UPDATE: re-tag one region node back and forth (both tags are in the
    // XMark map), so the document is unchanged after each pair.
    uint32_t region = ResolvePre(db.get(), "/site/regions/asia");
    UpdateMeasurement upd{"update", 1, servers};
    double update_seconds = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch watch;
      auto forward = db->db->Update(region, "africa", std::nullopt);
      update_seconds += watch.ElapsedSeconds();
      SSDB_CHECK(forward.ok()) << forward.status().ToString();
      upd.bytes = forward->stats.reshared_bytes;
      upd.children = forward->stats.children_fetched;
      auto back = db->db->Update(region, "asia", std::nullopt);
      SSDB_CHECK(back.ok()) << back.status().ToString();
    }
    upd.ms = update_seconds * 1e3 / kReps;
    upd.qps = kReps / update_seconds;
    upd.reencode_ratio = upd.ms > 0 ? reencode_ms / upd.ms : 0;
    rows.push_back(upd);
    PrintRow(upd);
  }

  std::printf("BENCH_JSON {\"bench\":\"update\",\"scale\":%.3f,\"rows\":[",
              scale);
  for (size_t i = 0; i < rows.size(); ++i) {
    const UpdateMeasurement& m = rows[i];
    std::printf(
        "%s{\"op\":\"%s\",\"subtree\":%llu,\"servers\":%u,\"qps\":%.2f,"
        "\"ms\":%.3f,\"bytes\":%llu,\"children\":%llu,"
        "\"reencode_ratio\":%.1f}",
        i == 0 ? "" : ",", m.op.c_str(),
        static_cast<unsigned long long>(m.subtree), m.servers, m.qps, m.ms,
        static_cast<unsigned long long>(m.bytes),
        static_cast<unsigned long long>(m.children), m.reencode_ratio);
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace ssdb::bench

int main() { return ssdb::bench::Main(); }
