// Ablation A3: communication-layer overhead — the same query executed
// against (a) the local in-process filter, (b) the RPC stack over an
// in-process channel, (c) the RPC stack over a unix-domain socket (the
// stand-in for the paper's RMI deployment), and (d) m-server share fan-out
// over m sockets for m = 1, 2, 4 (DESIGN.md §5). Reports wall time, round
// trips (straggler-counted under fan-out) and bytes moved, then one
// machine-readable JSON line for trajectory tracking.
//
// Second section: multi-client throughput against the concurrent server
// (DESIGN.md §7) — 1/4/16 concurrent clients x m in {1, 2} servers, each
// client running the query in a loop over its own connection; reports
// aggregate queries/sec and p50/p99 per-query latency, plus a second
// BENCH_JSON line. The scaling win of the worker pool is measured here,
// not asserted.
//
// Third section: high-connection dispatch cost by poller backend
// (rpc/event_poller.h) — 64/256/1024 mostly-idle connections parked on
// one server while a hot subset of 8 clients runs queries; reports qps,
// p50/p99, and the dispatcher's wake cost (interest-set entries scanned
// per wake: O(ready) for epoll, O(open connections) for the poll
// fallback), plus a third BENCH_JSON line.
//
// Fourth section: slow-reader resilience (DESIGN.md §7) — K in {0, 4, 16}
// stalled readers hold unread batched responses (tiny SO_SNDBUF forces
// the buffered write path) while 4 hot clients run queries; hot qps with
// K >= 4 should stay within noise of the K = 0 row because no worker ever
// blocks on a non-reading peer. Reports the server's write-stall /
// buffered-bytes telemetry alongside.
//
// Fifth section: sharded-dispatch contention — tiny EvalAt ops (dispatch
// cost dominates) from 8/32 hot clients with an idle herd filling the
// connection count to 64/1024, per poller backend; reports ops/sec,
// p50/p99 per op, and the deepest per-worker ready-queue.
//
// Sixth section: health-probe overhead (DESIGN.md §11) — the same hot
// query workload with the control-plane monitor off vs. probing the
// server's socket at an aggressive interval; qps with the monitor on
// should sit within noise of the monitor-off row (kPing never touches
// the filter, so probes never compete with query work).
//
//   bench_rpc [--servers m]   # restrict the fan-out/multi-client rows

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "control/monitor.h"
#include "rpc/client.h"
#include "rpc/concurrent_server.h"
#include "rpc/event_poller.h"
#include "rpc/multi_session.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"
#include "tools/tool_util.h"
#include "util/varint.h"

namespace ssdb::bench {
namespace {

struct Measurement {
  std::string transport;
  uint32_t servers = 1;
  double ms = 0;
  uint64_t round_trips = 0;
  uint64_t bytes = 0;
  size_t results = 0;
  uint64_t batched_evals = 0;
  uint64_t candidates = 0;
  double straggler_ms = 0;
  bool has_bytes = false;
};

Measurement RunWith(BenchDb* db, filter::ServerFilter* server,
                    const std::string& text) {
  filter::ClientFilter client(db->db->ring(),
                              prg::Prg(prg::Seed::FromUint64(42)), server);
  query::AdvancedEngine engine(&client, &db->map);
  auto parsed = *query::ParseQuery(text);
  Stopwatch watch;
  query::QueryStats stats;
  auto result = engine.Execute(parsed, query::MatchMode::kContainment,
                               &stats);
  Measurement m;
  m.ms = watch.ElapsedMillis();
  SSDB_CHECK(result.ok());
  m.results = result->size();
  m.batched_evals = stats.eval.batched_evaluations;
  m.candidates = stats.candidates_examined;
  m.round_trips = stats.eval.round_trips;
  m.straggler_ms = stats.eval.straggler_seconds * 1e3;
  return m;
}

void PrintRow(const Measurement& m) {
  char bytes[32];
  if (m.has_bytes) {
    std::snprintf(bytes, sizeof(bytes), "%llu",
                  static_cast<unsigned long long>(m.bytes));
  } else {
    std::snprintf(bytes, sizeof(bytes), "-");
  }
  std::printf("%-22s %-12.1f %-14llu %-14llu %-14llu %-12s %-10zu\n",
              m.transport.c_str(), m.ms,
              static_cast<unsigned long long>(m.round_trips),
              static_cast<unsigned long long>(m.batched_evals),
              static_cast<unsigned long long>(m.candidates), bytes,
              m.results);
}

void PrintJson(const std::string& query, const std::vector<Measurement>& rows) {
  // `scale` identifies the workload size so the regression guard
  // (tools/check_bench.py) never compares qps across database scales.
  std::printf(
      "BENCH_JSON {\"bench\":\"rpc\",\"query\":\"%s\",\"scale\":%.3f,"
      "\"rows\":[",
      query.c_str(), BenchScale());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    char bytes[32];
    if (m.has_bytes) {
      std::snprintf(bytes, sizeof(bytes), "%llu",
                    static_cast<unsigned long long>(m.bytes));
    } else {
      std::snprintf(bytes, sizeof(bytes), "null");  // not measured locally
    }
    std::printf(
        "%s{\"transport\":\"%s\",\"servers\":%u,\"ms\":%.3f,"
        "\"round_trips\":%llu,\"batched_evals\":%llu,\"candidates\":%llu,"
        "\"bytes\":%s,\"results\":%zu,\"straggler_ms\":%.3f}",
        i == 0 ? "" : ",", m.transport.c_str(), m.servers, m.ms,
        static_cast<unsigned long long>(m.round_trips),
        static_cast<unsigned long long>(m.batched_evals),
        static_cast<unsigned long long>(m.candidates), bytes, m.results,
        m.straggler_ms);
  }
  std::printf("]}\n");
}

// One ssdb_server stand-in per share slice: accepts a single connection on
// its own socket and serves that slice until shutdown.
struct SliceServers {
  std::vector<std::string> paths;
  std::vector<std::thread> threads;

  SliceServers(BenchDb* db, uint32_t servers) {
    for (uint32_t i = 0; i < servers; ++i) {
      paths.push_back("/tmp/ssdb_bench_rpc_" + std::to_string(::getpid()) +
                      "_s" + std::to_string(i) + ".sock");
      auto listener = *rpc::UnixServerSocket::Listen(paths.back());
      threads.emplace_back(
          [db, i, listener = std::move(listener)]() mutable {
            auto channel = listener->Accept();
            if (!channel.ok()) return;
            db->db->ServeSlice(i, channel->get());
          });
    }
  }

  void Join() {
    for (std::thread& thread : threads) thread.join();
  }
};

// --- multi-client throughput against the concurrent server -----------------

struct ClientScalingRow {
  uint32_t servers = 1;
  uint32_t clients = 1;
  uint64_t queries = 0;
  double wall_s = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

// One ConcurrentServer per share slice, all slices of one database.
struct ConcurrentSliceServers {
  std::vector<std::unique_ptr<rpc::ConcurrentServer>> servers;
  std::vector<std::string> paths;

  ConcurrentSliceServers(BenchDb* db, uint32_t m) {
    for (uint32_t i = 0; i < m; ++i) {
      paths.push_back("/tmp/ssdb_bench_mc_" + std::to_string(::getpid()) +
                      "_m" + std::to_string(m) + "_s" + std::to_string(i) +
                      ".sock");
      auto listener = *rpc::UnixServerSocket::Listen(paths.back());
      servers.push_back(std::make_unique<rpc::ConcurrentServer>(
          db->db->ring(), db->db->slice_filter(i), std::move(listener),
          rpc::ConcurrentServerOptions{}));
      SSDB_CHECK_OK(servers.back()->Start());
    }
  }

  void Shutdown() {
    for (auto& server : servers) server->Shutdown();
  }
};

ClientScalingRow RunMultiClientCell(BenchDb* db,
                                    const std::vector<std::string>& paths,
                                    uint32_t clients, uint32_t per_client,
                                    const std::string& query) {
  std::vector<std::vector<double>> latencies(clients);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([db, &paths, &latencies, &query, per_client, c] {
      auto session =
          *rpc::MultiServerSession::ConnectUnix(db->db->ring(), paths);
      filter::ClientFilter client(db->db->ring(),
                                  prg::Prg(prg::Seed::FromUint64(42)),
                                  session->filter());
      query::AdvancedEngine engine(&client, &db->map);
      auto parsed = *query::ParseQuery(query);
      latencies[c].reserve(per_client);
      for (uint32_t i = 0; i < per_client; ++i) {
        Stopwatch one;
        auto result =
            engine.Execute(parsed, query::MatchMode::kContainment, nullptr);
        SSDB_CHECK(result.ok());
        latencies[c].push_back(one.ElapsedSeconds());
      }
      SSDB_CHECK_OK(session->Shutdown());
    });
  }
  for (std::thread& thread : threads) thread.join();

  ClientScalingRow row;
  row.servers = static_cast<uint32_t>(paths.size());
  row.clients = clients;
  row.wall_s = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  row.queries = all.size();
  row.qps = row.wall_s > 0 ? static_cast<double>(all.size()) / row.wall_s : 0;
  row.p50_ms = all[all.size() / 2] * 1e3;
  row.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)] * 1e3;
  return row;
}

void PrintClientScalingJson(const std::string& query,
                            const std::vector<ClientScalingRow>& rows) {
  std::printf(
      "BENCH_JSON {\"bench\":\"rpc_multi_client\",\"query\":\"%s\","
      "\"scale\":%.3f,\"worker_threads\":%u,\"rows\":[",
      query.c_str(), BenchScale(), std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ClientScalingRow& r = rows[i];
    std::printf(
        "%s{\"servers\":%u,\"clients\":%u,\"queries\":%llu,"
        "\"wall_s\":%.4f,\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
        i == 0 ? "" : ",", r.servers, r.clients,
        static_cast<unsigned long long>(r.queries), r.wall_s, r.qps,
        r.p50_ms, r.p99_ms);
  }
  std::printf("]}\n");
}

// --- high-connection dispatch cost by poller backend ------------------------

struct PollerScalingRow {
  std::string poller;
  uint32_t idle_conns = 0;
  uint32_t hot_clients = 0;
  uint64_t queries = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t wakes = 0;
  double scanned_per_wake = 0;
};

// Raises the fd soft limit to the hard limit; returns the resulting cap.
uint64_t RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1024;
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  }
  return limit.rlim_cur;
}

void RunPollerScaling(BenchDb* db, const std::string& query,
                      std::vector<PollerScalingRow>* rows) {
  const uint64_t fd_cap = RaiseFdLimit();
  const uint32_t hot_clients = 8;
  const uint32_t per_client = 4;
  std::vector<rpc::PollerBackend> backends{rpc::PollerBackend::kPoll};
  if (rpc::EpollAvailable()) {
    backends.push_back(rpc::PollerBackend::kEpoll);
  }
  for (rpc::PollerBackend backend : backends) {
    for (uint32_t idle : {64u, 256u, 1024u}) {
      // Both endpoints of every connection live in this process, plus
      // headroom for the database, listener, and hot clients.
      if (2 * (idle + hot_clients) + 128 > fd_cap) {
        std::printf("(skipping %s/%u idle connections: fd limit %llu)\n",
                    rpc::PollerBackendName(backend), idle,
                    static_cast<unsigned long long>(fd_cap));
        continue;
      }
      std::string path = "/tmp/ssdb_bench_hc_" + std::to_string(::getpid()) +
                         ".sock";
      auto listener = *rpc::UnixServerSocket::Listen(path);
      rpc::ConcurrentServerOptions options;
      options.poller = backend;
      rpc::ConcurrentServer server(db->db->ring(), db->db->server_filter(),
                                   std::move(listener), options);
      SSDB_CHECK_OK(server.Start());

      // Park the idle herd first; each connection is registered once and
      // then never becomes readable again.
      std::vector<std::unique_ptr<rpc::Channel>> idle_conns;
      idle_conns.reserve(idle);
      while (idle_conns.size() < idle) {
        auto channel = rpc::ConnectUnix(path);
        if (!channel.ok()) {  // listen backlog full; let the accept
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;           // loop drain it and retry
        }
        idle_conns.push_back(std::move(*channel));
      }
      while (server.Snapshot().open_connections < idle) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }

      const uint64_t wakes_before = server.Snapshot().poller_wakeups;
      const uint64_t scanned_before = server.Snapshot().poller_items_scanned;
      ClientScalingRow hot = RunMultiClientCell(db, {path}, hot_clients,
                                                per_client, query);
      const uint64_t wakes = server.Snapshot().poller_wakeups - wakes_before;
      const uint64_t scanned =
          server.Snapshot().poller_items_scanned - scanned_before;

      PollerScalingRow row;
      row.poller = server.poller_name();
      row.idle_conns = idle;
      row.hot_clients = hot_clients;
      row.queries = hot.queries;
      row.qps = hot.qps;
      row.p50_ms = hot.p50_ms;
      row.p99_ms = hot.p99_ms;
      row.wakes = wakes;
      row.scanned_per_wake =
          wakes > 0 ? static_cast<double>(scanned) / wakes : 0;
      std::printf("%-8s %-12u %-10u %-12.1f %-12.3f %-12.3f %-10llu %-14.1f\n",
                  row.poller.c_str(), row.idle_conns, row.hot_clients,
                  row.qps, row.p50_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.wakes),
                  row.scanned_per_wake);
      rows->push_back(row);

      idle_conns.clear();
      server.Shutdown();
    }
  }
}

void PrintPollerScalingJson(const std::string& query,
                            const std::vector<PollerScalingRow>& rows) {
  std::printf(
      "BENCH_JSON {\"bench\":\"rpc_poller_scaling\",\"query\":\"%s\","
      "\"scale\":%.3f,\"rows\":[",
      query.c_str(), BenchScale());
  for (size_t i = 0; i < rows.size(); ++i) {
    const PollerScalingRow& r = rows[i];
    std::printf(
        "%s{\"poller\":\"%s\",\"idle_conns\":%u,\"hot_clients\":%u,"
        "\"queries\":%llu,\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"wakes\":%llu,\"scanned_per_wake\":%.1f}",
        i == 0 ? "" : ",", r.poller.c_str(), r.idle_conns, r.hot_clients,
        static_cast<unsigned long long>(r.queries), r.qps, r.p50_ms,
        r.p99_ms, static_cast<unsigned long long>(r.wakes),
        r.scanned_per_wake);
  }
  std::printf("]}\n");
}

// --- slow-reader resilience (buffered write path, DESIGN.md §7) -------------

struct SlowReaderRow {
  uint32_t stalled = 0;
  uint32_t hot_clients = 0;
  uint64_t queries = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t write_stalls = 0;
  uint64_t buffered_peak = 0;
  uint64_t frames_reused = 0;
};

void RunSlowReader(BenchDb* db, const std::string& query,
                   std::vector<SlowReaderRow>* rows) {
  const uint32_t hot_clients = 4;
  const uint32_t per_client = 8;
  // A share batch sized to overflow the deliberately tiny socket buffer:
  // every stalled reader parks a response tail on the server for the
  // whole measurement.
  std::string entry;
  PutLengthPrefixed(&entry, db->db->ring().Serialize(
                                *db->db->server_filter()->FetchShare(2)));
  rpc::Request fetch;
  fetch.op = rpc::Op::kFetchShareBatch;
  fetch.pres.assign((128 << 10) / entry.size() + 1, 2);
  const std::string fetch_bytes = rpc::EncodeRequest(fetch);

  for (uint32_t stalled_count : {0u, 4u, 16u}) {
    std::string path =
        "/tmp/ssdb_bench_sr_" + std::to_string(::getpid()) + ".sock";
    auto listener = *rpc::UnixServerSocket::Listen(path);
    rpc::ConcurrentServerOptions options;
    options.so_sndbuf = 4096;  // force short writes: buffering engages
    rpc::ConcurrentServer server(db->db->ring(), db->db->server_filter(),
                                 std::move(listener), options);
    SSDB_CHECK_OK(server.Start());

    std::vector<std::unique_ptr<rpc::Channel>> stalled;
    for (uint32_t i = 0; i < stalled_count; ++i) {
      auto channel = *rpc::ConnectUnix(path);
      SSDB_CHECK_OK(channel->Send(fetch_bytes));
      stalled.push_back(std::move(channel));
    }
    // Buffering must be engaged before the hot clients are measured.
    for (int spin = 0; server.Snapshot().write_stalls < stalled_count; ++spin) {
      SSDB_CHECK(spin < 10000);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    ClientScalingRow hot =
        RunMultiClientCell(db, {path}, hot_clients, per_client, query);

    SlowReaderRow row;
    row.stalled = stalled_count;
    row.hot_clients = hot_clients;
    row.queries = hot.queries;
    row.qps = hot.qps;
    row.p50_ms = hot.p50_ms;
    row.p99_ms = hot.p99_ms;
    row.write_stalls = server.Snapshot().write_stalls;
    row.buffered_peak = server.Snapshot().bytes_buffered_peak;
    row.frames_reused = server.Snapshot().frames_reused;
    std::printf("%-10u %-10u %-12.1f %-12.3f %-12.3f %-14llu %-14llu\n",
                row.stalled, row.hot_clients, row.qps, row.p50_ms,
                row.p99_ms, static_cast<unsigned long long>(row.write_stalls),
                static_cast<unsigned long long>(row.buffered_peak));
    rows->push_back(row);

    // Drain the parked tails so shutdown closes everything cleanly.
    for (auto& channel : stalled) {
      channel->Receive().status();  // value unused
      channel->Close();
    }
    server.Shutdown();
  }
}

void PrintSlowReaderJson(const std::string& query,
                         const std::vector<SlowReaderRow>& rows) {
  std::printf(
      "BENCH_JSON {\"bench\":\"rpc_slow_reader\",\"query\":\"%s\","
      "\"scale\":%.3f,\"rows\":[",
      query.c_str(), BenchScale());
  for (size_t i = 0; i < rows.size(); ++i) {
    const SlowReaderRow& r = rows[i];
    std::printf(
        "%s{\"stalled\":%u,\"hot_clients\":%u,\"queries\":%llu,"
        "\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"write_stalls\":%llu,\"buffered_peak\":%llu,"
        "\"frames_reused\":%llu}",
        i == 0 ? "" : ",", r.stalled, r.hot_clients,
        static_cast<unsigned long long>(r.queries), r.qps, r.p50_ms,
        r.p99_ms, static_cast<unsigned long long>(r.write_stalls),
        static_cast<unsigned long long>(r.buffered_peak),
        static_cast<unsigned long long>(r.frames_reused));
  }
  std::printf("]}\n");
}

// --- sharded-dispatch contention (tiny ops) ---------------------------------

struct DispatchRow {
  std::string poller;
  uint32_t conns = 0;  // idle herd + hot clients
  uint32_t hot_clients = 0;
  uint64_t ops = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t queue_depth_peak = 0;
};

void RunDispatchContention(BenchDb* db, std::vector<DispatchRow>* rows) {
  const uint64_t fd_cap = RaiseFdLimit();
  const uint32_t per_client = 64;  // tiny ops: dispatch cost dominates
  std::vector<rpc::PollerBackend> backends{rpc::PollerBackend::kPoll};
  if (rpc::EpollAvailable()) {
    backends.push_back(rpc::PollerBackend::kEpoll);
  }
  struct Cell {
    uint32_t conns;
    uint32_t hot;
  };
  for (rpc::PollerBackend backend : backends) {
    for (Cell cell : {Cell{64, 8}, Cell{1024, 32}}) {
      if (2 * cell.conns + 128 > fd_cap) {
        std::printf("(skipping %s/%u connections: fd limit %llu)\n",
                    rpc::PollerBackendName(backend), cell.conns,
                    static_cast<unsigned long long>(fd_cap));
        continue;
      }
      std::string path =
          "/tmp/ssdb_bench_dc_" + std::to_string(::getpid()) + ".sock";
      auto listener = *rpc::UnixServerSocket::Listen(path);
      rpc::ConcurrentServerOptions options;
      options.poller = backend;
      rpc::ConcurrentServer server(db->db->ring(), db->db->server_filter(),
                                   std::move(listener), options);
      SSDB_CHECK_OK(server.Start());

      const uint32_t idle = cell.conns - cell.hot;
      std::vector<std::unique_ptr<rpc::Channel>> idle_conns;
      idle_conns.reserve(idle);
      while (idle_conns.size() < idle) {
        auto channel = rpc::ConnectUnix(path);
        if (!channel.ok()) {  // listen backlog full; let accept drain it
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        idle_conns.push_back(std::move(*channel));
      }
      while (server.Snapshot().open_connections < idle) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }

      std::vector<std::vector<double>> latencies(cell.hot);
      Stopwatch wall;
      std::vector<std::thread> threads;
      threads.reserve(cell.hot);
      for (uint32_t c = 0; c < cell.hot; ++c) {
        threads.emplace_back([db, &path, &latencies, per_client, c] {
          rpc::RemoteServerFilter remote(db->db->ring(),
                                         *rpc::ConnectUnix(path));
          latencies[c].reserve(per_client);
          for (uint32_t i = 0; i < per_client; ++i) {
            Stopwatch one;
            SSDB_CHECK(remote.EvalAt(2, 5).ok());
            latencies[c].push_back(one.ElapsedSeconds());
          }
          SSDB_CHECK_OK(remote.Shutdown());
        });
      }
      for (std::thread& thread : threads) thread.join();
      const double wall_s = wall.ElapsedSeconds();

      std::vector<double> all;
      for (const auto& per_thread : latencies) {
        all.insert(all.end(), per_thread.begin(), per_thread.end());
      }
      std::sort(all.begin(), all.end());
      DispatchRow row;
      row.poller = server.poller_name();
      row.conns = cell.conns;
      row.hot_clients = cell.hot;
      row.ops = all.size();
      row.qps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0;
      row.p50_ms = all[all.size() / 2] * 1e3;
      row.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)] * 1e3;
      row.queue_depth_peak = server.Snapshot().queue_depth_peak;
      std::printf("%-8s %-10u %-10u %-12.1f %-12.3f %-12.3f %-12llu\n",
                  row.poller.c_str(), row.conns, row.hot_clients, row.qps,
                  row.p50_ms, row.p99_ms,
                  static_cast<unsigned long long>(row.queue_depth_peak));
      rows->push_back(row);

      idle_conns.clear();
      server.Shutdown();
    }
  }
}

void PrintDispatchJson(const std::vector<DispatchRow>& rows) {
  std::printf(
      "BENCH_JSON {\"bench\":\"rpc_dispatch\",\"op\":\"eval_at\","
      "\"scale\":%.3f,\"rows\":[",
      BenchScale());
  for (size_t i = 0; i < rows.size(); ++i) {
    const DispatchRow& r = rows[i];
    std::printf(
        "%s{\"poller\":\"%s\",\"conns\":%u,\"hot_clients\":%u,"
        "\"ops\":%llu,\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"queue_depth_peak\":%llu}",
        i == 0 ? "" : ",", r.poller.c_str(), r.conns, r.hot_clients,
        static_cast<unsigned long long>(r.ops), r.qps, r.p50_ms, r.p99_ms,
        static_cast<unsigned long long>(r.queue_depth_peak));
  }
  std::printf("]}\n");
}

// --- health-probe overhead (DESIGN.md §11) ----------------------------------

struct ProbeOverheadRow {
  std::string monitor;  // "off" or "on"
  uint32_t hot_clients = 0;
  uint64_t queries = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t probes = 0;  // kPing round trips sent during the measurement
};

void RunProbeOverhead(BenchDb* db, const std::string& query,
                      std::vector<ProbeOverheadRow>* rows) {
  const uint32_t hot_clients = 4;
  const uint32_t per_client = 8;
  // Probe far more often than any deployment would (the tools default to
  // 1000ms) so a per-probe cost would actually show up in the hot qps.
  const int probe_interval_ms = 5;

  for (bool monitored : {false, true}) {
    std::string path =
        "/tmp/ssdb_bench_po_" + std::to_string(::getpid()) + ".sock";
    auto listener = *rpc::UnixServerSocket::Listen(path);
    rpc::ConcurrentServer server(db->db->ring(), db->db->server_filter(),
                                 std::move(listener),
                                 rpc::ConcurrentServerOptions{});
    SSDB_CHECK_OK(server.Start());

    control::MonitorOptions options;
    options.probe_interval_ms = probe_interval_ms;
    control::Monitor monitor({{"bench", path}}, std::move(options));
    if (monitored) monitor.Start();

    ClientScalingRow hot =
        RunMultiClientCell(db, {path}, hot_clients, per_client, query);
    if (monitored) monitor.Stop();

    ProbeOverheadRow row;
    row.monitor = monitored ? "on" : "off";
    row.hot_clients = hot_clients;
    row.queries = hot.queries;
    row.qps = hot.qps;
    row.p50_ms = hot.p50_ms;
    row.p99_ms = hot.p99_ms;
    row.probes = monitored ? monitor.Snapshot()[0].probes : 0;
    std::printf("%-8s %-10u %-12.1f %-12.3f %-12.3f %-10llu\n",
                row.monitor.c_str(), row.hot_clients, row.qps, row.p50_ms,
                row.p99_ms, static_cast<unsigned long long>(row.probes));
    rows->push_back(row);

    server.Shutdown();
  }
}

void PrintProbeOverheadJson(const std::string& query,
                            const std::vector<ProbeOverheadRow>& rows) {
  std::printf(
      "BENCH_JSON {\"bench\":\"rpc_probe_overhead\",\"query\":\"%s\","
      "\"scale\":%.3f,\"rows\":[",
      query.c_str(), BenchScale());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ProbeOverheadRow& r = rows[i];
    std::printf(
        "%s{\"monitor\":\"%s\",\"hot_clients\":%u,\"queries\":%llu,"
        "\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"probes\":%llu}",
        i == 0 ? "" : ",", r.monitor.c_str(), r.hot_clients,
        static_cast<unsigned long long>(r.queries), r.qps, r.p50_ms,
        r.p99_ms, static_cast<unsigned long long>(r.probes));
  }
  std::printf("]}\n");
}

Measurement RunMultiServer(uint64_t target_bytes, uint32_t servers,
                           const std::string& query) {
  auto db = BuildXmarkDb(target_bytes, 42, servers);
  SliceServers slice_servers(db.get(), servers);
  auto session =
      *rpc::MultiServerSession::ConnectUnix(db->db->ring(),
                                            slice_servers.paths);
  Measurement m = RunWith(db.get(), session->filter(), query);
  m.transport = "rpc/" + std::to_string(servers) + "-server";
  m.servers = servers;
  m.bytes = session->bytes_on_wire();
  m.has_bytes = true;
  SSDB_CHECK_OK(session->Shutdown());
  slice_servers.Join();
  return m;
}

void Run(int argc, char** argv) {
  tools::FlagSet flags("bench_rpc", "[--servers m]");
  const uint32_t* servers_flag =
      flags.Uint("servers", 0, "run only the m-server RPC row (0 = all)");
  SSDB_CHECK_OK(flags.Parse(argc, argv));
  uint32_t only_servers = *servers_flag;
  double scale = BenchScale();
  uint64_t target_bytes = static_cast<uint64_t>(scale * (512 << 10));
  auto db = BuildXmarkDb(target_bytes);
  const std::string query = "/site/*/person//city";
  std::vector<Measurement> rows;

  PrintHeader("Ablation A3: transport overhead for " + query);
  std::printf("%-22s %-12s %-14s %-14s %-14s %-12s %-10s\n", "transport",
              "time(ms)", "round-trips", "batched-evals", "candidates",
              "bytes", "results");

  // (a) Local, no RPC.
  Measurement local = RunWith(db.get(), db->db->server_filter(), query);
  local.transport = "local";
  PrintRow(local);
  rows.push_back(local);

  // (b) In-process channel.
  {
    rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
    rpc::ServerThread server_thread(db->db->ring(), db->db->server_filter(),
                                    std::move(pair.server));
    rpc::RemoteServerFilter remote(db->db->ring(), std::move(pair.client));
    Measurement m = RunWith(db.get(), &remote, query);
    m.transport = "rpc/in-process";
    m.bytes = remote.channel().bytes_sent() + remote.channel().bytes_received();
    m.has_bytes = true;
    PrintRow(m);
    rows.push_back(m);
  }

  // (c) Unix-domain socket, single server.
  {
    std::string path =
        "/tmp/ssdb_bench_rpc_" + std::to_string(::getpid()) + ".sock";
    auto listener = *rpc::UnixServerSocket::Listen(path);
    std::thread server_thread([&] {
      auto channel = listener->Accept();
      if (!channel.ok()) return;
      rpc::RpcServer server(db->db->ring(), db->db->server_filter());
      server.Serve(channel->get());
    });
    auto channel = *rpc::ConnectUnix(path);
    rpc::RemoteServerFilter remote(db->db->ring(), std::move(channel));
    Measurement m = RunWith(db.get(), &remote, query);
    m.transport = "rpc/unix-socket";
    m.bytes = remote.channel().bytes_sent() + remote.channel().bytes_received();
    m.has_bytes = true;
    PrintRow(m);
    rows.push_back(m);
    SSDB_CHECK_OK(remote.Shutdown());
    server_thread.join();
  }

  // (d) m-server share fan-out over m sockets (DESIGN.md §5). Round trips
  // must not grow with m: fan-out is concurrent, so each query step still
  // costs one step of latency and the counter reports the straggler.
  for (uint32_t servers : {1u, 2u, 4u}) {
    if (only_servers != 0 && servers != only_servers) continue;
    Measurement m = RunMultiServer(target_bytes, servers, query);
    PrintRow(m);
    rows.push_back(m);
  }

  std::printf(
      "\nAll transports must return identical result sets; the deltas are\n"
      "pure communication cost (the paper's RMI hop). With the batched\n"
      "pipeline, round trips track query steps x tree depth, not the number\n"
      "of candidates examined; with m-server fan-out they stay equal to the\n"
      "single-server case while total bytes scale with m.\n\n");
  PrintJson(query, rows);

  // --- multi-client scaling against the concurrent server (DESIGN.md §7).
  // Same database, same query; only the number of concurrent connections
  // changes. Every client runs `per_client` queries over its own socket.
  PrintHeader("Multi-client throughput for " + query);
  std::printf("%-10s %-10s %-10s %-12s %-12s %-12s %-12s\n", "servers",
              "clients", "queries", "wall(s)", "queries/s", "p50(ms)",
              "p99(ms)");
  const uint32_t per_client = 8;
  std::vector<ClientScalingRow> scaling_rows;
  std::unique_ptr<BenchDb> db2;
  for (uint32_t servers : {1u, 2u}) {
    if (only_servers != 0 && servers != only_servers) continue;
    BenchDb* cell_db = db.get();
    if (servers > 1) {
      if (db2 == nullptr) db2 = BuildXmarkDb(target_bytes, 42, servers);
      cell_db = db2.get();
    }
    ConcurrentSliceServers slice_servers(cell_db, servers);
    for (uint32_t clients : {1u, 4u, 16u}) {
      ClientScalingRow row = RunMultiClientCell(
          cell_db, slice_servers.paths, clients, per_client, query);
      std::printf("%-10u %-10u %-10llu %-12.3f %-12.1f %-12.3f %-12.3f\n",
                  row.servers, row.clients,
                  static_cast<unsigned long long>(row.queries), row.wall_s,
                  row.qps, row.p50_ms, row.p99_ms);
      scaling_rows.push_back(row);
    }
    slice_servers.Shutdown();
  }
  std::printf(
      "\nAll cells share one worker pool per server (hardware concurrency\n"
      "threads); throughput should grow with concurrent clients until the\n"
      "pool saturates, while p50 stays near the single-client latency.\n\n");
  PrintClientScalingJson(query, scaling_rows);

  // --- high-connection dispatch cost by poller (DESIGN.md §7). The same
  // hot workload with a growing herd of idle connections parked on the
  // server; only the dispatcher's interest-set handling changes.
  PrintHeader("High-connection dispatch for " + query);
  std::printf("%-8s %-12s %-10s %-12s %-12s %-12s %-10s %-14s\n", "poller",
              "idle-conns", "hot", "queries/s", "p50(ms)", "p99(ms)",
              "wakes", "scanned/wake");
  std::vector<PollerScalingRow> poller_rows;
  RunPollerScaling(db.get(), query, &poller_rows);
  std::printf(
      "\nscanned/wake is the dispatcher's per-wake cost: flat for epoll\n"
      "(O(ready events), the incremental interest set) and growing with\n"
      "idle connections for the poll fallback (the O(open connections)\n"
      "replay the epoll backend removes). qps should be poller-independent\n"
      "at low connection counts.\n\n");
  PrintPollerScalingJson(query, poller_rows);

  // --- slow-reader resilience (DESIGN.md §7). K stalled readers hold
  // unread response tails on the server while hot clients run the same
  // query workload; the buffered write path means hot throughput should
  // not care about K.
  PrintHeader("Slow-reader resilience for " + query);
  std::printf("%-10s %-10s %-12s %-12s %-12s %-14s %-14s\n", "stalled",
              "hot", "queries/s", "p50(ms)", "p99(ms)", "write-stalls",
              "buffered-peak");
  std::vector<SlowReaderRow> slow_reader_rows;
  RunSlowReader(db.get(), query, &slow_reader_rows);
  std::printf(
      "\nStalled readers park their response tails on the session (the\n"
      "EPOLLOUT buffered write path) instead of a worker, so hot qps at\n"
      "K >= 4 should sit within noise of the K = 0 row. write-stalls and\n"
      "buffered-peak confirm the buffering actually engaged.\n\n");
  PrintSlowReaderJson(query, slow_reader_rows);

  // --- sharded-dispatch contention. Tiny ops make the per-request
  // dispatch (poller wake -> shard lookup -> worker queue -> rearm) the
  // dominant cost; an idle herd grows the interest set around it.
  PrintHeader("Sharded-dispatch contention (EvalAt ops)");
  std::printf("%-8s %-10s %-10s %-12s %-12s %-12s %-12s\n", "poller",
              "conns", "hot", "ops/s", "p50(ms)", "p99(ms)", "queue-peak");
  std::vector<DispatchRow> dispatch_rows;
  RunDispatchContention(db.get(), &dispatch_rows);
  std::printf(
      "\nPer-worker ready-queues (notify_one) and the sharded session\n"
      "table keep dispatch contention flat as hot clients grow; queue-peak\n"
      "is the deepest any single worker's queue got.\n\n");
  PrintDispatchJson(dispatch_rows);

  // --- health-probe overhead (DESIGN.md §11). The monitor's kPing sweeps
  // ride the same transport as queries but skip the filter entirely; an
  // aggressive probe cadence must not tax the hot path.
  PrintHeader("Health-probe overhead for " + query);
  std::printf("%-8s %-10s %-12s %-12s %-12s %-10s\n", "monitor", "hot",
              "queries/s", "p50(ms)", "p99(ms)", "probes");
  std::vector<ProbeOverheadRow> probe_rows;
  RunProbeOverhead(db.get(), query, &probe_rows);
  std::printf(
      "\nkPing is answered before the dispatcher consults the filter, so\n"
      "the monitor-on row should sit within noise of monitor-off even at\n"
      "a probe cadence 200x the tools' default.\n\n");
  PrintProbeOverheadJson(query, probe_rows);
}

}  // namespace
}  // namespace ssdb::bench

int main(int argc, char** argv) {
  ssdb::bench::Run(argc, argv);
  return 0;
}
