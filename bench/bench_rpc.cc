// Ablation A3: communication-layer overhead — the same query executed
// against (a) the local in-process filter, (b) the RPC stack over an
// in-process channel, and (c) the RPC stack over a unix-domain socket
// (the stand-in for the paper's RMI deployment). Reports wall time, round
// trips and bytes moved.

#include <unistd.h>

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/socket_channel.h"

namespace ssdb::bench {
namespace {

struct Measurement {
  double ms = 0;
  uint64_t round_trips = 0;
  uint64_t bytes = 0;
  size_t results = 0;
  uint64_t batched_evals = 0;
  uint64_t candidates = 0;
};

Measurement RunWith(BenchDb* db, filter::ServerFilter* server,
                    rpc::RemoteServerFilter* remote,
                    const std::string& text) {
  filter::ClientFilter client(db->db->ring(), prg::Prg(prg::Seed::FromUint64(42)),
                              server);
  query::AdvancedEngine engine(&client, &db->map);
  auto parsed = *query::ParseQuery(text);
  Stopwatch watch;
  query::QueryStats stats;
  auto result = engine.Execute(parsed, query::MatchMode::kContainment,
                               &stats);
  Measurement m;
  m.ms = watch.ElapsedMillis();
  SSDB_CHECK(result.ok());
  m.results = result->size();
  m.batched_evals = stats.eval.batched_evaluations;
  m.candidates = stats.candidates_examined;
  // Wire-level truth when remote; the filter's mirrored counter locally.
  m.round_trips = remote != nullptr ? remote->round_trips()
                                    : stats.eval.round_trips;
  if (remote != nullptr) {
    m.bytes = remote->channel().bytes_sent() +
              remote->channel().bytes_received();
  }
  return m;
}

void Run() {
  double scale = BenchScale();
  auto db = BuildXmarkDb(
      static_cast<uint64_t>(scale * (512 << 10)));
  const std::string query = "/site/*/person//city";

  PrintHeader("Ablation A3: transport overhead for " + query);
  std::printf("%-22s %-12s %-14s %-14s %-14s %-12s %-10s\n", "transport",
              "time(ms)", "round-trips", "batched-evals", "candidates",
              "bytes", "results");

  // (a) Local, no RPC.
  Measurement local = RunWith(db.get(), db->db->server_filter(), nullptr,
                              query);
  std::printf("%-22s %-12.1f %-14llu %-14llu %-14llu %-12s %-10zu\n",
              "local", local.ms,
              static_cast<unsigned long long>(local.round_trips),
              static_cast<unsigned long long>(local.batched_evals),
              static_cast<unsigned long long>(local.candidates), "-",
              local.results);

  // (b) In-process channel.
  {
    rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
    rpc::ServerThread server_thread(db->db->ring(), db->db->server_filter(),
                                    std::move(pair.server));
    rpc::RemoteServerFilter remote(db->db->ring(), std::move(pair.client));
    Measurement m = RunWith(db.get(), &remote, &remote, query);
    std::printf("%-22s %-12.1f %-14llu %-14llu %-14llu %-12llu %-10zu\n",
                "rpc/in-process", m.ms,
                static_cast<unsigned long long>(m.round_trips),
                static_cast<unsigned long long>(m.batched_evals),
                static_cast<unsigned long long>(m.candidates),
                static_cast<unsigned long long>(m.bytes), m.results);
  }

  // (c) Unix-domain socket.
  {
    std::string path =
        "/tmp/ssdb_bench_rpc_" + std::to_string(::getpid()) + ".sock";
    auto listener = *rpc::UnixServerSocket::Listen(path);
    std::thread server_thread([&] {
      auto channel = listener->Accept();
      if (!channel.ok()) return;
      rpc::RpcServer server(db->db->ring(), db->db->server_filter());
      server.Serve(channel->get());
    });
    auto channel = *rpc::ConnectUnix(path);
    rpc::RemoteServerFilter remote(db->db->ring(), std::move(channel));
    Measurement m = RunWith(db.get(), &remote, &remote, query);
    std::printf("%-22s %-12.1f %-14llu %-14llu %-14llu %-12llu %-10zu\n",
                "rpc/unix-socket", m.ms,
                static_cast<unsigned long long>(m.round_trips),
                static_cast<unsigned long long>(m.batched_evals),
                static_cast<unsigned long long>(m.candidates),
                static_cast<unsigned long long>(m.bytes), m.results);
    SSDB_CHECK_OK(remote.Shutdown());
    server_thread.join();
  }

  std::printf(
      "\nAll three transports must return identical result sets; the\n"
      "deltas are pure communication cost (the paper's RMI hop). With the\n"
      "batched pipeline, round trips track query steps x tree depth, not\n"
      "the number of candidates examined.\n");
}

}  // namespace
}  // namespace ssdb::bench

int main() {
  ssdb::bench::Run();
  return 0;
}
