// Ablation A2: disk (paged B+tree) backend vs in-memory backend — encode
// throughput and query latency, isolating the storage engine's share of the
// macro numbers. Also reports B+tree/buffer-pool micro-costs.

#include <benchmark/benchmark.h>

#include "core/database.h"
#include "storage/btree.h"
#include "storage/memory_backend.h"
#include "storage/table.h"
#include "util/file_util.h"
#include "util/random.h"
#include "xmark/generator.h"

namespace ssdb {
namespace {

std::string SharedXml() {
  static const auto* kXml = new std::string([] {
    xmark::GeneratorOptions gen;
    gen.target_bytes = 128 << 10;
    return xmark::GenerateAuctionDocument(gen).xml;
  }());
  return *kXml;
}

const mapping::TagMap& SharedMap() {
  static const auto* kMap = new mapping::TagMap([] {
    auto field = *gf::Field::Make(83);
    return *core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                     field, false);
  }());
  return *kMap;
}

void BM_EncodeToBackend(benchmark::State& state) {
  // arg 0: memory backend; arg 1: disk backend.
  bool disk = state.range(0) == 1;
  std::string xml = SharedXml();
  TempDir dir("bench_storage");
  int run = 0;
  for (auto _ : state) {
    core::DatabaseOptions options;
    if (disk) {
      options.backend = core::Backend::kDisk;
      options.disk_path = dir.FilePath("db_" + std::to_string(run++));
    }
    auto db = core::EncryptedXmlDatabase::Encode(
        xml, SharedMap(), prg::Seed::FromUint64(1), options);
    benchmark::DoNotOptimize(db);
  }
  state.counters["input_bytes"] = static_cast<double>(xml.size());
}
BENCHMARK(BM_EncodeToBackend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_QueryOnBackend(benchmark::State& state) {
  bool disk = state.range(0) == 1;
  std::string xml = SharedXml();
  TempDir dir("bench_storage_q");
  core::DatabaseOptions options;
  if (disk) {
    options.backend = core::Backend::kDisk;
    options.disk_path = dir.FilePath("db");
  }
  auto db = core::EncryptedXmlDatabase::Encode(
      xml, SharedMap(), prg::Seed::FromUint64(1), options);
  SSDB_CHECK(db.ok());
  auto parsed = *query::ParseQuery("/site/*/person//city");
  for (auto _ : state) {
    auto result = (*db)->QueryParsed(parsed, core::EngineKind::kAdvanced,
                                     query::MatchMode::kContainment);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_QueryOnBackend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_BTreeInsert(benchmark::State& state) {
  TempDir dir("bench_btree");
  auto pager = *storage::Pager::Open(dir.FilePath("db"), true);
  storage::BufferPool pool(pager.get(), 1024);
  auto tree = *storage::BTree::Create(&pool);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(++key, key));
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreePointLookup(benchmark::State& state) {
  TempDir dir("bench_btree_get");
  auto pager = *storage::Pager::Open(dir.FilePath("db"), true);
  storage::BufferPool pool(pager.get(), 1024);
  auto tree = *storage::BTree::Create(&pool);
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    SSDB_CHECK_OK(tree.Insert(i, i));
  }
  Random rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(rng.Uniform(n)));
  }
}
BENCHMARK(BM_BTreePointLookup);

void BM_DescendantScan(benchmark::State& state) {
  // The access path behind every '//' step.
  storage::MemoryNodeStore store;
  const uint32_t n = 20000;
  for (uint32_t i = 1; i <= n; ++i) {
    SSDB_CHECK_OK(store.Insert(
        {i, n + 1 - i, i == 1 ? 0 : 1, std::string(72, 'x')}));
  }
  for (auto _ : state) {
    uint64_t count = 0;
    SSDB_CHECK_OK(store.ScanDescendants(1, n, [&](const storage::NodeRow&) {
      ++count;
      return true;
    }));
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_DescendantScan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssdb

BENCHMARK_MAIN();
