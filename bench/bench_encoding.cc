// Experiment E1/E6 — reproduces **Figure 4** (Encoding): encoded database
// size, index size and encoding time against input XML size (1..10 MB),
// p = 83, e = 1, disk backend (the paper's MySQL role).
//
// Paper claims to check (shapes, not absolute numbers):
//   * output size, index size and time are linear in the input size;
//   * pre/post/parent ("structure") accounts for ~17% of the output;
//   * polynomial payload is roughly 1.5x the input ("storage overhead is
//     reduced to 50%", §7).

#include <cstdio>

#include "bench/bench_util.h"
#include "prg/seed.h"
#include "util/file_util.h"
#include "xmark/generator.h"

namespace ssdb::bench {
namespace {

void Run() {
  PrintHeader("Figure 4: Encoding (p=83, e=1, disk backend)");
  std::printf(
      "%-10s %-10s %-10s %-10s %-10s %-12s %-10s\n", "input(MB)",
      "nodes", "output(MB)", "index(MB)", "time(s)", "payload/in",
      "struct(%)");

  double scale = BenchScale();
  auto field = *gf::Field::Make(83);
  auto map = core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                      field, false);
  SSDB_CHECK(map.ok());

  TempDir dir("bench_encoding");
  for (int mb = 1; mb <= 10; ++mb) {
    uint64_t target =
        static_cast<uint64_t>(static_cast<double>(mb << 20) * scale);
    xmark::GeneratorOptions gen;
    gen.target_bytes = target;
    gen.seed = 42 + static_cast<uint64_t>(mb);
    std::string xml = xmark::GenerateAuctionDocument(gen).xml;

    core::DatabaseOptions options;
    options.backend = core::Backend::kDisk;
    options.disk_path = dir.FilePath("enc_" + std::to_string(mb) + ".ssdb");

    Stopwatch watch;
    auto db = core::EncryptedXmlDatabase::Encode(
        xml, *map, prg::Seed::FromUint64(1), options);
    double seconds = watch.ElapsedSeconds();
    SSDB_CHECK(db.ok()) << db.status().ToString();

    auto stats = (*db)->store()->Stats();
    SSDB_CHECK(stats.ok());
    double input_mb = static_cast<double>(xml.size()) / (1 << 20);
    double output_mb = static_cast<double>(stats->data_bytes) / (1 << 20);
    double index_mb = static_cast<double>(stats->index_bytes) / (1 << 20);
    double payload_ratio =
        static_cast<double>(stats->payload_bytes) /
        static_cast<double>(xml.size());
    double struct_pct = 100.0 *
                        static_cast<double>(stats->structure_bytes) /
                        static_cast<double>(stats->payload_bytes);
    std::printf("%-10.2f %-10llu %-10.2f %-10.2f %-10.2f %-12.2f %-10.1f\n",
                input_mb,
                static_cast<unsigned long long>(stats->node_count),
                output_mb, index_mb, seconds, payload_ratio, struct_pct);
  }
  std::printf(
      "\nPaper shape: all three series strictly linear in input size;\n"
      "structure fields ~17%% of output; payload ~1.5x the input.\n");
}

}  // namespace
}  // namespace ssdb::bench

int main() {
  ssdb::bench::Run();
  return 0;
}
