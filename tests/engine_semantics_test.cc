// Hand-computed step-semantics cases for the two engines, pinning down the
// corners that DESIGN.md §6 resolves: parent steps, wildcards, repeated and
// self-nested tags (multiplicities), root matches on leading '//', and
// predicate scoping. Every case is checked on both engines, both modes,
// against explicitly listed pre numbers.

#include <gtest/gtest.h>

#include <set>

#include "query/advanced_engine.h"
#include "query/ground_truth.h"
#include "query/simple_engine.h"
#include "test_helpers.h"

namespace ssdb::query {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::TestDb;

// Document (pre numbers annotated):
//   <a>            1
//     <b>          2
//       <a>        3
//         <c/>     4
//       </a>
//       <c/>       5
//     </b>
//     <b/>         6
//     <c>          7
//       <b/>       8
//     </c>
//   </a>
constexpr char kDoc[] =
    "<a><b><a><c/></a><c/></b><b/><c><b/></c></a>";

class SemanticsTest : public ::testing::Test {
 protected:
  SemanticsTest() : db_(BuildTestDb(kDoc)) {
    simple_ = std::make_unique<SimpleEngine>(db_->client.get(), &db_->map);
    advanced_ =
        std::make_unique<AdvancedEngine>(db_->client.get(), &db_->map);
  }

  // Runs on both engines in strict mode, expecting exactly `expected`, and
  // confirms the ground-truth evaluator agrees; non-strict must be a
  // superset.
  void ExpectResult(const std::string& text,
                    const std::set<uint32_t>& expected) {
    auto parsed = ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto truth = EvaluateGroundTruth(*parsed, db_->doc);
    ASSERT_TRUE(truth.ok()) << text;
    EXPECT_EQ(std::set<uint32_t>(truth->begin(), truth->end()), expected)
        << "ground truth disagrees with the hand computation for " << text;

    for (QueryEngine* engine :
         {static_cast<QueryEngine*>(simple_.get()),
          static_cast<QueryEngine*>(advanced_.get())}) {
      auto strict = engine->Execute(*parsed, MatchMode::kEquality, nullptr);
      ASSERT_TRUE(strict.ok()) << text;
      std::set<uint32_t> actual;
      for (const auto& node : *strict) actual.insert(node.pre);
      EXPECT_EQ(actual, expected) << engine->name() << " on " << text;

      auto loose =
          engine->Execute(*parsed, MatchMode::kContainment, nullptr);
      ASSERT_TRUE(loose.ok()) << text;
      std::set<uint32_t> loose_set;
      for (const auto& node : *loose) loose_set.insert(node.pre);
      for (uint32_t pre : expected) {
        EXPECT_TRUE(loose_set.count(pre)) << engine->name() << " " << text;
      }
    }
  }

  std::unique_ptr<TestDb> db_;
  std::unique_ptr<SimpleEngine> simple_;
  std::unique_ptr<AdvancedEngine> advanced_;
};

TEST_F(SemanticsTest, LeadingChildSeesOnlyRoot) {
  ExpectResult("/a", {1});
  ExpectResult("/b", {});  // root is an 'a'
}

TEST_F(SemanticsTest, LeadingDescendantIncludesRoot) {
  ExpectResult("//a", {1, 3});
  ExpectResult("//b", {2, 6, 8});
  ExpectResult("//c", {4, 5, 7});
}

TEST_F(SemanticsTest, SelfNestedTagMultiplicity) {
  // 'a' under 'a': both levels found; child steps distinguish them.
  ExpectResult("/a/b/a", {3});
  ExpectResult("/a/b/a/c", {4});
  ExpectResult("//a//c", {4, 5, 7});  // c's under either a
  ExpectResult("//a/c", {4, 7});     // direct c children of an a
}

TEST_F(SemanticsTest, WildcardSteps) {
  ExpectResult("/a/*", {2, 6, 7});
  ExpectResult("/a/*/c", {5});       // c child of a root child (b at 2)
  ExpectResult("/*", {1});
  ExpectResult("//*", {1, 2, 3, 4, 5, 6, 7, 8});
  ExpectResult("/a/*/*", {3, 5, 8});
}

TEST_F(SemanticsTest, ParentSteps) {
  ExpectResult("/a/b/a/..", {2});      // back to the b
  ExpectResult("//c/..", {1, 2, 3});   // parents of all c's
  ExpectResult("//c/../..", {1, 2});   // grandparents (root's parent drops)
  ExpectResult("/a/..", {});           // root has no parent
  ExpectResult("//b/../b", {2, 6, 8}); // siblings (and self) named b
}

TEST_F(SemanticsTest, DescendantFromInnerNodes) {
  ExpectResult("/a/b//c", {4, 5});
  ExpectResult("/a/c//b", {8});
  ExpectResult("/a/b//b", {});  // no b strictly below either b
}

TEST_F(SemanticsTest, Predicates) {
  ExpectResult("/a/b[a]", {2});         // b's with an a child
  ExpectResult("/a/b[//c]", {2});       // b's containing a c anywhere
  ExpectResult("/a/*[b]", {7});         // root children with a b child
  ExpectResult("//a[c]", {1, 3});       // a's with a direct c child? root:
                                        // c at 7 is direct -> yes; a at 3
                                        // has c at 4 -> yes
  ExpectResult("//b[a/c]", {2});        // nested path predicate
  ExpectResult("//b[z]", {});           // unknown tag in predicate
}

TEST_F(SemanticsTest, EmptyAndUnknown) {
  ExpectResult("/z", {});
  ExpectResult("//z", {});
  ExpectResult("/a/z//b", {});
}

TEST_F(SemanticsTest, NonStrictOverapproximationIsAncestral) {
  // Non-strict '//c' also reports nodes whose subtree contains a c — every
  // extra node must be an ancestor of a real c (never an unrelated node).
  auto parsed = ParseQuery("//c");
  ASSERT_TRUE(parsed.ok());
  auto loose =
      simple_->Execute(*parsed, MatchMode::kContainment, nullptr);
  ASSERT_TRUE(loose.ok());
  // True c's: 4, 5, 7. Containment adds their ancestors: 1, 2, 3.
  std::set<uint32_t> actual;
  for (const auto& node : *loose) actual.insert(node.pre);
  EXPECT_EQ(actual, (std::set<uint32_t>{1, 2, 3, 4, 5, 7}));
}

TEST_F(SemanticsTest, StatsTrackCandidateVolume) {
  auto parsed = ParseQuery("//c");
  ASSERT_TRUE(parsed.ok());
  QueryStats simple_stats, advanced_stats;
  ASSERT_TRUE(
      simple_->Execute(*parsed, MatchMode::kContainment, &simple_stats)
          .ok());
  ASSERT_TRUE(
      advanced_->Execute(*parsed, MatchMode::kContainment, &advanced_stats)
          .ok());
  // Simple examines all 8 nodes (root + 7 descendants); the advanced DFS
  // prunes nothing here (every subtree contains a c except leaves), so both
  // are bounded by the document size.
  EXPECT_LE(simple_stats.candidates_examined, 8u);
  EXPECT_LE(advanced_stats.candidates_examined, 8u);
  EXPECT_GT(simple_stats.eval.evaluations, 0u);
}

}  // namespace
}  // namespace ssdb::query
