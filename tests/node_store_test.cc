#include <gtest/gtest.h>

#include <memory>

#include "storage/memory_backend.h"
#include "storage/table.h"
#include "util/file_util.h"

namespace ssdb::storage {
namespace {

// Both backends must satisfy the same contract; parameterize over them.
enum class Backend { kMemory, kDisk };

class NodeStoreTest : public ::testing::TestWithParam<Backend> {
 protected:
  NodeStoreTest() : dir_("node_store_test") {}

  std::unique_ptr<NodeStore> MakeStore(const std::string& name) {
    if (GetParam() == Backend::kMemory) {
      return std::make_unique<MemoryNodeStore>();
    }
    auto store = DiskNodeStore::Create(dir_.FilePath(name));
    SSDB_CHECK(store.ok()) << store.status().ToString();
    return std::move(*store);
  }

  // Tree used throughout:    1 (root)
  //                         / \
  //                        2   5
  //                       / \    \
  //                      3   4    6
  // pre/post: 1/(6), 2/(3), 3/(1), 4/(2), 5/(5), 6/(4)
  void FillTree(NodeStore* store) {
    auto insert = [&](uint32_t pre, uint32_t post, uint32_t parent) {
      NodeRow row{pre, post, parent, "share" + std::to_string(pre)};
      SSDB_CHECK_OK(store->Insert(row));
    };
    insert(1, 6, 0);
    insert(2, 3, 1);
    insert(3, 1, 2);
    insert(4, 2, 2);
    insert(5, 5, 1);
    insert(6, 4, 5);
  }

  TempDir dir_;
};

TEST_P(NodeStoreTest, RowCodecRoundTrip) {
  NodeRow row{12, 34, 5, std::string("\x01\x02\xff", 3)};
  auto decoded = DecodeNodeRow(EncodeNodeRow(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
  EXPECT_FALSE(DecodeNodeRow("\x01").ok());
}

TEST_P(NodeStoreTest, InsertAndLookup) {
  auto store = MakeStore("basic");
  FillTree(store.get());
  EXPECT_EQ(*store->NodeCount(), 6u);
  auto row = store->GetByPre(4);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->post, 2u);
  EXPECT_EQ(row->parent, 2u);
  EXPECT_EQ(row->share, "share4");
  EXPECT_FALSE(store->GetByPre(99).ok());
}

TEST_P(NodeStoreTest, RejectsDuplicatesAndZeroPre) {
  auto store = MakeStore("dups");
  ASSERT_TRUE(store->Insert({1, 1, 0, "x"}).ok());
  EXPECT_FALSE(store->Insert({1, 2, 0, "y"}).ok());
  EXPECT_FALSE(store->Insert({0, 3, 0, "z"}).ok());
}

TEST_P(NodeStoreTest, RootIsParentZero) {
  auto store = MakeStore("root");
  FillTree(store.get());
  auto root = store->GetRoot();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->pre, 1u);
  auto empty = MakeStore("empty");
  EXPECT_FALSE(empty->GetRoot().ok());
}

TEST_P(NodeStoreTest, ChildrenInDocumentOrder) {
  auto store = MakeStore("children");
  FillTree(store.get());
  auto children = store->GetChildren(1);
  ASSERT_TRUE(children.ok());
  ASSERT_EQ(children->size(), 2u);
  EXPECT_EQ((*children)[0].pre, 2u);
  EXPECT_EQ((*children)[1].pre, 5u);
  auto leaves = store->GetChildren(3);
  ASSERT_TRUE(leaves.ok());
  EXPECT_TRUE(leaves->empty());
}

TEST_P(NodeStoreTest, DescendantsUsePrePostWindow) {
  auto store = MakeStore("desc");
  FillTree(store.get());
  std::vector<uint32_t> pres;
  ASSERT_TRUE(store->ScanDescendants(2, 3, [&](const NodeRow& row) {
                     pres.push_back(row.pre);
                     return true;
                   })
                  .ok());
  EXPECT_EQ(pres, (std::vector<uint32_t>{3, 4}));
  pres.clear();
  ASSERT_TRUE(store->ScanDescendants(1, 6, [&](const NodeRow& row) {
                     pres.push_back(row.pre);
                     return true;
                   })
                  .ok());
  EXPECT_EQ(pres, (std::vector<uint32_t>{2, 3, 4, 5, 6}));
  // Early stop.
  pres.clear();
  ASSERT_TRUE(store->ScanDescendants(1, 6, [&](const NodeRow& row) {
                     pres.push_back(row.pre);
                     return pres.size() < 2;
                   })
                  .ok());
  EXPECT_EQ(pres.size(), 2u);
}

TEST_P(NodeStoreTest, StatsTrackPayload) {
  auto store = MakeStore("stats");
  FillTree(store.get());
  auto stats = store->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->node_count, 6u);
  EXPECT_GT(stats->payload_bytes, 0u);
  EXPECT_GT(stats->structure_bytes, 0u);
  EXPECT_LT(stats->structure_bytes, stats->payload_bytes);
}

INSTANTIATE_TEST_SUITE_P(Backends, NodeStoreTest,
                         ::testing::Values(Backend::kMemory, Backend::kDisk),
                         [](const auto& info) {
                           return info.param == Backend::kMemory ? "Memory"
                                                                 : "Disk";
                         });

TEST(DiskNodeStoreTest, PersistsAcrossReopen) {
  TempDir dir("disk_reopen");
  std::string path = dir.FilePath("db");
  {
    auto store = DiskNodeStore::Create(path);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 1; i <= 500; ++i) {
      ASSERT_TRUE((*store)
                      ->Insert({i, 501 - i, i == 1 ? 0 : 1,
                                std::string(70, static_cast<char>(i % 256))})
                      .ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    auto store = DiskNodeStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(*(*store)->NodeCount(), 500u);
    auto row = (*store)->GetByPre(250);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->post, 251u);
    auto children = (*store)->GetChildren(1);
    ASSERT_TRUE(children.ok());
    EXPECT_EQ(children->size(), 499u);
  }
}

TEST(DiskNodeStoreTest, CreateRefusesExistingDatabase) {
  TempDir dir("disk_exists");
  std::string path = dir.FilePath("db");
  {
    auto store = DiskNodeStore::Create(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Insert({1, 1, 0, "x"}).ok());
  }
  EXPECT_FALSE(DiskNodeStore::Create(path).ok());
}

TEST(DiskNodeStoreTest, DiskStatsSeparateDataAndIndex) {
  TempDir dir("disk_stats");
  auto store = DiskNodeStore::Create(dir.FilePath("db"));
  ASSERT_TRUE(store.ok());
  for (uint32_t i = 1; i <= 2000; ++i) {
    ASSERT_TRUE(
        (*store)->Insert({i, i, i == 1 ? 0 : 1, std::string(72, 'p')}).ok());
  }
  auto stats = (*store)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->data_bytes, 0u);
  EXPECT_GT(stats->index_bytes, 0u);
  EXPECT_GE(stats->file_bytes, stats->data_bytes + stats->index_bytes);
}

}  // namespace
}  // namespace ssdb::storage
