#include <gtest/gtest.h>

#include "core/database.h"
#include "test_helpers.h"
#include "util/file_util.h"
#include "xmark/generator.h"

namespace ssdb::core {
namespace {

using testing_helpers::SmallAuctionXml;

class CoreTest : public ::testing::Test {
 protected:
  CoreTest()
      : field_(*gf::Field::Make(83)),
        seed_(prg::Seed::FromUint64(2024)) {}

  mapping::TagMap MapForXmark(bool trie = false) {
    auto map = EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                  field_, trie);
    SSDB_CHECK(map.ok()) << map.status().ToString();
    return std::move(*map);
  }

  gf::Field field_;
  prg::Seed seed_;
};

TEST_F(CoreTest, TagMapForDtdCoversElementsAndAlphabet) {
  // Plain: the 77 DTD elements fit F_83. With the trie alphabet (37 more)
  // they cannot — that combination needs a larger field.
  EXPECT_EQ(MapForXmark().size(), 77u);
  auto too_small = EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                      field_, true);
  EXPECT_FALSE(too_small.ok());
  auto bigger = *gf::Field::Make(127);
  auto with_trie = EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                      bigger, true);
  ASSERT_TRUE(with_trie.ok());
  EXPECT_EQ(with_trie->size(), 77u + 37u);
}

TEST_F(CoreTest, EncodeAndQueryMemoryBackend) {
  auto map = MapForXmark();
  xmark::GeneratorOptions gen;
  gen.target_bytes = 40 << 10;
  auto generated = xmark::GenerateAuctionDocument(gen);

  DatabaseOptions options;
  auto db = EncryptedXmlDatabase::Encode(generated.xml, map, seed_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GT((*db)->encode_result().node_count, 100u);

  auto result = (*db)->Query("/site/people/person", EngineKind::kAdvanced,
                             query::MatchMode::kEquality);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->nodes.size(), generated.person_count);
  EXPECT_GT(result->stats.eval.evaluations, 0u);

  // Both engines and both modes agree on result membership of true hits.
  auto simple = (*db)->Query("/site/people/person", EngineKind::kSimple,
                             query::MatchMode::kEquality);
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->nodes.size(), result->nodes.size());
}

TEST_F(CoreTest, EncodeAndQueryDiskBackend) {
  TempDir dir("core_disk");
  auto map = MapForXmark();
  xmark::GeneratorOptions gen;
  gen.target_bytes = 20 << 10;
  auto generated = xmark::GenerateAuctionDocument(gen);

  DatabaseOptions options;
  options.backend = Backend::kDisk;
  options.disk_path = dir.FilePath("auction.ssdb");
  auto db = EncryptedXmlDatabase::Encode(generated.xml, map, seed_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto result = (*db)->Query("//bidder/date", EngineKind::kAdvanced,
                             query::MatchMode::kEquality);
  ASSERT_TRUE(result.ok());
  auto memory_db = EncryptedXmlDatabase::Encode(generated.xml, map, seed_,
                                                DatabaseOptions{});
  ASSERT_TRUE(memory_db.ok());
  auto memory_result = (*memory_db)
                           ->Query("//bidder/date", EngineKind::kAdvanced,
                                   query::MatchMode::kEquality);
  ASSERT_TRUE(memory_result.ok());
  ASSERT_EQ(result->nodes.size(), memory_result->nodes.size());
  for (size_t i = 0; i < result->nodes.size(); ++i) {
    EXPECT_EQ(result->nodes[i].pre, memory_result->nodes[i].pre);
  }
}

TEST_F(CoreTest, RemoteClientOverInProcessChannel) {
  auto map = MapForXmark();
  xmark::GeneratorOptions gen;
  gen.target_bytes = 20 << 10;
  auto generated = xmark::GenerateAuctionDocument(gen);

  auto server_db =
      EncryptedXmlDatabase::Encode(generated.xml, map, seed_, {});
  ASSERT_TRUE(server_db.ok());

  rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
  rpc::ServerThread server_thread((*server_db)->ring(),
                                  (*server_db)->server_filter(),
                                  std::move(pair.server));

  auto client_db = EncryptedXmlDatabase::ConnectRemote(
      std::move(pair.client), map, seed_, 83, 1);
  ASSERT_TRUE(client_db.ok());

  auto remote_result =
      (*client_db)
          ->Query("/site/*/person//city", EngineKind::kAdvanced,
                  query::MatchMode::kEquality);
  ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();
  auto local_result =
      (*server_db)
          ->Query("/site/*/person//city", EngineKind::kAdvanced,
                  query::MatchMode::kEquality);
  ASSERT_TRUE(local_result.ok());
  ASSERT_EQ(remote_result->nodes.size(), local_result->nodes.size());
  for (size_t i = 0; i < remote_result->nodes.size(); ++i) {
    EXPECT_EQ(remote_result->nodes[i].pre, local_result->nodes[i].pre);
  }
}

TEST_F(CoreTest, TrieDatabaseAnswersContainsQueries) {
  auto bigger = *gf::Field::Make(127);
  auto map = EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(), bigger,
                                                true);
  ASSERT_TRUE(map.ok());

  DatabaseOptions options;
  options.p = 127;
  options.encode.trie = true;
  auto db = EncryptedXmlDatabase::Encode(
      "<people><person><name>Joan Johnson</name></person>"
      "<person><name>Mary Smith</name></person></people>",
      *map, seed_, options);
  // "people/person/name" are DTD tags; trie chars are in the map.
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto result =
      (*db)->Query("/people/person/name[contains(text(), \"Joan\")]",
                   EngineKind::kAdvanced, query::MatchMode::kEquality);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->nodes.size(), 1u);
}

TEST_F(CoreTest, SealedDatabaseRevealsMatchesEndToEnd) {
  // Query for cities, then reveal the matched nodes' plaintext — over RPC,
  // so the server only ever ships ciphertext.
  auto map = MapForXmark();
  DatabaseOptions options;
  options.encode.seal_content = true;
  auto server_db = EncryptedXmlDatabase::Encode(
      "<site><people>"
      "<person><address><city>Amsterdam</city></address></person>"
      "<person><address><city>Berlin</city></address></person>"
      "</people></site>",
      map, seed_, options);
  ASSERT_TRUE(server_db.ok());

  rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
  rpc::ServerThread server_thread((*server_db)->ring(),
                                  (*server_db)->server_filter(),
                                  std::move(pair.server));
  auto client_db = EncryptedXmlDatabase::ConnectRemote(
      std::move(pair.client), map, seed_, 83, 1);
  ASSERT_TRUE(client_db.ok());

  auto result = (*client_db)
                    ->Query("//city", EngineKind::kAdvanced,
                            query::MatchMode::kEquality);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->nodes.size(), 2u);
  std::vector<std::string> cities;
  for (const auto& node : result->nodes) {
    auto revealed = (*client_db)->client_filter()->Reveal(node);
    ASSERT_TRUE(revealed.ok()) << revealed.status().ToString();
    EXPECT_EQ(revealed->name, "city");
    cities.push_back(revealed->text);
  }
  EXPECT_EQ(cities, (std::vector<std::string>{"Amsterdam", "Berlin"}));
}

TEST_F(CoreTest, ErrorsSurfaceCleanly) {
  auto map = MapForXmark();
  DatabaseOptions disk_no_path;
  disk_no_path.backend = Backend::kDisk;
  EXPECT_FALSE(
      EncryptedXmlDatabase::Encode("<site/>", map, seed_, disk_no_path)
          .ok());

  auto db = EncryptedXmlDatabase::Encode("<site/>", map, seed_, {});
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->Query("not-a-query", EngineKind::kSimple,
                            query::MatchMode::kEquality)
                   .ok());
}

}  // namespace
}  // namespace ssdb::core
