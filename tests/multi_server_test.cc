// Multi-server share fan-out (DESIGN.md §5): slice algebra, query-result
// consistency for m = 1, 2, 4, straggler round-trip accounting over real
// channels, byte-identical m = 1 wire behaviour, and tamper evidence when
// one server's share slice is modified.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "filter/multi_server_filter.h"
#include "query/ground_truth.h"
#include "fault_injection.h"
#include "rpc/multi_session.h"
#include "rpc/server.h"
#include "test_helpers.h"
#include "xmark/generator.h"

namespace ssdb {
namespace {

constexpr uint32_t kServerCounts[] = {1, 2, 4};

std::string CorpusXml() {
  xmark::GeneratorOptions gen;
  gen.target_bytes = 20 << 10;
  gen.seed = 77;
  return xmark::GenerateAuctionDocument(gen).xml;
}

StatusOr<std::unique_ptr<core::EncryptedXmlDatabase>> EncodeWithServers(
    const std::string& xml, const mapping::TagMap& map, const prg::Seed& seed,
    uint32_t servers) {
  core::DatabaseOptions options;
  options.backend = core::Backend::kMemory;
  options.servers = servers;
  return core::EncryptedXmlDatabase::Encode(xml, map, seed, options);
}

class MultiServerTest : public ::testing::Test {
 protected:
  MultiServerTest()
      : field_(*gf::Field::Make(83)),
        ring_(field_),
        map_(*core::EncryptedXmlDatabase::TagMapForDtd(xmark::AuctionDtd(),
                                                       field_, false)),
        seed_(prg::Seed::FromUint64(2718)),
        xml_(CorpusXml()) {}

  gf::Field field_;
  gf::Ring ring_;
  mapping::TagMap map_;
  prg::Seed seed_;
  std::string xml_;
};

TEST_F(MultiServerTest, SliceSumsEqualClassicServerShare) {
  // For every node, the sum of the m slices must equal the m = 1 server
  // share — the additive split refines the classic one without changing
  // what the client reconstructs.
  auto single = EncodeWithServers(xml_, map_, seed_, 1);
  ASSERT_TRUE(single.ok());
  uint64_t nodes = *(*single)->store()->NodeCount();
  ASSERT_GT(nodes, 100u);

  for (uint32_t servers : {2u, 4u}) {
    auto multi = EncodeWithServers(xml_, map_, seed_, servers);
    ASSERT_TRUE(multi.ok());
    for (uint32_t pre = 1; pre <= nodes; ++pre) {
      auto classic_row = (*single)->store()->GetByPre(pre);
      ASSERT_TRUE(classic_row.ok());
      gf::RingElem classic = *ring_.Deserialize(classic_row->share);

      gf::RingElem sum = ring_.Zero();
      for (uint32_t i = 0; i < servers; ++i) {
        auto row = (*multi)->slice_store(i)->GetByPre(pre);
        ASSERT_TRUE(row.ok());
        // Structure columns are replicated to every slice.
        EXPECT_EQ(row->post, classic_row->post);
        EXPECT_EQ(row->parent, classic_row->parent);
        ring_.AddInto(&sum, *ring_.Deserialize(row->share));
      }
      ASSERT_EQ(sum, classic) << "pre=" << pre << " m=" << servers;
    }
  }
}

TEST_F(MultiServerTest, QueryResultsIdenticalAcrossServerCounts) {
  auto doc = *xml::ParseDocument(xml_);
  xml::AnnotatePrePost(&doc);

  const char* queries[] = {
      "/site/regions/europe/item",
      "/site//europe//item",
      "/site/*/person//city",
      "//bidder/date",
  };
  for (const char* text : queries) {
    auto parsed = query::ParseQuery(text);
    ASSERT_TRUE(parsed.ok());
    auto truth = query::EvaluateGroundTruth(*parsed, doc);
    ASSERT_TRUE(truth.ok());
    std::set<uint32_t> expected(truth->begin(), truth->end());

    for (uint32_t servers : kServerCounts) {
      auto db = EncodeWithServers(xml_, map_, seed_, servers);
      ASSERT_TRUE(db.ok());
      for (core::EngineKind engine :
           {core::EngineKind::kSimple, core::EngineKind::kAdvanced}) {
        auto result = (*db)->QueryParsed(*parsed, engine,
                                         query::MatchMode::kEquality);
        ASSERT_TRUE(result.ok()) << text << " m=" << servers;
        std::set<uint32_t> actual;
        for (const auto& node : result->nodes) actual.insert(node.pre);
        EXPECT_EQ(actual, expected) << text << " m=" << servers;
      }
    }
  }
}

TEST_F(MultiServerTest, FanOutRoundTripsMatchSingleServerCase) {
  // The acceptance invariant: per-step round trips under concurrent m = 2
  // fan-out equal the m = 1 case; the raw per-server counters each equal
  // the single-server count.
  const std::string text = "/site/*/person//city";
  auto parsed = *query::ParseQuery(text);

  auto run_remote = [&](uint32_t servers, query::QueryStats* stats) {
    auto db = EncodeWithServers(xml_, map_, seed_, servers);
    SSDB_CHECK(db.ok());
    std::vector<std::unique_ptr<filter::ServerFilter>> slice_filters;
    std::vector<std::unique_ptr<rpc::ServerThread>> server_threads;
    std::vector<std::unique_ptr<rpc::Channel>> client_channels;
    for (uint32_t i = 0; i < servers; ++i) {
      rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
      slice_filters.push_back(std::make_unique<filter::LocalServerFilter>(
          ring_, (*db)->slice_store(i)));
      server_threads.push_back(std::make_unique<rpc::ServerThread>(
          ring_, slice_filters.back().get(), std::move(pair.server)));
      client_channels.push_back(std::move(pair.client));
    }
    auto session = *rpc::MultiServerSession::FromChannels(
        ring_, std::move(client_channels));
    filter::ClientFilter client(ring_, prg::Prg(seed_), session->filter());
    query::AdvancedEngine engine(&client, &map_);
    auto result = engine.Execute(parsed, query::MatchMode::kEquality, stats);
    SSDB_CHECK(result.ok());
    SSDB_CHECK_OK(session->Shutdown());
    return result->size();
  };

  query::QueryStats one, two;
  size_t results_one = run_remote(1, &one);
  size_t results_two = run_remote(2, &two);

  EXPECT_EQ(results_one, results_two);
  EXPECT_GT(one.eval.round_trips, 0u);
  EXPECT_EQ(two.eval.round_trips, one.eval.round_trips);
  ASSERT_EQ(two.eval.per_server_round_trips.size(), 2u);
  // The primary serves structure + shares and matches the m = 1 count; the
  // second server only sees the fanned-out share exchanges.
  EXPECT_EQ(two.eval.per_server_round_trips[0], one.eval.round_trips);
  EXPECT_GT(two.eval.per_server_round_trips[1], 0u);
  EXPECT_LT(two.eval.per_server_round_trips[1],
            two.eval.per_server_round_trips[0]);
  EXPECT_GT(two.eval.straggler_seconds, 0.0);
}

TEST_F(MultiServerTest, SingleServerSessionIsByteIdenticalOnTheWire) {
  // A 1-channel MultiServerSession must move exactly the same bytes as a
  // plain RemoteServerFilter: the m = 1 path adds nothing to the wire.
  const std::string text = "/site//europe//item";
  auto parsed = *query::ParseQuery(text);

  auto run = [&](bool use_session) {
    auto db = EncodeWithServers(xml_, map_, seed_, 1);
    SSDB_CHECK(db.ok());
    rpc::ChannelPair pair = rpc::CreateInProcessChannelPair();
    filter::LocalServerFilter slice(ring_, (*db)->store());
    rpc::ServerThread server_thread(ring_, &slice, std::move(pair.server));
    uint64_t bytes = 0;
    if (use_session) {
      std::vector<std::unique_ptr<rpc::Channel>> channels;
      channels.push_back(std::move(pair.client));
      auto session =
          *rpc::MultiServerSession::FromChannels(ring_, std::move(channels));
      filter::ClientFilter client(ring_, prg::Prg(seed_), session->filter());
      query::AdvancedEngine engine(&client, &map_);
      SSDB_CHECK(engine.Execute(parsed, query::MatchMode::kEquality,
                                nullptr).ok());
      bytes = session->bytes_on_wire();
      SSDB_CHECK_OK(session->Shutdown());
    } else {
      rpc::RemoteServerFilter remote(ring_, std::move(pair.client));
      filter::ClientFilter client(ring_, prg::Prg(seed_), &remote);
      query::AdvancedEngine engine(&client, &map_);
      SSDB_CHECK(engine.Execute(parsed, query::MatchMode::kEquality,
                                nullptr).ok());
      bytes = remote.channel().bytes_sent() +
              remote.channel().bytes_received();
      SSDB_CHECK_OK(remote.Shutdown());
    }
    return bytes;
  };

  uint64_t direct = run(false);
  uint64_t via_session = run(true);
  EXPECT_GT(direct, 0u);
  EXPECT_EQ(via_session, direct);
}

TEST_F(MultiServerTest, TamperedSliceIsDetectedByFullVerification) {
  // The "one compromised host modifies its slice" scenario, built from the
  // shared fault-injection harness (tests/fault_injection.h).
  auto db = EncodeWithServers(xml_, map_, seed_, 2);
  ASSERT_TRUE(db.ok());
  filter::LocalServerFilter slice0(ring_, (*db)->slice_store(0));
  filter::LocalServerFilter slice1(ring_, (*db)->slice_store(1));
  testing_helpers::FaultConfig config;
  config.fault = testing_helpers::Fault::kAddOne;
  config.on_eval = true;
  config.on_share = true;
  testing_helpers::TamperingServerFilter tampered(ring_, &slice1, config);

  filter::MultiServerFilter fanout(ring_, {&slice0, &tampered});
  filter::ClientFilter client(ring_, prg::Prg(seed_), &fanout);
  client.set_full_verification(true);

  auto root = client.Root();
  ASSERT_TRUE(root.ok());
  auto recovered = client.RecoverOwnValue(*root);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption)
      << recovered.status().ToString();
  EXPECT_GT(tampered.faults_injected(), 0u);

  // Control: the untampered fan-out recovers the root's tag under the same
  // full-verification mode.
  filter::MultiServerFilter honest(ring_, {&slice0, &slice1});
  filter::ClientFilter honest_client(ring_, prg::Prg(seed_), &honest);
  honest_client.set_full_verification(true);
  auto honest_root = honest_client.Root();
  ASSERT_TRUE(honest_root.ok());
  auto honest_value = honest_client.RecoverOwnValue(*honest_root);
  ASSERT_TRUE(honest_value.ok()) << honest_value.status().ToString();
  EXPECT_EQ(*honest_value, *map_.Lookup("site"));
}

TEST_F(MultiServerTest, StragglerCountersAreConsistentUnderConcurrency) {
  // Regression (TSan): round_trips_ / straggler_seconds_ used to be plain
  // fields updated by concurrent fan-out calls — a data race, and drops of
  // whole increments under contention. Hammer one shared fan-out from
  // several threads while others read the counters mid-flight.
  auto db = EncodeWithServers(xml_, map_, seed_, 2);
  ASSERT_TRUE(db.ok());
  filter::LocalServerFilter slice0(ring_, (*db)->slice_store(0));
  filter::LocalServerFilter slice1(ring_, (*db)->slice_store(1));
  filter::MultiServerFilter fanout(ring_, {&slice0, &slice1});

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        uint64_t trips = fanout.RoundTrips();
        double seconds = fanout.StragglerSeconds();
        // Monotone and never garbage/torn.
        if (trips < last || seconds < 0.0) failures.fetch_add(1);
        last = trips;
      }
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (!fanout.Root().ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : writers) thread.join();
  done.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  // Every call is one straggler round trip; none may be lost to a race.
  EXPECT_EQ(fanout.RoundTrips(),
            static_cast<uint64_t>(kThreads) * kCallsPerThread);
  EXPECT_GE(fanout.StragglerSeconds(), 0.0);
}

}  // namespace
}  // namespace ssdb
