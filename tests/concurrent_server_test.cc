// Concurrency battery for the multi-client transport (DESIGN.md §7):
//  * N client threads hammer one ConcurrentServer with mixed scalar and
//    batch ops against a shared XMark database; every thread's query
//    results must equal the plaintext ground truth;
//  * cursors opened on one connection are invisible to every other;
//  * a client that disconnects mid-batch must not wedge the accept loop or
//    leak cursor-table entries;
//  * graceful shutdown drains and closes every connection.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "filter/client_filter.h"
#include "query/advanced_engine.h"
#include "query/ground_truth.h"
#include "query/simple_engine.h"
#include "rpc/client.h"
#include "rpc/concurrent_server.h"
#include "rpc/socket_channel.h"
#include "test_helpers.h"
#include "xmark/generator.h"

namespace ssdb::rpc {
namespace {

using testing_helpers::BuildTestDb;
using testing_helpers::TestDb;

std::string SocketPath(const char* name) {
  return "/tmp/ssdb_concurrent_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

// Shared XMark database plus a running ConcurrentServer over it.
struct ServerFixture {
  std::unique_ptr<TestDb> db;
  std::unique_ptr<ConcurrentServer> server;
  std::string path;

  explicit ServerFixture(const char* name, size_t threads = 4) {
    xmark::GeneratorOptions gen;
    gen.target_bytes = 16 << 10;
    gen.seed = 7;
    db = BuildTestDb(xmark::GenerateAuctionDocument(gen).xml);
    path = SocketPath(name);
    auto listener = UnixServerSocket::Listen(path);
    SSDB_CHECK(listener.ok());
    ConcurrentServerOptions options;
    options.threads = threads;
    server = std::make_unique<ConcurrentServer>(
        db->ring, db->server.get(), std::move(*listener), options);
    SSDB_CHECK(server->Start().ok());
  }

  std::unique_ptr<RemoteServerFilter> Connect() {
    auto channel = ConnectUnix(path);
    SSDB_CHECK(channel.ok());
    return std::make_unique<RemoteServerFilter>(db->ring,
                                                std::move(*channel));
  }
};

// Spin until the server-side cursor table drains (close processing is
// asynchronous: the poller must notice the dead fd first).
bool WaitForCursorCount(TestDb* db, uint64_t want) {
  for (int i = 0; i < 500; ++i) {
    if (db->server->OpenCursorCount() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return db->server->OpenCursorCount() == want;
}

TEST(ConcurrentServerTest, ManyClientsMatchGroundTruth) {
  ServerFixture fixture("hammer", /*threads=*/4);
  const std::vector<std::string> queries = {
      "/site//person", "/site/people/person//city", "/site//bidder",
      "/site/*"};

  // Plaintext expectations, computed once up front.
  std::vector<std::set<uint32_t>> expected;
  for (const std::string& text : queries) {
    auto parsed = query::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto truth = query::EvaluateGroundTruth(*parsed, fixture.db->doc);
    ASSERT_TRUE(truth.ok()) << text;
    expected.emplace_back(truth->begin(), truth->end());
  }
  // Scalar/batch baselines from the local filter (thread-safe by design).
  filter::ServerFilter* local = fixture.db->server.get();
  std::vector<gf::Elem> base_evals = *local->EvalAtBatch({1, 2, 3, 4}, 5);
  gf::RingElem base_share = *local->FetchShare(2);

  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto remote = fixture.Connect();
      filter::ClientFilter client(fixture.db->ring,
                                  prg::Prg(fixture.db->seed), remote.get());
      query::SimpleEngine simple(&client, &fixture.db->map);
      query::AdvancedEngine advanced(&client, &fixture.db->map);
      for (int round = 0; round < 2; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          query::Query q = *query::ParseQuery(queries[qi]);
          query::QueryEngine* engine =
              (c + round) % 2 == 0
                  ? static_cast<query::QueryEngine*>(&simple)
                  : static_cast<query::QueryEngine*>(&advanced);
          auto result =
              engine->Execute(q, query::MatchMode::kEquality, nullptr);
          ASSERT_TRUE(result.ok()) << queries[qi];
          std::set<uint32_t> actual;
          for (const auto& node : *result) actual.insert(node.pre);
          EXPECT_EQ(actual, expected[qi])
              << "client " << c << " diverged on " << queries[qi];
        }
        // Mixed scalar + batch ops interleaved with the engine traffic.
        EXPECT_EQ(*remote->EvalAtBatch({1, 2, 3, 4}, 5), base_evals);
        EXPECT_EQ(*remote->EvalAt(2, 5), base_evals[1]);
        EXPECT_EQ(*remote->FetchShare(2), base_share);
        EXPECT_EQ((*remote->FetchShareBatch({2, 2}))[1], base_share);
        EXPECT_FALSE(remote->GetNode(1u << 30).ok());  // errors transport
      }
      ASSERT_TRUE(remote->Shutdown().ok());
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(fixture.server->connections_accepted(), (uint64_t)kClients);
  // Every client shut its own connection down; the server must survive all
  // of them and still accept new work.
  auto late = fixture.Connect();
  EXPECT_EQ(*late->NodeCount(), *local->NodeCount());
  ASSERT_TRUE(late->Shutdown().ok());
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->connections_accepted(),
            fixture.server->connections_closed());
}

TEST(ConcurrentServerTest, CursorsAreInvisibleAcrossConnections) {
  ServerFixture fixture("cursors");
  auto a = fixture.Connect();
  auto b = fixture.Connect();
  auto root = a->Root();
  ASSERT_TRUE(root.ok());

  auto cursor_a = a->OpenDescendantCursor(root->pre, root->post);
  ASSERT_TRUE(cursor_a.ok());
  auto cursor_b = b->OpenDescendantCursor(root->pre, root->post);
  ASSERT_TRUE(cursor_b.ok());

  // The other connection's cursor id must look like a cursor that does not
  // exist — not readable, not closable.
  auto stolen = b->NextNodes(*cursor_a, 4);
  EXPECT_FALSE(stolen.ok());
  EXPECT_TRUE(stolen.status().IsNotFound());
  EXPECT_TRUE(b->CloseCursor(*cursor_a).ok());  // silently ignored
  auto own = a->NextNodes(*cursor_a, 4);
  ASSERT_TRUE(own.ok());
  EXPECT_FALSE(own->empty());

  // Both cursors drain fully and independently.
  size_t streamed_a = own->size();
  for (;;) {
    auto nodes = a->NextNodes(*cursor_a, 16);
    ASSERT_TRUE(nodes.ok());
    if (nodes->empty()) break;
    streamed_a += nodes->size();
  }
  size_t streamed_b = 0;
  for (;;) {
    auto nodes = b->NextNodes(*cursor_b, 16);
    ASSERT_TRUE(nodes.ok());
    if (nodes->empty()) break;
    streamed_b += nodes->size();
  }
  EXPECT_EQ(streamed_a, *fixture.db->server->NodeCount() - 1);
  EXPECT_EQ(streamed_a, streamed_b);
  EXPECT_EQ(fixture.db->server->OpenCursorCount(), 0u);
  ASSERT_TRUE(a->Shutdown().ok());
  ASSERT_TRUE(b->Shutdown().ok());
}

TEST(ConcurrentServerTest, MidBatchDisconnectCleansUpAndKeepsServing) {
  ServerFixture fixture("disconnect");
  auto root = *fixture.db->server->Root();

  // Ten clients in a row abandon a half-read cursor by dying abruptly —
  // no CloseCursor, no shutdown handshake.
  for (int i = 0; i < 10; ++i) {
    auto doomed = fixture.Connect();
    auto cursor = doomed->OpenDescendantCursor(root.pre, root.post);
    ASSERT_TRUE(cursor.ok());
    ASSERT_TRUE(doomed->NextNodes(*cursor, 2).ok());
    EXPECT_GE(fixture.db->server->OpenCursorCount(), 1u);
    doomed.reset();  // closes the socket with the cursor still open
  }

  // The server must reclaim every abandoned cursor...
  EXPECT_TRUE(WaitForCursorCount(fixture.db.get(), 0));
  // ...and the accept loop must still be alive for new clients.
  auto survivor = fixture.Connect();
  filter::ClientFilter client(fixture.db->ring, prg::Prg(fixture.db->seed),
                              survivor.get());
  query::AdvancedEngine engine(&client, &fixture.db->map);
  auto q = *query::ParseQuery("/site//person");
  auto result = engine.Execute(q, query::MatchMode::kEquality, nullptr);
  ASSERT_TRUE(result.ok());
  auto truth = query::EvaluateGroundTruth(q, fixture.db->doc);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(result->size(), truth->size());
  ASSERT_TRUE(survivor->Shutdown().ok());

  EXPECT_EQ(fixture.server->connections_accepted(), 11u);
  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->connections_closed(), 11u);
}

TEST(ConcurrentServerTest, ShutdownUnblocksWorkerStalledOnPartialFrame) {
  ServerFixture fixture("stall", /*threads=*/2);
  auto channel = ConnectUnix(fixture.path);
  ASSERT_TRUE(channel.ok());
  // Two of the four frame-header bytes, then silence: the poller dispatches
  // the readable fd and the worker blocks awaiting the rest of the frame.
  int fd = (*channel)->PollFd();
  const char partial[2] = {0x10, 0x00};
  ASSERT_EQ(::write(fd, partial, sizeof(partial)), 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Drain must not wait for the stalled client (or its 30s io timeout):
  // SHUT_RD turns the worker's blocked read into an immediate EOF.
  auto start = std::chrono::steady_clock::now();
  fixture.server->Shutdown();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            5);
  EXPECT_EQ(fixture.server->connections_accepted(), 1u);
  EXPECT_EQ(fixture.server->connections_closed(), 1u);
}

TEST(ConcurrentServerTest, GracefulShutdownClosesIdleConnections) {
  ServerFixture fixture("drain");
  auto a = fixture.Connect();
  auto b = fixture.Connect();
  EXPECT_TRUE(a->Root().ok());
  EXPECT_TRUE(b->Root().ok());

  fixture.server->Shutdown();
  EXPECT_EQ(fixture.server->connections_accepted(), 2u);
  EXPECT_EQ(fixture.server->connections_closed(), 2u);
  EXPECT_EQ(fixture.server->open_connections(), 0u);
  // The socket file is gone: no new connections.
  EXPECT_FALSE(ConnectUnix(fixture.path).ok());
  // In-flight stubs observe the close as an error, not a hang.
  EXPECT_FALSE(a->Root().ok());
}

}  // namespace
}  // namespace ssdb::rpc
